"""Full serving-system models: GPU, GPU+Q, GPU+PIM, Pimba, NeuPIMs.

The Section 6.1 baselines, composed from the substrates:

* **GPU** — everything on the GPU roofline, fp16 state/KV.
* **GPU+Q** — same, with int8 state/KV (bitwidth-matched to Pimba).
* **GPU+PIM** — state update and attention offloaded to an HBM-PIM-style
  time-multiplexed fp16 PIM (no access interleaving, no Fig. 11 overlap).
* **Pimba** — state update and attention on the shared-SPU MX8 PIM.
* **NeuPIMs** — attention-only per-bank PIM (fp16 GEMV with dual row
  buffers); state updates stay on the GPU (Fig. 15's comparison).

GPU and PIM execute in a blocked, mutually exclusive fashion (Section 5.6),
so a step's latency is the sum over operator classes.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.accelerator import PimbaAccelerator
from repro.core.config import (
    PimbaConfig,
    hbm_pim_config,
    per_bank_pipelined_config,
    pimba_config,
)
from repro.models.config import ModelSpec
from repro.perf.gpu import GpuModel, GpuSpec, a100
from repro.perf.operators import (
    OpCost,
    OpKind,
    PrecisionConfig,
    generation_step_ops,
)
from repro.perf.parallelism import Interconnect, communication_seconds, nvlink3
from repro.quant import get_format


class SystemKind(enum.Enum):
    """The five evaluated serving systems."""

    GPU = "GPU"
    GPU_Q = "GPU+Q"
    GPU_PIM = "GPU+PIM"
    PIMBA = "Pimba"
    NEUPIMS = "NeuPIMs"


#: storage format (quant registry name) backing each system's state/KV cache
STATE_FORMATS = {
    SystemKind.GPU: "fp16",
    SystemKind.GPU_Q: "int8",  # int8 with a 16-bit scale per 32 elements
    SystemKind.GPU_PIM: "fp16",
    SystemKind.PIMBA: "mx8SR",
    SystemKind.NEUPIMS: "fp16",
}


def _state_bytes(kind: SystemKind) -> float:
    """State/KV bytes per value, from the quant format's true bit width."""
    return get_format(STATE_FORMATS[kind]).bits_per_value / 8.0


_PRECISIONS = {
    kind: PrecisionConfig(state_bytes=_state_bytes(kind), kv_bytes=_state_bytes(kind))
    for kind in SystemKind
}

_OFFLOADS = {
    SystemKind.GPU: frozenset(),
    SystemKind.GPU_Q: frozenset(),
    SystemKind.GPU_PIM: frozenset({OpKind.STATE_UPDATE, OpKind.ATTENTION}),
    SystemKind.PIMBA: frozenset({OpKind.STATE_UPDATE, OpKind.ATTENTION}),
    SystemKind.NEUPIMS: frozenset({OpKind.ATTENTION}),
}

#: blocked GPU->PIM dispatch cost per offloaded layer (Section 5.6: the two
#: engines alternate; each handoff drains the command queue)
_PIM_DISPATCH_S = 3e-6
#: extra per attention layer: the score results return to the GPU for the
#: softmax, then the attend phase is re-dispatched (two more boundaries
#: plus the softmax kernel itself)
_ATTENTION_ROUNDTRIP_S = 40e-6


def _pim_for(kind: SystemKind, gpu: GpuSpec) -> PimbaConfig | None:
    if kind is SystemKind.GPU_PIM:
        return hbm_pim_config(hbm=gpu.hbm)
    if kind is SystemKind.PIMBA:
        return pimba_config(hbm=gpu.hbm)
    if kind is SystemKind.NEUPIMS:
        # Per-bank fp16 GEMV units; dual row buffers make attention
        # streaming hazard-free, equivalent to the pipelined read path.
        return per_bank_pipelined_config(hbm=gpu.hbm)
    return None


@dataclasses.dataclass(frozen=True)
class StepBreakdown:
    """Latency of one generation step, split by operator class."""

    seconds_by_kind: dict[OpKind, float]
    placements: dict[OpKind, str]

    @property
    def total(self) -> float:
        return sum(self.seconds_by_kind.values())

    def fraction(self, kind: OpKind) -> float:
        if self.total == 0:
            return 0.0
        return self.seconds_by_kind.get(kind, 0.0) / self.total


@dataclasses.dataclass(frozen=True)
class GenerationMetrics:
    """Throughput/latency/memory of one serving configuration."""

    tokens_per_second: float  #: generation-phase throughput
    decode_seconds: float
    prefill_seconds: float
    step: StepBreakdown
    memory_bytes_per_device: float


class ServingSystem:
    """One of the paper's five systems, ready to price workloads."""

    def __init__(
        self,
        kind: SystemKind,
        gpu: GpuSpec | None = None,
        n_devices: int = 1,
        link: Interconnect | None = None,
    ):
        self.kind = kind
        self.gpu_spec = gpu or a100()
        self.gpu = GpuModel(self.gpu_spec)
        self.n_devices = n_devices
        self.link = link or nvlink3()
        self.precision = _PRECISIONS[kind]
        self.offloads = _OFFLOADS[kind]
        pim_cfg = _pim_for(kind, self.gpu_spec)
        self.pim = PimbaAccelerator(pim_cfg) if pim_cfg else None

    # -- one generation step ---------------------------------------------------

    def step_latency(self, spec: ModelSpec, batch: int, seq_len: int) -> StepBreakdown:
        """Latency of generating one token for a batch at context ``seq_len``."""
        ops = generation_step_ops(
            spec, batch, seq_len, self.precision, tp_degree=self.n_devices
        )
        seconds: dict[OpKind, float] = {}
        placements: dict[OpKind, str] = {}
        for op in ops:
            if op.kind is OpKind.COMMUNICATION:
                reduces = spec.n_layers * (2 if spec.ffn_mult else 1)
                seconds[op.kind] = communication_seconds(
                    op.comm_bytes, reduces, self.n_devices, self.link
                )
                placements[op.kind] = self.link.name
            elif op.kind in self.offloads and self.pim is not None:
                seconds[op.kind] = self._pim_seconds(op, spec, batch, seq_len)
                placements[op.kind] = "PIM"
            else:
                seconds[op.kind] = self.gpu.op_seconds(op)
                placements[op.kind] = self.gpu_spec.name
        return StepBreakdown(seconds_by_kind=seconds, placements=placements)

    def _pim_seconds(
        self, op: OpCost, spec: ModelSpec, batch: int, seq_len: int
    ) -> float:
        heads = max(1, round(batch * spec.n_heads / self.n_devices))
        if op.kind is OpKind.STATE_UPDATE:
            per_layer = self.pim.state_update_timing(
                heads, spec.dim_head, spec.dim_state
            ).seconds + _PIM_DISPATCH_S
            return per_layer * spec.state_update_layers
        per_layer = (
            self.pim.attention_timing(
                heads, spec.dim_head, seq_len, dim_value=spec.dim_state
            ).seconds
            + _PIM_DISPATCH_S
            + _ATTENTION_ROUNDTRIP_S
        )
        return per_layer * spec.attention_layers

    # -- end-to-end request batches ----------------------------------------------

    def prefill_latency(self, spec: ModelSpec, batch: int, input_len: int) -> float:
        """Compute-bound prefill estimate (runs on the GPU in every system)."""
        proj_flops = 2.0 * spec.param_count / self.n_devices * batch * input_len
        attn_flops = (
            spec.attention_layers * batch * spec.n_heads / self.n_devices
            * input_len**2 * (spec.dim_head + spec.dim_state)
        )
        return self.gpu.prefill_seconds(proj_flops + attn_flops)

    def generation_metrics(
        self,
        spec: ModelSpec,
        batch: int,
        input_len: int = 2048,
        output_len: int = 2048,
    ) -> GenerationMetrics:
        """Throughput over a full (input_len, output_len) batch.

        Generation-phase throughput is reported as in Fig. 12: tokens
        generated per second of decode time, with attention priced at the
        mid-generation context length (state updates are length-invariant).
        """
        mid_seq = input_len + output_len // 2
        step = self.step_latency(spec, batch, mid_seq)
        decode = step.total * output_len
        prefill = self.prefill_latency(spec, batch, input_len)
        throughput = batch * output_len / decode if decode else 0.0
        return GenerationMetrics(
            tokens_per_second=throughput,
            decode_seconds=decode,
            prefill_seconds=prefill,
            step=step,
            memory_bytes_per_device=self.memory_usage(
                spec, batch, input_len + output_len
            ),
        )

    @property
    def capacity_bytes(self) -> float:
        """Total HBM capacity across the cluster's devices."""
        return self.gpu_spec.hbm_capacity_bytes * self.n_devices

    def weights_bytes(self, spec: ModelSpec) -> float:
        """Cluster-wide weight bytes (sharded across devices under TP)."""
        return spec.param_count * self.precision.weight_bytes

    def state_bytes_per_request(self, spec: ModelSpec) -> float:
        """Cluster-wide recurrent-state bytes one request keeps resident
        (context-invariant), at this system's storage byte width."""
        return (
            spec.state_update_layers * spec.state_values_per_layer
            * self.precision.state_bytes
        )

    def kv_bytes_per_request(self, spec: ModelSpec, seq_len: int) -> float:
        """Cluster-wide KV-cache bytes of one request at context ``seq_len``."""
        return (
            spec.attention_layers * spec.n_heads * seq_len
            * (spec.dim_head + spec.dim_state) * self.precision.kv_bytes
        )

    def memory_usage(self, spec: ModelSpec, batch: int, seq_len: int) -> float:
        """Per-device bytes: weights + states + KV caches (Fig. 15 right)."""
        per_request = (
            self.state_bytes_per_request(spec)
            + self.kv_bytes_per_request(spec, seq_len)
        )
        return (self.weights_bytes(spec) + batch * per_request) / self.n_devices


def build_system(kind: SystemKind, scale: str = "small", gpu: GpuSpec | None = None,
                 link: Interconnect | None = None) -> ServingSystem:
    """Convenience constructor: small scale = 1 device, large = DGX (8)."""
    n_devices = 1 if scale == "small" else 8
    return ServingSystem(kind, gpu=gpu, n_devices=n_devices, link=link)
