"""System energy model for one generation step (Fig. 14).

Energy splits into the paper's six categories: state-update I/O and
compute, attention I/O and compute, GEMM, and others.  The decisive
effects:

* PIM execution pays DRAM *array* energy for the state/KV sweep but not
  the channel *I/O* energy a GPU pays to move the same bytes — only the
  (small) operand/result transfers cross the bus.
* MX8 halves the bits touched relative to fp16, on top of that.
* GEMM energy (weights + tensor-core FLOPs) is identical across systems,
  which is why end-to-end savings saturate around ~2x.
"""

from __future__ import annotations

import dataclasses

from repro.dram.energy import DramEnergyParams
from repro.models.config import ModelSpec
from repro.perf.operators import OpKind, generation_step_ops
from repro.perf.system import ServingSystem, SystemKind

#: marginal tensor-core datapath energy per FLOP (excludes static chip
#: power, which is identical across systems and cancels in Fig. 14's
#: normalized bars)
GPU_PJ_PER_FLOP = 0.25

#: host-side cost of moving one bit over the channel: HBM PHY, memory
#: controller and on-chip interconnect (on top of the DRAM-side I/O
#: energy).  This is the energy PIM execution avoids.
HOST_PJ_PER_BIT = 5.2

#: Fig. 14 legend categories
CATEGORIES = (
    "State Update (I/O)",
    "State Update (Compute)",
    "Attention (I/O)",
    "Attention (Compute)",
    "GEMM",
    "Others",
)


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per generation step across all devices."""

    joules_by_category: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.joules_by_category.values())

    def fraction(self, category: str) -> float:
        if self.total == 0:
            return 0.0
        return self.joules_by_category.get(category, 0.0) / self.total


class EnergyModel:
    """Prices one generation step of a serving system in joules."""

    def __init__(
        self,
        system: ServingSystem,
        dram: DramEnergyParams | None = None,
        gpu_pj_per_flop: float = GPU_PJ_PER_FLOP,
        host_pj_per_bit: float = HOST_PJ_PER_BIT,
    ):
        self.system = system
        self.dram = dram or DramEnergyParams()
        self.gpu_pj_per_flop = gpu_pj_per_flop
        self.host_pj_per_bit = host_pj_per_bit

    # -- helpers ---------------------------------------------------------------

    def _array_j(self, n_bytes: float) -> float:
        return n_bytes * 8 * self.dram.array_pj_per_bit * 1e-12

    def _io_j(self, n_bytes: float) -> float:
        """Bytes that cross the channel to the host (DRAM I/O + PHY/SoC)."""
        per_bit = self.dram.io_pj_per_bit + self.host_pj_per_bit
        return n_bytes * 8 * per_bit * 1e-12

    def _gpu_compute_j(self, flops: float) -> float:
        return flops * self.gpu_pj_per_flop * 1e-12

    def _pim_compute_j(self, op_kind: OpKind, spec: ModelSpec, batch: int,
                       seq_len: int) -> float:
        from repro.hw.power import unit_power  # local import avoids a cycle

        pim = self.system.pim
        heads = max(1, round(batch * spec.n_heads / self.system.n_devices))
        if op_kind is OpKind.STATE_UPDATE:
            timing = pim.state_update_timing(heads, spec.dim_head, spec.dim_state)
            layers = spec.state_update_layers
        else:
            timing = pim.attention_timing(
                heads, spec.dim_head, seq_len, dim_value=spec.dim_state
            )
            layers = spec.attention_layers
        pim_cycles = timing.sweep.comp_cycles / pim.config.hbm.timing.tCCD_L
        per_cycle_pj = unit_power(pim.config).energy_per_cycle_pj
        units = pim.config.units_per_channel * pim.config.hbm.pseudo_channels
        return per_cycle_pj * pim_cycles * units * layers * 1e-12

    # -- main entry --------------------------------------------------------------

    def step_energy(self, spec: ModelSpec, batch: int, seq_len: int) -> EnergyBreakdown:
        """Energy of one generation step, summed over all devices."""
        sys = self.system
        ops = generation_step_ops(
            spec, batch, seq_len, sys.precision, tp_degree=sys.n_devices
        )
        out = {c: 0.0 for c in CATEGORIES}
        heads = spec.n_heads / sys.n_devices

        for op in ops:
            if op.kind is OpKind.GEMM:
                out["GEMM"] += (
                    self._array_j(op.bytes) + self._io_j(op.bytes)
                    + self._gpu_compute_j(op.flops)
                )
            elif op.kind is OpKind.STATE_UPDATE:
                on_pim = op.kind in sys.offloads
                operand_bytes = (
                    spec.state_update_layers * batch * heads
                    * (3 * spec.dim_head + spec.dim_state) * sys.precision.act_bytes
                )
                out["State Update (I/O)"] += self._array_j(op.bytes)
                if on_pim:
                    out["State Update (I/O)"] += self._io_j(operand_bytes)
                    out["State Update (Compute)"] += self._pim_compute_j(
                        op.kind, spec, batch, seq_len
                    )
                else:
                    out["State Update (I/O)"] += self._io_j(op.bytes)
                    out["State Update (Compute)"] += self._gpu_compute_j(op.flops)
            elif op.kind is OpKind.ATTENTION:
                on_pim = op.kind in sys.offloads
                score_bytes = (
                    spec.attention_layers * batch * heads * seq_len * 2.0
                )
                out["Attention (I/O)"] += self._array_j(op.bytes)
                if on_pim:
                    out["Attention (I/O)"] += self._io_j(score_bytes)
                    out["Attention (Compute)"] += self._pim_compute_j(
                        op.kind, spec, batch, seq_len
                    )
                else:
                    out["Attention (I/O)"] += self._io_j(op.bytes)
                    out["Attention (Compute)"] += self._gpu_compute_j(op.flops)
            else:
                out["Others"] += (
                    self._array_j(op.bytes) + self._io_j(op.bytes)
                    + self._gpu_compute_j(op.flops)
                    + self._io_j(op.comm_bytes)
                )

        scaled = {c: j * sys.n_devices for c, j in out.items()}
        return EnergyBreakdown(joules_by_category=scaled)


def step_energy_for(
    kind: SystemKind, spec: ModelSpec, batch: int, seq_len: int, scale: str = "large"
) -> EnergyBreakdown:
    """Convenience wrapper used by the Fig. 14 bench."""
    from repro.perf.system import build_system

    return EnergyModel(build_system(kind, scale)).step_energy(spec, batch, seq_len)
