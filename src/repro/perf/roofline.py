"""Roofline analysis helpers (Fig. 1b).

Places operator classes on the (arithmetic intensity, attained FLOP/s)
plane for a GPU: state update has ~4x the intensity of attention, yet both
sit far left of the GEMM ridge point — the memory-bound motivation for
PIM.
"""

from __future__ import annotations

import dataclasses

from repro.models.config import ModelSpec
from repro.perf.gpu import GpuModel, GpuSpec
from repro.perf.operators import (
    OpKind,
    arithmetic_intensity,
    generation_step_ops,
    ops_by_kind,
)


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One operator class on the roofline plane."""

    kind: OpKind
    intensity: float  #: FLOPs per byte
    attained_flops: float  #: FLOP/s under the roofline
    memory_bound: bool

    @property
    def attained_tflops(self) -> float:
        return self.attained_flops / 1e12


def roofline_points(
    spec: ModelSpec,
    batch: int,
    seq_len: int,
    gpu: GpuSpec | None = None,
) -> dict[OpKind, RooflinePoint]:
    """Roofline placement of every op class in one generation step."""
    model = GpuModel(gpu) if gpu else GpuModel()
    merged = ops_by_kind(generation_step_ops(spec, batch, seq_len))
    points = {}
    for kind, op in merged.items():
        if kind is OpKind.COMMUNICATION:
            continue
        intensity = arithmetic_intensity(op)
        points[kind] = RooflinePoint(
            kind=kind,
            intensity=intensity,
            attained_flops=model.attained_flops(op),
            memory_bound=intensity < model.ridge_intensity(kind),
        )
    return points
