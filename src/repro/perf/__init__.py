"""Performance, energy and system models (the Section 6 evaluation rig)."""

from repro.perf.energy import (
    CATEGORIES,
    EnergyBreakdown,
    EnergyModel,
    step_energy_for,
)
from repro.perf.gpu import GpuModel, GpuSpec, a100, h100
from repro.perf.operators import (
    OpCost,
    OpKind,
    PrecisionConfig,
    arithmetic_intensity,
    generation_step_ops,
    ops_by_kind,
)
from repro.perf.parallelism import (
    Interconnect,
    all_reduce_seconds,
    communication_seconds,
    nvlink3,
    nvlink4,
)
from repro.perf.roofline import RooflinePoint, roofline_points
from repro.perf.system import (
    GenerationMetrics,
    ServingSystem,
    StepBreakdown,
    SystemKind,
    build_system,
)

__all__ = [
    "CATEGORIES",
    "EnergyBreakdown",
    "EnergyModel",
    "step_energy_for",
    "GpuModel",
    "GpuSpec",
    "a100",
    "h100",
    "OpCost",
    "OpKind",
    "PrecisionConfig",
    "arithmetic_intensity",
    "generation_step_ops",
    "ops_by_kind",
    "Interconnect",
    "all_reduce_seconds",
    "communication_seconds",
    "nvlink3",
    "nvlink4",
    "RooflinePoint",
    "roofline_points",
    "GenerationMetrics",
    "ServingSystem",
    "StepBreakdown",
    "SystemKind",
    "build_system",
]
