"""Analytic GPU performance model (roofline with per-op efficiencies).

Generation-phase operators are almost all bandwidth-bound (Fig. 1b), so a
roofline — ``time = max(flops / (peak x eff), bytes / (bw x eff))`` — with
per-operator-class efficiency factors reproduces the latency breakdowns
the paper measures on real A100s (Fig. 3).  The efficiency factors are
calibrated once against the paper's stated RetNet breakdown (state updates
41.9% of latency at batch 32, 73.8% at batch 128) and then reused for
every model, batch size, and GPU.
"""

from __future__ import annotations

import dataclasses

from repro.dram.timing import HbmConfig, a100_hbm, h100_hbm
from repro.perf.operators import OpCost, OpKind

#: fraction of peak memory bandwidth each op class sustains
_MEM_EFFICIENCY = {
    OpKind.GEMM: 0.80,
    OpKind.STATE_UPDATE: 0.75,  # clean per-request streaming kernels
    OpKind.ATTENTION: 0.70,  # gather over paged KV blocks
    OpKind.DISCRETIZATION: 0.50,
    OpKind.CAUSAL_CONV: 0.50,
    OpKind.OTHER: 0.50,
    OpKind.COMMUNICATION: 1.0,
}

#: fraction of peak tensor throughput each op class sustains
_COMPUTE_EFFICIENCY = {
    OpKind.GEMM: 0.60,
    OpKind.STATE_UPDATE: 0.30,
    OpKind.ATTENTION: 0.40,
    OpKind.DISCRETIZATION: 0.10,
    OpKind.CAUSAL_CONV: 0.10,
    OpKind.OTHER: 0.10,
    OpKind.COMMUNICATION: 1.0,
}

#: fixed launch/sync cost per operator class per step, seconds
_LAUNCH_OVERHEAD_S = 5e-6


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """One GPU's peak numbers."""

    name: str
    peak_fp16_flops: float
    hbm: HbmConfig
    #: total HBM capacity per device (bounds state+KV residency when the
    #: request-level scheduler packs batches)
    hbm_capacity_bytes: float = 80 * 2**30

    @property
    def mem_bandwidth(self) -> float:
        return self.hbm.device_bandwidth_bytes


def a100() -> GpuSpec:
    """NVIDIA A100 80GB: 312 TFLOPS fp16, ~1.94 TB/s HBM2E."""
    return GpuSpec("A100", peak_fp16_flops=312e12, hbm=a100_hbm())


def h100() -> GpuSpec:
    """NVIDIA H100 SXM 80GB: 989 TFLOPS fp16, ~3.36 TB/s HBM3."""
    return GpuSpec("H100", peak_fp16_flops=989e12, hbm=h100_hbm())


class GpuModel:
    """Turns :class:`OpCost` records into seconds on one GPU."""

    def __init__(self, spec: GpuSpec | None = None):
        self.spec = spec or a100()

    def op_seconds(self, op: OpCost) -> float:
        """Roofline latency of one operator class."""
        if op.kind is OpKind.COMMUNICATION:
            raise ValueError("communication is priced by the parallelism model")
        compute = op.flops / (self.spec.peak_fp16_flops * _COMPUTE_EFFICIENCY[op.kind])
        memory = op.bytes / (self.spec.mem_bandwidth * _MEM_EFFICIENCY[op.kind])
        return max(compute, memory) + _LAUNCH_OVERHEAD_S

    def ridge_intensity(self, kind: OpKind = OpKind.GEMM) -> float:
        """FLOPs/byte where an op class turns compute-bound (Fig. 1b)."""
        return (
            self.spec.peak_fp16_flops * _COMPUTE_EFFICIENCY[kind]
            / (self.spec.mem_bandwidth * _MEM_EFFICIENCY[kind])
        )

    def attained_flops(self, op: OpCost) -> float:
        """Roofline-attained FLOP/s for an op (the Fig. 1b y-axis)."""
        seconds = self.op_seconds(op)
        if seconds == 0:
            return 0.0
        return op.flops / seconds

    def prefill_seconds(self, total_flops: float, efficiency: float = 0.5) -> float:
        """Compute-bound prefill estimate (long sequences, big GEMMs)."""
        return total_flops / (self.spec.peak_fp16_flops * efficiency)
