"""Per-operation cost accounting for one generation step (Fig. 3's bars).

``generation_step_ops`` walks a :class:`~repro.models.config.ModelSpec` and
emits one :class:`OpCost` per operator class — FLOPs, memory traffic and
communication payload — for a single token-generation step of a batch,
*per device* under tensor parallelism.  The GPU roofline
(``repro.perf.gpu``) turns these into seconds; the system models
(``repro.perf.system``) re-route the state-update and attention entries to
PIM devices.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.models.config import Family, ModelSpec


class OpKind(enum.Enum):
    """Operator classes used in the paper's latency breakdowns (Fig. 3/13)."""

    GEMM = "GEMM"
    STATE_UPDATE = "State Update"
    ATTENTION = "Attention"
    DISCRETIZATION = "Discretization"
    CAUSAL_CONV = "Causal Conv"
    COMMUNICATION = "Communication"
    OTHER = "Others"


@dataclasses.dataclass(frozen=True)
class OpCost:
    """Work of one operator class in one generation step, per device."""

    kind: OpKind
    flops: float  #: floating-point operations
    bytes: float  #: DRAM traffic (reads + writes)
    comm_bytes: float = 0.0  #: inter-device payload (all-reduce input size)

    def scaled(self, factor: float) -> "OpCost":
        return OpCost(self.kind, self.flops * factor, self.bytes * factor,
                      self.comm_bytes * factor)


@dataclasses.dataclass(frozen=True)
class PrecisionConfig:
    """Bytes per value for each storage class."""

    weight_bytes: float = 2.0  #: model weights (fp16 everywhere)
    state_bytes: float = 2.0  #: SU-LLM state (2.0 fp16 / ~1.06 int8 / 1.0 MX8)
    kv_bytes: float = 2.0  #: transformer KV cache
    act_bytes: float = 2.0  #: activations


def generation_step_ops(
    spec: ModelSpec,
    batch: int,
    seq_len: int,
    precision: PrecisionConfig | None = None,
    tp_degree: int = 1,
) -> list[OpCost]:
    """Per-device op costs of generating one token for ``batch`` requests.

    Args:
        spec: model architecture.
        seq_len: current context length (drives attention cost).
        precision: storage precisions (GPU+Q halves state/kv bytes).
        tp_degree: tensor-parallel device count; weights, heads and
            per-layer all-reduces are sharded accordingly.
    """
    if batch <= 0 or seq_len < 0 or tp_degree < 1:
        raise ValueError("batch must be positive, seq_len >= 0, tp_degree >= 1")
    p = precision or PrecisionConfig()
    d = spec.d_model
    heads = spec.n_heads / tp_degree

    ops: list[OpCost] = []

    # ---- GEMM: projections, FFN, LM head -----------------------------------
    proj_params = (spec.param_count - spec.vocab_size * d) / tp_degree
    lm_head_params = spec.vocab_size * d / tp_degree
    gemm_params = proj_params + lm_head_params
    ops.append(OpCost(
        OpKind.GEMM,
        flops=2.0 * batch * gemm_params,
        bytes=gemm_params * p.weight_bytes
        + batch * spec.n_layers * d * p.act_bytes * 4,
    ))

    # ---- state update (Eq. 2) ----------------------------------------------
    if spec.state_update_layers:
        state_values = heads * spec.dim_head * spec.dim_state
        per_layer_bytes = batch * state_values * p.state_bytes * 2  # R + W
        operand_bytes = batch * heads * (
            3 * spec.dim_head + spec.dim_state
        ) * p.act_bytes
        ops.append(OpCost(
            OpKind.STATE_UPDATE,
            flops=spec.state_update_layers * batch * state_values * 6,
            bytes=spec.state_update_layers * (per_layer_bytes + operand_bytes),
        ))

    # ---- attention over the KV cache ----------------------------------------
    if spec.attention_layers and seq_len > 0:
        kv_read = batch * heads * seq_len * (
            spec.dim_head + spec.dim_state
        ) * p.kv_bytes
        kv_append = batch * heads * (spec.dim_head + spec.dim_state) * p.kv_bytes
        ops.append(OpCost(
            OpKind.ATTENTION,
            flops=spec.attention_layers * batch * heads * seq_len
            * (spec.dim_head + spec.dim_state) * 2,
            bytes=spec.attention_layers * (kv_read + kv_append),
        ))

    # ---- Mamba-2-family element-wise stages ---------------------------------
    if spec.family in (Family.MAMBA2, Family.ZAMBA2):
        su_layers = spec.state_update_layers
        inner = heads * spec.dim_state
        ops.append(OpCost(
            OpKind.DISCRETIZATION,
            flops=su_layers * batch * heads * (d / tp_degree + 8),
            bytes=su_layers * batch * (inner + heads) * p.act_bytes * 2,
        ))
        ops.append(OpCost(
            OpKind.CAUSAL_CONV,
            flops=su_layers * batch * inner * spec.conv_width * 2,
            bytes=su_layers * batch * inner * (spec.conv_width + 2) * p.act_bytes,
        ))

    # ---- residuals, norms, embedding lookup ---------------------------------
    ops.append(OpCost(
        OpKind.OTHER,
        flops=spec.n_layers * batch * d * 8,
        bytes=spec.n_layers * batch * d * p.act_bytes * 6 + batch * d * p.weight_bytes,
    ))

    # ---- tensor-parallel all-reduces -----------------------------------------
    if tp_degree > 1:
        reduces_per_layer = 2 if spec.ffn_mult else 1
        payload = batch * d * p.act_bytes
        ops.append(OpCost(
            OpKind.COMMUNICATION,
            flops=0.0,
            bytes=0.0,
            comm_bytes=spec.n_layers * reduces_per_layer * payload,
        ))

    return ops


def ops_by_kind(ops: list[OpCost]) -> dict[OpKind, OpCost]:
    """Merge a cost list into one entry per kind."""
    merged: dict[OpKind, OpCost] = {}
    for op in ops:
        if op.kind in merged:
            prev = merged[op.kind]
            merged[op.kind] = OpCost(
                op.kind, prev.flops + op.flops, prev.bytes + op.bytes,
                prev.comm_bytes + op.comm_bytes,
            )
        else:
            merged[op.kind] = op
    return merged


def arithmetic_intensity(op: OpCost) -> float:
    """FLOPs per byte — the roofline x-axis (Fig. 1b)."""
    if op.bytes == 0:
        return float("inf")
    return op.flops / op.bytes
