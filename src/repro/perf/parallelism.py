"""Multi-device parallelism cost model (Section 5.6).

Large-scale (70B) runs shard each model across eight devices with tensor
parallelism; every sharded layer ends in an all-reduce over NVLink.
The ring all-reduce moves ``2 (N-1) / N`` times the payload per link.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Interconnect:
    """Per-device link bandwidth of the GPU-to-GPU fabric."""

    name: str
    bandwidth_bytes: float
    latency_s: float = 3e-6


def nvlink3() -> Interconnect:
    """NVLink3 (DGX A100): 600 GB/s per device."""
    return Interconnect("NVLink3", bandwidth_bytes=600e9)


def nvlink4() -> Interconnect:
    """NVLink4 (DGX H100): 900 GB/s per device."""
    return Interconnect("NVLink4", bandwidth_bytes=900e9)


def all_reduce_seconds(
    payload_bytes: float, n_devices: int, link: Interconnect
) -> float:
    """Ring all-reduce latency for one payload."""
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    if n_devices == 1:
        return 0.0
    wire = 2.0 * (n_devices - 1) / n_devices * payload_bytes / link.bandwidth_bytes
    return wire + 2 * (n_devices - 1) * link.latency_s


def communication_seconds(
    comm_bytes: float,
    n_reduces: int,
    n_devices: int,
    link: Interconnect,
) -> float:
    """Total all-reduce time when ``comm_bytes`` is spread over ``n_reduces``.

    Splitting matters because each all-reduce pays the per-hop latency.
    """
    if n_reduces <= 0 or comm_bytes == 0 or n_devices == 1:
        return 0.0
    per_payload = comm_bytes / n_reduces
    return n_reduces * all_reduce_seconds(per_payload, n_devices, link)
