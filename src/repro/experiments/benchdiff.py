"""Perf-regression diffing of two ``BENCH_*.json`` reports.

CI uploads every sweep's raw trial results as a machine-readable report
(``repro ... --json BENCH_x.json``).  This module turns those artifacts
into a regression *gate*: ``repro bench diff OLD.json NEW.json`` matches
trials across the two reports by their full parameter dict, compares
every serving metric whose good direction is known (goodput and
throughput must not drop; TTFT/TPOT/e2e tails and queue-depth
percentiles must not grow), and fails when any change exceeds the
tolerance — so a commit that silently slows the serving path turns the
pipeline red instead of shipping.

Only direction-known metrics participate.  Neutral payload entries
(counts, makespans, mean queue depth) and non-dict trial values are ignored:
a diff should flag *regressions*, not every jitter in bookkeeping.
A direction-known metric present in only *one* report (a payload gained
or lost a field between commits) is surfaced as added/removed in the
summary but never fails the gate — schema evolution is a review concern,
not a perf regression.

Wall-clock metrics (``WALL_METRICS``) compare real elapsed time rather
than simulated outcomes, so they carry their own — much looser —
tolerance: CI runners are noisy neighbors, and a 5% band that is right
for deterministic simulation numbers would turn scheduler jitter into
red builds.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.experiments.spec import canonical_json

#: metric name -> True when larger is better, False when smaller is better
METRIC_DIRECTIONS: dict[str, bool] = {
    # serving quality (the gate's reason to exist)
    "goodput_rps": True,
    "slo_attainment": True,
    "throughput_tokens_per_s": True,
    "completed_per_s": True,
    "ttft_p50_s": False,
    "ttft_p95_s": False,
    "ttft_p99_s": False,
    "tpot_p50_s": False,
    "tpot_p99_s": False,
    "e2e_p50_s": False,
    "e2e_p99_s": False,
    "queue_depth_p50": False,
    "queue_depth_p99": False,
    # prefix-cache reuse: hit rate must not shrink (a later PR that
    # quietly breaks reuse turns the gate red, not just a dashboard)
    "prefix_cache_hit_rate": True,
    # cross-replica reuse: same contract for the shared tier's share
    "remote_prefix_hit_rate": True,
    # disaggregation: both sides of a split fleet must stay busy, and
    # the KV moved over the wire per run must not silently grow
    "prefill_utilization": True,
    "decode_utilization": True,
    "handoff_bytes": False,
    # batch-level throughput trials
    "tokens_per_second": True,
    "generation_throughput": True,
    # wall-clock benchmarks (real time, not simulated time)
    "wall_s": False,
    "requests_per_wall_s": True,
    "sim_iterations_per_wall_s": True,
}

#: metrics measuring real elapsed time — compared under the (looser)
#: wall tolerance because runner noise is part of the measurement
WALL_METRICS = frozenset(
    {"wall_s", "requests_per_wall_s", "sim_iterations_per_wall_s"}
)


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One metric of one matched trial, compared across two reports."""

    label: str  #: compact trial identity (the changed axes)
    metric: str
    old: float
    new: float
    tolerance_pct: float

    @property
    def change_pct(self) -> float:
        """Signed relative change, oriented so positive = *better*."""
        if self.old == 0:
            if self.new == self.old:
                return 0.0
            raw = float("inf") if self.new > self.old else float("-inf")
            return raw if METRIC_DIRECTIONS[self.metric] else -raw
        raw = (self.new - self.old) / abs(self.old) * 100.0
        return raw if METRIC_DIRECTIONS[self.metric] else -raw

    @property
    def regressed(self) -> bool:
        return self.change_pct < -self.tolerance_pct

    def describe(self) -> str:
        arrow = "WORSE" if self.regressed else "ok"
        return (
            f"{self.label} {self.metric}: {self.old:.6g} -> {self.new:.6g} "
            f"({self.change_pct:+.2f}% {arrow})"
        )


@dataclasses.dataclass(frozen=True)
class BenchDiff:
    """The full comparison of two bench reports."""

    name: str
    tolerance_pct: float
    deltas: tuple[MetricDelta, ...]
    unmatched_old: tuple[str, ...]  #: trials only the old report has
    unmatched_new: tuple[str, ...]  #: trials only the new report has
    #: "label metric" strings for direction-known metrics present in only
    #: one report's payload — surfaced, never failed on
    removed_metrics: tuple[str, ...] = ()
    added_metrics: tuple[str, ...] = ()

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"bench diff {self.name!r}: {len(self.deltas)} metric(s) across "
            f"matched trials, tolerance {self.tolerance_pct:g}%"
        ]
        for delta in sorted(self.deltas, key=lambda d: d.change_pct):
            lines.append("  " + delta.describe())
        if self.unmatched_old:
            lines.append(
                f"  only in old report ({len(self.unmatched_old)}): "
                + "; ".join(self.unmatched_old[:4])
            )
        if self.unmatched_new:
            lines.append(
                f"  only in new report ({len(self.unmatched_new)}): "
                + "; ".join(self.unmatched_new[:4])
            )
        if self.removed_metrics:
            lines.append(
                f"  metric(s) removed ({len(self.removed_metrics)}): "
                + "; ".join(self.removed_metrics[:4])
            )
        if self.added_metrics:
            lines.append(
                f"  metric(s) added ({len(self.added_metrics)}): "
                + "; ".join(self.added_metrics[:4])
            )
        verdict = (
            "OK: no regression beyond tolerance"
            if self.ok
            else f"FAIL: {len(self.regressions)} metric(s) regressed"
        )
        lines.append(verdict)
        return "\n".join(lines)


def load_report(path: str | pathlib.Path) -> dict:
    """Read one ``--json`` report written by the CLI."""
    payload = json.loads(pathlib.Path(path).read_text())
    if "results" not in payload:
        raise ValueError(f"{path} is not a repro --json report (no 'results')")
    return payload


def _trial_label(params: dict, shared: dict) -> str:
    """Compact identity: only the parameters that vary between trials."""
    varying = {k: v for k, v in params.items() if shared.get(k, object()) != v}
    inner = ", ".join(f"{k}={v}" for k, v in sorted(varying.items()))
    return f"({inner})" if inner else "(only trial)"


def _index(report: dict) -> tuple[dict[str, dict], dict]:
    """Trials keyed by canonical params, plus the params every trial shares."""
    results = report["results"]
    shared: dict = dict(results[0]["params"]) if results else {}
    for entry in results[1:]:
        params = entry["params"]
        shared = {
            k: v for k, v in shared.items() if params.get(k, object()) == v
        }
    return {
        canonical_json(entry["params"]): entry for entry in results
    }, shared


def diff_reports(
    old: dict,
    new: dict,
    tolerance_pct: float = 5.0,
    wall_tolerance_pct: float = 30.0,
) -> BenchDiff:
    """Compare two bench reports; see module docstring for the rules."""
    if tolerance_pct < 0 or wall_tolerance_pct < 0:
        raise ValueError("tolerance must be non-negative")
    old_index, shared = _index(old)
    new_index, _ = _index(new)

    deltas: list[MetricDelta] = []
    removed: list[str] = []
    added: list[str] = []
    for key, old_entry in old_index.items():
        new_entry = new_index.get(key)
        if new_entry is None:
            continue
        old_value, new_value = old_entry["value"], new_entry["value"]
        if not isinstance(old_value, dict) or not isinstance(new_value, dict):
            continue
        label = _trial_label(old_entry["params"], shared)
        for metric in METRIC_DIRECTIONS:
            in_old, in_new = metric in old_value, metric in new_value
            if in_old and in_new:
                deltas.append(
                    MetricDelta(
                        label=label,
                        metric=metric,
                        old=float(old_value[metric]),
                        new=float(new_value[metric]),
                        tolerance_pct=wall_tolerance_pct
                        if metric in WALL_METRICS
                        else tolerance_pct,
                    )
                )
            elif in_old:
                removed.append(f"{label} {metric}")
            elif in_new:
                added.append(f"{label} {metric}")

    return BenchDiff(
        name=new.get("name", old.get("name", "?")),
        tolerance_pct=tolerance_pct,
        deltas=tuple(deltas),
        removed_metrics=tuple(removed),
        added_metrics=tuple(added),
        unmatched_old=tuple(
            _trial_label(old_index[k]["params"], shared)
            for k in old_index
            if k not in new_index
        ),
        unmatched_new=tuple(
            _trial_label(new_index[k]["params"], shared)
            for k in new_index
            if k not in old_index
        ),
    )


def diff_report_files(
    old_path: str | pathlib.Path,
    new_path: str | pathlib.Path,
    tolerance_pct: float = 5.0,
    wall_tolerance_pct: float = 30.0,
) -> BenchDiff:
    """File-level entry point used by ``repro bench diff``."""
    return diff_reports(
        load_report(old_path),
        load_report(new_path),
        tolerance_pct,
        wall_tolerance_pct,
    )
