"""Parallel, cached experiment engine.

The substrate under every figure sweep: declare a cartesian grid
(:class:`ExperimentSpec`), run it with process fan-out and an on-disk JSON
result cache (:class:`Runner`), and get deterministic, order-stable results
(:class:`RunReport`) whether the grid ran serially, in parallel, or straight
from cache.  The paper's figure grids live in
:mod:`repro.experiments.catalog`; the ``repro`` CLI drives them from
:mod:`repro.experiments.cli`.
"""

from repro.experiments.cache import CachedResult, ResultCache, default_cache_dir
from repro.experiments.registry import (
    get_sweep,
    get_trial,
    sweep,
    sweep_names,
    trial,
    trial_names,
)
from repro.experiments.runner import Runner, RunReport, TrialResult
from repro.experiments.spec import ExperimentSpec, Trial, canonical_json, stable_hash
from repro.experiments.tabulate import format_table

__all__ = [
    "CachedResult",
    "ResultCache",
    "default_cache_dir",
    "get_sweep",
    "get_trial",
    "sweep",
    "sweep_names",
    "trial",
    "trial_names",
    "Runner",
    "RunReport",
    "TrialResult",
    "ExperimentSpec",
    "Trial",
    "canonical_json",
    "stable_hash",
    "format_table",
]
