"""Figure definitions for the CLI: sweep + assemble + render per figure.

A :class:`Figure` binds one catalog sweep to the reshaping and rendering
that turn its raw trial results into the table the paper prints.  The
benchmark tests use the same ``spec``/``assemble`` pair, so ``repro figure
fig12`` and ``pytest benchmarks/test_fig12_throughput.py`` are two views of
the identical computation (and share the identical cache entries).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.experiments import catalog
from repro.experiments.runner import RunReport
from repro.experiments.spec import ExperimentSpec
from repro.serving import experiments as serving_experiments


@dataclasses.dataclass(frozen=True)
class Figure:
    """One reproducible figure/table of the paper."""

    name: str
    title: str
    spec: Callable[[bool], ExperimentSpec]
    assemble: Callable[[RunReport], object]
    render: Callable[[object], tuple[list[str], list[list]]]

    def table(self, report: RunReport) -> tuple[str, list[str], list[list]]:
        """Assemble a report and return ``(title, header, rows)``."""
        header, rows = self.render(self.assemble(report))
        return self.title, header, rows


def _render_fig12(data: dict) -> tuple[list[str], list[list]]:
    header = ["scale", "model", "batch", *catalog.FIG12_SYSTEMS]
    rows = []
    for (scale, model, batch), by_system in data.items():
        values = [by_system[system] for system in catalog.FIG12_SYSTEMS]
        rows.append([scale, model, batch, *values])
    return header, rows


def _render_fig06(assembled: tuple[dict, float]) -> tuple[list[str], list[list]]:
    points, base_ppl = assembled
    header = ["format", "area overhead %", "perplexity", "vs fp64"]
    rows = [
        [fmt, area, ppl, f"{100 * (ppl / base_ppl - 1):+.1f}%"]
        for fmt, (area, ppl) in points.items()
    ]
    return header, rows


def _render_table3(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "design",
        "compute mm2",
        "buffer mm2",
        "total mm2",
        "overhead %",
        "power mW",
    ]
    rows = []
    for design, d in data.items():
        rows.append(
            [
                design,
                d["compute_mm2"],
                d["buffer_mm2"],
                d["total_mm2"],
                d["overhead_pct"],
                d["power_mw"],
            ]
        )
    return header, rows


FIGURES: dict[str, Figure] = {
    "fig12": Figure(
        name="fig12",
        title="Fig. 12: normalized generation throughput (vs. GPU baseline)",
        spec=catalog.fig12_spec,
        assemble=catalog.fig12_assemble,
        render=_render_fig12,
    ),
    "fig06": Figure(
        name="fig06",
        title="Fig. 6: area vs perplexity (Mamba-2)",
        spec=catalog.fig06_spec,
        assemble=catalog.fig06_assemble,
        render=_render_fig06,
    ),
    "table3": Figure(
        name="table3",
        title="Table 3: unit area and power",
        spec=catalog.table3_spec,
        assemble=catalog.table3_assemble,
        render=_render_table3,
    ),
    "latency_throughput": Figure(
        name="latency_throughput",
        title="Latency-throughput: SLO metrics under rising load (per system)",
        spec=serving_experiments.serving_spec,
        assemble=serving_experiments.serving_assemble,
        render=serving_experiments.serving_render,
    ),
    "scaling": Figure(
        name="scaling",
        title="Cluster scaling: goodput and TTFT p99 vs replicas (per router)",
        spec=serving_experiments.scaling_spec,
        assemble=serving_experiments.scaling_assemble,
        render=serving_experiments.scaling_render,
    ),
    "preemption_tradeoff": Figure(
        name="preemption_tradeoff",
        title=(
            "Paged KV: goodput gained by block-granular reservation vs "
            "latency lost to preemption thrashing (per policy and load)"
        ),
        spec=serving_experiments.preemption_tradeoff_spec,
        assemble=serving_experiments.preemption_tradeoff_assemble,
        render=serving_experiments.preemption_tradeoff_render,
    ),
    "prefix_reuse": Figure(
        name="prefix_reuse",
        title=(
            "Prefix reuse: goodput and TTFT of the radix cache vs "
            "paged-without-reuse over multi-turn chat (per session rate)"
        ),
        spec=serving_experiments.prefix_cache_spec,
        assemble=serving_experiments.prefix_reuse_assemble,
        render=serving_experiments.prefix_reuse_render,
    ),
    "disaggregation": Figure(
        name="disaggregation",
        title=(
            "Prefill/decode disaggregation: split vs colocated fleets "
            "under rising prefill-heavy load (per fleet)"
        ),
        spec=serving_experiments.disaggregation_spec,
        assemble=serving_experiments.disaggregation_assemble,
        render=serving_experiments.disaggregation_render,
    ),
    "cross_replica_prefix": Figure(
        name="cross_replica_prefix",
        title=(
            "Cross-replica prefix reuse: router face-off over the shared "
            "KV tier on multi-turn chat (per replica count)"
        ),
        spec=serving_experiments.cross_replica_prefix_spec,
        assemble=serving_experiments.cross_replica_prefix_assemble,
        render=serving_experiments.cross_replica_prefix_render,
    ),
    "utilization_timeline": Figure(
        name="utilization_timeline",
        title=(
            "Utilization timeline: per-window TTFT/occupancy/queue depth "
            "of the paged-vs-memory face-off at the knee"
        ),
        spec=serving_experiments.utilization_timeline_spec,
        assemble=serving_experiments.utilization_timeline_assemble,
        render=serving_experiments.utilization_timeline_render,
    ),
    "ttft_tradeoff": Figure(
        name="ttft_tradeoff",
        title=(
            "Prefill shaping: TTFT p99 vs TPOT p99 over the chunk-budget "
            "grid (per system and scheduler)"
        ),
        spec=serving_experiments.ttft_tradeoff_spec,
        assemble=serving_experiments.ttft_tradeoff_assemble,
        render=serving_experiments.ttft_tradeoff_render,
    ),
}
