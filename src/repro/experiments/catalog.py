"""Built-in trial functions and sweeps for the paper's figures.

Every trial here is a pure function of JSON-scalar parameters returning a
JSON-serializable value, so the :class:`~repro.experiments.runner.Runner`
can cache it on disk and ship it to worker processes by name.  The sweep
builders declare the exact grids the figure scripts used to hand-roll;
``assemble`` helpers reshape a :class:`~repro.experiments.runner.RunReport`
into each figure's traditional data structure so the benchmark asserts stay
byte-for-byte compatible with the pre-engine path.
"""

from __future__ import annotations

import numpy as np

from repro.accuracy.perplexity import evaluate_perplexity
from repro.accuracy.synthetic_lm import SyntheticLm
from repro.core import (
    PimbaAccelerator,
    PimbaConfig,
    PimDesign,
    hbm_pim_config,
    per_bank_pipelined_config,
    pimba_config,
)
from repro.experiments.registry import sweep, trial
from repro.experiments.runner import RunReport
from repro.experiments.spec import ExperimentSpec
from repro.hw import (
    area_overhead_percent,
    format_overhead_percent,
    unit_area,
    unit_power,
)
from repro.models import MODEL_NAMES, Family, mamba2_2p7b, spec_for
from repro.perf import SystemKind, build_system
from repro.quant import FIG4_FORMATS
from repro.serving import experiments as _serving  # noqa: F401  (registers)
from repro.workloads import ServingSimulator, uniform_batch

#: the four systems compared in Figs. 12/13 (NeuPIMs joins in Fig. 15)
FIG12_SYSTEMS = ("GPU", "GPU+Q", "GPU+PIM", "Pimba")

#: design-ablation variants: key -> (display label, config factory)
ABLATION_VARIANTS = {
    "pimba": (
        "pimba (mx8SR, shared, overlap)",
        lambda: pimba_config(),
    ),
    "fp16-state": (
        "- MX8 (fp16 state)",
        lambda: pimba_config(state_format="fp16"),
    ),
    "per-bank": (
        "- sharing (per-bank units)",
        lambda: per_bank_pipelined_config(state_format="mx8SR"),
    ),
    "hbm-pim": (
        "- overlap & pipeline (HBM-PIM)",
        lambda: hbm_pim_config(),
    ),
}

#: PIM design-space organizations: key -> PimbaConfig overrides
DESIGN_SPACE = {
    "time-mux/bank": dict(design=PimDesign.TIME_MULTIPLEXED, time_mux_sharing=1),
    "time-mux/2banks": dict(design=PimDesign.TIME_MULTIPLEXED, time_mux_sharing=2),
    "pipelined/bank": dict(design=PimDesign.PER_BANK_PIPELINED),
    "pimba shared SPU": dict(design=PimDesign.SHARED_PIPELINED),
}

#: unit designs priced in Table 3
TABLE3_DESIGNS = {
    "Pimba": pimba_config,
    "HBM-PIM": hbm_pim_config,
}


# ---------------------------------------------------------------------------
# trial functions
# ---------------------------------------------------------------------------


@trial("serving_throughput")
def serving_throughput(
    system: str,
    model: str,
    batch: int,
    scale: str = "small",
    input_len: int = 2048,
    output_len: int = 2048,
) -> dict:
    """One Fig. 12 point: serve ``model`` on ``system`` at one batch size.

    Prices the generation phase at the mid-generation context length (the
    Fig. 12 metric) and reports the full step breakdown alongside.
    """
    spec = spec_for(model, scale)
    serving = build_system(SystemKind(system), scale)
    metrics = serving.generation_metrics(spec, batch, input_len, output_len)
    return {
        "tokens_per_second": metrics.tokens_per_second,
        "decode_seconds": metrics.decode_seconds,
        "prefill_seconds": metrics.prefill_seconds,
        "step_total": metrics.step.total,
        "step_by_kind": {k.value: v for k, v in metrics.step.seconds_by_kind.items()},
        "placements": {k.value: v for k, v in metrics.step.placements.items()},
        "memory_bytes": metrics.memory_bytes_per_device,
    }


@trial("served_throughput")
def served_throughput(
    system: str,
    model: str,
    batch: int,
    scale: str = "small",
    input_len: int = 2048,
    output_len: int = 2048,
) -> dict:
    """Step-accurate serving-loop throughput (no midpoint approximation)."""
    spec = spec_for(model, scale)
    simulator = ServingSimulator(build_system(SystemKind(system), scale), spec)
    result = simulator.run(uniform_batch(batch, input_len, output_len))
    return {
        "generation_throughput": result.generation_throughput,
        "prefill_seconds": result.prefill_seconds,
        "decode_seconds": result.decode_seconds,
    }


@trial("quant_ppl")
def quant_ppl(
    family: str,
    fmt: str,
    batch: int = 2,
    seq_len: int = 320,
    seed: int = 1,
    data_seed: int = 0,
) -> float:
    """Perplexity of one family under one state/KV storage format.

    ``fmt="fp64"`` evaluates the exact teacher.  Numbers are identical to
    :func:`repro.accuracy.quantization_sweep` for the same seeds — this is
    that sweep, split into cacheable per-format trials.
    """
    lm = SyntheticLm(Family(family), seed=seed)
    tokens = lm.sample_stream(batch, seq_len, np.random.default_rng(data_seed))
    model = lm.teacher if fmt == "fp64" else lm.build_student(fmt)
    return evaluate_perplexity(model, tokens, lm.temperature)


@trial("unit_area_power")
def unit_area_power(design: str) -> dict:
    """Table 3 row: area and power of one PIM processing-unit design."""
    cfg = TABLE3_DESIGNS[design]()
    ua = unit_area(cfg)
    return {
        "compute_mm2": ua.compute_mm2,
        "buffer_mm2": ua.buffer_mm2,
        "total_mm2": ua.total_mm2,
        "overhead_pct": area_overhead_percent(cfg),
        "power_mw": unit_power(cfg).milliwatts,
    }


@trial("design_ablation")
def design_ablation(variant: str, batch: int = 128) -> dict:
    """Ablation point: one design variant on the Mamba-2 2.7B state sweep."""
    spec = mamba2_2p7b()
    heads = batch * spec.n_heads
    cfg = ABLATION_VARIANTS[variant][1]()
    pim = PimbaAccelerator(cfg)
    timing = pim.state_update_timing(heads, spec.dim_head, spec.dim_state)
    io = timing.sweep.exposed_io_cycles / max(1, timing.sweep.bus_cycles) * 100
    return {
        "latency_us": timing.seconds * 1e6,
        "area_pct": area_overhead_percent(cfg),
        "exposed_io_pct": io,
    }


@trial("design_space_point")
def design_space_point(design: str, fmt: str, batch: int = 128) -> dict:
    """Design-space point: organization x storage format (Figs. 5/6 landscape)."""
    spec = mamba2_2p7b()
    heads = batch * spec.n_heads
    cfg = PimbaConfig(state_format=fmt, **DESIGN_SPACE[design])
    pim = PimbaAccelerator(cfg)
    timing = pim.state_update_timing(heads, spec.dim_head, spec.dim_state)
    rate = timing.sweep.rows * cfg.hbm.organization.columns_per_row / timing.seconds
    return {
        "subchunks_per_s": rate,
        "area_pct": area_overhead_percent(cfg),
        "unit_mw": unit_power(cfg).milliwatts,
    }


# ---------------------------------------------------------------------------
# sweeps + assemblers
# ---------------------------------------------------------------------------


@sweep("fig12")
def fig12_spec(smoke: bool = False) -> ExperimentSpec:
    """Fig. 12: normalized generation throughput across systems and scales."""
    return ExperimentSpec(
        name="fig12",
        trial_fn="serving_throughput",
        axes={
            "scale": ("small",) if smoke else ("small", "large"),
            "model": ("Mamba-2", "OPT") if smoke else MODEL_NAMES,
            "batch": (32,) if smoke else (32, 64, 128),
            "system": FIG12_SYSTEMS,
        },
    )


def fig12_assemble(report: RunReport) -> dict:
    """Reshape to ``{(scale, model, batch): {system: normalized tput}}``."""
    raw = report.mapping("scale", "model", "batch", "system")
    out: dict = {}
    for (scale, model, batch, system), value in raw.items():
        out.setdefault((scale, model, batch), {})[system] = value["tokens_per_second"]
    for point, by_system in out.items():
        base = by_system["GPU"]
        out[point] = {system: tput / base for system, tput in by_system.items()}
    return out


@sweep("fig06")
def fig06_spec(smoke: bool = False) -> ExperimentSpec:
    """Fig. 6: accuracy-area tradeoff of storage formats on Mamba-2."""
    formats = ("fp64", "fp16", "mx8", "mx8SR") if smoke else ("fp64",) + FIG4_FORMATS
    return ExperimentSpec(
        name="fig06",
        trial_fn="quant_ppl",
        axes={"fmt": formats},
        fixed={"family": Family.MAMBA2.value, "batch": 2, "seq_len": 320},
    )


def fig06_assemble(report: RunReport) -> tuple[dict, float]:
    """Reshape to ``({fmt: (area overhead %, ppl)}, fp64 reference ppl)``."""
    ppl = report.mapping("fmt")
    points = {
        fmt: (format_overhead_percent(fmt), value)
        for fmt, value in ppl.items()
        if fmt != "fp64"
    }
    return points, ppl["fp64"]


@sweep("table3")
def table3_spec(smoke: bool = False) -> ExperimentSpec:
    """Table 3: unit area and power of Pimba vs. HBM-PIM."""
    del smoke  # two cheap trials; nothing to trim
    return ExperimentSpec(
        name="table3",
        trial_fn="unit_area_power",
        axes={"design": tuple(TABLE3_DESIGNS)},
    )


def table3_assemble(report: RunReport) -> dict:
    """Reshape to ``{design: {metric: value}}`` in Table 3 row order."""
    return report.mapping("design")


@sweep("ablation")
def ablation_spec(smoke: bool = False) -> ExperimentSpec:
    """Design-choice ablation on the Mamba-2 2.7B state-update sweep."""
    variants = tuple(ABLATION_VARIANTS)
    return ExperimentSpec(
        name="ablation",
        trial_fn="design_ablation",
        axes={"variant": variants[:2] if smoke else variants},
        fixed={"batch": 128},
    )


def ablation_assemble(report: RunReport) -> list[list]:
    """Rows ``[label, latency us, area %, exposed I/O %]`` in variant order."""
    return [
        [
            ABLATION_VARIANTS[variant][0],
            value["latency_us"],
            value["area_pct"],
            value["exposed_io_pct"],
        ]
        for variant, value in report.mapping("variant").items()
    ]


@sweep("design-space")
def design_space_spec(smoke: bool = False) -> ExperimentSpec:
    """PIM organization x storage format landscape (examples/pim_design_space)."""
    designs = tuple(DESIGN_SPACE)
    return ExperimentSpec(
        name="design-space",
        trial_fn="design_space_point",
        axes={
            "design": designs[-1:] if smoke else designs,
            "fmt": ("fp16", "int8", "mx8SR"),
        },
        fixed={"batch": 128},
    )


@sweep("quant")
def quant_spec(smoke: bool = False, family: str = Family.GLA.value) -> ExperimentSpec:
    """Fig. 4-style format sweep for one model family."""
    formats = ("fp64", "mx8SR") if smoke else ("fp64",) + FIG4_FORMATS
    return ExperimentSpec(
        name=f"quant-{family}",
        trial_fn="quant_ppl",
        axes={"fmt": formats},
        fixed={"family": family, "batch": 2, "seq_len": 320},
    )
