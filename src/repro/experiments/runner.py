"""Parallel, cached execution of experiment sweeps.

The :class:`Runner` expands an :class:`~repro.experiments.spec.ExperimentSpec`
into trials, satisfies as many as possible from the on-disk JSON cache, and
fans the remainder out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(or runs them inline when only one worker is available).  Results are always
reported in the spec's deterministic grid order, regardless of which worker
finished first — a parallel run and a serial run of the same sweep return
identical reports.

Trials cross the process boundary as ``(trial_fn_name, params)`` pairs and
are resolved through :mod:`repro.experiments.registry` inside the worker, so
nothing is pickled beyond plain JSON-compatible data.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import pathlib
import time
from collections.abc import Callable, Mapping

from repro.experiments.cache import ResultCache
from repro.experiments.registry import get_trial, trial_origin
from repro.experiments.spec import ExperimentSpec, Trial


@dataclasses.dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial: its value plus execution provenance."""

    trial: Trial
    value: object
    cached: bool
    elapsed: float


@dataclasses.dataclass(frozen=True)
class RunReport:
    """All trial results of one sweep, in grid order."""

    spec: ExperimentSpec
    results: tuple[TrialResult, ...]
    wall_seconds: float

    def __len__(self) -> int:
        return len(self.results)

    @property
    def values(self) -> list:
        return [r.value for r in self.results]

    @property
    def n_cached(self) -> int:
        return sum(r.cached for r in self.results)

    @property
    def n_executed(self) -> int:
        return len(self.results) - self.n_cached

    def mapping(self, *axes: str) -> dict:
        """Results keyed by parameter values.

        With one axis the keys are scalars; with several they are tuples in
        the given order.
        """
        if not axes:
            axes = self.spec.axis_names
        out = {}
        for r in self.results:
            key = tuple(r.trial.params[a] for a in axes)
            out[key[0] if len(axes) == 1 else key] = r.value
        return out

    def summary(self) -> str:
        return (
            f"{self.spec.name}: {len(self)} trials "
            f"({self.n_cached} cached, {self.n_executed} executed) "
            f"in {self.wall_seconds:.2f}s"
        )


#: below this many pending trials, process-pool startup costs more than it
#: saves — run inline instead
MIN_POOL_TRIALS = 4


def _execute(
    trial_fn: str,
    params: Mapping[str, object],
    module: str | None = None,
) -> tuple[object, float]:
    """Worker entry point: resolve the trial function by name and run it."""
    fn = get_trial(trial_fn, module=module)
    start = time.perf_counter()
    value = fn(**params)
    return value, time.perf_counter() - start


class Runner:
    """Runs sweeps with an on-disk result cache and process-level fan-out.

    Args:
        cache_dir: cache root (default: ``$REPRO_CACHE_DIR`` or
            ``~/.cache/repro``).
        max_workers: process fan-out; ``None`` means one worker per CPU,
            values ``<= 1`` force in-process serial execution.
        use_cache: disable to always recompute (results are not stored
            either).
    """

    def __init__(
        self,
        cache_dir: pathlib.Path | str | None = None,
        max_workers: int | None = None,
        use_cache: bool = True,
    ):
        self.cache = ResultCache(cache_dir) if use_cache else None
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = max_workers

    def run(
        self,
        spec: ExperimentSpec,
        progress: Callable[[TrialResult], None] | None = None,
    ) -> RunReport:
        """Execute every trial of ``spec`` and return results in grid order."""
        start = time.perf_counter()
        trials = list(spec.trials())
        results: list[TrialResult | None] = [None] * len(trials)

        pending: list[int] = []
        for i, trial in enumerate(trials):
            hit = self.cache.load(trial) if self.cache else None
            if hit is not None:
                results[i] = TrialResult(trial, hit.value, True, hit.elapsed)
                if progress is not None:
                    progress(results[i])
            else:
                pending.append(i)

        if pending and (self.max_workers <= 1 or len(pending) < MIN_POOL_TRIALS):
            for i in pending:
                value, elapsed = _execute(trials[i].trial_fn, trials[i].params)
                results[i] = self._finish(trials[i], value, elapsed, progress)
        elif pending:
            workers = min(self.max_workers, len(pending))
            # The origin module lets spawn-started workers re-register
            # trials defined outside the built-in catalog.
            origin = trial_origin(spec.trial_fn)
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(
                        _execute, trials[i].trial_fn, trials[i].params, origin
                    ): i
                    for i in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    i = futures[future]
                    value, elapsed = future.result()
                    results[i] = self._finish(trials[i], value, elapsed, progress)

        done = [r for r in results if r is not None]
        assert len(done) == len(trials)
        return RunReport(
            spec=spec,
            results=tuple(done),
            wall_seconds=time.perf_counter() - start,
        )

    def _finish(
        self,
        trial: Trial,
        value: object,
        elapsed: float,
        progress: Callable[[TrialResult], None] | None,
    ) -> TrialResult:
        if self.cache is not None:
            self.cache.store(trial, value, elapsed)
            # Re-read through the cache so every consumer — first run or
            # warm rerun — sees the identical JSON-round-tripped value.
            hit = self.cache.load(trial)
            if hit is not None:
                value = hit.value
        result = TrialResult(trial, value, False, elapsed)
        if progress is not None:
            progress(result)
        return result
