"""On-disk JSON result cache for experiment trials.

Each trial's result lives in one small JSON file under
``<root>/<trial_fn>/<key>.json``, where ``key`` is the stable hash of the
trial's full configuration (see :class:`~repro.experiments.spec.Trial`).
Entries additionally record a *code fingerprint* — a content hash of every
``.py`` file in the installed ``repro`` package — so editing the model or
simulator source silently invalidates stale results instead of serving
them.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import pathlib
import tempfile

import repro
from repro.experiments.spec import Trial, canonical_json

#: bump when the entry layout below changes shape
CACHE_FORMAT = 1

#: environment variable overriding the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content hash of every Python source file in the ``repro`` package."""
    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:20]


@dataclasses.dataclass(frozen=True)
class CachedResult:
    """A deserialized cache hit."""

    value: object
    elapsed: float


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Aggregate view of one cache root (``repro cache info``)."""

    root: pathlib.Path
    n_entries: int
    total_bytes: int
    by_trial_fn: dict[str, int]


class ResultCache:
    """Filesystem-backed trial result store."""

    def __init__(
        self,
        root: pathlib.Path | str | None = None,
        fingerprint: str | None = None,
    ):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint if fingerprint else code_fingerprint()

    def path_for(self, trial: Trial) -> pathlib.Path:
        return self.root / trial.trial_fn / f"{trial.key}.json"

    def load(self, trial: Trial) -> CachedResult | None:
        """Return the cached result for ``trial``, or ``None`` on a miss.

        A corrupt, stale (different code fingerprint), or mismatched entry
        counts as a miss.
        """
        path = self.path_for(trial)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            entry.get("format") != CACHE_FORMAT
            or entry.get("fingerprint") != self.fingerprint
            or entry.get("trial_fn") != trial.trial_fn
            or entry.get("params") != json.loads(canonical_json(dict(trial.params)))
        ):
            return None
        return CachedResult(value=entry["value"], elapsed=entry.get("elapsed", 0.0))

    def entries(self) -> list[pathlib.Path]:
        """Every recognized result file under the root (any fingerprint).

        A file only counts as an entry if it carries the cache's own
        layout markers, so foreign JSON inside a mistyped ``--cache-dir``
        is never reported — or deleted — as a cached result.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            p
            for p in self.root.glob("*/*.json")
            if p.is_file() and self._is_entry(p)
        )

    @staticmethod
    def _is_entry(path: pathlib.Path) -> bool:
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        return (
            isinstance(entry, dict)
            and "format" in entry
            and entry.get("trial_fn") == path.parent.name
        )

    def stats(self) -> CacheStats:
        """Entry counts and sizes, grouped by trial function."""
        by_fn: dict[str, int] = {}
        total = 0
        entries = self.entries()
        for path in entries:
            by_fn[path.parent.name] = by_fn.get(path.parent.name, 0) + 1
            total += path.stat().st_size
        return CacheStats(
            root=self.root,
            n_entries=len(entries),
            total_bytes=total,
            by_trial_fn=by_fn,
        )

    def clear(self) -> int:
        """Delete every cached result; returns the number removed.

        Only recognized entry files (see :meth:`entries`) and then-empty
        trial directories are touched, so a mistyped ``--cache-dir``
        cannot delete foreign data.
        """
        entries = self.entries()
        for path in entries:
            path.unlink()
        for parent in {path.parent for path in entries}:
            if not any(parent.iterdir()):
                parent.rmdir()
        return len(entries)

    def store(self, trial: Trial, value: object, elapsed: float) -> pathlib.Path:
        """Atomically persist one trial result; returns the entry's path."""
        path = self.path_for(trial)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "fingerprint": self.fingerprint,
            "trial_fn": trial.trial_fn,
            "params": dict(trial.params),
            "value": value,
            "elapsed": elapsed,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
