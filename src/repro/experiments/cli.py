"""The ``repro`` command line: run sweeps and regenerate paper figures.

Usage::

    repro list                      # what can I run?
    repro figure fig12 [--smoke]    # regenerate a figure's table
    repro sweep fig12 --set batch=32,64
    repro sweep serving --set system=GPU,Pimba --json results.json
    repro sweep chunking --set chunk_budget=128,512   # prefill shaping
    repro figure ttft_tradeoff              # chunk budget vs TTFT/TPOT
    repro bench diff OLD.json NEW.json --tolerance 5   # CI perf gate
    repro trace export --trial serving_slo --out trace.json  # Perfetto
    repro cache info                # where is the cache, how big is it?
    repro cache clear
    python -m repro ...             # same thing without the console script

Every run goes through the parallel cached engine: a second invocation of
the same figure is served from ``~/.cache/repro`` (or ``$REPRO_CACHE_DIR``)
without re-running trials.  ``--json PATH`` additionally writes the raw
trial results as a machine-readable report (what CI uploads as the perf
artifact).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from collections.abc import Sequence

from repro.experiments import registry
from repro.experiments.benchdiff import diff_report_files
from repro.experiments.cache import ResultCache
from repro.experiments.figures import FIGURES
from repro.experiments.runner import Runner, RunReport, TrialResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.tabulate import format_table


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a tiny subset of the grid (CI smoke mode)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: one per CPU)",
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="run trials in-process, one at a time",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every trial and do not touch the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print each trial as it completes",
    )
    parser.add_argument(
        "--json",
        default=None,
        dest="json_path",
        metavar="PATH",
        help="also write the trial results as a JSON report",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel, cached experiment engine for the Pimba reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list figures, sweeps and trial functions")

    figure = commands.add_parser("figure", help="regenerate one paper figure/table")
    figure.add_argument("figure_name", choices=sorted(FIGURES))
    _add_run_options(figure)

    sweep = commands.add_parser("sweep", help="run a registered sweep by name")
    sweep.add_argument("sweep_name", choices=registry.sweep_names())
    sweep.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="AXIS=V1[,V2]",
        help="narrow an axis to the given comma-separated values",
    )
    _add_run_options(sweep)

    bench = commands.add_parser(
        "bench", help="work with BENCH_*.json perf reports"
    )
    bench_actions = bench.add_subparsers(dest="bench_action", required=True)
    diff = bench_actions.add_parser(
        "diff",
        help="compare two --json reports and fail on perf regressions",
    )
    diff.add_argument("old_report", metavar="OLD.json")
    diff.add_argument("new_report", metavar="NEW.json")
    diff.add_argument(
        "--tolerance",
        type=float,
        default=5.0,
        metavar="PCT",
        help="allowed regression per metric in percent (default: 5)",
    )
    diff.add_argument(
        "--wall-tolerance",
        type=float,
        default=30.0,
        metavar="PCT",
        help="allowed regression for wall-clock metrics, which carry "
        "runner noise (default: 30)",
    )

    trace = commands.add_parser(
        "trace", help="export flight-recorder timelines from a serving trial"
    )
    trace_actions = trace.add_subparsers(dest="trace_action", required=True)
    export = trace_actions.add_parser(
        "export",
        help="run one trial with the collector attached and write a "
        "Perfetto/chrome-tracing JSON file",
    )
    export.add_argument(
        "--trial",
        default="serving_slo",
        choices=("serving_slo", "cluster_slo"),
        help="trial function to instrument (default: serving_slo)",
    )
    export.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="PARAM=VALUE",
        help="override one trial parameter (repeatable)",
    )
    export.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="output path for the trace-event JSON",
    )

    cache = commands.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )

    return parser


def parse_axis_override(text: str) -> tuple[str, tuple]:
    """Parse ``axis=v1,v2`` into an axis name and a tuple of typed values."""
    axis, sep, raw = text.partition("=")
    if not sep or not axis or not raw:
        raise ValueError(f"expected AXIS=V1[,V2,...], got {text!r}")
    values = []
    for item in raw.split(","):
        try:
            values.append(json.loads(item))
        except ValueError:
            values.append(item)
    return axis, tuple(values)


def _print_progress(result: TrialResult) -> None:
    origin = "cache" if result.cached else f"{result.elapsed:.2f}s"
    print(f"  [{origin}] {result.trial.label()}")


def _runner_for(args: argparse.Namespace) -> Runner:
    max_workers = 1 if args.serial else args.jobs
    return Runner(
        cache_dir=args.cache_dir,
        max_workers=max_workers,
        use_cache=not args.no_cache,
    )


def _run(args: argparse.Namespace, spec: ExperimentSpec) -> RunReport:
    progress = _print_progress if args.verbose else None
    report = _runner_for(args).run(spec, progress=progress)
    if args.json_path:
        write_json_report(report, args.json_path)
    return report


def report_payload(report: RunReport) -> dict:
    """A ``RunReport`` as plain JSON data (params, values, provenance)."""
    return {
        "name": report.spec.name,
        "trial_fn": report.spec.trial_fn,
        "axes": {k: list(v) for k, v in report.spec.axes.items()},
        "fixed": dict(report.spec.fixed),
        "wall_seconds": report.wall_seconds,
        "n_cached": report.n_cached,
        "n_executed": report.n_executed,
        "results": [
            {
                "params": dict(r.trial.params),
                "value": r.value,
                "cached": r.cached,
                "elapsed": r.elapsed,
            }
            for r in report.results
        ],
    }


def write_json_report(report: RunReport, path: str) -> None:
    pathlib.Path(path).write_text(json.dumps(report_payload(report), indent=1))
    print(f"wrote {len(report)} trial results to {path}")


def format_number(value: object) -> object:
    """Round floats for the compact JSON result column."""
    if isinstance(value, float):
        return round(value, 6)
    return value


def _cmd_list() -> int:
    print("figures:")
    for name in sorted(FIGURES):
        print(f"  {name:14s} {FIGURES[name].title}")
    print("sweeps:")
    for name in registry.sweep_names():
        doc = (registry.get_sweep(name).__doc__ or "").strip().splitlines()
        print(f"  {name:14s} {doc[0] if doc else ''}")
    print("trial functions:")
    for name in registry.trial_names():
        print(f"  {name}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    fig = FIGURES[args.figure_name]
    report = _run(args, fig.spec(args.smoke))
    title, header, rows = fig.table(report)
    print(format_table(title, header, rows))
    print(f"\n{report.summary()}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = registry.get_sweep(args.sweep_name)(args.smoke)
    try:
        for text in args.overrides:
            axis, values = parse_axis_override(text)
            spec = spec.with_axes(**{axis: values})
    except (KeyError, ValueError) as err:
        print(f"repro: {err}", file=sys.stderr)
        return 2
    report = _run(args, spec)
    header = [*spec.axis_names, "result"]
    rows = []
    for result in report.results:
        value = result.value
        if isinstance(value, dict):
            value = json.dumps({k: format_number(v) for k, v in value.items()})
        rows.append([*(result.trial.params[a] for a in spec.axis_names), value])
    print(format_table(f"sweep {spec.name} ({spec.trial_fn})", header, rows))
    print(f"\n{report.summary()}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    try:
        diff = diff_report_files(
            args.old_report,
            args.new_report,
            args.tolerance,
            args.wall_tolerance,
        )
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"repro: {err}", file=sys.stderr)
        return 2
    print(diff.summary())
    return 0 if diff.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.serving.experiments import collect_timeline
    from repro.serving.telemetry import write_trace_file

    params = {}
    try:
        for text in args.overrides:
            name, values = parse_axis_override(text)
            if len(values) != 1:
                raise ValueError(
                    f"trace export takes one value per --set, got {text!r}"
                )
            params[name] = values[0]
        timeline, _slo, payload = collect_timeline(args.trial, **params)
    except (KeyError, ValueError) as err:
        print(f"repro: {err}", file=sys.stderr)
        return 2
    wrapper = write_trace_file(timeline, args.out)
    tracks = timeline.tracks
    n_spans = sum(len(t.spans) for t in tracks)
    print(
        f"wrote {len(wrapper['traceEvents'])} trace events "
        f"({len(tracks)} track(s), {n_spans} spans) to {args.out}"
    )
    print(
        "goodput {goodput_rps:.3f} req/s, ttft p99 {ttft_p99_s:.4f} s".format(
            **payload
        )
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache root: {stats.root}")
    print(f"entries:    {stats.n_entries} ({stats.total_bytes / 1024:.1f} KiB)")
    for trial_fn in sorted(stats.by_trial_fn):
        print(f"  {trial_fn:24s} {stats.by_trial_fn[trial_fn]}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    # Bad *arguments* (unknown axis, malformed --set) exit 2 with a one-line
    # message from _cmd_sweep; errors raised while trials run propagate as
    # tracebacks so real bugs are never masked as usage errors.
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "cache":
        return _cmd_cache(args)
    return _cmd_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
