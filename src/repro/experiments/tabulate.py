"""Plain-text table rendering shared by the CLI and the benchmark harness."""

from __future__ import annotations


def format_cell(cell: object) -> str:
    """Render one cell: floats get magnitude-dependent precision."""
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def format_table(title: str, header: list[str], rows: list[list]) -> str:
    """One reproduction table in aligned columns, ready to print."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(header)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    out = [f"\n=== {title} ===", line, "-" * len(line)]
    for row in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
