"""Registries for trial functions and named sweeps.

Trial functions compute one grid point and return a JSON-serializable
value; sweeps build :class:`~repro.experiments.spec.ExperimentSpec` grids
over them.  Both are addressed by name so that trials can be shipped to
worker processes (and cached on disk) as plain strings, never as pickled
callables.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable

from repro.experiments.spec import ExperimentSpec

#: module whose import registers the built-in paper trials and sweeps
_CATALOG_MODULE = "repro.experiments.catalog"

_TRIALS: dict[str, Callable] = {}
_TRIAL_MODULES: dict[str, str] = {}
_SWEEPS: dict[str, Callable[..., ExperimentSpec]] = {}


def trial(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register ``fn`` as the trial function called ``name``."""

    def register(fn: Callable) -> Callable:
        if name in _TRIALS:
            raise ValueError(f"trial function {name!r} is already registered")
        _TRIALS[name] = fn
        _TRIAL_MODULES[name] = fn.__module__
        return fn

    return register


def sweep(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register a sweep builder ``(smoke: bool) -> ExperimentSpec``."""

    def register(fn: Callable[..., ExperimentSpec]) -> Callable:
        if name in _SWEEPS:
            raise ValueError(f"sweep {name!r} is already registered")
        _SWEEPS[name] = fn
        return fn

    return register


def _ensure_catalog() -> None:
    importlib.import_module(_CATALOG_MODULE)


def get_trial(name: str, module: str | None = None) -> Callable:
    """Look up a trial function, importing its defining module on demand.

    ``module`` is the trial's origin module recorded at registration time;
    worker processes pass it so that custom trials registered outside the
    built-in catalog resolve even under the ``spawn`` start method, where
    the parent's registry is not inherited.
    """
    if name not in _TRIALS and module:
        importlib.import_module(module)
    if name not in _TRIALS:
        _ensure_catalog()
    try:
        return _TRIALS[name]
    except KeyError:
        raise KeyError(
            f"unknown trial function {name!r}; registered: {trial_names()}"
        ) from None


def trial_origin(name: str) -> str:
    """The module that registered ``name`` (resolving the trial if needed)."""
    get_trial(name)
    return _TRIAL_MODULES[name]


def get_sweep(name: str) -> Callable[..., ExperimentSpec]:
    """Look up a sweep builder, importing the built-in catalog on demand."""
    if name not in _SWEEPS:
        _ensure_catalog()
    try:
        return _SWEEPS[name]
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; registered: {sweep_names()}") from None


def trial_names() -> tuple[str, ...]:
    _ensure_catalog()
    return tuple(sorted(_TRIALS))


def sweep_names() -> tuple[str, ...]:
    _ensure_catalog()
    return tuple(sorted(_SWEEPS))
