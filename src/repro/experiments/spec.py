"""Declarative experiment sweeps.

An :class:`ExperimentSpec` names a registered trial function and a
cartesian grid of parameter axes (system kind, model, batch size, context
length, precision, ...).  Expanding the grid yields :class:`Trial` points
in a deterministic order — axis insertion order, row-major — so that a
sweep's results can be keyed, cached, and compared across runs and across
serial/parallel execution.

Every parameter value must be a JSON-serializable scalar/container: the
trial's identity is the canonical JSON of ``(trial_fn, params)``, and its
result is persisted as JSON by the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from collections.abc import Iterator, Mapping


def canonical_json(payload: object) -> str:
    """Serialize a payload to a byte-stable JSON string (sorted keys)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stable_hash(payload: object) -> str:
    """A short, content-stable hex digest of a JSON-serializable payload."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:20]


@dataclasses.dataclass(frozen=True, eq=True)
class Trial:
    """One point of a sweep: a trial function name plus its kwargs."""

    trial_fn: str
    params: Mapping[str, object]

    @property
    def key(self) -> str:
        """Stable cache key of this trial's full configuration."""
        return stable_hash({"trial_fn": self.trial_fn, "params": dict(self.params)})

    def label(self) -> str:
        """Compact human-readable form, e.g. ``serving(system=GPU, batch=32)``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.trial_fn}({inner})"


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A named sweep: a cartesian grid of axes over one trial function.

    Args:
        name: sweep name (used for display and cache grouping).
        trial_fn: registry name of the per-trial function
            (see :mod:`repro.experiments.registry`).
        axes: ordered mapping of axis name -> tuple of values to sweep.
        fixed: constant parameters passed to every trial.
    """

    name: str
    trial_fn: str
    axes: Mapping[str, tuple]
    fixed: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        axes = {k: tuple(v) for k, v in self.axes.items()}
        for axis, values in axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} of sweep {self.name!r} is empty")
        overlap = set(axes) & set(self.fixed)
        if overlap:
            raise ValueError(f"axes and fixed params overlap: {sorted(overlap)}")
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "fixed", dict(self.fixed))
        # Fail fast on parameters the cache could not serialize.
        canonical_json({"axes": axes, "fixed": self.fixed})

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(self.axes)

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def trials(self) -> Iterator[Trial]:
        """Yield the grid's trials in deterministic row-major order."""
        names = self.axis_names
        for point in itertools.product(*(self.axes[a] for a in names)):
            params = dict(self.fixed)
            params.update(zip(names, point))
            yield Trial(trial_fn=self.trial_fn, params=params)

    def with_axes(self, **axes: tuple) -> ExperimentSpec:
        """A copy of this spec with some axes' values replaced.

        Axis positions (and therefore grid order) are kept; only the
        listed axes' value tuples change.  A name that is *not* an axis
        but is a parameter of the trial function is threaded through as
        an override instead (``--set`` on the CLI lands here): one value
        pins it in ``fixed``, several open a new axis after the existing
        ones.  Anything else — a typo, a parameter the trial does not
        take — still raises.
        """
        unknown = set(axes) - set(self.axes)
        overrides = unknown & self._trial_parameters()
        unknown -= overrides
        if unknown:
            raise KeyError(
                f"unknown axes {sorted(unknown)}; sweep {self.name!r} has "
                f"{list(self.axis_names)} and trial {self.trial_fn!r} "
                "takes no such parameter"
            )
        merged = {k: tuple(axes.get(k, v)) for k, v in self.axes.items()}
        fixed = dict(self.fixed)
        for name in sorted(overrides):
            values = tuple(axes[name])
            fixed.pop(name, None)
            if len(values) == 1:
                fixed[name] = values[0]
            else:
                merged[name] = values
        return dataclasses.replace(self, axes=merged, fixed=fixed)

    def _trial_parameters(self) -> set[str]:
        """Parameter names the trial function accepts (empty if unknown)."""
        import inspect

        from repro.experiments import registry  # deferred: import cycle

        try:
            fn = registry.get_trial(self.trial_fn)
        except KeyError:
            return set()
        return set(inspect.signature(fn).parameters)
