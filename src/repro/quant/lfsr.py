"""Linear Feedback Shift Register (LFSR) random source.

The Pimba SPE implements stochastic rounding in hardware with an LFSR plus a
mantissa adder (Section 4.2; the paper cites FAST [60] for the same trick).
This module models a Fibonacci LFSR bit-faithfully so the hardware-level SPE
model (``repro.core.spe``) can reproduce the exact random sequence a given
seed would generate in silicon, and so area/power accounting has a concrete
register width to count.
"""

from __future__ import annotations

import numpy as np

# Maximal-length tap sets (XOR form), indexed by register width.
_TAPS = {
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 30, 26, 25),
}


class Lfsr:
    """A Fibonacci LFSR over GF(2) with a maximal-length polynomial.

    Args:
        width: register width in bits (8, 16, 24 or 32).
        seed: initial register contents; must be non-zero.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1):
        if width not in _TAPS:
            raise ValueError(
                f"unsupported LFSR width {width}; pick from {sorted(_TAPS)}"
            )
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero (all-zero state is absorbing)")
        self.width = width
        self._mask = (1 << width) - 1
        self._taps = _TAPS[width]
        self.state = seed & self._mask
        if self.state == 0:
            raise ValueError("seed reduces to zero state under the register mask")

    def step(self) -> int:
        """Advance one cycle and return the new register value."""
        bit = 0
        for tap in self._taps:
            bit ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | bit) & self._mask
        return self.state

    def next_bits(self, nbits: int) -> int:
        """Return ``nbits`` of pseudo-random output (MSB first)."""
        if not 0 < nbits <= self.width:
            raise ValueError(f"nbits must be in [1, {self.width}]")
        self.step()
        return self.state >> (self.width - nbits)

    def uniform(self) -> float:
        """Return a pseudo-random float in [0, 1) from one register step."""
        self.step()
        return self.state / (1 << self.width)

    def sequence(self, n: int, nbits: int) -> np.ndarray:
        """Return an array of ``n`` successive ``nbits``-wide outputs."""
        return np.array([self.next_bits(nbits) for _ in range(n)], dtype=np.int64)

    def period_lower_bound(self, limit: int = 1 << 20) -> int:
        """Walk the register until the start state recurs (or ``limit``).

        Used by tests to check the polynomial is maximal-length for small
        widths.  Does not mutate ``self``.
        """
        probe = Lfsr(self.width, self.state)
        start = probe.state
        for count in range(1, limit + 1):
            if probe.step() == start:
                return count
        return limit
