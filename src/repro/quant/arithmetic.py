"""Hardware-faithful MX arithmetic — the SPE datapath of Fig. 9.

The MX format was designed for GEMM; Pimba extends it with element-wise
multiply and add units (Section 5.3).  Both units operate at three levels:

1. one shared-exponent unit per group,
2. per-pair microexponent logic,
3. integer sign/mantissa units per element.

:class:`MxMultiplier` implements Fig. 9(a): exponents add; microexponents
add and saturate at 1 (an overflowing pair right-shifts its product
mantissas by one); mantissas multiply as integers and are renormalized back
to 6 bits.

:class:`MxAdder` implements Fig. 9(b): the result exponent is the max of the
two operand exponents; the smaller-exponent group right-shifts its mantissas
by the difference; every element additionally right-shifts by its own
microexponent, so the result always carries microexponent 0 (as the paper
states).  A group-wide mantissa overflow renormalizes by one extra shift.

:class:`DotProductUnit` models the in-pipeline GEMV unit: element products
are accumulated exactly into a wide accumulator register (the partial sums
Pimba ships back to the GPU), so no precision is lost after the operand
quantization itself.
"""

from __future__ import annotations

import numpy as np

from repro.quant.lfsr import Lfsr
from repro.quant.mx import (
    GROUP_SIZE,
    MANTISSA_BITS,
    MANTISSA_MAX,
    PAIR_SIZE,
    MxBlock,
)


def _shift_round(value: np.ndarray, shift: np.ndarray, lfsr: Lfsr | None) -> np.ndarray:
    """Arithmetic right shift with optional LFSR stochastic rounding.

    Without an LFSR the shifted-out bits are truncated toward zero, which is
    what a plain shifter does; with an LFSR, a random value below the shift
    granularity is added to the magnitude first (the FAST-style SR adder).
    """
    value = np.asarray(value, dtype=np.int64)
    shift = np.asarray(shift, dtype=np.int64)
    if np.any(shift < 0):
        raise ValueError("shift amounts must be non-negative")
    sign = np.sign(value)
    mag = np.abs(value)
    if lfsr is not None:
        noise = np.array([lfsr.next_bits(lfsr.width) for _ in range(value.size)])
        noise = noise.reshape(value.shape)
        # Scale the LFSR draw to [0, 2**shift): compare against the bits
        # that will be shifted out.
        granule = np.left_shift(np.int64(1), shift)
        mag = mag + (noise % np.maximum(granule, 1)) * (shift > 0)
    mag = np.right_shift(mag, shift)
    return sign * mag


def _saturate(mant: np.ndarray) -> np.ndarray:
    return np.clip(mant, -MANTISSA_MAX, MANTISSA_MAX)


class MxMultiplier:
    """Element-wise MX multiply unit (Fig. 9a)."""

    def __init__(self, lfsr: Lfsr | None = None):
        self.lfsr = lfsr

    def __call__(self, a: MxBlock, b: MxBlock) -> MxBlock:
        out_exp = a.exp + b.exp
        micro_sum = a.micro + b.micro
        out_micro = np.minimum(micro_sum, 1)
        # Pairs whose microexponent sum exceeded the 1-bit range shift their
        # mantissas right by the excess to stay correctly scaled.
        excess = micro_sum - out_micro

        product = a.mant * b.mant  # |p| <= 63*63 = 3969, 12 bits + sign
        shift = MANTISSA_BITS + np.repeat(excess, PAIR_SIZE)
        mant = _shift_round(product, shift, self.lfsr)
        return MxBlock(exp=out_exp, micro=out_micro, mant=_saturate(mant))


class MxAdder:
    """Element-wise MX add unit (Fig. 9b); result microexponent is 0."""

    def __init__(self, lfsr: Lfsr | None = None):
        self.lfsr = lfsr

    def _align(self, block: MxBlock, target_exp: int) -> np.ndarray:
        shift = (target_exp - block.exp) + block.element_micro
        return _shift_round(block.mant, shift, self.lfsr)

    def __call__(self, a: MxBlock, b: MxBlock) -> MxBlock:
        out_exp = max(a.exp, b.exp)
        total = self._align(a, out_exp) + self._align(b, out_exp)
        # Group-wide renormalization when the integer add overflows 6 bits.
        while np.any(np.abs(total) > MANTISSA_MAX):
            total = _shift_round(total, np.ones_like(total), self.lfsr)
            out_exp += 1
        zeros = np.zeros(GROUP_SIZE // PAIR_SIZE, dtype=np.int64)
        return MxBlock(exp=out_exp, micro=zeros, mant=total)


class DotProductUnit:
    """In-pipeline GEMV unit with a wide (exact) accumulator register."""

    def __init__(self) -> None:
        self.accumulator = 0.0

    def reset(self) -> None:
        self.accumulator = 0.0

    def accumulate(self, a: MxBlock, b: MxBlock) -> float:
        """Accumulate ``dot(decode(a), decode(b))`` and return the new sum.

        Mantissa products are integers and the scale factors are powers of
        two, so float64 accumulation is bit-exact with respect to a
        sufficiently wide fixed-point accumulator.
        """
        scale_a = np.exp2(a.exp - a.element_micro - MANTISSA_BITS)
        scale_b = np.exp2(b.exp - b.element_micro - MANTISSA_BITS)
        self.accumulator += float(np.sum(a.mant * b.mant * scale_a * scale_b))
        return self.accumulator


def multiply_blocks(a: MxBlock, b: MxBlock, lfsr: Lfsr | None = None) -> MxBlock:
    """Convenience wrapper around :class:`MxMultiplier`."""
    return MxMultiplier(lfsr)(a, b)


def add_blocks(a: MxBlock, b: MxBlock, lfsr: Lfsr | None = None) -> MxBlock:
    """Convenience wrapper around :class:`MxAdder`."""
    return MxAdder(lfsr)(a, b)
