"""Quantization substrate: storage formats, rounding, and MX arithmetic.

This package rebuilds everything Section 3.2 / 4.2 / 5.3 of the paper rely
on: the nine low-precision storage formats swept in Fig. 4, the LFSR-based
stochastic rounding hardware, and the bit-faithful MX multiplier/adder
datapath of Fig. 9.
"""

from repro.quant.arithmetic import (
    DotProductUnit,
    MxAdder,
    MxMultiplier,
    add_blocks,
    multiply_blocks,
)
from repro.quant.floatpoint import MiniFloatFormat, e4m3, e5m2
from repro.quant.formats import Float16Format, Float32Format, StorageFormat
from repro.quant.integer import Int8GroupFormat
from repro.quant.lfsr import Lfsr
from repro.quant.mx import GROUP_SIZE, MANTISSA_BITS, Mx8Format, MxBlock
from repro.quant.registry import FIG4_FORMATS, available_formats, get_format
from repro.quant.rounding import RoundingMode

__all__ = [
    "DotProductUnit",
    "MxAdder",
    "MxMultiplier",
    "add_blocks",
    "multiply_blocks",
    "MiniFloatFormat",
    "e4m3",
    "e5m2",
    "Float16Format",
    "Float32Format",
    "StorageFormat",
    "Int8GroupFormat",
    "Lfsr",
    "GROUP_SIZE",
    "MANTISSA_BITS",
    "Mx8Format",
    "MxBlock",
    "FIG4_FORMATS",
    "available_formats",
    "get_format",
    "RoundingMode",
]
