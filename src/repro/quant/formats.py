"""Base interface for storage formats used for states and KV caches.

A format models the *storage* of a tensor in DRAM: ``quantize`` maps a
float32/float64 tensor onto the format's representable lattice and returns
the dequantized values (value semantics).  This is exactly the numerical
effect of Pimba storing the state or KV cache in a low-precision format and
operating on it with wide accumulators: precision is lost at each store, not
inside the arithmetic.

Formats quantize along the *last* axis of the input, which corresponds to
the contiguous DRAM layout direction used by the Pimba data layout
(``repro.core.layout``).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.quant.rounding import RoundingMode


class StorageFormat(abc.ABC):
    """A lossy tensor storage format (group-quantized along the last axis)."""

    #: short registry name, e.g. ``"mx8"``
    name: str = "abstract"
    #: average storage bits per value, including shared metadata
    bits_per_value: float = float("nan")
    #: rounding mode applied when storing
    rounding: RoundingMode = RoundingMode.NEAREST

    @abc.abstractmethod
    def quantize(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Return ``x`` snapped onto the representable lattice.

        Args:
            x: input tensor; quantization groups run along the last axis.
            rng: random source, required when ``self.rounding`` is stochastic.
        """

    @property
    def is_stochastic(self) -> bool:
        """Whether stores use stochastic rounding."""
        return self.rounding is RoundingMode.STOCHASTIC

    def bytes_for(self, n_values: int) -> int:
        """Storage footprint in bytes for ``n_values`` elements."""
        return int(np.ceil(n_values * self.bits_per_value / 8.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, bits={self.bits_per_value})"


class Float16Format(StorageFormat):
    """IEEE binary16 storage — the paper's lossless reference point."""

    name = "fp16"
    bits_per_value = 16.0

    def quantize(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        del rng  # fp16 reference always rounds to nearest
        return np.asarray(x, dtype=np.float16).astype(np.float64)


class Float32Format(StorageFormat):
    """IEEE binary32 storage; effectively exact for this library's tensors."""

    name = "fp32"
    bits_per_value = 32.0

    def quantize(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        del rng
        return np.asarray(x, dtype=np.float32).astype(np.float64)


def pad_to_group(x: np.ndarray, group: int) -> tuple[np.ndarray, int]:
    """Zero-pad the last axis of ``x`` to a multiple of ``group``.

    Returns the padded array and the original last-axis length.
    """
    n = x.shape[-1]
    rem = (-n) % group
    if rem == 0:
        return x, n
    pad = [(0, 0)] * (x.ndim - 1) + [(0, rem)]
    return np.pad(x, pad), n
