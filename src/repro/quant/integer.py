"""Scaled 8-bit integer storage (the paper's ``int8`` / ``int8SR`` formats).

Groups of 32 consecutive values share a float scaling factor ``max|x|/127``;
each value is stored as a signed 8-bit integer (Section 3.2).  The 7-bit
magnitude gives enough mantissa precision to avoid swamping, but Section 4.2
shows the *hardware* cost is high: element-wise addition of two scaled-int
groups requires dequantize → add → requantize with a max-reduction, which is
what `repro.hw.area` charges the int8 datapath for.
"""

from __future__ import annotations

import numpy as np

from repro.quant.formats import StorageFormat, pad_to_group
from repro.quant.rounding import RoundingMode, round_lattice


class Int8GroupFormat(StorageFormat):
    """Signed int8 with one shared scale per group of 32 values."""

    def __init__(
        self,
        group: int = 32,
        rounding: RoundingMode = RoundingMode.NEAREST,
        scale_bits: int = 16,
    ):
        if group < 1:
            raise ValueError("group size must be positive")
        self.group = group
        self.rounding = rounding
        self.scale_bits = scale_bits
        self.qmax = 127
        self.name = "int8SR" if rounding is RoundingMode.STOCHASTIC else "int8"
        # 8 bits per value plus the amortized shared scale.
        self.bits_per_value = 8.0 + scale_bits / group

    def quantize(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        padded, n = pad_to_group(x, self.group)
        grouped = padded.reshape(*padded.shape[:-1], -1, self.group)

        # Shared scale per group, itself stored in fp16 as the hardware would.
        amax = np.max(np.abs(grouped), axis=-1, keepdims=True)
        scale = (amax / self.qmax).astype(np.float16).astype(np.float64)
        scale = np.where(scale == 0.0, 1.0, scale)

        q = round_lattice(grouped / scale, self.rounding, rng)
        q = np.clip(q, -self.qmax, self.qmax)
        out = (q * scale).reshape(padded.shape)
        return out[..., :n] if n != padded.shape[-1] else out
