"""MX8 block floating point — the paper's Pareto-optimal state format.

Pimba's MX8 variant (Section 3.2): groups of 16 values share an 8-bit
exponent, each adjacent *pair* of values shares a 1-bit microexponent, and
every element stores a sign and a 6-bit mantissa.  Storage cost is exactly

    (16 * (1 + 6) + 8 + 8) / 16 = 8 bits per value.

An element decodes as::

    value_i = mant_i * 2 ** (E - u_pair(i) - MANTISSA_BITS)

with ``mant_i`` a signed integer, ``|mant_i| <= 63``.  The shared exponent
``E`` is chosen so the largest group element has mantissa magnitude in
(32, 64]; a pair whose own maximum is at least one octave below the group
maximum sets its microexponent to 1, recovering one bit of precision.

Two views are provided:

* :class:`Mx8Format` — vectorized value-semantics storage quantizer used by
  the accuracy harness (Figs. 4/6, Table 2).
* :class:`MxBlock` — an explicit (exponent, microexponents, mantissas)
  container consumed by the bit-faithful SPE datapath in
  ``repro.quant.arithmetic`` and ``repro.core.spe``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.quant.formats import StorageFormat, pad_to_group
from repro.quant.rounding import RoundingMode, round_lattice

#: elements per shared-exponent group
GROUP_SIZE = 16
#: elements per shared-microexponent sub-group
PAIR_SIZE = 2
#: explicit (no hidden bit) mantissa width
MANTISSA_BITS = 6
#: max mantissa magnitude
MANTISSA_MAX = (1 << MANTISSA_BITS) - 1
#: shared exponent field width / bias (stored biased like IEEE)
EXPONENT_BITS = 8
EXPONENT_BIAS = 127
EXPONENT_MIN = -EXPONENT_BIAS
EXPONENT_MAX = (1 << EXPONENT_BITS) - 1 - EXPONENT_BIAS


def _group_exponent(amax: np.ndarray) -> np.ndarray:
    """Shared exponent: smallest E with ``amax / 2**E <= 1`` (amax>0)."""
    with np.errstate(divide="ignore"):
        e = np.floor(np.log2(np.where(amax > 0, amax, 1.0))) + 1.0
    return np.clip(e, EXPONENT_MIN, EXPONENT_MAX)


class Mx8Format(StorageFormat):
    """Vectorized MX8 storage quantizer (value semantics)."""

    def __init__(self, rounding: RoundingMode = RoundingMode.NEAREST):
        self.rounding = rounding
        self.name = "mx8SR" if rounding is RoundingMode.STOCHASTIC else "mx8"
        self.bits_per_value = (
            GROUP_SIZE * (1 + MANTISSA_BITS) + EXPONENT_BITS
            + GROUP_SIZE // PAIR_SIZE
        ) / GROUP_SIZE

    def quantize(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        padded, n = pad_to_group(x, GROUP_SIZE)
        grouped = padded.reshape(*padded.shape[:-1], -1, GROUP_SIZE)

        amax = np.max(np.abs(grouped), axis=-1, keepdims=True)
        exp = _group_exponent(amax)

        pairs = grouped.reshape(*grouped.shape[:-1], GROUP_SIZE // PAIR_SIZE, PAIR_SIZE)
        pmax = np.max(np.abs(pairs), axis=-1, keepdims=True)
        pexp = _group_exponent(pmax)
        micro = np.clip(exp[..., None] - pexp, 0, 1)

        scale = np.exp2(exp[..., None] - micro - MANTISSA_BITS)
        mant = round_lattice(pairs / scale, self.rounding, rng)
        mant = np.clip(mant, -MANTISSA_MAX, MANTISSA_MAX)
        out = (mant * scale).reshape(padded.shape)
        return out[..., :n] if n != padded.shape[-1] else out


@dataclasses.dataclass
class MxBlock:
    """One 16-element MX8 group in explicit hardware fields.

    Attributes:
        exp: shared (unbiased) exponent, scalar int.
        micro: per-pair microexponents, shape ``(8,)``, values in {0, 1}.
        mant: signed integer mantissas, shape ``(16,)``, ``|mant| <= 63``.
    """

    exp: int
    micro: np.ndarray
    mant: np.ndarray

    def __post_init__(self) -> None:
        self.micro = np.asarray(self.micro, dtype=np.int64)
        self.mant = np.asarray(self.mant, dtype=np.int64)
        if self.micro.shape != (GROUP_SIZE // PAIR_SIZE,):
            raise ValueError("micro must have shape (8,)")
        if self.mant.shape != (GROUP_SIZE,):
            raise ValueError("mant must have shape (16,)")
        if np.any((self.micro < 0) | (self.micro > 1)):
            raise ValueError("microexponents must be 0 or 1")
        if np.any(np.abs(self.mant) > MANTISSA_MAX):
            raise ValueError(f"mantissa magnitude exceeds {MANTISSA_MAX}")

    @property
    def element_micro(self) -> np.ndarray:
        """Microexponent broadcast to all 16 elements."""
        return np.repeat(self.micro, PAIR_SIZE)

    def decode(self) -> np.ndarray:
        """Return the 16 represented values as float64."""
        return self.mant * np.exp2(self.exp - self.element_micro - MANTISSA_BITS)

    @classmethod
    def encode(
        cls,
        values: np.ndarray,
        rounding: RoundingMode = RoundingMode.NEAREST,
        rng: np.random.Generator | None = None,
    ) -> "MxBlock":
        """Quantize 16 float values into an explicit block."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (GROUP_SIZE,):
            raise ValueError(f"expected {GROUP_SIZE} values, got shape {values.shape}")
        exp = int(_group_exponent(np.max(np.abs(values))))
        pairs = values.reshape(-1, PAIR_SIZE)
        pexp = _group_exponent(np.max(np.abs(pairs), axis=-1))
        micro = np.clip(exp - pexp, 0, 1).astype(np.int64)
        scale = np.exp2(exp - np.repeat(micro, PAIR_SIZE) - MANTISSA_BITS)
        mant = round_lattice(values / scale, rounding, rng)
        mant = np.clip(mant, -MANTISSA_MAX, MANTISSA_MAX).astype(np.int64)
        return cls(exp=exp, micro=micro, mant=mant)
