"""Minifloat (FP8) storage formats: ``e4m3`` and ``e5m2`` (± stochastic).

These follow the OCP FP8 conventions: ``e4m3`` has 4 exponent bits, 3
mantissa bits, bias 7, max finite 448; ``e5m2`` has 5 exponent bits, 2
mantissa bits, bias 15, max finite 57344.  Subnormals are representable.
Out-of-range values saturate to the max finite magnitude (the behaviour a
PIM datapath would implement — no NaN/Inf plumbing in a state buffer).

With only 2–3 mantissa bits, the quantization step near a value of
magnitude ``2^e`` is ``2^(e - m)``.  During SU-LLM state updates the per-step
increment is orders of magnitude below the accumulated state, so under
round-to-nearest it is *swallowed* (swamping, Section 3.2) — the mechanism
behind the perplexity blow-ups in Fig. 4.  Stochastic rounding preserves the
increment in expectation, which is why ``e5m2SR`` recovers.
"""

from __future__ import annotations

import numpy as np

from repro.quant.formats import StorageFormat
from repro.quant.rounding import RoundingMode, round_lattice


class MiniFloatFormat(StorageFormat):
    """A saturating sign/exponent/mantissa minifloat with subnormals."""

    def __init__(
        self,
        exp_bits: int,
        man_bits: int,
        bias: int | None = None,
        max_finite: float | None = None,
        name: str | None = None,
        rounding: RoundingMode = RoundingMode.NEAREST,
    ):
        if exp_bits < 2 or man_bits < 1:
            raise ValueError("need at least 2 exponent and 1 mantissa bit")
        self.exp_bits = exp_bits
        self.man_bits = man_bits
        self.bias = bias if bias is not None else (1 << (exp_bits - 1)) - 1
        self.rounding = rounding
        # Exponent of the smallest normal number.
        self.min_norm_exp = 1 - self.bias
        # Largest exponent usable for finite values.
        self.max_exp = (1 << exp_bits) - 2 - self.bias
        default_max = (2.0 - 2.0 ** (-man_bits)) * 2.0**self.max_exp
        self.max_finite = max_finite if max_finite is not None else default_max
        base = name or f"e{exp_bits}m{man_bits}"
        self.name = base + ("SR" if rounding is RoundingMode.STOCHASTIC else "")
        self.bits_per_value = float(1 + exp_bits + man_bits)

    def _step(self, x: np.ndarray) -> np.ndarray:
        """Quantization step (ulp) of the bucket each element falls in."""
        mag = np.abs(x)
        with np.errstate(divide="ignore"):
            e = np.floor(np.log2(np.where(mag > 0, mag, 1.0)))
        e = np.clip(e, self.min_norm_exp, self.max_exp)
        return np.exp2(e - self.man_bits)

    def quantize(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        step = self._step(x)
        q = round_lattice(x / step, self.rounding, rng) * step
        # Rounding up across a power of two lands on a representable point
        # with the next exponent, so only saturation needs fixing up.
        return np.clip(q, -self.max_finite, self.max_finite)


def e4m3(rounding: RoundingMode = RoundingMode.NEAREST) -> MiniFloatFormat:
    """OCP e4m3: bias 7, max finite 448."""
    return MiniFloatFormat(4, 3, bias=7, max_finite=448.0, rounding=rounding)


def e5m2(rounding: RoundingMode = RoundingMode.NEAREST) -> MiniFloatFormat:
    """OCP e5m2: bias 15, max finite 57344."""
    return MiniFloatFormat(5, 2, bias=15, max_finite=57344.0, rounding=rounding)
