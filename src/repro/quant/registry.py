"""Registry of the nine storage formats swept in Figs. 4 and 6."""

from __future__ import annotations

from collections.abc import Callable

from repro.quant.floatpoint import e4m3, e5m2
from repro.quant.formats import Float16Format, Float32Format, StorageFormat
from repro.quant.integer import Int8GroupFormat
from repro.quant.mx import Mx8Format
from repro.quant.rounding import RoundingMode

_N = RoundingMode.NEAREST
_S = RoundingMode.STOCHASTIC

_FACTORIES: dict[str, Callable[[], StorageFormat]] = {
    "fp32": Float32Format,
    "fp16": Float16Format,
    "int8": lambda: Int8GroupFormat(rounding=_N),
    "int8SR": lambda: Int8GroupFormat(rounding=_S),
    "e4m3": lambda: e4m3(rounding=_N),
    "e4m3SR": lambda: e4m3(rounding=_S),
    "e5m2": lambda: e5m2(rounding=_N),
    "e5m2SR": lambda: e5m2(rounding=_S),
    "mx8": lambda: Mx8Format(rounding=_N),
    "mx8SR": lambda: Mx8Format(rounding=_S),
}

#: the formats compared in Fig. 4 (in plotting order)
FIG4_FORMATS = (
    "fp16", "int8", "int8SR", "e4m3", "e4m3SR", "e5m2", "e5m2SR", "mx8", "mx8SR",
)


def available_formats() -> tuple[str, ...]:
    """Names of every registered storage format."""
    return tuple(_FACTORIES)


def get_format(name: str) -> StorageFormat:
    """Instantiate a storage format by registry name.

    Raises:
        KeyError: for unknown names, listing the valid choices.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown format {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        ) from None
    return factory()
