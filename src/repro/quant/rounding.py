"""Rounding primitives shared by every quantized format.

The paper (Section 3.2) contrasts *round-to-nearest-even* with *stochastic
rounding* (SR).  SR rounds a real value to one of its two neighbouring grid
points with probability proportional to proximity, which preserves small
increments in expectation during the continuous state-update accumulation of
SU-LLMs (the "swamping" mitigation of Fig. 4).

All helpers operate on values already scaled into *grid units*: the caller
divides by the quantization step so that representable points sit on the
integer lattice.
"""

from __future__ import annotations

import enum

import numpy as np


class RoundingMode(enum.Enum):
    """How real values are mapped onto the quantization lattice."""

    NEAREST = "nearest"
    STOCHASTIC = "stochastic"


def round_nearest_even(x: np.ndarray) -> np.ndarray:
    """Round to nearest integer, ties to even (IEEE default).

    ``numpy.rint`` implements exactly this tie-breaking rule.
    """
    return np.rint(x)


def round_stochastic(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Round each element up or down with probability equal to its fraction.

    ``E[round_stochastic(x)] == x`` which is what lets tiny state-update
    increments survive accumulation into a large-magnitude state.
    """
    floor = np.floor(x)
    frac = x - floor
    return floor + (rng.random(size=np.shape(x)) < frac)


def round_lattice(
    x: np.ndarray,
    mode: RoundingMode,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Round ``x`` (in grid units) according to ``mode``.

    Raises:
        ValueError: if stochastic rounding is requested without an ``rng``.
    """
    if mode is RoundingMode.NEAREST:
        return round_nearest_even(x)
    if rng is None:
        raise ValueError("stochastic rounding requires a random generator")
    return round_stochastic(x, rng)
