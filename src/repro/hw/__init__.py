"""Gate-level area and power models for PIM compute (Fig. 6, Table 3)."""

from repro.hw.area import (
    DIE_AREA_PER_CHANNEL_MM2,
    UnitArea,
    area_overhead_percent,
    channel_area_mm2,
    format_overhead_percent,
    pipelined_unit_gates,
    time_multiplexed_unit_gates,
    unit_area,
)
from repro.hw.gates import GateLibrary
from repro.hw.power import UnitPower, compute_energy_pj, pim_cycles_of, unit_power
from repro.hw.units import LaneCosts, base_format, lane_costs

__all__ = [
    "DIE_AREA_PER_CHANNEL_MM2",
    "UnitArea",
    "area_overhead_percent",
    "channel_area_mm2",
    "format_overhead_percent",
    "pipelined_unit_gates",
    "time_multiplexed_unit_gates",
    "unit_area",
    "GateLibrary",
    "UnitPower",
    "compute_energy_pj",
    "pim_cycles_of",
    "unit_power",
    "LaneCosts",
    "base_format",
    "lane_costs",
]
