"""SPE/SPU area composition and PIM area-overhead accounting.

Composes one processing unit from the ``repro.hw.units`` lane costs:

* pipelined SPE (Pimba / per-bank pipelined): two element-wise multiplier
  vectors, one element-wise adder vector, a dot-product unit (MAC lanes +
  reduction tree + accumulator), operand/pipeline registers, and — for SR
  formats — an LFSR plus rounding adders;
* time-multiplexed unit (HBM-PIM baseline): a single multiplier vector and
  adder vector shared across passes, plus registers.

Area overhead is reported against the logic budget of one pseudo-channel's
DRAM die area, the same normalization the paper uses (a per-bank design
must stay below the ~25% logic ratio cited from Newton).
"""

from __future__ import annotations

import dataclasses

from repro.core.config import PimbaConfig, PimDesign
from repro.hw.gates import GateLibrary, adder_tree_gates, register_gates
from repro.hw.units import (
    FORMAT_BITS,
    FORMAT_GROUP,
    base_format,
    lane_costs,
    operand_register_gates,
)

#: DRAM die area available per pseudo-channel for PIM logic normalization,
#: mm^2.  Calibrated once so the Pimba design point reproduces Table 3's
#: 13.4% overhead; every other design is measured against the same budget.
DIE_AREA_PER_CHANNEL_MM2 = 5.6

#: SRAM buffer per processing unit (operand staging), bytes; priced via a
#: CACTI-like constant.
BUFFER_BYTES_PER_UNIT = 2048
BUFFER_MM2_PER_BYTE = 19e-6  # ~0.039 mm^2 for 2 KiB, matching Table 3


@dataclasses.dataclass(frozen=True)
class UnitArea:
    """Area report for one processing unit."""

    format_name: str
    compute_mm2: float
    buffer_mm2: float
    gates: float

    @property
    def total_mm2(self) -> float:
        return self.compute_mm2 + self.buffer_mm2


def _lanes_for(format_name: str, column_bits: int) -> int:
    return column_bits // FORMAT_BITS[base_format(format_name)]


def pipelined_unit_gates(format_name: str, column_bits: int = 256) -> float:
    """Gate count of one full 4-stage SPE datapath (Fig. 8)."""
    costs = lane_costs(format_name)
    lanes = _lanes_for(format_name, column_bits)
    groups = max(1, lanes // FORMAT_GROUP[base_format(format_name)])
    stochastic = format_name.endswith("SR")

    gates = 0.0
    gates += 2 * lanes * costs.multiply  # decay and outer-product
    gates += lanes * costs.add  # state update
    gates += lanes * costs.mac  # dot-product lanes
    gates += adder_tree_gates(lanes, 14)  # dot-product reduction
    gates += register_gates(32)  # wide accumulator
    gates += 4 * groups * costs.group  # shared exponent logic
    gates += operand_register_gates(column_bits, copies=6)
    if stochastic:
        gates += costs.sr_unit + lanes * costs.sr_lane
    return gates


def time_multiplexed_unit_gates(format_name: str, column_bits: int = 256) -> float:
    """Gate count of an HBM-PIM-style basic multiply/add unit.

    The baseline's fp16 units are the stripped, non-IEEE variant (the paper
    removes non-essential components for a fair comparison, Table 3).
    """
    if base_format(format_name) == "fp16":
        format_name = "fp16-reduced" + ("SR" if format_name.endswith("SR") else "")
    costs = lane_costs(format_name)
    lanes = _lanes_for(format_name, column_bits)
    groups = max(1, lanes // FORMAT_GROUP[base_format(format_name)])
    stochastic = format_name.endswith("SR")

    gates = 0.0
    gates += lanes * costs.multiply  # one shared multiplier rank
    gates += lanes * costs.add  # one shared adder rank
    gates += adder_tree_gates(lanes, 14)  # GEMV reduction
    gates += register_gates(32)
    gates += groups * costs.group
    gates += operand_register_gates(column_bits, copies=4)
    if stochastic:
        gates += costs.sr_unit + lanes * costs.sr_lane
    return gates


def unit_area(
    config: PimbaConfig,
    library: GateLibrary | None = None,
) -> UnitArea:
    """Area of one processing unit for a device configuration."""
    library = library or GateLibrary()
    column_bits = config.hbm.organization.column_bytes * 8
    fmt = config.state_format
    # Device-level designs use the stripped (non-IEEE) fp16 flavour; the
    # full-compliance unit only appears in the Fig. 6 format comparison.
    if base_format(fmt) == "fp16":
        fmt = "fp16-reduced" + ("SR" if fmt.endswith("SR") else "")
    if config.design is PimDesign.TIME_MULTIPLEXED:
        gates = time_multiplexed_unit_gates(fmt, column_bits)
    else:
        gates = pipelined_unit_gates(fmt, column_bits)
    return UnitArea(
        format_name=fmt,
        compute_mm2=library.area_mm2(gates),
        buffer_mm2=BUFFER_BYTES_PER_UNIT * BUFFER_MM2_PER_BYTE,
        gates=gates,
    )


def channel_area_mm2(config: PimbaConfig, library: GateLibrary | None = None) -> float:
    """Total PIM logic area on one pseudo-channel."""
    return unit_area(config, library).total_mm2 * config.units_per_channel


def area_overhead_percent(
    config: PimbaConfig, library: GateLibrary | None = None
) -> float:
    """PIM logic area as % of the per-channel DRAM die budget."""
    return 100.0 * channel_area_mm2(config, library) / DIE_AREA_PER_CHANNEL_MM2


def format_overhead_percent(
    format_name: str,
    column_bits: int = 256,
    units: int = 16,
    library: GateLibrary | None = None,
) -> float:
    """Fig. 6 helper: per-bank pipelined overhead for a raw format name."""
    library = library or GateLibrary()
    gates = pipelined_unit_gates(format_name, column_bits)
    buffer = BUFFER_BYTES_PER_UNIT * BUFFER_MM2_PER_BYTE
    total = (library.area_mm2(gates) + buffer) * units
    return 100.0 * total / DIE_AREA_PER_CHANNEL_MM2
