"""Gate-level area/energy library.

The paper synthesizes the SPE with Synopsys DC at FreePDK 45 nm and scales
to 10 nm with DeepScaleTool, applying the standard PIM assumption that a
memory process is ~10x less dense than a logic process at the same feature
size (Section 6.1, citing AttAcc).  We replace synthesis with NAND2-
equivalent gate counts composed from datapath primitives — the standard
pre-synthesis estimation technique — and apply the same two scaling steps.

All primitives return gate counts; :data:`GateLibrary` turns counts into
mm^2 and per-cycle energy.
"""

from __future__ import annotations

import dataclasses
import math

#: NAND2-equivalent gate costs of standard cells
FULL_ADDER_GE = 4.5
FLIP_FLOP_GE = 6.0
MUX2_GE = 2.5
XOR2_GE = 2.0
AND2_GE = 1.0
COMPARE_BIT_GE = 2.0


@dataclasses.dataclass(frozen=True)
class GateLibrary:
    """Technology constants for converting gate counts to area and power."""

    #: NAND2 cell area at 45 nm, um^2 (FreePDK45 standard cell)
    nand2_um2_45nm: float = 0.798
    #: DeepScaleTool-style 45 nm -> 10 nm logic area scaling factor
    scale_45_to_10: float = 14.5
    #: density penalty of implementing logic in a DRAM process
    memory_process_penalty: float = 10.0
    #: structural overhead for wiring, pipeline control and clocking
    #: (calibrated so the Pimba SPU reproduces Table 3's 0.053 mm^2)
    structural_overhead: float = 2.37
    #: effective switching energy per gate-equivalent per active cycle,
    #: femtojoules (includes clock tree; calibrated to Table 3's 8.29 mW)
    fj_per_gate_cycle: float = 2.7
    #: average fraction of gates toggling per cycle
    activity: float = 0.2

    @property
    def um2_per_gate(self) -> float:
        """Effective um^2 per NAND2-equivalent in the scaled DRAM process."""
        return (
            self.nand2_um2_45nm / self.scale_45_to_10
            * self.memory_process_penalty
        )

    def area_mm2(self, gates: float) -> float:
        """Silicon area of ``gates`` NAND2 equivalents, with overheads."""
        return gates * self.structural_overhead * self.um2_per_gate * 1e-6

    def dynamic_power_w(self, gates: float, frequency_hz: float) -> float:
        """Average switching power of a block at ``frequency_hz``."""
        return gates * self.activity * self.fj_per_gate_cycle * 1e-15 * frequency_hz

    def energy_per_cycle_pj(self, gates: float) -> float:
        """Dynamic energy of one active cycle, picojoules."""
        return gates * self.activity * self.fj_per_gate_cycle * 1e-3


# -- primitive gate counts -----------------------------------------------------

def adder_gates(bits: int) -> float:
    """Ripple-carry adder."""
    if bits < 1:
        raise ValueError("adder needs at least 1 bit")
    return bits * FULL_ADDER_GE


def multiplier_gates(bits_a: int, bits_b: int) -> float:
    """Array multiplier: partial products + carry-save reduction."""
    if bits_a < 1 or bits_b < 1:
        raise ValueError("multiplier operands need at least 1 bit")
    return bits_a * bits_b * (FULL_ADDER_GE + AND2_GE)


def shifter_gates(bits: int, max_shift: int) -> float:
    """Logarithmic barrel shifter."""
    if max_shift < 1:
        return 0.0
    stages = max(1, math.ceil(math.log2(max_shift + 1)))
    return bits * stages * MUX2_GE


def comparator_gates(bits: int) -> float:
    return bits * COMPARE_BIT_GE


def register_gates(bits: int) -> float:
    return bits * FLIP_FLOP_GE


def leading_zero_counter_gates(bits: int) -> float:
    """Priority encoder used by floating-point normalizers."""
    return bits * 3.0


def lfsr_gates(width: int) -> float:
    """LFSR for stochastic rounding: shift register + feedback taps."""
    return width * FLIP_FLOP_GE + 4 * XOR2_GE


def adder_tree_gates(lanes: int, bits: int) -> float:
    """Balanced reduction tree of 2-input adders with width growth."""
    if lanes < 2:
        return 0.0
    total = 0.0
    width = bits
    remaining = lanes
    while remaining > 1:
        total += (remaining // 2) * adder_gates(width)
        remaining = (remaining + 1) // 2
        width += 1
    return total
