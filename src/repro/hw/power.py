"""PIM datapath power/energy model (Table 3's power rows, Fig. 14 inputs)."""

from __future__ import annotations

import dataclasses

from repro.core.config import PimbaConfig, PimDesign
from repro.hw.area import unit_area
from repro.hw.gates import GateLibrary


@dataclasses.dataclass(frozen=True)
class UnitPower:
    """Power report for one processing unit."""

    dynamic_w: float  #: switching power at the SPU clock
    energy_per_cycle_pj: float

    @property
    def milliwatts(self) -> float:
        return self.dynamic_w * 1e3


def unit_power(config: PimbaConfig, library: GateLibrary | None = None) -> UnitPower:
    """Average compute power of one unit at the device's PIM frequency."""
    library = library or GateLibrary()
    gates = unit_area(config, library).gates
    freq = config.hbm.pim_frequency_hz
    return UnitPower(
        dynamic_w=library.dynamic_power_w(gates, freq),
        energy_per_cycle_pj=library.energy_per_cycle_pj(gates),
    )


def compute_energy_pj(
    config: PimbaConfig,
    pim_cycles: float,
    library: GateLibrary | None = None,
) -> float:
    """Datapath energy of a sweep occupying ``pim_cycles`` SPU cycles.

    All units of all channels switch in lock-step during a sweep (all-bank
    design), so channel energy is unit energy x units x channels.
    """
    library = library or GateLibrary()
    per_unit = unit_power(config, library).energy_per_cycle_pj
    units = config.units_per_channel * config.hbm.pseudo_channels
    return per_unit * pim_cycles * units


def pim_cycles_of(config: PimbaConfig, bus_cycles: float) -> float:
    """Convert a bus-cycle schedule length to SPU cycles."""
    return bus_cycles / config.hbm.timing.tCCD_L


__all__ = ["UnitPower", "unit_power", "compute_energy_pj", "pim_cycles_of"]


# Convenience: expose the design enum so callers need one import.
PimDesign = PimDesign
