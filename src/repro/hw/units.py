"""Datapath unit gate counts per numeric format (the Fig. 6 x-axis).

Each format prices three lane-level units — element-wise multiplier,
element-wise adder, and a MAC lane for the dot-product unit — plus any
per-group (amortized) logic.  The relative costs drive the area ordering
of Fig. 6:

* **fp16** — 11x11 mantissa multiplier, wide align/normalize adders: the
  most expensive datapath per lane, and only 16 lanes per column.
* **int8 (+ scale)** — cheap 8x8 multiplier, but element-wise *addition*
  of two scaled-integer groups needs dequantize (extra multiplier),
  re-quantize (max-reduction comparator tree + normalizing shifter):
  Section 4.2's hidden cost.
* **fp8 (e4m3/e5m2)** — tiny mantissa units; cheap but inaccurate.
* **MX8** — 6-bit integer units plus pure shifters; group exponent logic
  amortizes over 16 lanes.  Pareto-optimal.
* **+SR** — one LFSR per unit plus a small rounding adder per lane.
"""

from __future__ import annotations

import dataclasses

from repro.hw.gates import (
    adder_gates,
    comparator_gates,
    leading_zero_counter_gates,
    lfsr_gates,
    multiplier_gates,
    register_gates,
    shifter_gates,
)


@dataclasses.dataclass(frozen=True)
class LaneCosts:
    """NAND2-equivalent costs of one SIMD lane of a format's datapath."""

    multiply: float  #: element-wise multiplier lane
    add: float  #: element-wise adder lane
    mac: float  #: dot-product MAC lane (multiplier + feed)
    group: float = 0.0  #: per-group shared logic (amortized by caller)
    sr_lane: float = 0.0  #: per-lane stochastic-rounding adder
    sr_unit: float = 0.0  #: per-unit stochastic-rounding LFSR


#: IEEE-compliance multiplier for fp16 units: subnormal handling, sticky/
#: guard/round logic, exception flags and the dual-path adder roughly double
#: a bare mantissa datapath (consistent with synthesized FPU gate counts).
IEEE_OVERHEAD = 2.2


def fp16_costs() -> LaneCosts:
    """IEEE half precision: 11-bit significands (hidden bit included)."""
    mant_mult = multiplier_gates(11, 11)
    exp_add = adder_gates(5)
    normalize = shifter_gates(22, 22) + leading_zero_counter_gates(22)
    rounding = adder_gates(11)
    multiply = (mant_mult + exp_add + normalize / 2 + rounding) * IEEE_OVERHEAD
    align = shifter_gates(11, 32)
    add = (align + adder_gates(12) + normalize + comparator_gates(5)
           + rounding) * IEEE_OVERHEAD
    mac = (mant_mult + exp_add + align + adder_gates(24)) * IEEE_OVERHEAD
    return LaneCosts(multiply=multiply, add=add, mac=mac,
                     sr_lane=adder_gates(11), sr_unit=lfsr_gates(16))


def int8_scaled_costs(group: int = 32) -> LaneCosts:
    """int8 with a shared fp16 scale per group of 32 (Section 4.2)."""
    multiply = multiplier_gates(8, 8) + adder_gates(5)  # product + scale exp
    # Element-wise add: dequantize both operands (multiply by scale),
    # integer add, then re-quantize: group max tree + per-lane shift.
    dequant = 2 * multiplier_gates(8, 8)
    requant_lane = shifter_gates(16, 8) + comparator_gates(8)
    add = dequant + adder_gates(17) + requant_lane
    mac = multiplier_gates(8, 8) + adder_gates(24)
    # Shared per group: max-exponent comparator tree + scale multiplier.
    group_logic = group * comparator_gates(8) / 4 + multiplier_gates(8, 8)
    return LaneCosts(multiply=multiply, add=add, mac=mac, group=group_logic,
                     sr_lane=adder_gates(8), sr_unit=lfsr_gates(16))


def fp8_costs(man_bits: int) -> LaneCosts:
    """e4m3 (man_bits=3) or e5m2 (man_bits=2) minifloat units.

    Tiny mantissa multipliers, but every element carries its own exponent,
    so the dot-product MAC must align each product into the wide
    accumulator with a per-lane barrel shifter — the alignment cost MX
    amortizes across its 16-element group (Section 4.2).
    """
    mant = man_bits + 1  # hidden bit
    mant_mult = multiplier_gates(mant, mant)
    exp_add = adder_gates(5)
    normalize = shifter_gates(2 * mant, 2 * mant) + leading_zero_counter_gates(2 * mant)
    multiply = mant_mult + exp_add + normalize / 2
    align = shifter_gates(mant, 8)
    add = align + adder_gates(mant + 1) + normalize + comparator_gates(5)
    acc_align = shifter_gates(24, 24)
    mac = mant_mult + exp_add + acc_align + adder_gates(24)
    return LaneCosts(multiply=multiply, add=add, mac=mac,
                     sr_lane=adder_gates(mant), sr_unit=lfsr_gates(16))


def mx8_costs(group: int = 16) -> LaneCosts:
    """MX8: 6-bit sign-magnitude integer lanes + shared exponent (Fig. 9)."""
    # Multiplier lane: 6x6 integer product plus the 1-bit microexponent
    # saturation shift; the >>6 renormalization is fixed wiring.
    multiply = multiplier_gates(6, 6) + shifter_gates(12, 1)
    # Adder lane: align shift (exponent diff + microexponent), integer add.
    add = shifter_gates(7, 8) + adder_gates(8)
    mac = multiplier_gates(6, 6) + adder_gates(24)
    # Shared per group: 8-bit exponent adder + max comparator + micro OR.
    group_logic = adder_gates(8) + comparator_gates(8) + 4.0
    return LaneCosts(multiply=multiply, add=add, mac=mac, group=group_logic,
                     sr_lane=adder_gates(6), sr_unit=lfsr_gates(16))


def fp16_reduced_costs() -> LaneCosts:
    """HBM-PIM's stripped fp16 unit (Table 3 note: non-essential logic
    removed — no subnormals, single rounding mode)."""
    full = fp16_costs()
    return LaneCosts(
        multiply=full.multiply / IEEE_OVERHEAD,
        add=full.add / IEEE_OVERHEAD,
        mac=full.mac / IEEE_OVERHEAD,
        group=full.group,
        sr_lane=full.sr_lane,
        sr_unit=full.sr_unit,
    )


#: registry keyed by storage-format name (SR handled by the composer)
FORMAT_COSTS = {
    "fp16": fp16_costs,
    "fp16-reduced": fp16_reduced_costs,
    "int8": int8_scaled_costs,
    "e4m3": lambda: fp8_costs(3),
    "e5m2": lambda: fp8_costs(2),
    "mx8": mx8_costs,
}

#: quantization group length per format (lanes sharing `group` logic)
FORMAT_GROUP = {
    "fp16": 1, "fp16-reduced": 1, "int8": 32, "e4m3": 1, "e5m2": 1, "mx8": 16,
}

#: storage bits per value (for lane-count math)
FORMAT_BITS = {
    "fp16": 16, "fp16-reduced": 16, "int8": 8, "e4m3": 8, "e5m2": 8, "mx8": 8,
}


def base_format(name: str) -> str:
    """Strip the SR suffix: ``mx8SR`` -> ``mx8``."""
    return name[:-2] if name.endswith("SR") else name


def lane_costs(format_name: str) -> LaneCosts:
    """Lane costs for a (possibly SR-suffixed) format name."""
    base = base_format(format_name)
    try:
        return FORMAT_COSTS[base]()
    except KeyError:
        raise KeyError(
            f"no datapath model for format {format_name!r}"
        ) from None


def operand_register_gates(column_bits: int, copies: int = 4) -> float:
    """Pipeline/operand registers holding ``copies`` column-wide values."""
    return register_gates(column_bits * copies)
