"""The Pimba device: functional execution plus command-accurate timing.

:class:`PimbaAccelerator` is the top-level object a serving system talks
to.  It owns a device configuration and exposes:

* **functional** state-update / attention execution with the exact storage
  numerics the hardware would produce (MX8 + stochastic rounding for
  Pimba; fp16 for the HBM-PIM baseline), and
* **timing** queries that distribute a workload over pseudo-channels and
  banks and run the Section 5.5 command schedules to get seconds.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import PimbaConfig, PimDesign, pimba_config
from repro.core.layout import (
    BankAssignment,
    kv_layout_for,
    state_layout_for,
)
from repro.core.scheduler import (
    SweepTiming,
    schedule_attention_rows,
    schedule_state_update_rows,
)
from repro.quant.registry import get_format


@dataclasses.dataclass(frozen=True)
class PimTiming:
    """Seconds plus the underlying schedule for one offloaded operation."""

    seconds: float
    sweep: SweepTiming
    heads_per_bank: int

    @property
    def bus_cycles(self) -> int:
        return self.sweep.bus_cycles


class PimbaAccelerator:
    """One PIM-enabled memory device attached to a GPU."""

    def __init__(self, config: PimbaConfig | None = None, seed: int = 0xACE1):
        self.config = config or pimba_config()
        self.format = get_format(self.config.state_format)
        self._rng = np.random.default_rng(seed)

    # -- functional execution ----------------------------------------------

    def store_state(self, state: np.ndarray) -> np.ndarray:
        """Quantize a state tensor into the device storage format.

        The SPE computes with wide intermediates (12-bit products, a wide
        dot-product accumulator) and loses precision only when the updated
        state is written back to the row buffer — i.e. once per update.
        Storage quantization therefore captures the hardware numerics; the
        bit-exact block path in ``repro.core.spe`` validates this in tests.
        """
        rng = self._rng if self.format.is_stochastic else None
        return self.format.quantize(state, rng=rng)

    def state_update(
        self,
        state: np.ndarray,
        d: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        q: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched Eq. 2 with device storage numerics.

        Shapes (leading axes broadcast over batch and heads):
            state: (..., dim_head, dim_state)
            d, k, q: (..., dim_head)
            v: (..., dim_state)

        Returns (new_state, y) with ``y`` of shape (..., dim_state).
        """
        state = self.store_state(state)
        new_state = d[..., :, None] * state + k[..., :, None] * v[..., None, :]
        new_state = self.store_state(new_state)
        y = np.einsum("...hs,...h->...s", new_state, q)
        return new_state, y

    def attention(
        self,
        q: np.ndarray,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
    ) -> np.ndarray:
        """Single-token attention with the KV cache in device storage.

        Shapes: q (..., dim_head); k_cache/v_cache (..., seq, dim_head).
        The score softmax runs on the GPU between the two PIM phases
        (Section 5.4), in full precision.
        """
        rng = self._rng if self.format.is_stochastic else None
        k_cache = self.format.quantize(k_cache, rng=rng)
        v_cache = self.format.quantize(v_cache, rng=rng)
        scores = np.einsum("...sh,...h->...s", k_cache, q)
        scores = scores / np.sqrt(q.shape[-1])
        scores = scores - scores.max(axis=-1, keepdims=True)
        weights = np.exp(scores)
        weights = weights / weights.sum(axis=-1, keepdims=True)
        return np.einsum("...s,...sh->...h", weights, v_cache)

    # -- timing -------------------------------------------------------------

    def _assignment(self, total_heads: int) -> BankAssignment:
        hbm = self.config.hbm
        return BankAssignment(
            total_heads=total_heads,
            pseudo_channels=hbm.pseudo_channels,
            banks_per_channel=hbm.organization.banks,
        )

    def state_update_timing(
        self, total_heads: int, dim_head: int, dim_state: int
    ) -> PimTiming:
        """Latency of one generation step's state updates.

        Chunks (DRAM rows) are spread across every bank of every
        pseudo-channel; when there are fewer heads than banks, a single
        head's chunk group is split so no bank idles.  The most-loaded
        bank sets the all-bank lock-step latency.

        Args:
            total_heads: batch size x state-update heads resident on this
                device (after tensor parallelism).
            dim_head / dim_state: per-head state shape.
        """
        layout = state_layout_for(self.config, dim_head, dim_state)
        banks = self._assignment(max(1, total_heads)).total_banks
        total_rows = total_heads * layout.chunks_per_head
        rows_per_bank = -(-total_rows // banks) if total_rows else 0
        groups_per_bank = max(1.0, total_heads / banks) if total_heads else 0.0
        sweep = schedule_state_update_rows(
            self.config, layout, rows_per_bank, groups_per_bank
        )
        seconds = sweep.bus_cycles / self.config.hbm.bus_frequency_hz
        return PimTiming(
            seconds=seconds, sweep=sweep,
            heads_per_bank=-(-total_heads // banks) if total_heads else 0,
        )

    def attention_timing(
        self,
        total_heads: int,
        dim_head: int,
        seq_len: int,
        dim_value: int | None = None,
    ) -> PimTiming:
        """Latency of one generation step's attention (score + attend).

        The score phase streams the K cache (``dim_head``-wide vectors);
        the attend phase streams the V cache (``dim_value``-wide).
        """
        dim_value = dim_value or dim_head
        k_layout = kv_layout_for(self.config, dim_head, seq_len)
        v_layout = kv_layout_for(self.config, dim_value, seq_len)
        banks = self._assignment(max(1, total_heads)).total_banks

        def rows_for(layout):
            total_rows = total_heads * max(1, layout.rows_per_cache)
            rows = -(-total_rows // banks) if total_heads else 0
            caches = max(1.0, total_heads / banks) if total_heads else 0.0
            return rows, caches

        k_rows, k_caches = rows_for(k_layout)
        v_rows, v_caches = rows_for(v_layout)
        score = schedule_attention_rows(
            self.config, k_layout, k_rows, k_caches, "score"
        )
        attend = schedule_attention_rows(
            self.config, v_layout, v_rows, v_caches, "attend"
        )
        total = score + attend
        seconds = total.bus_cycles / self.config.hbm.bus_frequency_hz
        return PimTiming(
            seconds=seconds, sweep=total,
            heads_per_bank=-(-total_heads // banks) if total_heads else 0,
        )

    # -- capacity ------------------------------------------------------------

    def state_bytes(self, total_heads: int, dim_head: int, dim_state: int) -> int:
        """Device bytes holding all resident states in the storage format."""
        return self.format.bytes_for(total_heads * dim_head * dim_state)

    def kv_bytes(self, total_heads: int, dim_head: int, seq_len: int) -> int:
        """Device bytes holding all resident KV caches (K and V)."""
        return self.format.bytes_for(2 * total_heads * dim_head * seq_len)
