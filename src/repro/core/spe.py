"""State-update Processing Engine (SPE): the Fig. 8 datapath, functionally.

One SPE iteration processes one *sub-chunk*: a column-access-sized slice of
one state column.  For a sub-chunk ``s`` (a slice of S[:, j] along
``dim_head``), head operands ``d, k, q`` (same slice) and the scalar
``v_j``:

    stage 2:  decay   = d (*) s            (MX multiplier)
              incr    = k (*) v_j          (MX multiplier, broadcast scalar)
    stage 3:  s_new   = decay (+) incr     (MX adder)
    stage 4:  y_j    += dot(s_new, q)      (dot-product unit, wide acc.)
              s_new  -> row buffer         (write back)

All arithmetic runs through the bit-faithful MX units of
``repro.quant.arithmetic``; operands are MX8-encoded exactly as they arrive
through ``REG_WRITE`` (the host-side Quantization Unit of Section 5.5).

The attention mode (Section 5.4) reuses the same units:

    score phase:   partial = dot(q, k_t)           (dot-product unit)
    attend phase:  acc    += score_t (*) v_t       (multiplier + adder)
"""

from __future__ import annotations

import numpy as np

from repro.quant.arithmetic import DotProductUnit, MxAdder, MxMultiplier
from repro.quant.lfsr import Lfsr
from repro.quant.mx import GROUP_SIZE, MxBlock
from repro.quant.rounding import RoundingMode


def _to_blocks(
    values: np.ndarray, rounding: RoundingMode, lfsr: Lfsr | None
) -> list[MxBlock]:
    """Encode a 1-D float array into MX8 groups (zero-padded)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("SPE operands must be 1-D sub-chunk slices")
    pad = (-len(values)) % GROUP_SIZE
    if pad:
        values = np.concatenate([values, np.zeros(pad)])
    rng = None
    if rounding is RoundingMode.STOCHASTIC:
        source = lfsr if lfsr is not None else Lfsr(16, seed=0x5EED)
        rng = np.random.default_rng(source.next_bits(source.width))
    return [
        MxBlock.encode(values[i:i + GROUP_SIZE], rounding, rng)
        for i in range(0, len(values), GROUP_SIZE)
    ]


def _from_blocks(blocks: list[MxBlock], length: int) -> np.ndarray:
    out = np.concatenate([b.decode() for b in blocks])
    return out[:length]


class StateUpdateEngine:
    """Bit-faithful functional model of one SPE.

    Args:
        rounding: rounding mode of the MX units' renormalizing shifts.
        lfsr_seed: seed of the per-SPE LFSR used for stochastic rounding.
    """

    def __init__(
        self,
        rounding: RoundingMode = RoundingMode.NEAREST,
        lfsr_seed: int = 0xACE1,
    ):
        self.rounding = rounding
        self.lfsr = (
            Lfsr(16, seed=lfsr_seed) if rounding is RoundingMode.STOCHASTIC else None
        )
        self.multiplier = MxMultiplier(self.lfsr)
        self.adder = MxAdder(self.lfsr)
        self.dot_unit = DotProductUnit()
        self.iterations = 0

    # -- state-update mode -------------------------------------------------

    def process_subchunk(
        self,
        state: np.ndarray,
        d: np.ndarray,
        k: np.ndarray,
        v_scalar: float,
        q: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Run one pipeline iteration; returns (new state slice, y partial).

        Args:
            state: current state sub-chunk, shape ``(n,)``.
            d: decay vector slice (same shape); scalar decays arrive
                pre-broadcast.
            k: key vector slice.
            v_scalar: the v element for this state column.
            q: query vector slice.
        """
        n = len(state)
        if not (len(d) == len(k) == len(q) == n):
            raise ValueError("operand slices must match the sub-chunk length")
        s_blocks = _to_blocks(state, self.rounding, self.lfsr)
        d_blocks = _to_blocks(d, self.rounding, self.lfsr)
        k_blocks = _to_blocks(k, self.rounding, self.lfsr)
        q_blocks = _to_blocks(q, self.rounding, self.lfsr)
        v_blocks = _to_blocks(np.full(len(s_blocks) * GROUP_SIZE, v_scalar),
                              self.rounding, self.lfsr)

        new_blocks: list[MxBlock] = []
        self.dot_unit.reset()
        for s_b, d_b, k_b, q_b, v_b in zip(
            s_blocks, d_blocks, k_blocks, q_blocks, v_blocks
        ):
            decay = self.multiplier(d_b, s_b)
            incr = self.multiplier(k_b, v_b)
            s_new = self.adder(decay, incr)
            self.dot_unit.accumulate(s_new, q_b)
            new_blocks.append(s_new)
        self.iterations += 1
        return _from_blocks(new_blocks, n), self.dot_unit.accumulator

    def update_head(
        self,
        state: np.ndarray,
        d: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        q: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sweep a whole (dim_head x dim_state) head through the SPE.

        Returns the updated state matrix and the output vector ``y`` of
        length ``dim_state`` (Eq. 2).
        """
        dim_head, dim_state = state.shape
        if len(d) != dim_head or len(k) != dim_head or len(q) != dim_head:
            raise ValueError("d/k/q must have length dim_head")
        if len(v) != dim_state:
            raise ValueError("v must have length dim_state")
        new_state = np.empty_like(state, dtype=np.float64)
        y = np.empty(dim_state)
        for j in range(dim_state):
            new_state[:, j], y[j] = self.process_subchunk(
                state[:, j], d, k, float(v[j]), q
            )
        return new_state, y

    # -- attention mode (Section 5.4) ---------------------------------------

    def score_subchunk(self, q: np.ndarray, k_t: np.ndarray) -> float:
        """Score phase: one dot product ``q . k_t`` (per cached position)."""
        self.dot_unit.reset()
        for q_b, k_b in zip(
            _to_blocks(q, self.rounding, self.lfsr),
            _to_blocks(k_t, self.rounding, self.lfsr),
        ):
            self.dot_unit.accumulate(q_b, k_b)
        self.iterations += 1
        return self.dot_unit.accumulator

    def attend_subchunk(
        self, acc: np.ndarray, score_t: float, v_t: np.ndarray
    ) -> np.ndarray:
        """Attend phase: ``acc + score_t * v_t`` through the mult/add units."""
        if len(acc) != len(v_t):
            raise ValueError("accumulator and value slices must match")
        out_blocks = []
        score_blocks = _to_blocks(
            np.full(len(v_t), score_t), self.rounding, self.lfsr
        )
        for a_b, s_b, v_b in zip(
            _to_blocks(acc, self.rounding, self.lfsr),
            score_blocks,
            _to_blocks(v_t, self.rounding, self.lfsr),
        ):
            out_blocks.append(self.adder(a_b, self.multiplier(s_b, v_b)))
        self.iterations += 1
        return _from_blocks(out_blocks, len(acc))


def reference_state_update(
    state: np.ndarray,
    d: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Float64 reference of Eq. 2 for one head: S' = d⊙S + k vᵀ; y = S'ᵀ q."""
    new_state = d[:, None] * state + np.outer(k, v)
    return new_state, new_state.T @ q
