"""Pimba accelerator configuration.

Section 4.1 compares three PIM organizations, all reproduced here:

* ``TIME_MULTIPLEXED`` — HBM-PIM style: one simple fp16 multiply/add unit,
  each state-update primitive (decay, outer product, update, GEMV) issued
  as a separate pass over the column, so a sub-chunk costs several PIM
  cycles.
* ``PER_BANK_PIPELINED`` — one full 4-stage pipeline per bank; a row buffer
  cannot read and write in the same cycle, so each bank alternates
  read/write and its pipeline is fed only every other cycle.
* ``SHARED_PIPELINED`` (Pimba) — one pipeline per *two* banks with access
  interleaving (Section 5.2): while one bank writes back, the SPU reads
  the other, so the pipeline is fed every cycle with half the units.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.dram.timing import HbmConfig, a100_hbm
from repro.quant.registry import get_format


class PimDesign(enum.Enum):
    """PIM processing-unit organization."""

    TIME_MULTIPLEXED = "time_multiplexed"
    PER_BANK_PIPELINED = "per_bank_pipelined"
    SHARED_PIPELINED = "pimba"


@dataclasses.dataclass(frozen=True)
class PimbaConfig:
    """Full configuration of one Pimba (or baseline PIM) device."""

    design: PimDesign = PimDesign.SHARED_PIPELINED
    state_format: str = "mx8SR"
    hbm: HbmConfig = dataclasses.field(default_factory=a100_hbm)
    #: serial column-command slots a time-multiplexed unit needs per
    #: sub-chunk of a state update.  HBM-PIM issues one command per
    #: primitive: read S, decay multiply, outer-product multiply, add,
    #: write-back, output MAC — six non-overlapped slots.  (Designs with
    #: a fused read-compute-write path can do 3; Fig. 5's straw man does.)
    time_multiplexed_passes: int = 6
    #: banks sharing one unit in the TIME_MULTIPLEXED design: the paper's
    #: GPU+PIM baseline spans two banks (area-matched to Pimba); the Fig. 5
    #: straw man uses one
    time_mux_sharing: int = 2
    #: pipeline depth of the SPE (Fig. 8: fetch, multiply, add, dot/write)
    pipeline_stages: int = 4

    def __post_init__(self) -> None:
        get_format(self.state_format)  # validate the name eagerly
        if self.time_multiplexed_passes < 1:
            raise ValueError("time_multiplexed_passes must be >= 1")
        if self.time_mux_sharing < 1:
            raise ValueError("time_mux_sharing must be >= 1")

    @property
    def banks_per_unit(self) -> int:
        """Banks sharing one processing unit."""
        if self.design is PimDesign.SHARED_PIPELINED:
            return 2
        if self.design is PimDesign.TIME_MULTIPLEXED:
            return self.time_mux_sharing
        return 1

    @property
    def units_per_channel(self) -> int:
        """Processing units instantiated per pseudo-channel."""
        return self.hbm.organization.banks // self.banks_per_unit

    @property
    def state_bits_per_value(self) -> float:
        return get_format(self.state_format).bits_per_value

    @property
    def values_per_column(self) -> int:
        """State elements held in one DRAM column access."""
        column_bits = self.hbm.organization.column_bytes * 8
        return int(column_bits // self.state_bits_per_value)


def pimba_config(**overrides) -> PimbaConfig:
    """The paper's Pimba design point (shared SPU, MX8 + SR)."""
    return PimbaConfig(**overrides)


def hbm_pim_config(**overrides) -> PimbaConfig:
    """GPU+PIM baseline: HBM-PIM-style time-multiplexed fp16 unit.

    The paper's baseline shares a unit between two banks *without* access
    interleaving, with fp16 state.
    """
    overrides.setdefault("design", PimDesign.TIME_MULTIPLEXED)
    overrides.setdefault("state_format", "fp16")
    return PimbaConfig(**overrides)


def per_bank_pipelined_config(**overrides) -> PimbaConfig:
    """Section 4.1's per-bank pipelined straw man (fp16)."""
    overrides.setdefault("design", PimDesign.PER_BANK_PIPELINED)
    overrides.setdefault("state_format", "fp16")
    return PimbaConfig(**overrides)
