"""Custom DRAM command scheduling for PIM sweeps (Section 5.5, Fig. 11).

A *sweep* is one pass over every chunk (DRAM row) a bank holds — e.g. one
generation step's state update for all requests mapped to the device.
Because the all-bank design executes banks in lock-step, scheduling a
single bank's command sequence gives the channel time.

Per DRAM row, the schedule is::

    ACT4 .. ACT4 .. ACT4 .. ACT4   (spaced tFAW; REG_WRITE fills the gaps)
    COMP x N                       (tCCD_L cadence; N depends on design)
    PRECHARGES                     (RESULT_READ overlapped with tRP)

``REG_WRITE`` moves operands (d, q, k once per chunk group; v per chunk)
over the data bus during the activation gaps; ``RESULT_READ`` drains the
output partial sums while the banks precharge.  Whatever does not fit in
those shadows is *exposed* and added to the row time — this is how the
scheduler reproduces the command-scheduling advantage Fig. 11 describes.
Baselines without Pimba's scheduler (the time-multiplexed HBM-PIM) expose
all operand/result I/O.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.config import PimbaConfig, PimDesign
from repro.core.layout import KvCacheLayout, StateLayout

#: bytes per partial-sum result element drained by RESULT_READ
RESULT_BYTES_PER_VALUE = 2


@dataclasses.dataclass(frozen=True)
class SweepTiming:
    """Bus-cycle timing of one PIM sweep on one pseudo-channel."""

    bus_cycles: int  #: total schedule length
    rows: int  #: DRAM rows activated per bank
    comp_cycles: int  #: cycles spent on COMP commands
    act_cycles: int  #: activation phases (ACT4 trains + tRCD)
    precharge_cycles: int  #: PRECHARGES windows
    exposed_io_cycles: int  #: REG_WRITE/RESULT_READ not hidden in shadows
    hidden_io_cycles: int  #: operand/result transfer that was overlapped

    @property
    def efficiency(self) -> float:
        """Fraction of the schedule doing useful COMP work."""
        if self.bus_cycles == 0:
            return 1.0
        return self.comp_cycles / self.bus_cycles

    def __add__(self, other: "SweepTiming") -> "SweepTiming":
        return SweepTiming(
            bus_cycles=self.bus_cycles + other.bus_cycles,
            rows=self.rows + other.rows,
            comp_cycles=self.comp_cycles + other.comp_cycles,
            act_cycles=self.act_cycles + other.act_cycles,
            precharge_cycles=self.precharge_cycles + other.precharge_cycles,
            exposed_io_cycles=self.exposed_io_cycles + other.exposed_io_cycles,
            hidden_io_cycles=self.hidden_io_cycles + other.hidden_io_cycles,
        )


def comps_per_subchunk(config: PimbaConfig, needs_write: bool) -> int:
    """Column-command slots each sub-chunk costs under a design.

    * Pimba (shared, interleaved): every bank still performs one read and
      one write column op per sub-chunk — access interleaving keeps the
      *SPU* fed every cycle with half the units, it does not create bank
      bandwidth.  Read-only sweeps are SPU-limited (one column per SPU
      per cycle serves two banks), so they also cost 2 slots.
    * Per-bank pipelined: same two slots when writing; read-only streams
      keep the per-bank unit fully fed at 1 slot.
    * Time-multiplexed: one slot per primitive pass (read+decay multiply,
      update MAC, write-back, output MAC), times the banks sharing the
      unit; GEMV-style read-only ops are its native single pass.
    """
    if config.design is PimDesign.TIME_MULTIPLEXED:
        passes = config.time_multiplexed_passes if needs_write else 1
        return passes * config.banks_per_unit
    if config.design is PimDesign.PER_BANK_PIPELINED:
        return 2 if needs_write else 1
    return 2


def _bus_bursts(config: PimbaConfig, n_bytes: float) -> int:
    """Data-bus bursts (of tBL cycles each) to move ``n_bytes``."""
    column = config.hbm.organization.column_bytes
    return math.ceil(n_bytes / column)


def _sweep(
    config: PimbaConfig,
    rows: int,
    comps_per_row: int,
    reg_bytes_per_row: float,
    result_bytes_per_row: float,
) -> SweepTiming:
    """Schedule ``rows`` uniform rows on one bank (all banks in lock-step)."""
    if rows < 0:
        raise ValueError("row count must be non-negative")
    t = config.hbm.timing
    org = config.hbm.organization
    n_act4 = math.ceil(org.banks / 4)

    act_phase = (n_act4 - 1) * t.tFAW + t.tRCD
    comp_phase = comps_per_row * t.tCCD_L
    pre_phase = t.tRP

    # I/O bursts cross the shared data bus once per bank (operands differ
    # per bank because each bank hosts different heads' chunks).
    reg_cycles = _bus_bursts(config, reg_bytes_per_row * org.banks) * t.tBL
    result_cycles = _bus_bursts(config, result_bytes_per_row * org.banks) * t.tBL

    if config.design is PimDesign.TIME_MULTIPLEXED:
        # No Fig. 11 overlap: all I/O is exposed serially.
        exposed = reg_cycles + result_cycles
        hidden = 0
    else:
        # REG_WRITE hides in the (tFAW - tBL) gaps of the ACT4 train;
        # RESULT_READ overlaps PRECHARGES and the next activation train.
        reg_shadow = (n_act4 - 1) * (t.tFAW - t.tBL)
        result_shadow = pre_phase + act_phase
        exposed = max(0, reg_cycles - reg_shadow)
        exposed += max(0, result_cycles - result_shadow)
        hidden = (reg_cycles + result_cycles) - exposed

    row_total = act_phase + comp_phase + pre_phase + exposed
    return SweepTiming(
        bus_cycles=row_total * rows,
        rows=rows,
        comp_cycles=comp_phase * rows,
        act_cycles=act_phase * rows,
        precharge_cycles=pre_phase * rows,
        exposed_io_cycles=exposed * rows,
        hidden_io_cycles=hidden * rows,
    )


# -- state update (Eq. 2) ------------------------------------------------------

def schedule_state_update_rows(
    config: PimbaConfig,
    layout: StateLayout,
    rows_per_bank: int,
    groups_per_bank: float | None = None,
) -> SweepTiming:
    """Timing of a state-update sweep over ``rows_per_bank`` chunks.

    Args:
        rows_per_bank: DRAM rows (chunks) the most-loaded bank processes.
        groups_per_bank: chunk groups (heads) among those rows, controlling
            how often the shared d/q/k operands are re-sent; defaults to
            ``rows / chunks_per_head``.
    """
    if rows_per_bank == 0:
        return _sweep(config, 0, 0, 0.0, 0.0)
    if groups_per_bank is None:
        groups_per_bank = max(1.0, rows_per_bank / layout.chunks_per_head)

    subchunks_per_row = min(
        layout.used_subchunks_per_chunk, layout.subchunks_per_head
    )
    comps = subchunks_per_row * comps_per_subchunk(config, needs_write=True)

    operand_bytes = config.state_bits_per_value / 8
    shared_bytes = layout.shared_operand_values * operand_bytes
    v_bytes = layout.per_chunk_operand_values * operand_bytes
    reg_per_row = v_bytes + shared_bytes * groups_per_bank / rows_per_bank
    result_per_row = (
        layout.result_values * RESULT_BYTES_PER_VALUE
        * groups_per_bank / rows_per_bank
    )
    return _sweep(config, rows_per_bank, comps, reg_per_row, result_per_row)


def schedule_state_update_sweep(
    config: PimbaConfig,
    layout: StateLayout,
    heads_per_bank: int,
) -> SweepTiming:
    """Head-granularity convenience wrapper (whole chunk groups per bank)."""
    if heads_per_bank < 0:
        raise ValueError("heads_per_bank must be non-negative")
    return schedule_state_update_rows(
        config,
        layout,
        rows_per_bank=heads_per_bank * layout.chunks_per_head,
        groups_per_bank=float(heads_per_bank),
    )


# -- attention (Section 5.4) ---------------------------------------------------

def schedule_attention_rows(
    config: PimbaConfig,
    layout: KvCacheLayout,
    rows_per_bank: int,
    caches_per_bank: float,
    phase: str = "score",
) -> SweepTiming:
    """Timing of one attention phase over ``rows_per_bank`` KV-cache rows.

    Both phases stream the K (or V) cache read-only; the score phase drains
    one partial score per cached position, the attend phase loads one score
    per position and drains the output vector once per cache.
    """
    if phase not in ("score", "attend"):
        raise ValueError("phase must be 'score' or 'attend'")
    if rows_per_bank == 0:
        return _sweep(config, 0, 0, 0.0, 0.0)

    org = config.hbm.organization
    subchunks_per_row = min(org.columns_per_row, max(1, layout.subchunks_per_pass))
    comps = subchunks_per_row * comps_per_subchunk(config, needs_write=False)
    positions_per_row = subchunks_per_row / layout.subchunks_per_vector
    operand_bytes = config.state_bits_per_value / 8

    if phase == "score":
        reg_per_row = (
            layout.dim_head * operand_bytes * caches_per_bank / rows_per_bank
        )
        result_per_row = positions_per_row * RESULT_BYTES_PER_VALUE
    else:
        reg_per_row = positions_per_row * operand_bytes
        result_per_row = (
            layout.dim_head * RESULT_BYTES_PER_VALUE
            * caches_per_bank / rows_per_bank
        )
    return _sweep(config, rows_per_bank, comps, reg_per_row, result_per_row)


def schedule_attention_sweep(
    config: PimbaConfig,
    layout: KvCacheLayout,
    heads_per_bank: int,
    phase: str = "score",
) -> SweepTiming:
    """Cache-granularity convenience wrapper (whole KV caches per bank)."""
    if heads_per_bank < 0:
        raise ValueError("heads_per_bank must be non-negative")
    return schedule_attention_rows(
        config,
        layout,
        rows_per_bank=heads_per_bank * max(1, layout.rows_per_cache),
        caches_per_bank=float(heads_per_bank),
        phase=phase,
    )
