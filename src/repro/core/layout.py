"""State and KV-cache data layout in PIM banks (Section 5.1 (3), Fig. 10a).

Terminology, following the paper:

* **sub-chunk** — the slice of one state column (the ``dim_head`` axis)
  that fits in a single DRAM column access (32 B).  One PIM iteration
  processes one sub-chunk.
* **chunk** — sub-chunks grouped across the ``dim_state`` axis until they
  fill one DRAM row, so a row activation feeds many sequential column
  accesses.
* **chunk group** — the chunks of one head, placed in consecutive rows of
  one bank.  Chunks in a group share the per-head operands ``d_t, q_t,
  k_t``; only the per-column ``v_t`` elements differ, minimizing
  REG_WRITE traffic.

The KV cache layout for attention (Fig. 10a) partitions each cached K/V
vector along ``dim_head`` into the same column-sized sub-chunks, mapped
contiguously in rows so the score/attend dataflows stream sequentially.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.config import PimbaConfig


@dataclasses.dataclass(frozen=True)
class StateLayout:
    """Placement of one head's (dim_head x dim_state) state matrix."""

    dim_head: int
    dim_state: int
    #: state elements per DRAM column access, set by the storage format
    values_per_column: int
    #: DRAM columns per row
    columns_per_row: int

    def __post_init__(self) -> None:
        if self.dim_head <= 0 or self.dim_state <= 0:
            raise ValueError("state dimensions must be positive")
        if self.values_per_column <= 0 or self.columns_per_row <= 0:
            raise ValueError("device geometry must be positive")

    @property
    def subchunks_per_state_column(self) -> int:
        """DRAM columns needed for one state column (length dim_head)."""
        return math.ceil(self.dim_head / self.values_per_column)

    @property
    def subchunks_per_head(self) -> int:
        """Total PIM iterations to sweep one head's state once."""
        return self.subchunks_per_state_column * self.dim_state

    @property
    def state_columns_per_chunk(self) -> int:
        """How many state columns (v elements) one DRAM row covers."""
        return max(1, self.columns_per_row // self.subchunks_per_state_column)

    @property
    def chunks_per_head(self) -> int:
        """DRAM rows per head (the chunk-group size)."""
        return math.ceil(self.dim_state / self.state_columns_per_chunk)

    @property
    def used_subchunks_per_chunk(self) -> int:
        """Occupied DRAM columns per row.

        When ``dim_head`` does not divide the row, whole state columns are
        kept row-aligned and the trailing columns go unused — a real cost
        of the Section 5.1 layout that the scheduler must not count as
        compute.
        """
        return min(
            self.columns_per_row,
            self.subchunks_per_state_column * self.state_columns_per_chunk,
        )

    @property
    def shared_operand_values(self) -> int:
        """Values of d, q, k shipped once per chunk group (3 vectors)."""
        return 3 * self.dim_head

    @property
    def per_chunk_operand_values(self) -> int:
        """v elements shipped per chunk."""
        return self.state_columns_per_chunk

    @property
    def result_values(self) -> int:
        """Output y values produced per head (one per state column)."""
        return self.dim_state


@dataclasses.dataclass(frozen=True)
class KvCacheLayout:
    """Placement of one head's KV cache for attention mode (Fig. 10a)."""

    dim_head: int
    seq_len: int
    values_per_column: int
    columns_per_row: int

    def __post_init__(self) -> None:
        if self.seq_len < 0:
            raise ValueError("sequence length must be non-negative")

    @property
    def subchunks_per_vector(self) -> int:
        """DRAM columns per cached key (or value) vector."""
        return math.ceil(self.dim_head / self.values_per_column)

    @property
    def subchunks_per_pass(self) -> int:
        """Column accesses to stream the whole K (or V) cache once."""
        return self.subchunks_per_vector * self.seq_len

    @property
    def rows_per_cache(self) -> int:
        """DRAM rows holding one head's K (or V) cache."""
        return math.ceil(self.subchunks_per_pass / self.columns_per_row)


@dataclasses.dataclass(frozen=True)
class BankAssignment:
    """How many heads' chunk groups land on each bank of a device."""

    total_heads: int  #: batch x heads state instances
    pseudo_channels: int
    banks_per_channel: int

    @property
    def total_banks(self) -> int:
        return self.pseudo_channels * self.banks_per_channel

    @property
    def heads_per_bank(self) -> int:
        """Worst-case (ceiling) heads mapped to one bank.

        The all-bank PIM design executes banks in lock-step, so the most
        loaded bank sets the latency.
        """
        return math.ceil(self.total_heads / self.total_banks)


def state_layout_for(config: PimbaConfig, dim_head: int, dim_state: int) -> StateLayout:
    """Build the state layout implied by a device config and head shape."""
    org = config.hbm.organization
    return StateLayout(
        dim_head=dim_head,
        dim_state=dim_state,
        values_per_column=config.values_per_column,
        columns_per_row=org.columns_per_row,
    )


def kv_layout_for(config: PimbaConfig, dim_head: int, seq_len: int) -> KvCacheLayout:
    """Build the KV-cache layout implied by a device config."""
    org = config.hbm.organization
    return KvCacheLayout(
        dim_head=dim_head,
        seq_len=seq_len,
        values_per_column=config.values_per_column,
        columns_per_row=org.columns_per_row,
    )
