"""Pimba accelerator core: configs, layout, SPE/SPU, scheduler, device.

The paper's primary contribution (Section 5), reproduced end to end:
data layout (5.1), hazard-free access interleaving (5.2), the MX-based SPE
(5.3), attention mode (5.4), and the custom command schedule (5.5).
"""

from repro.core.accelerator import PimbaAccelerator, PimTiming
from repro.core.config import (
    PimbaConfig,
    PimDesign,
    hbm_pim_config,
    per_bank_pipelined_config,
    pimba_config,
)
from repro.core.layout import (
    BankAssignment,
    KvCacheLayout,
    StateLayout,
    kv_layout_for,
    state_layout_for,
)
from repro.core.scheduler import (
    SweepTiming,
    comps_per_subchunk,
    schedule_attention_rows,
    schedule_attention_sweep,
    schedule_state_update_rows,
    schedule_state_update_sweep,
)
from repro.core.spe import StateUpdateEngine, reference_state_update
from repro.core.spu import (
    SpuRun,
    StructuralHazardError,
    channel_subchunk_rate,
    simulate_design,
    simulate_per_bank_pipelined,
    simulate_shared_spu,
    simulate_time_multiplexed,
)

__all__ = [
    "PimbaAccelerator",
    "PimTiming",
    "PimbaConfig",
    "PimDesign",
    "hbm_pim_config",
    "per_bank_pipelined_config",
    "pimba_config",
    "BankAssignment",
    "KvCacheLayout",
    "StateLayout",
    "kv_layout_for",
    "state_layout_for",
    "SweepTiming",
    "comps_per_subchunk",
    "schedule_attention_sweep",
    "schedule_state_update_sweep",
    "StateUpdateEngine",
    "reference_state_update",
    "SpuRun",
    "StructuralHazardError",
    "channel_subchunk_rate",
    "simulate_design",
    "simulate_per_bank_pipelined",
    "simulate_shared_spu",
    "simulate_time_multiplexed",
]
