"""State-update Processing Unit: pipeline and access-interleaving model.

This module answers the Section 4.1/5.2 questions *by simulation*: it
schedules sub-chunk reads, pipeline stages, and write-backs cycle by cycle
for all three PIM organizations, asserts that no row buffer is asked to
read and write in the same PIM cycle (the structural hazard), and reports
the cycles each design needs — from which Fig. 5's "same throughput, half
the units" claim is *measured*.

One PIM cycle equals ``tCCD_L`` bus cycles (the COMP cadence).
"""

from __future__ import annotations

import dataclasses

from repro.core.config import PimbaConfig, PimDesign


class StructuralHazardError(RuntimeError):
    """A bank's row buffer was scheduled for read and write in one cycle."""


@dataclasses.dataclass
class BankPort:
    """Tracks per-cycle row-buffer usage of one bank."""

    index: int
    usage: dict[int, str] = dataclasses.field(default_factory=dict)

    def access(self, cycle: int, kind: str) -> None:
        if cycle in self.usage:
            raise StructuralHazardError(
                f"bank {self.index}: {kind} and {self.usage[cycle]} both at "
                f"cycle {cycle}"
            )
        self.usage[cycle] = kind


@dataclasses.dataclass(frozen=True)
class SpuRun:
    """Result of simulating one unit (or unit pair) workload."""

    cycles: int  #: PIM cycles from first read to last write
    subchunks: int  #: sub-chunks processed
    units: int  #: processing units involved
    reads: int
    writes: int

    @property
    def throughput_per_unit(self) -> float:
        """Sub-chunks per PIM cycle per processing unit."""
        if self.cycles == 0:
            return 0.0
        return self.subchunks / self.cycles / self.units


def simulate_shared_spu(n_per_bank: int, pipeline_stages: int = 4) -> SpuRun:
    """Pimba: one SPU shared by two banks with access interleaving (Fig. 8).

    Even cycles read the upper bank, odd cycles read the bottom bank; the
    write-back of the sub-chunk read at cycle ``c`` lands at
    ``c + pipeline_stages - 1``, which has opposite parity, so it never
    collides with that bank's reads.
    """
    if n_per_bank < 0:
        raise ValueError("n_per_bank must be non-negative")
    upper, bottom = BankPort(0), BankPort(1)
    writeback = pipeline_stages - 1
    if writeback % 2 == 0:
        raise ValueError("write-back offset must be odd for hazard-free interleaving")
    last = 0
    reads = writes = 0
    for i in range(n_per_bank):
        for parity, port in ((0, upper), (1, bottom)):
            read_cycle = 2 * i + parity
            port.access(read_cycle, "read")
            port.access(read_cycle + writeback, "write")
            reads += 1
            writes += 1
            last = max(last, read_cycle + writeback)
    return SpuRun(cycles=last + 1, subchunks=2 * n_per_bank, units=1,
                  reads=reads, writes=writes)


def simulate_per_bank_pipelined(n_per_bank: int, pipeline_stages: int = 4) -> SpuRun:
    """Per-bank pipelined straw man: one pipeline per bank.

    The single row buffer alternates read (even cycles) and write (odd
    cycles), so the pipeline is fed only every other cycle — half its peak.
    """
    if n_per_bank < 0:
        raise ValueError("n_per_bank must be non-negative")
    port = BankPort(0)
    writeback = pipeline_stages - 1
    last = 0
    for i in range(n_per_bank):
        read_cycle = 2 * i
        port.access(read_cycle, "read")
        port.access(read_cycle + writeback, "write")
        last = max(last, read_cycle + writeback)
    return SpuRun(cycles=last + 1, subchunks=n_per_bank, units=1,
                  reads=n_per_bank, writes=n_per_bank)


def simulate_time_multiplexed(
    n_per_bank: int, banks_per_unit: int = 2, passes: int = 4
) -> SpuRun:
    """HBM-PIM-style unit: each sub-chunk occupies the unit for ``passes``
    serial column operations (fused read-multiply, update, fused
    output-write), with no overlap across sub-chunks.
    """
    if n_per_bank < 0:
        raise ValueError("n_per_bank must be non-negative")
    ports = [BankPort(i) for i in range(banks_per_unit)]
    cycle = 0
    reads = writes = 0
    for i in range(n_per_bank):
        for port in ports:
            port.access(cycle, "read")
            port.access(cycle + passes - 1, "write")
            reads += 1
            writes += 1
            cycle += passes
    total = n_per_bank * banks_per_unit
    return SpuRun(cycles=cycle, subchunks=total, units=1, reads=reads, writes=writes)


def simulate_design(
    config: PimbaConfig, n_per_bank: int
) -> SpuRun:
    """Simulate ``config.design`` processing ``n_per_bank`` sub-chunks/bank."""
    if config.design is PimDesign.SHARED_PIPELINED:
        return simulate_shared_spu(n_per_bank, config.pipeline_stages)
    if config.design is PimDesign.PER_BANK_PIPELINED:
        return simulate_per_bank_pipelined(n_per_bank, config.pipeline_stages)
    return simulate_time_multiplexed(
        n_per_bank,
        banks_per_unit=config.banks_per_unit,
        passes=config.time_multiplexed_passes,
    )


def channel_subchunk_rate(config: PimbaConfig, n_per_bank: int = 256) -> float:
    """Steady-state sub-chunks per PIM cycle for one whole pseudo-channel.

    Every processing unit covers ``config.banks_per_unit`` banks and all
    units run in lock-step (all-bank design), so the channel rate is the
    per-unit rate times the unit count.
    """
    run = simulate_design(config, n_per_bank)
    units = config.units_per_channel
    if units * config.banks_per_unit != config.hbm.organization.banks:
        raise ValueError("unit count does not cover all banks exactly")
    return run.subchunks / run.cycles * units
