"""Bank state machine with a row buffer, enforcing per-bank timing.

The bank tracks when each constraint window closes, so a scheduler can ask
``earliest_activate`` / ``earliest_read`` / ... and either assert legality
(PIM deterministic schedules) or shift the command later (FCFS controller).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.dram.timing import TimingParams


class BankState(enum.Enum):
    """Row-buffer status of a bank."""

    IDLE = "idle"  # no row open
    ACTIVE = "active"  # a row is latched in the row buffer


class TimingError(RuntimeError):
    """A command was issued before its timing constraints were met."""


class Bank:
    """One DRAM bank: a row buffer plus the timing windows that guard it."""

    def __init__(self, timing: TimingParams, columns_per_row: int, index: int = 0):
        self.timing = timing
        self.columns_per_row = columns_per_row
        self.index = index
        self.state = BankState.IDLE
        self.open_row: int | None = None
        # Earliest cycles at which each command class becomes legal.
        self._act_ready = 0
        self._col_ready = 0
        self._pre_ready = 0
        self.stats = {"activates": 0, "reads": 0, "writes": 0, "precharges": 0}

    # -- queries ---------------------------------------------------------

    def earliest_activate(self, now: int) -> int:
        if self.state is not BankState.IDLE:
            raise TimingError(f"bank {self.index}: ACT while a row is open")
        return max(now, self._act_ready)

    def earliest_column(self, now: int) -> int:
        if self.state is not BankState.ACTIVE:
            raise TimingError(f"bank {self.index}: column access with no open row")
        return max(now, self._col_ready)

    def earliest_precharge(self, now: int) -> int:
        if self.state is not BankState.ACTIVE:
            raise TimingError(f"bank {self.index}: PRE with no open row")
        return max(now, self._pre_ready)

    # -- state transitions -----------------------------------------------

    def activate(self, cycle: int, row: int) -> None:
        """Open ``row``; first column access is legal after tRCD."""
        legal = self.earliest_activate(cycle)
        if cycle < legal:
            raise TimingError(
                f"bank {self.index}: ACT at {cycle} before legal cycle {legal}"
            )
        self.state = BankState.ACTIVE
        self.open_row = row
        self._col_ready = cycle + self.timing.tRCD
        self._pre_ready = cycle + self.timing.tRAS
        self.stats["activates"] += 1

    def read(self, cycle: int, column: int) -> None:
        """Column read; the next precharge must wait out tRTP."""
        self._column_access(cycle, column)
        self._pre_ready = max(self._pre_ready, cycle + self.timing.tRTP_L)
        self.stats["reads"] += 1

    def write(self, cycle: int, column: int) -> None:
        """Column write; the next precharge must wait out write recovery."""
        self._column_access(cycle, column)
        self._pre_ready = max(
            self._pre_ready, cycle + self.timing.tBL + self.timing.tWR
        )
        self.stats["writes"] += 1

    def precharge(self, cycle: int) -> None:
        """Close the open row; the bank re-opens after tRP."""
        legal = self.earliest_precharge(cycle)
        if cycle < legal:
            raise TimingError(
                f"bank {self.index}: PRE at {cycle} before legal cycle {legal}"
            )
        self.state = BankState.IDLE
        self.open_row = None
        self._act_ready = cycle + self.timing.tRP
        self.stats["precharges"] += 1

    # -- helpers -----------------------------------------------------------

    def _column_access(self, cycle: int, column: int) -> None:
        if not 0 <= column < self.columns_per_row:
            raise ValueError(
                f"column {column} out of range [0, {self.columns_per_row})"
            )
        legal = self.earliest_column(cycle)
        if cycle < legal:
            raise TimingError(
                f"bank {self.index}: column access at {cycle} before {legal}"
            )
        # Successive column accesses in the same bank observe tCCD_L.
        self._col_ready = cycle + self.timing.tCCD_L


class FawTracker:
    """Sliding-window tracker for the four-activation window (tFAW)."""

    def __init__(self, timing: TimingParams, window: int = 4):
        self.timing = timing
        self.window = window
        self._history: list[int] = []

    def earliest(self, now: int) -> int:
        """Earliest cycle a new activation may issue."""
        if len(self._history) < self.window:
            return now
        return max(now, self._history[-self.window] + self.timing.tFAW)

    def record(self, cycle: int) -> None:
        legal = self.earliest(cycle)
        if cycle < legal:
            raise TimingError(f"ACT at {cycle} violates tFAW (earliest {legal})")
        self._history.append(cycle)
        # Keep memory bounded.
        if len(self._history) > 4 * self.window:
            self._history = self._history[-self.window:]

    def utilization(self) -> float:
        """Average activations per tFAW window observed so far."""
        if len(self._history) < 2:
            return 0.0
        span = self._history[-1] - self._history[0]
        if span == 0:
            return float(self.window)
        return float(
            np.clip(len(self._history) * self.timing.tFAW / span, 0, 2 * self.window)
        )
