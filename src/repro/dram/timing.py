"""DRAM timing parameters and organization (Table 1 of the paper).

All timing values are in *memory bus clock cycles*, matching Table 1:

    tRP = 14, tRAS = 34, tCCD_S = 2, tCCD_L = 4, tWR = 16,
    tRTP_S = 4, tRTP_L = 6, tREFI = 3900, tFAW = 30

The paper's PIM clock runs one tick per ``tCCD_L`` bus cycles (378 MHz for
a 1512 MHz HBM2E bus; 657 MHz for a 2626 MHz HBM3 bus on H100).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class TimingParams:
    """DRAM timing constraints in memory-bus clock cycles."""

    tRP: int = 14  #: precharge latency
    tRAS: int = 34  #: minimum row-open time (ACT -> PRE)
    tRCD: int = 14  #: ACT -> first column access
    tCCD_S: int = 2  #: column-to-column, different bank group
    tCCD_L: int = 4  #: column-to-column, same bank group
    tWR: int = 16  #: write recovery (end of write -> PRE)
    tRTP_S: int = 4  #: read -> precharge, different bank group
    tRTP_L: int = 6  #: read -> precharge, same bank group
    tREFI: int = 3900  #: average refresh interval
    tRFC: int = 390  #: refresh cycle time
    tFAW: int = 30  #: four-activation window
    tRRD: int = 4  #: activate-to-activate, different banks
    tBL: int = 2  #: burst length on the bus, in clock cycles

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) <= 0:
                raise ValueError(f"{field.name} must be positive")

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time the device is unavailable due to refresh."""
        return self.tRFC / self.tREFI


@dataclasses.dataclass(frozen=True)
class HbmOrganization:
    """Organization of one HBM pseudo-channel (Table 1)."""

    banks_per_group: int = 4
    bank_groups: int = 4
    #: column access width in bytes (one COMP operand / bus burst)
    column_bytes: int = 32
    #: DRAM row (page) size per bank in bytes
    row_bytes: int = 1024
    #: bus width in bits for one pseudo-channel
    bus_bits: int = 64

    @property
    def banks(self) -> int:
        """Total banks in the pseudo-channel."""
        return self.banks_per_group * self.bank_groups

    @property
    def columns_per_row(self) -> int:
        return self.row_bytes // self.column_bytes


@dataclasses.dataclass(frozen=True)
class HbmConfig:
    """A complete HBM stack configuration used by one GPU-class device."""

    name: str = "HBM2E-A100"
    timing: TimingParams = dataclasses.field(default_factory=TimingParams)
    organization: HbmOrganization = dataclasses.field(default_factory=HbmOrganization)
    #: memory bus frequency in Hz (Table 1: 1.512 GHz; H100: 2.626 GHz)
    bus_frequency_hz: float = 1.512e9
    #: pseudo-channels per device.  The paper's "40 PIM memory modules" are
    #: 40 128-bit HBM channels = 80 64-bit pseudo-channels (5 stacks x 8
    #: channels x 2), which reproduces the A100's ~1.94 TB/s.
    pseudo_channels: int = 80

    @property
    def pim_frequency_hz(self) -> float:
        """PIM (SPU) clock: one tick per tCCD_L bus cycles."""
        return self.bus_frequency_hz / self.timing.tCCD_L

    @property
    def channel_bandwidth_bytes(self) -> float:
        """Peak data-bus bandwidth of one pseudo-channel in bytes/s.

        The bus moves ``bus_bits`` per edge, two edges per clock (DDR).
        """
        return self.organization.bus_bits / 8 * 2 * self.bus_frequency_hz

    @property
    def device_bandwidth_bytes(self) -> float:
        """Aggregate external bandwidth across all pseudo-channels."""
        return self.channel_bandwidth_bytes * self.pseudo_channels

    @property
    def internal_bandwidth_bytes(self) -> float:
        """Aggregate in-bank bandwidth available to per-bank PIM.

        Each bank can deliver one ``column_bytes`` access per ``tCCD_L``
        bus cycles to its local compute unit, across all banks in parallel.
        """
        org = self.organization
        per_bank = org.column_bytes * self.bus_frequency_hz / self.timing.tCCD_L
        return per_bank * org.banks * self.pseudo_channels


def a100_hbm() -> HbmConfig:
    """HBM2E configuration matching the A100-based evaluation (Table 1)."""
    return HbmConfig()


def h100_hbm() -> HbmConfig:
    """HBM3 configuration for the H100 sensitivity study (Fig. 16)."""
    return HbmConfig(name="HBM3-H100", bus_frequency_hz=2.626e9)
