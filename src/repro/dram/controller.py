"""A first-come-first-served memory controller over one pseudo-channel.

The controller takes *requests* (row, column, read/write) and emits a legal
command stream — activating rows, respecting tCCD/tFAW/tWR/tRTP windows and
inserting refreshes.  It is used to measure how long a conventional
(non-PIM) device takes to stream a tensor through the channel, which is the
baseline against which the Pimba scheduler's internal-bandwidth advantage
is computed.
"""

from __future__ import annotations

import dataclasses

from repro.dram.bank import BankState, TimingError
from repro.dram.commands import Command, CommandKind
from repro.dram.device import PseudoChannel
from repro.dram.timing import HbmConfig


@dataclasses.dataclass(frozen=True)
class Request:
    """One column-granularity memory request."""

    bank: int
    row: int
    column: int
    is_write: bool = False


class FcfsController:
    """In-order controller with open-page policy and refresh insertion."""

    def __init__(self, config: HbmConfig, refresh: bool = True):
        self.config = config
        self.channel = PseudoChannel(config)
        self.refresh = refresh
        self._next_refresh = config.timing.tREFI
        self.issued: list[Command] = []
        self._cursor = 0

    def _issue(self, kind: CommandKind, cycle: int, **kw) -> int:
        cmd = Command(issue_cycle=cycle, kind=kind, **kw)
        done = self.channel.execute(cmd)
        self.issued.append(cmd)
        self._cursor = max(self._cursor, cycle)
        return done

    def _maybe_refresh(self, now: int) -> int:
        """Close all rows and refresh if the refresh deadline passed."""
        if not self.refresh or now < self._next_refresh:
            return now
        t = now
        for bank in self.channel.banks:
            if bank.state is BankState.ACTIVE:
                t = bank.earliest_precharge(t)
                self._issue(CommandKind.PRE, t, bank=bank.index)
                t += 1
        t = max(t, self._next_refresh)
        self._issue(CommandKind.REF, t)
        self._next_refresh += self.config.timing.tREFI
        return t + self.config.timing.tRFC

    def run(self, requests: list[Request]) -> int:
        """Execute ``requests`` in order; return the completion cycle."""
        t = self._cursor
        for req in requests:
            t = self._maybe_refresh(t)
            bank = self.channel.banks[req.bank]
            if bank.state is BankState.ACTIVE and bank.open_row != req.row:
                t = bank.earliest_precharge(t)
                self._issue(CommandKind.PRE, t, bank=req.bank)
                t += 1
            if bank.state is BankState.IDLE:
                t = max(bank.earliest_activate(t), self.channel.faw.earliest(t))
                self._issue(CommandKind.ACT, t, bank=req.bank, row=req.row)
                t += 1
            t = self.channel.earliest_column_issue(req.bank, t)
            t = max(t, self.channel._bus_free)
            kind = CommandKind.WR if req.is_write else CommandKind.RD
            done = self._issue(kind, t, bank=req.bank, column=req.column)
            t = max(t, done - self.config.timing.tBL)
        return self._drain(t)

    def _drain(self, t: int) -> int:
        """Completion cycle after the last data burst."""
        return max(t, self.channel._bus_free)


def stream_cycles(config: HbmConfig, n_bytes: int, read_fraction: float = 1.0) -> int:
    """Cycles for an ideal sequential stream of ``n_bytes`` through one channel.

    Convenience closed-form used by the GPU roofline model: the data bus is
    the bottleneck, one column (``column_bytes``) per ``tBL`` cycles, with
    refresh overhead layered on top.

    Args:
        config: HBM configuration.
        n_bytes: bytes moved (reads + writes combined).
        read_fraction: unused in the closed form; kept for interface parity
            with the event-driven controller.
    """
    del read_fraction
    org = config.organization
    columns = -(-n_bytes // org.column_bytes)
    busy = columns * config.timing.tBL
    return int(busy * (1.0 + config.timing.refresh_overhead))
