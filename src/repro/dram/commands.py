"""DRAM command vocabulary: standard JEDEC-style plus Pimba extensions.

Section 5.5 defines five custom commands layered on the standard interface:

* ``ACT4``         — gang four activations (obeys tFAW / tRRD)
* ``REG_WRITE``    — load MX8 operands into SPU registers over the bus
* ``COMP``         — one pipelined PIM column operation across all banks
* ``RESULT_READ``  — drain accumulator partial sums to the host
* ``PRECHARGES``   — all-bank precharge of updated row buffers
"""

from __future__ import annotations

import dataclasses
import enum


class CommandKind(enum.Enum):
    """Every command the controller and PIM scheduler can issue."""

    # Standard DRAM commands
    ACT = "ACT"
    RD = "RD"
    WR = "WR"
    PRE = "PRE"
    REF = "REF"
    # Pimba custom commands (Section 5.5)
    ACT4 = "ACT4"
    REG_WRITE = "REG_WRITE"
    COMP = "COMP"
    RESULT_READ = "RESULT_READ"
    PRECHARGES = "PRECHARGES"


#: commands that occupy the data bus (overlappable with ACT4/PRECHARGES)
DATA_BUS_COMMANDS = frozenset(
    {CommandKind.RD, CommandKind.WR, CommandKind.REG_WRITE, CommandKind.RESULT_READ}
)

#: custom commands addressed to every bank at once (all-bank design)
ALL_BANK_COMMANDS = frozenset(
    {CommandKind.ACT4, CommandKind.COMP, CommandKind.PRECHARGES}
)


@dataclasses.dataclass(frozen=True, order=True)
class Command:
    """One scheduled command instance.

    Attributes:
        issue_cycle: bus-clock cycle the command is placed on the C/A bus.
        kind: command opcode.
        bank: target bank index (-1 for all-bank commands).
        row: target row for activations.
        column: target column for column commands.
    """

    issue_cycle: int
    kind: CommandKind
    bank: int = -1
    row: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        if self.issue_cycle < 0:
            raise ValueError("issue_cycle must be non-negative")
        if self.kind in ALL_BANK_COMMANDS and self.bank != -1:
            raise ValueError(
                f"{self.kind.value} is an all-bank command; bank must be -1"
            )
