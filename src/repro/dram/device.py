"""Pseudo-channel device model: banks, bank groups, buses, refresh.

One :class:`PseudoChannel` owns 16 banks (4 groups x 4 banks, Table 1), a
command/address bus and a data bus.  It executes standard command streams
while enforcing every timing constraint; the Pimba scheduler in
``repro.core.scheduler`` builds its custom all-bank command schedules on
top of this device.
"""

from __future__ import annotations

from repro.dram.bank import Bank, FawTracker, TimingError
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import HbmConfig


class PseudoChannel:
    """One 64-bit HBM pseudo-channel with timing-checked banks."""

    def __init__(self, config: HbmConfig):
        self.config = config
        self.timing = config.timing
        org = config.organization
        self.banks = [
            Bank(self.timing, org.columns_per_row, index=i) for i in range(org.banks)
        ]
        self.faw = FawTracker(self.timing)
        self.now = 0
        # Earliest cycle the shared data bus is free.
        self._bus_free = 0
        # Last column command cycle per bank group (tCCD_S/L arbitration).
        self._last_col_cycle: int | None = None
        self._last_col_group: int | None = None
        self.stats = {"bus_busy_cycles": 0, "commands": 0}

    def bank_group_of(self, bank: int) -> int:
        return bank // self.config.organization.banks_per_group

    # -- legality queries -------------------------------------------------

    def earliest_column_issue(self, bank: int, now: int) -> int:
        """Earliest cycle a column command to ``bank`` satisfies tCCD."""
        t = self.banks[bank].earliest_column(now)
        if self._last_col_cycle is not None:
            same_group = self._last_col_group == self.bank_group_of(bank)
            gap = self.timing.tCCD_L if same_group else self.timing.tCCD_S
            t = max(t, self._last_col_cycle + gap)
        return t

    # -- execution ---------------------------------------------------------

    def execute(self, command: Command) -> int:
        """Execute one standard command; returns its completion cycle.

        Raises:
            TimingError: if the command violates any timing constraint.
        """
        kind, cycle = command.kind, command.issue_cycle
        if cycle < self.now:
            raise TimingError(f"command stream not monotonic at cycle {cycle}")
        self.stats["commands"] += 1
        handler = {
            CommandKind.ACT: self._do_activate,
            CommandKind.RD: self._do_read,
            CommandKind.WR: self._do_write,
            CommandKind.PRE: self._do_precharge,
            CommandKind.REF: self._do_refresh,
        }.get(kind)
        if handler is None:
            raise ValueError(
                f"{kind.value} is a PIM command; use repro.core.scheduler"
            )
        done = handler(command)
        self.now = cycle
        return done

    def _do_activate(self, cmd: Command) -> int:
        cycle = self.faw.earliest(cmd.issue_cycle)
        if cycle != cmd.issue_cycle:
            raise TimingError(f"ACT at {cmd.issue_cycle} violates tFAW")
        self.banks[cmd.bank].activate(cmd.issue_cycle, cmd.row)
        self.faw.record(cmd.issue_cycle)
        return cmd.issue_cycle + self.timing.tRCD

    def _do_read(self, cmd: Command) -> int:
        issue = self.earliest_column_issue(cmd.bank, cmd.issue_cycle)
        if issue != cmd.issue_cycle:
            raise TimingError(
                f"RD at {cmd.issue_cycle} violates tCCD (earliest {issue})"
            )
        self.banks[cmd.bank].read(cmd.issue_cycle, cmd.column)
        self._note_column(cmd)
        return self._occupy_bus(cmd.issue_cycle)

    def _do_write(self, cmd: Command) -> int:
        issue = self.earliest_column_issue(cmd.bank, cmd.issue_cycle)
        if issue != cmd.issue_cycle:
            raise TimingError(
                f"WR at {cmd.issue_cycle} violates tCCD (earliest {issue})"
            )
        self.banks[cmd.bank].write(cmd.issue_cycle, cmd.column)
        self._note_column(cmd)
        return self._occupy_bus(cmd.issue_cycle)

    def _do_precharge(self, cmd: Command) -> int:
        self.banks[cmd.bank].precharge(cmd.issue_cycle)
        return cmd.issue_cycle + self.timing.tRP

    def _do_refresh(self, cmd: Command) -> int:
        for bank in self.banks:
            if bank.state.value != "idle":
                raise TimingError("REF requires all banks precharged")
            bank._act_ready = max(bank._act_ready, cmd.issue_cycle + self.timing.tRFC)
        return cmd.issue_cycle + self.timing.tRFC

    # -- helpers -----------------------------------------------------------

    def _note_column(self, cmd: Command) -> None:
        self._last_col_cycle = cmd.issue_cycle
        self._last_col_group = self.bank_group_of(cmd.bank)

    def _occupy_bus(self, cycle: int) -> int:
        if cycle < self._bus_free:
            raise TimingError(f"data bus busy until {self._bus_free}")
        self._bus_free = cycle + self.timing.tBL
        self.stats["bus_busy_cycles"] += self.timing.tBL
        return self._bus_free

    # -- convenience -------------------------------------------------------

    def stream_bandwidth_utilization(self) -> float:
        """Fraction of elapsed cycles the data bus carried data."""
        if self.now == 0:
            return 0.0
        return min(1.0, self.stats["bus_busy_cycles"] / self.now)
