"""DRAM energy model.

Per-operation energies follow the HBM numbers from O'Connor et al.,
"Fine-Grained DRAM" (MICRO 2017), which the paper cites ([52]) as its
source for activation and read energy:

* row activation:            ~909 pJ per activate
* DRAM array read/write:     ~1.51 pJ/bit
* channel I/O transfer:      ~0.80 pJ/bit

The decisive PIM effect (Fig. 14): in-bank computation pays the array
access energy but *not* the channel I/O energy, and MX8 halves the bits
moved relative to fp16.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DramEnergyParams:
    """Energy coefficients for one HBM device."""

    activate_pj: float = 909.0  #: per row activation
    array_pj_per_bit: float = 1.51  #: bank array read or write
    io_pj_per_bit: float = 0.80  #: transfer over the channel bus
    #: background/static power per pseudo-channel, in watts
    background_w: float = 0.08

    def __post_init__(self) -> None:
        if min(self.activate_pj, self.array_pj_per_bit, self.io_pj_per_bit) < 0:
            raise ValueError("energy coefficients must be non-negative")


@dataclasses.dataclass
class EnergyLedger:
    """Accumulates energy by component, in picojoules."""

    activate_pj: float = 0.0
    array_pj: float = 0.0
    io_pj: float = 0.0
    compute_pj: float = 0.0
    background_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.activate_pj + self.array_pj + self.io_pj
            + self.compute_pj + self.background_pj
        )

    @property
    def total_j(self) -> float:
        return self.total_pj * 1e-12

    def add(self, other: "EnergyLedger") -> "EnergyLedger":
        """Return a new ledger with component-wise sums."""
        return EnergyLedger(
            activate_pj=self.activate_pj + other.activate_pj,
            array_pj=self.array_pj + other.array_pj,
            io_pj=self.io_pj + other.io_pj,
            compute_pj=self.compute_pj + other.compute_pj,
            background_pj=self.background_pj + other.background_pj,
        )

    def scaled(self, factor: float) -> "EnergyLedger":
        """Return a new ledger with every component scaled."""
        return EnergyLedger(
            activate_pj=self.activate_pj * factor,
            array_pj=self.array_pj * factor,
            io_pj=self.io_pj * factor,
            compute_pj=self.compute_pj * factor,
            background_pj=self.background_pj * factor,
        )


class DramEnergyModel:
    """Charges DRAM events against an :class:`EnergyLedger`."""

    def __init__(self, params: DramEnergyParams | None = None):
        self.params = params or DramEnergyParams()
        self.ledger = EnergyLedger()

    def activation(self, count: int = 1) -> None:
        self.ledger.activate_pj += self.params.activate_pj * count

    def array_access(self, n_bytes: float) -> None:
        """Bank-internal read or write of ``n_bytes`` (no bus transfer)."""
        self.ledger.array_pj += self.params.array_pj_per_bit * n_bytes * 8

    def channel_transfer(self, n_bytes: float) -> None:
        """Array access *plus* I/O transfer over the channel bus."""
        self.array_access(n_bytes)
        self.ledger.io_pj += self.params.io_pj_per_bit * n_bytes * 8

    def compute(self, pj: float) -> None:
        """PIM datapath energy (from ``repro.hw.power``)."""
        self.ledger.compute_pj += pj

    def background(self, seconds: float, pseudo_channels: int) -> None:
        self.ledger.background_pj += (
            self.params.background_w * seconds * pseudo_channels * 1e12
        )
