"""DRAM/HBM substrate: organization, timing, banks, controller, energy.

Rebuilds the Ramulator2-based memory substrate the paper's simulator sits
on: Table 1 timing parameters, a bank/row-buffer state machine with a full
constraint checker, an FCFS controller for conventional streaming, and the
O'Connor-style energy model used in Fig. 14.
"""

from repro.dram.bank import Bank, BankState, FawTracker, TimingError
from repro.dram.commands import (
    ALL_BANK_COMMANDS,
    DATA_BUS_COMMANDS,
    Command,
    CommandKind,
)
from repro.dram.controller import FcfsController, Request, stream_cycles
from repro.dram.device import PseudoChannel
from repro.dram.energy import DramEnergyModel, DramEnergyParams, EnergyLedger
from repro.dram.timing import (
    HbmConfig,
    HbmOrganization,
    TimingParams,
    a100_hbm,
    h100_hbm,
)

__all__ = [
    "Bank",
    "BankState",
    "FawTracker",
    "TimingError",
    "ALL_BANK_COMMANDS",
    "DATA_BUS_COMMANDS",
    "Command",
    "CommandKind",
    "FcfsController",
    "Request",
    "stream_cycles",
    "PseudoChannel",
    "DramEnergyModel",
    "DramEnergyParams",
    "EnergyLedger",
    "HbmConfig",
    "HbmOrganization",
    "TimingParams",
    "a100_hbm",
    "h100_hbm",
]
