"""repro — a full reproduction of Pimba (MICRO 2025).

Pimba is a Processing-in-Memory accelerator for serving post-transformer
LLMs (state space models, linear attention, RNNs) alongside classic
transformers.  This library rebuilds the paper's whole stack in Python:

* ``repro.quant``     — int8/fp8/MX8 storage formats + MX datapath (Fig. 9)
* ``repro.dram``      — timing-constrained DRAM/HBM substrate (Table 1)
* ``repro.core``      — the Pimba accelerator: SPU/SPE, access interleaving,
                        custom commands, data layout, attention mode
* ``repro.models``    — functional Mamba-2 / GLA / RetNet / HGRN2 / Zamba2 /
                        OPT models built on the generalized state update op
* ``repro.perf``      — GPU roofline, PIM cycle engine, full-system models
                        (GPU, GPU+Q, GPU+PIM, Pimba, NeuPIMs), energy
* ``repro.hw``        — gate-level area/power models (Fig. 6, Table 3)
* ``repro.accuracy``  — synthetic-LM perplexity/accuracy harness (Fig. 4,
                        Table 2)
* ``repro.workloads`` — batched serving-loop workload generator
* ``repro.experiments`` — parallel, cached experiment engine behind the
                        figure sweeps and the ``repro`` CLI
"""

__version__ = "1.1.0"
