"""GLA: gated linear attention with an input-dependent gate vector.

Gated Linear Attention (Yang et al. 2024) replaces RetNet's constant
scalar decay with a *data-dependent gating vector* per head, broadcast
along the state dimension and multiplied element-wise with the state
(Section 2.2):

    S_t = diag(α_t) S_{t-1} + k_t v_tᵀ ,   y_t = S_tᵀ q_t

The gate is kept close to one (α = sigmoid(W_g x + b)^{1/τ} in the paper;
we use a bias toward 1) so context decays slowly unless the input says
otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import Family, ModelSpec
from repro.models.layers import sigmoid


class Gla(BaseLlm):
    """Functional GLA (Fig. 2c with vector gating)."""

    #: sigmoid bias pushing gates toward "retain" (GLA parameterizes its
    #: gates as sigmoid(..)^(1/tau), concentrating them near one; the bias
    #: plus the small logit scale below reproduce that concentration)
    GATE_BIAS = 4.0
    #: gate-logit scale relative to the other projections
    GATE_SCALE = 0.25

    def __init__(self, spec: ModelSpec, **kwargs):
        if spec.family is not Family.GLA:
            raise ValueError(f"spec family {spec.family} is not GLA")
        super().__init__(spec, **kwargs)

    def _build_mixer(self, rng: np.random.Generator, layer_index: int) -> dict:
        s = self.spec
        return {
            "w_gate_mix": rng.normal(
                scale=self.GATE_SCALE / np.sqrt(s.d_model),
                size=(s.d_model, s.n_heads * s.dim_head),
            )
        }

    def _init_layer_cache(self, layer_index: int, batch: int) -> dict:
        s = self.spec
        return {"state": np.zeros((batch, s.n_heads, s.dim_head, s.dim_state))}

    def _mixer_step(self, layer_index: int, x: np.ndarray, cache: dict) -> np.ndarray:
        s = self.spec
        layer = self.params["layers"][layer_index]
        q, k, v = self._project_qkv(layer, x)
        gate = sigmoid(
            (x @ layer["w_gate_mix"]).reshape(x.shape[0], s.n_heads, s.dim_head)
            + self.GATE_BIAS
        )
        cache["state"], y = self.state_op(cache["state"], gate, k, v, q)
        return self._mixer_output(layer, y)
