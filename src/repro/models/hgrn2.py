"""HGRN2: gated linear RNN with outer-product state expansion.

HGRN2 (Qin et al. 2024) extends the classic gated RNN state from a vector
to a (dim_head x dim_state) matrix via an outer product (Section 2.2).
Its forget gate plays the role of the decay vector, and the *input gate*
is tied to the forget gate as ``1 - f``:

    S_t = diag(f_t) S_{t-1} + (1 - f_t) v_tᵀ ,   y_t = S_tᵀ q_t

i.e. the "key" of Eq. 2 is ``k_t = 1 - f_t`` — a convex blend between
remembering and writing.  A lower-bound schedule keeps deeper layers'
gates closer to one (longer memory), as in the original model.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import Family, ModelSpec
from repro.models.layers import sigmoid


class Hgrn2(BaseLlm):
    """Functional HGRN2 (RNN with 2-D state, Section 2.2)."""

    def __init__(self, spec: ModelSpec, **kwargs):
        if spec.family is not Family.HGRN2:
            raise ValueError(f"spec family {spec.family} is not HGRN2")
        super().__init__(spec, **kwargs)

    def _build_mixer(self, rng: np.random.Generator, layer_index: int) -> dict:
        s = self.spec
        # Forget-gate lower bound grows with depth: eta in [0.88, ~0.97].
        eta = 0.88 + 0.09 * layer_index / max(1, s.n_layers - 1)
        return {
            "w_forget": rng.normal(
                scale=1.0 / np.sqrt(s.d_model),
                size=(s.d_model, s.n_heads * s.dim_head),
            ),
            "gate_floor": eta,
        }

    def _init_layer_cache(self, layer_index: int, batch: int) -> dict:
        s = self.spec
        return {"state": np.zeros((batch, s.n_heads, s.dim_head, s.dim_state))}

    def _mixer_step(self, layer_index: int, x: np.ndarray, cache: dict) -> np.ndarray:
        s = self.spec
        layer = self.params["layers"][layer_index]
        q, _, v = self._project_qkv(layer, x)
        raw = sigmoid(
            (x @ layer["w_forget"]).reshape(x.shape[0], s.n_heads, s.dim_head)
        )
        floor = layer["gate_floor"]
        # Forget gate bounded inside (floor, 1): the 0.9 ceiling keeps the
        # slowest gates away from exactly 1 (HGRN2's lower-bound trick).
        f = floor + (1.0 - floor) * (0.05 + 0.9 * raw)
        k = 1.0 - f  # tied input gate
        cache["state"], y = self.state_op(cache["state"], f, k, v, q)
        return self._mixer_output(layer, y)
