"""Model specifications for the six evaluated LLMs (Section 6.1).

The paper evaluates 2.7B-parameter SU-LLMs (RetNet, GLA, HGRN2, Mamba-2),
the 7B hybrid Zamba2, and the attention-based OPT 7B; for the large-scale
study all are scaled to ~70B following Kaplan-style proportional scaling of
layers and hidden dimensions while keeping the state-update head count
(Section 6.1).

Head geometries follow the published architectures:

* RetNet keeps few large heads with a doubled value dimension.
* GLA uses 4 heads with half-width keys and full-width values.
* HGRN2 expands the RNN state to ``dim_state = 128`` per head.
* Mamba-2 uses 64-wide heads with ``dim_state = 128`` and twice the
  layer count (it has no FFN sub-block).
* Zamba2 interleaves one attention layer per six Mamba-2 layers.
"""

from __future__ import annotations

import dataclasses
import enum


class Family(enum.Enum):
    """Algorithmic family of a model's sequence mixer."""

    RETNET = "retnet"
    GLA = "gla"
    HGRN2 = "hgrn2"
    MAMBA2 = "mamba2"
    ZAMBA2 = "zamba2"  # hybrid Mamba-2 + attention
    TRANSFORMER = "opt"  # pure softmax attention

    @property
    def uses_state_update(self) -> bool:
        return self is not Family.TRANSFORMER

    @property
    def uses_attention(self) -> bool:
        return self in (Family.ZAMBA2, Family.TRANSFORMER)


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """Architecture hyper-parameters of one evaluated model."""

    name: str
    family: Family
    n_layers: int
    d_model: int
    n_heads: int  #: state-update (or attention) heads per layer
    dim_head: int  #: per-head key/query width
    dim_state: int  #: per-head value/state width
    vocab_size: int = 50_280
    ffn_mult: int = 4  #: FFN expansion (0 for Mamba-2-style blocks)
    conv_width: int = 4  #: causal-conv kernel (Mamba-2 family only)
    attn_every: int = 0  #: one attention layer per this many layers (hybrid)
    #: Mamba-2-style models share the B/C (k/q) projections across heads
    #: (n_groups = 1), so the q/k projections are only d_model x dim_head.
    shared_qk: bool = False

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.d_model <= 0 or self.n_heads <= 0:
            raise ValueError("model dimensions must be positive")
        if self.family is Family.ZAMBA2 and self.attn_every <= 0:
            raise ValueError("hybrid models need attn_every > 0")

    # -- derived counts ------------------------------------------------------

    @property
    def attention_layers(self) -> int:
        """Layers whose mixer is softmax attention."""
        if self.family is Family.TRANSFORMER:
            return self.n_layers
        if self.family is Family.ZAMBA2:
            return self.n_layers // (self.attn_every + 1)
        return 0

    @property
    def state_update_layers(self) -> int:
        """Layers whose mixer is the generalized state update (Eq. 2)."""
        if self.family is Family.TRANSFORMER:
            return 0
        return self.n_layers - self.attention_layers

    @property
    def state_values_per_layer(self) -> int:
        """State-matrix elements per request per SU layer."""
        return self.n_heads * self.dim_head * self.dim_state

    @property
    def kv_values_per_token(self) -> int:
        """K+V cache elements appended per token per attention layer."""
        return 2 * self.n_heads * self.dim_head

    @property
    def qk_width(self) -> int:
        """Output width of the q and k projections."""
        return self.dim_head if self.shared_qk else self.n_heads * self.dim_head

    @property
    def param_count(self) -> float:
        """Approximate parameter count (projections + FFN + embeddings)."""
        d = self.d_model
        qk = 2 * d * self.qk_width
        v_and_out = 2 * d * self.n_heads * self.dim_state
        if self.family in (Family.MAMBA2, Family.ZAMBA2):
            gate = d * self.n_heads * self.dim_state  # z output gate
        elif self.family in (Family.GLA, Family.HGRN2):
            gate = d * self.n_heads * self.dim_head  # decay/forget gate
        else:
            gate = 0  # RetNet: constant
        ffn = 3 * d * d * self.ffn_mult if self.ffn_mult else 0
        embed = self.vocab_size * d
        return self.n_layers * (qk + v_and_out + gate + ffn) + embed

    @property
    def param_bytes_fp16(self) -> float:
        return 2.0 * self.param_count

    def scaled_to(self, target_params: float, name_suffix: str = "-70B") -> "ModelSpec":
        """Proportionally scale layers and width to ``target_params``.

        Head count stays fixed (increasing it degrades perplexity, per the
        paper citing GLA); ``dim_head``/``dim_state`` grow with the hidden
        dimension.
        """
        if target_params <= self.param_count:
            raise ValueError("can only scale up")
        # params ~ n_layers * d_model^2: split growth between both axes.
        growth = target_params / self.param_count
        width_growth = growth ** (1 / 3)
        depth_growth = growth / width_growth**2
        d_model = _round_to(self.d_model * width_growth, 128)
        return dataclasses.replace(
            self,
            name=self.name + name_suffix,
            n_layers=max(1, round(self.n_layers * depth_growth)),
            d_model=d_model,
            dim_head=_round_to(self.dim_head * width_growth, 16),
            dim_state=_round_to(self.dim_state * width_growth, 16),
        )


def _round_to(value: float, multiple: int) -> int:
    return max(multiple, int(round(value / multiple)) * multiple)


# -- the paper's evaluated configurations (small scale) ----------------------

def retnet_2p7b() -> ModelSpec:
    return ModelSpec("RetNet", Family.RETNET, n_layers=32, d_model=2560,
                     n_heads=10, dim_head=256, dim_state=512)


def gla_2p7b() -> ModelSpec:
    return ModelSpec("GLA", Family.GLA, n_layers=32, d_model=2560,
                     n_heads=4, dim_head=320, dim_state=640)


def hgrn2_2p7b() -> ModelSpec:
    return ModelSpec("HGRN2", Family.HGRN2, n_layers=32, d_model=2560,
                     n_heads=20, dim_head=128, dim_state=128)


def mamba2_2p7b() -> ModelSpec:
    # dim_head maps to the SSM d_state (q = C, k = B, both shared across
    # heads); dim_state is the 64-wide head of the 2x-expanded inner stream.
    return ModelSpec("Mamba-2", Family.MAMBA2, n_layers=64, d_model=2560,
                     n_heads=80, dim_head=128, dim_state=64, ffn_mult=0,
                     shared_qk=True)


def zamba2_7b() -> ModelSpec:
    return ModelSpec("Zamba2", Family.ZAMBA2, n_layers=56, d_model=3712,
                     n_heads=58, dim_head=128, dim_state=128, ffn_mult=0,
                     attn_every=6, shared_qk=True)


def opt_7b() -> ModelSpec:
    return ModelSpec("OPT", Family.TRANSFORMER, n_layers=32, d_model=4096,
                     n_heads=32, dim_head=128, dim_state=128)


SMALL_SCALE_SPECS = (
    retnet_2p7b, gla_2p7b, hgrn2_2p7b, mamba2_2p7b, zamba2_7b, opt_7b,
)


def large_scale_specs() -> tuple[ModelSpec, ...]:
    """All six models scaled to ~70B parameters (Fig. 12 right half)."""
    return tuple(spec().scaled_to(70e9) for spec in SMALL_SCALE_SPECS)


def accuracy_spec(family: Family, name: str | None = None) -> ModelSpec:
    """The spec used by the Fig. 4 / Table 2 accuracy harness.

    Head widths stay realistic (dim_head = 64) because the SPE's output
    GEMV averages stochastic-rounding noise over the head dimension —
    shrinking it would overstate SR noise and understate its rescue.
    """
    return ModelSpec(
        name=name or f"accuracy-{family.value}",
        family=family,
        n_layers=2,
        d_model=96,
        n_heads=2,
        dim_head=64,
        dim_state=32,
        vocab_size=512,
        ffn_mult=2,
        attn_every=6 if family is Family.ZAMBA2 else 0,
    )


def tiny_spec(family: Family, name: str | None = None) -> ModelSpec:
    """A laptop-scale spec for functional tests and the accuracy harness."""
    return ModelSpec(
        name=name or f"tiny-{family.value}",
        family=family,
        n_layers=2,
        d_model=64,
        n_heads=2,
        dim_head=16,
        dim_state=16,
        vocab_size=256,
        ffn_mult=2,
        attn_every=6 if family is Family.ZAMBA2 else 0,
    )
