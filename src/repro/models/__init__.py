"""Functional post-transformer and transformer models (Section 2 / Fig. 2).

All SU-LLMs route their sequence mixing through the one generalized
state-update operation of Eq. 2 (``repro.models.state_update``), which is
the paper's central observation and what Pimba accelerates.
"""

from repro.models.base import BaseLlm
from repro.models.config import (
    SMALL_SCALE_SPECS,
    Family,
    ModelSpec,
    gla_2p7b,
    hgrn2_2p7b,
    large_scale_specs,
    mamba2_2p7b,
    opt_7b,
    retnet_2p7b,
    tiny_spec,
    zamba2_7b,
)
from repro.models.gla import Gla
from repro.models.hgrn2 import Hgrn2
from repro.models.mamba2 import Mamba2
from repro.models.opt import OptTransformer
from repro.models.registry import MODEL_NAMES, build_model, build_tiny, spec_for
from repro.models.retnet import RetNet
from repro.models.state_update import StateUpdateOp, state_update_step
from repro.models.zamba2 import Zamba2

__all__ = [
    "BaseLlm",
    "SMALL_SCALE_SPECS",
    "Family",
    "ModelSpec",
    "gla_2p7b",
    "hgrn2_2p7b",
    "large_scale_specs",
    "mamba2_2p7b",
    "opt_7b",
    "retnet_2p7b",
    "tiny_spec",
    "zamba2_7b",
    "Gla",
    "Hgrn2",
    "Mamba2",
    "OptTransformer",
    "MODEL_NAMES",
    "build_model",
    "build_tiny",
    "spec_for",
    "RetNet",
    "StateUpdateOp",
    "state_update_step",
    "Zamba2",
]
