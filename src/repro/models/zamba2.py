"""Zamba2: hybrid Mamba-2 / attention model (Section 2.2).

Zamba2 interleaves one softmax-attention layer per six Mamba-2 layers to
restore in-context recall while keeping SSM efficiency.  Its mixer
dispatches per layer index: attention layers carry a KV cache, Mamba-2
layers carry a state matrix — so a Pimba device must accelerate *both*
operations (the motivation for Section 5.4).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import Family, ModelSpec
from repro.models.layers import CausalConvState, silu, softplus


class Zamba2(BaseLlm):
    """Functional hybrid: Mamba-2 blocks with periodic attention."""

    def __init__(self, spec: ModelSpec, **kwargs):
        if spec.family is not Family.ZAMBA2:
            raise ValueError(f"spec family {spec.family} is not Zamba2")
        super().__init__(spec, **kwargs)

    def is_attention_layer(self, layer_index: int) -> bool:
        """Every (attn_every + 1)-th layer is attention, starting after
        ``attn_every`` Mamba-2 layers."""
        return (layer_index + 1) % (self.spec.attn_every + 1) == 0

    def _build_mixer(self, rng: np.random.Generator, layer_index: int) -> dict:
        if self.is_attention_layer(layer_index):
            return {"is_attention": True}
        s = self.spec
        scale = 1.0 / np.sqrt(s.d_model)
        return {
            "is_attention": False,
            "w_dt": rng.normal(scale=scale, size=(s.d_model, s.n_heads)),
            "dt_bias": np.full(s.n_heads, -1.5),
            "log_a": rng.uniform(np.log(0.03), np.log(0.3), size=s.n_heads),
            "conv_kernel": rng.normal(
                scale=1.0 / np.sqrt(s.conv_width),
                size=(s.conv_width, s.n_heads * s.dim_state),
            ),
            "w_z": rng.normal(scale=scale, size=(s.d_model, s.n_heads * s.dim_state)),
        }

    def _init_layer_cache(self, layer_index: int, batch: int) -> dict:
        s = self.spec
        if self.is_attention_layer(layer_index):
            return {"k": [], "v": []}
        return {
            "state": np.zeros((batch, s.n_heads, s.dim_head, s.dim_state)),
            "conv": CausalConvState(batch, s.n_heads * s.dim_state, s.conv_width),
        }

    def _mixer_step(self, layer_index: int, x: np.ndarray, cache: dict) -> np.ndarray:
        if self.is_attention_layer(layer_index):
            return self._attention_step(layer_index, x, cache)
        return self._mamba_step(layer_index, x, cache)

    def _attention_step(
        self, layer_index: int, x: np.ndarray, cache: dict
    ) -> np.ndarray:
        s = self.spec
        layer = self.params["layers"][layer_index]
        q, k, v = self._project_qkv(layer, x)
        self._append_kv(cache, k, v)
        k_cache = np.stack(cache["k"], axis=2)
        v_cache = np.stack(cache["v"], axis=2)
        scores = np.einsum("bhd,bhsd->bhs", q, k_cache) / np.sqrt(s.dim_head)
        weights = np.exp(scores - scores.max(axis=-1, keepdims=True))
        weights = weights / weights.sum(axis=-1, keepdims=True)
        y = np.einsum("bhs,bhsv->bhv", weights, v_cache)
        return self._mixer_output(layer, y)

    def _mamba_step(self, layer_index: int, x: np.ndarray, cache: dict) -> np.ndarray:
        s = self.spec
        layer = self.params["layers"][layer_index]
        batch = x.shape[0]
        q, k, v_flat = self._project_qkv(layer, x)
        v_conv = silu(
            cache["conv"].step(v_flat.reshape(batch, -1), layer["conv_kernel"])
        )
        v = v_conv.reshape(batch, s.n_heads, s.dim_state)
        dt = softplus(x @ layer["w_dt"] + layer["dt_bias"])
        a = np.exp(-dt * np.exp(layer["log_a"]))
        v = v * dt[..., None]
        cache["state"], y = self.state_op(cache["state"], a, k, v, q)
        z = silu(x @ layer["w_z"]).reshape(batch, s.n_heads, s.dim_state)
        return self._mixer_output(layer, y * z)
