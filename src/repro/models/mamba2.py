"""Mamba-2: selective state space model (Fig. 2b).

The Mamba-2 block (Dao & Gu 2024) runs, per token:

1. **Causal conv** — a short depthwise convolution over the projected
   input stream.
2. **Discretization** — Δ_h = softplus(w_Δᵀx + b_h) per head, turning the
   continuous-time decay A_h > 0 into a per-step scalar
   ``a_h = exp(−Δ_h A_h)`` and scaling the input by Δ_h.
3. **Selective state update** — exactly Eq. 2 with scalar decay a_h,
   ``k = B(x)``, ``v = Δ_h · x_h``, ``q = C(x)``.

The block has no separate FFN (``ffn_mult = 0``); a SiLU gate on the
output plays that role, which is why Mamba-2 models double the layer
count at matched parameters.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import Family, ModelSpec
from repro.models.layers import CausalConvState, silu, softplus


class Mamba2(BaseLlm):
    """Functional Mamba-2 (selective SSM)."""

    def __init__(self, spec: ModelSpec, **kwargs):
        if spec.family is not Family.MAMBA2:
            raise ValueError(f"spec family {spec.family} is not Mamba-2")
        super().__init__(spec, **kwargs)

    def _build_mixer(self, rng: np.random.Generator, layer_index: int) -> dict:
        s = self.spec
        scale = 1.0 / np.sqrt(s.d_model)
        return {
            # One Δ channel per head plus its bias (init so softplus ~ 0.2).
            "w_dt": rng.normal(scale=scale, size=(s.d_model, s.n_heads)),
            "dt_bias": np.full(s.n_heads, -1.5),
            # A_h > 0, log-uniform: together with dt this puts the
            # discrete decay a = exp(-dt A) in [~0.95, ~0.995].
            "log_a": rng.uniform(np.log(0.03), np.log(0.3), size=s.n_heads),
            # Depthwise causal conv over the v-stream channels.
            "conv_kernel": rng.normal(
                scale=1.0 / np.sqrt(s.conv_width),
                size=(s.conv_width, s.n_heads * s.dim_state),
            ),
            # SiLU output gate (Mamba-2 blocks carry their own gating).
            "w_z": rng.normal(scale=scale, size=(s.d_model, s.n_heads * s.dim_state)),
        }

    def _init_layer_cache(self, layer_index: int, batch: int) -> dict:
        s = self.spec
        return {
            "state": np.zeros((batch, s.n_heads, s.dim_head, s.dim_state)),
            "conv": CausalConvState(batch, s.n_heads * s.dim_state, s.conv_width),
        }

    def _mixer_step(self, layer_index: int, x: np.ndarray, cache: dict) -> np.ndarray:
        s = self.spec
        layer = self.params["layers"][layer_index]
        batch = x.shape[0]

        # q <- C(x), k <- B(x); the v stream first passes the causal conv.
        q, k, v_flat = self._project_qkv(layer, x)
        v_flat = v_flat.reshape(batch, -1)
        v_conv = silu(cache["conv"].step(v_flat, layer["conv_kernel"]))
        v = v_conv.reshape(batch, s.n_heads, s.dim_state)

        # Discretization: per-head scalar decay and input scaling.
        dt = softplus(x @ layer["w_dt"] + layer["dt_bias"])  # (batch, H)
        a = np.exp(-dt * np.exp(layer["log_a"]))  # (batch, H)
        v = v * dt[..., None]

        cache["state"], y = self.state_op(cache["state"], a, k, v, q)

        # Output gate in place of an FFN.
        z = silu(x @ layer["w_z"]).reshape(batch, s.n_heads, s.dim_state)
        return self._mixer_output(layer, y * z)
