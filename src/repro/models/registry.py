"""Model registry: build any evaluated model by name at any scale."""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import (
    Family,
    ModelSpec,
    gla_2p7b,
    hgrn2_2p7b,
    mamba2_2p7b,
    opt_7b,
    retnet_2p7b,
    tiny_spec,
    zamba2_7b,
)
from repro.models.gla import Gla
from repro.models.hgrn2 import Hgrn2
from repro.models.mamba2 import Mamba2
from repro.models.opt import OptTransformer
from repro.models.retnet import RetNet
from repro.models.zamba2 import Zamba2

_CLASSES: dict[Family, type[BaseLlm]] = {
    Family.RETNET: RetNet,
    Family.GLA: Gla,
    Family.HGRN2: Hgrn2,
    Family.MAMBA2: Mamba2,
    Family.ZAMBA2: Zamba2,
    Family.TRANSFORMER: OptTransformer,
}

_SMALL_SPECS = {
    "RetNet": retnet_2p7b,
    "GLA": gla_2p7b,
    "HGRN2": hgrn2_2p7b,
    "Mamba-2": mamba2_2p7b,
    "Zamba2": zamba2_7b,
    "OPT": opt_7b,
}

#: evaluation order used throughout the paper's figures
MODEL_NAMES = tuple(_SMALL_SPECS)


def spec_for(name: str, scale: str = "small") -> ModelSpec:
    """Return the evaluated spec for a model name.

    Args:
        name: one of ``MODEL_NAMES``.
        scale: ``"small"`` (2.7B/7B) or ``"large"`` (~70B).
    """
    try:
        spec = _SMALL_SPECS[name]()
    except KeyError:
        raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}") from None
    if scale == "small":
        return spec
    if scale == "large":
        return spec.scaled_to(70e9)
    raise ValueError("scale must be 'small' or 'large'")


def build_model(spec: ModelSpec, **kwargs) -> BaseLlm:
    """Instantiate the functional model class for a spec."""
    return _CLASSES[spec.family](spec, **kwargs)


def build_tiny(family: Family, seed: int = 0, **kwargs) -> BaseLlm:
    """A tiny functional model for tests and the accuracy harness."""
    spec = tiny_spec(family)
    return build_model(spec, rng=np.random.default_rng(seed), **kwargs)
