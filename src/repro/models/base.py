"""Base functional LLM: embeddings, blocks, generation loop.

Models here are *functional* reproductions: random-but-structured weights
at configurable width, exercising exactly the per-token compute graph of
Fig. 2 (projections → mixer → FFN with residuals and norms).  They exist
so the quantization study (Figs. 4/6, Table 2) can measure how storage
formats perturb a real forward pass, and so tests can validate the serving
stack end to end.  ``repro.accuracy`` builds its teacher–student harness
on top.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.models.config import ModelSpec
from repro.models.layers import rms_norm, swiglu_ffn
from repro.models.state_update import StateUpdateOp
from repro.quant.formats import StorageFormat


class BaseLlm(abc.ABC):
    """A decoder-only LM with a pluggable per-layer sequence mixer.

    Args:
        spec: architecture hyper-parameters.
        rng: weight-initialization generator (models with the same seed and
            spec are identical — the teacher/student trick).
        state_format: storage format applied to recurrent state every step
            (None = exact fp64 reference, the paper's "GPU" rows).
        kv_format: storage format applied to KV-cache entries *once* at
            append time (the transformer quantization semantics).
        quant_seed: seed of the stochastic-rounding stream, independent of
            the weights.
    """

    def __init__(
        self,
        spec: ModelSpec,
        rng: np.random.Generator | None = None,
        state_format: StorageFormat | None = None,
        kv_format: StorageFormat | None = None,
        quant_seed: int = 1234,
    ):
        self.spec = spec
        rng = rng or np.random.default_rng(0)
        self._quant_rng = np.random.default_rng(quant_seed)
        self.state_format = state_format
        self.kv_format = kv_format
        self.state_op = StateUpdateOp(state_format, self._quant_rng)
        self.params = self._build_params(rng)

    # -- parameter construction ---------------------------------------------

    def _build_params(self, rng: np.random.Generator) -> dict:
        s = self.spec
        scale = 1.0 / np.sqrt(s.d_model)
        params = {
            "embedding": rng.normal(scale=1.0, size=(s.vocab_size, s.d_model)),
            "final_norm": np.ones(s.d_model),
            "layers": [],
        }
        for li in range(s.n_layers):
            layer = {
                "ln1": np.ones(s.d_model),
                "w_q": rng.normal(scale=scale, size=(s.d_model, s.qk_width)),
                "w_k": rng.normal(scale=scale, size=(s.d_model, s.qk_width)),
                "w_v": rng.normal(
                    scale=scale, size=(s.d_model, s.n_heads * s.dim_state)
                ),
                "w_o": rng.normal(
                    scale=1.0 / np.sqrt(s.n_heads * s.dim_state),
                    size=(s.n_heads * s.dim_state, s.d_model),
                ),
                "y_norm": np.ones(s.n_heads * s.dim_state),
            }
            if s.ffn_mult:
                hidden = s.ffn_mult * s.d_model
                layer.update(
                    ln2=np.ones(s.d_model),
                    w_gate=rng.normal(scale=scale, size=(s.d_model, hidden)),
                    w_up=rng.normal(scale=scale, size=(s.d_model, hidden)),
                    w_down=rng.normal(
                        scale=1.0 / np.sqrt(hidden), size=(hidden, s.d_model)
                    ),
                )
            layer.update(self._build_mixer(rng, li))
            params["layers"].append(layer)
        return params

    @abc.abstractmethod
    def _build_mixer(self, rng: np.random.Generator, layer_index: int) -> dict:
        """Family-specific mixer parameters for one layer."""

    @abc.abstractmethod
    def _mixer_step(self, layer_index: int, x: np.ndarray, cache: dict) -> np.ndarray:
        """One token through the layer's sequence mixer.

        Args:
            x: normalized block input, (batch, d_model).
            cache: this layer's mutable recurrent cache.
        Returns the mixer output, (batch, d_model).
        """

    @abc.abstractmethod
    def _init_layer_cache(self, layer_index: int, batch: int) -> dict:
        """Fresh recurrent cache for one layer."""

    # -- projections shared by every SU mixer --------------------------------

    def _project_qkv(
        self, layer: dict, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project to per-head q, k, v with 1/sqrt(dh) query scaling.

        Models with ``shared_qk`` (Mamba-2 family: B/C shared across heads)
        broadcast one q/k vector to every head.
        """
        s = self.spec
        batch = x.shape[0]
        q = x @ layer["w_q"]
        k = x @ layer["w_k"]
        if s.shared_qk:
            q = np.broadcast_to(q[:, None, :], (batch, s.n_heads, s.dim_head))
            k = np.broadcast_to(k[:, None, :], (batch, s.n_heads, s.dim_head))
        else:
            q = q.reshape(batch, s.n_heads, s.dim_head)
            k = k.reshape(batch, s.n_heads, s.dim_head)
        v = (x @ layer["w_v"]).reshape(batch, s.n_heads, s.dim_state)
        return q / np.sqrt(s.dim_head), k / np.sqrt(s.dim_head), v

    def _mixer_output(self, layer: dict, y: np.ndarray) -> np.ndarray:
        """Normalize per-head outputs and project back to d_model."""
        batch = y.shape[0]
        flat = y.reshape(batch, -1)
        return rms_norm(flat, layer["y_norm"]) @ layer["w_o"]

    # -- generation ----------------------------------------------------------

    def init_cache(self, batch: int) -> list[dict]:
        """Fresh caches for a batch of sequences."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        return [self._init_layer_cache(li, batch) for li in range(self.spec.n_layers)]

    def step(self, tokens: np.ndarray, cache: list[dict]) -> np.ndarray:
        """One generation step: token ids (batch,) -> logits (batch, vocab)."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ValueError("step expects a 1-D batch of token ids")
        params = self.params
        x = params["embedding"][tokens]
        for li, layer in enumerate(params["layers"]):
            h = rms_norm(x, layer["ln1"])
            x = x + self._mixer_step(li, h, cache[li])
            if self.spec.ffn_mult:
                h = rms_norm(x, layer["ln2"])
                x = x + swiglu_ffn(h, layer["w_gate"], layer["w_up"], layer["w_down"])
        x = rms_norm(x, params["final_norm"])
        return x @ params["embedding"].T

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Teacher-forced pass over (batch, seq); returns (batch, seq, vocab)."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError("forward expects (batch, seq) token ids")
        cache = self.init_cache(tokens.shape[0])
        logits = [self.step(tokens[:, t], cache) for t in range(tokens.shape[1])]
        return np.stack(logits, axis=1)

    # -- KV-cache helpers for attention mixers --------------------------------

    def _append_kv(self, cache: dict, k: np.ndarray, v: np.ndarray) -> None:
        """Append one token's K/V (batch, heads, dh), quantizing once."""
        if self.kv_format is not None:
            rng = self._quant_rng if self.kv_format.is_stochastic else None
            k = self.kv_format.quantize(k, rng=rng)
            v = self.kv_format.quantize(v, rng=rng)
        cache["k"].append(k)
        cache["v"].append(v)
