"""The generalized state-update operation (Eq. 2) shared by all SU-LLMs.

    S_t = d_t ⊙ S_{t-1} + k_t v_tᵀ
    y_t = S_tᵀ q_t

``d_t``, ``q_t``, ``k_t`` have ``dim_head`` elements, ``v_t`` has
``dim_state`` elements, and the per-head state is a ``(dim_head,
dim_state)`` matrix.  The decay ``d_t`` may be a scalar (RetNet, Mamba-2)
or a vector gate broadcast along ``dim_state`` (GLA, HGRN2) — Section 2.2.

:class:`StateUpdateOp` optionally quantizes the *stored* state with any
``repro.quant`` format, which is exactly how a Pimba device (or a
quantized GPU baseline) would hold it.  This single class is the hinge of
the whole accuracy study: Fig. 4 is this op iterated thousands of steps
under nine formats.
"""

from __future__ import annotations

import numpy as np

from repro.quant.formats import StorageFormat


def state_update_step(
    state: np.ndarray,
    d: np.ndarray | float,
    k: np.ndarray,
    v: np.ndarray,
    q: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One full-precision Eq. 2 step; leading axes broadcast (batch, heads).

    Shapes: state (..., H, dh, ds); d scalar, (..., H) or (..., H, dh);
    k, q (..., H, dh); v (..., H, ds).
    """
    d_arr = np.asarray(d, dtype=np.float64)
    if d_arr.ndim == state.ndim - 1:  # per-head vector gate
        decay = d_arr[..., :, None]
    elif d_arr.ndim == state.ndim - 2:  # per-head scalar decay
        decay = d_arr[..., None, None]
    elif d_arr.ndim == 0:
        decay = d_arr
    else:
        raise ValueError(
            f"decay with {d_arr.ndim} dims does not match state with {state.ndim}"
        )
    new_state = decay * state + k[..., :, None] * v[..., None, :]
    y = np.einsum("...hs,...h->...s", new_state, q)
    return new_state, y


class StateUpdateOp:
    """Stateful Eq. 2 executor with optional quantized state storage."""

    def __init__(
        self,
        state_format: StorageFormat | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.state_format = state_format
        self.rng = rng
        if state_format is not None and state_format.is_stochastic and rng is None:
            raise ValueError("stochastic storage formats need an rng")

    def _store(self, state: np.ndarray) -> np.ndarray:
        if self.state_format is None:
            return state
        return self.state_format.quantize(state, rng=self.rng)

    def __call__(
        self,
        state: np.ndarray,
        d: np.ndarray | float,
        k: np.ndarray,
        v: np.ndarray,
        q: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run one step; the returned state has been through storage."""
        new_state, y = state_update_step(state, d, k, v, q)
        new_state = self._store(new_state)
        # The output GEMV reads the *stored* state (it is computed from the
        # row-buffer contents on hardware), so recompute y from it.
        if self.state_format is not None:
            y = np.einsum("...hs,...h->...s", new_state, q)
        return new_state, y
