"""OPT-style transformer: softmax attention with a growing KV cache.

The attention baseline of the evaluation (Fig. 2a).  Each generation step
appends the token's K/V to the cache and attends over the whole history —
the linear-in-sequence-length cost that motivates post-transformers.

When a ``kv_format`` is supplied, cache entries are quantized **once at
append time**.  This is the crucial semantic difference from SU-LLM state
quantization (re-quantized after every update) and the reason transformers
tolerate fp8 KV caches while SU-LLMs collapse (Fig. 4).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import Family, ModelSpec
from repro.models.layers import attention_step


class OptTransformer(BaseLlm):
    """Functional decoder-only transformer (multi-head attention)."""

    def __init__(self, spec: ModelSpec, **kwargs):
        if spec.family is not Family.TRANSFORMER:
            raise ValueError(f"spec family {spec.family} is not a transformer")
        super().__init__(spec, **kwargs)

    def _build_mixer(self, rng: np.random.Generator, layer_index: int) -> dict:
        # q/k/v/o projections come from the base class; attention itself is
        # parameter-free.  dim_state doubles as the value width.
        return {}

    def _init_layer_cache(self, layer_index: int, batch: int) -> dict:
        return {"k": [], "v": []}

    def _mixer_step(self, layer_index: int, x: np.ndarray, cache: dict) -> np.ndarray:
        s = self.spec
        layer = self.params["layers"][layer_index]
        q, k, v = self._project_qkv(layer, x)
        # The value head width is dim_state; attention uses dh for q/k.
        self._append_kv(cache, k, v)
        k_cache = np.stack(cache["k"], axis=2)  # (batch, H, seq, dh)
        v_cache = np.stack(cache["v"], axis=2)  # (batch, H, seq, ds)
        scores = np.einsum("bhd,bhsd->bhs", q, k_cache)
        scores = scores / np.sqrt(s.dim_head)
        weights = np.exp(scores - scores.max(axis=-1, keepdims=True))
        weights = weights / weights.sum(axis=-1, keepdims=True)
        y = np.einsum("bhs,bhsv->bhv", weights, v_cache)
        return self._mixer_output(layer, y)


__all__ = ["OptTransformer", "attention_step"]
