"""Shared neural layers for the functional models (numpy, float64).

Everything a post-transformer block needs besides its sequence mixer:
RMSNorm, SwiGLU FFN, depthwise causal convolution (Mamba-2's ``Causal
Conv`` box in Fig. 2b), softplus discretization, projections, and softmax
attention over a KV cache.
"""

from __future__ import annotations

import numpy as np


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer norm over the last axis."""
    scale = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    return x / scale * weight


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit."""
    return x * sigmoid(x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Split by sign for numerical stability at large |x|.
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softplus(x: np.ndarray) -> np.ndarray:
    """log(1 + e^x), stable for large x."""
    return np.logaddexp(0.0, x)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def swiglu_ffn(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray,
               w_down: np.ndarray) -> np.ndarray:
    """SwiGLU feed-forward: down( silu(gate(x)) * up(x) )."""
    return (silu(x @ w_gate) * (x @ w_up)) @ w_down


class CausalConvState:
    """Rolling window buffer for single-token depthwise causal conv."""

    def __init__(self, batch: int, channels: int, width: int):
        if width < 1:
            raise ValueError("conv width must be >= 1")
        self.width = width
        self.buffer = np.zeros((batch, width, channels))

    def step(self, x: np.ndarray, kernel: np.ndarray) -> np.ndarray:
        """Push one token (batch, channels); return the conv output.

        ``kernel`` has shape (width, channels) — depthwise.
        """
        if x.shape != self.buffer.shape[::2]:
            expected = (self.buffer.shape[0], self.buffer.shape[2])
            if x.shape != expected:
                raise ValueError(f"expected token shape {expected}, got {x.shape}")
        self.buffer = np.roll(self.buffer, -1, axis=1)
        self.buffer[:, -1, :] = x
        return np.einsum("bwc,wc->bc", self.buffer, kernel)


def attention_step(
    q: np.ndarray, k_cache: np.ndarray, v_cache: np.ndarray
) -> np.ndarray:
    """Single-token multi-head attention.

    Shapes: q (batch, heads, dh); caches (batch, heads, seq, dh).
    """
    scores = np.einsum("bhd,bhsd->bhs", q, k_cache) / np.sqrt(q.shape[-1])
    weights = softmax(scores, axis=-1)
    return np.einsum("bhs,bhsd->bhd", weights, v_cache)
