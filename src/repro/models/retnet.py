"""RetNet: linear attention with fixed per-head exponential decay.

Retentive Networks (Sun et al. 2023) replace softmax attention with a
retention mechanism.  In recurrent (generation) form it is exactly Eq. 2
with a *constant scalar* decay per head:

    S_t = γ_h · S_{t-1} + k_t v_tᵀ ,   y_t = S_tᵀ q_t

with γ_h = 1 − 2^{−5−h} spread across heads, so early heads forget fast
and late heads retain long context.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import Family, ModelSpec


class RetNet(BaseLlm):
    """Functional RetNet (Fig. 2c with scalar decay)."""

    def __init__(self, spec: ModelSpec, **kwargs):
        if spec.family is not Family.RETNET:
            raise ValueError(f"spec family {spec.family} is not RetNet")
        super().__init__(spec, **kwargs)

    def _build_mixer(self, rng: np.random.Generator, layer_index: int) -> dict:
        heads = np.arange(self.spec.n_heads)
        # The canonical RetNet decay schedule: gamma = 1 - 2^(-5-i),
        # spanning fast heads (0.969) to slow heads (~0.998).
        gamma = 1.0 - np.exp2(-5.0 - heads * 4.0 / max(1, self.spec.n_heads - 1))
        return {"gamma": gamma}

    def _init_layer_cache(self, layer_index: int, batch: int) -> dict:
        s = self.spec
        return {"state": np.zeros((batch, s.n_heads, s.dim_head, s.dim_state))}

    def _mixer_step(self, layer_index: int, x: np.ndarray, cache: dict) -> np.ndarray:
        layer = self.params["layers"][layer_index]
        q, k, v = self._project_qkv(layer, x)
        # gamma: (H,) broadcast over the batch as a per-head scalar decay.
        d = np.broadcast_to(layer["gamma"], (x.shape[0], self.spec.n_heads))
        cache["state"], y = self.state_op(cache["state"], d, k, v, q)
        return self._mixer_output(layer, y)
