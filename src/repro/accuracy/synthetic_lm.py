"""Teacher–student synthetic language models for the accuracy study.

The paper evaluates state quantization on pretrained checkpoints and
WikiText-2; offline, we substitute a *teacher–student* construction that
isolates exactly the quantity Figs. 4/6 and Table 2 measure — the
perplexity damage caused by storing the recurrent state (or KV cache) in
a low-precision format:

* the **teacher** is a randomly-initialized but structurally faithful
  model (``repro.models``) evaluated in float64; it defines the data
  distribution by sampling token streams from itself;
* each **student** shares the teacher's weights bit-for-bit and differs
  only in its state/KV storage format.

The teacher's perplexity on its own samples is the fp16 reference row;
any student excess perplexity is purely quantization-induced.  Because
the mechanism (swamping under round-to-nearest, noise under stochastic
rounding, one-shot KV quantization for transformers) is numerical rather
than linguistic, the *ordering* of formats transfers to real models.

Two calibrations keep the synthetic LM in the regime where the paper's
models live: the mixer output is amplified so the data depends on state
(not just the last token), and sampling uses a temperature that puts
teacher perplexity in the WikiText-like range.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import Family, accuracy_spec
from repro.models.registry import build_model
from repro.quant.registry import get_format

#: softmax temperature of the synthetic LM (defines the data distribution)
TEMPERATURE = 5.0
#: amplification of each mixer's output projection, making generated text
#: depend on the recurrent state rather than only the previous token
MIXER_GAIN = 4.0


def log_softmax(logits: np.ndarray, temperature: float = TEMPERATURE) -> np.ndarray:
    """Temperature-scaled log-probabilities over the last axis."""
    z = logits / temperature
    z = z - z.max(axis=-1, keepdims=True)
    return z - np.log(np.sum(np.exp(z), axis=-1, keepdims=True))


def _amplify(model: BaseLlm, gain: float) -> BaseLlm:
    for layer in model.params["layers"]:
        layer["w_o"] = layer["w_o"] * gain
    return model


@dataclasses.dataclass
class SyntheticLm:
    """A teacher plus factory for format-quantized students."""

    family: Family
    seed: int = 1
    mixer_gain: float = MIXER_GAIN
    temperature: float = TEMPERATURE

    def __post_init__(self) -> None:
        self.spec = accuracy_spec(self.family)
        self.teacher = self.build_student(None)

    def build_student(self, format_name: str | None, quant_seed: int = 77) -> BaseLlm:
        """A weight-identical model storing state/KV in ``format_name``."""
        kwargs = {}
        if format_name is not None:
            kwargs["state_format"] = get_format(format_name)
            kwargs["kv_format"] = get_format(format_name)
            kwargs["quant_seed"] = quant_seed
        model = build_model(
            self.spec, rng=np.random.default_rng(self.seed), **kwargs
        )
        return _amplify(model, self.mixer_gain)

    def sample_stream(
        self, batch: int, seq_len: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample (batch, seq_len + 1) token ids from the teacher."""
        if batch < 1 or seq_len < 1:
            raise ValueError("batch and seq_len must be positive")
        vocab = self.spec.vocab_size
        tokens = np.zeros((batch, seq_len + 1), dtype=np.int64)
        tokens[:, 0] = rng.integers(0, vocab, size=batch)
        cache = self.teacher.init_cache(batch)
        for t in range(seq_len):
            logp = log_softmax(
                self.teacher.step(tokens[:, t], cache), self.temperature
            )
            probs = np.exp(logp)
            tokens[:, t + 1] = [rng.choice(vocab, p=p) for p in probs]
        return tokens

    def continue_stream(
        self,
        prefix: np.ndarray,
        n_tokens: int,
        rng: np.random.Generator,
        temperature: float | None = None,
    ) -> np.ndarray:
        """Sample ``n_tokens`` continuations of each prefix row."""
        prefix = np.asarray(prefix)
        cache = self.teacher.init_cache(prefix.shape[0])
        logits = None
        for t in range(prefix.shape[1]):
            logits = self.teacher.step(prefix[:, t], cache)
        temp = temperature if temperature is not None else self.temperature
        out = np.zeros((prefix.shape[0], n_tokens), dtype=np.int64)
        for t in range(n_tokens):
            probs = np.exp(log_softmax(logits, temp))
            out[:, t] = [rng.choice(self.spec.vocab_size, p=p) for p in probs]
            logits = self.teacher.step(out[:, t], cache)
        return out
