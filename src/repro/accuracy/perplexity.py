"""Perplexity evaluation under state quantization (Figs. 4 and 6)."""

from __future__ import annotations

import numpy as np

from repro.accuracy.synthetic_lm import TEMPERATURE, SyntheticLm, log_softmax
from repro.models.base import BaseLlm
from repro.models.config import Family

#: number of warm-up positions excluded from the NLL average: quantization
#: damage accumulates over the state's time constant, as it does over a
#: long WikiText-2 document
DEFAULT_SKIP = 128


def evaluate_perplexity(
    model: BaseLlm,
    tokens: np.ndarray,
    temperature: float = TEMPERATURE,
    skip: int = DEFAULT_SKIP,
) -> float:
    """Teacher-forced perplexity of ``model`` on (batch, seq+1) tokens."""
    tokens = np.asarray(tokens)
    if tokens.ndim != 2 or tokens.shape[1] < skip + 2:
        raise ValueError("tokens must be (batch, seq+1) with seq > skip")
    logits = model.forward(tokens[:, :-1])
    logp = log_softmax(logits, temperature)
    nll = -np.take_along_axis(logp, tokens[:, 1:, None], axis=2)
    return float(np.exp(nll[:, skip:].mean()))


def quantization_sweep(
    family: Family,
    formats: tuple[str, ...],
    batch: int = 4,
    seq_len: int = 384,
    seed: int = 1,
    data_seed: int = 0,
) -> dict[str, float]:
    """Perplexity of every storage format on one model family (one Fig. 4
    group of bars).  ``"fp64"`` is the exact-reference key."""
    lm = SyntheticLm(family, seed=seed)
    rng = np.random.default_rng(data_seed)
    tokens = lm.sample_stream(batch, seq_len, rng)
    results = {"fp64": evaluate_perplexity(lm.teacher, tokens, lm.temperature)}
    for name in formats:
        student = lm.build_student(name)
        results[name] = evaluate_perplexity(student, tokens, lm.temperature)
    return results


def perplexity_delta(results: dict[str, float], format_name: str) -> float:
    """Excess perplexity of a format over the exact reference."""
    return results[format_name] - results["fp64"]
