"""Experiment drivers for the accuracy results (Fig. 4, Fig. 6, Table 2)."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.accuracy.perplexity import evaluate_perplexity, quantization_sweep
from repro.accuracy.synthetic_lm import SyntheticLm
from repro.accuracy.tasks import TABLE2_TASKS, TaskSpec, build_items, task_accuracy
from repro.models.config import Family
from repro.quant.registry import FIG4_FORMATS

#: model families shown in Fig. 4 (transformers last, as in the paper)
FIG4_FAMILIES = (
    Family.RETNET, Family.GLA, Family.HGRN2, Family.MAMBA2, Family.TRANSFORMER,
)


def fig4_study(
    families: tuple[Family, ...] = FIG4_FAMILIES,
    formats: tuple[str, ...] = FIG4_FORMATS,
    batch: int = 4,
    seq_len: int = 384,
) -> dict[str, dict[str, float]]:
    """Perplexity of every (family, format) pair — the Fig. 4 grid."""
    return {
        family.value: quantization_sweep(family, formats, batch, seq_len)
        for family in families
    }


@dataclasses.dataclass(frozen=True)
class Table2Row:
    """Accuracy of one model under the GPU (fp16) and Pimba (mx8SR) runs."""

    model: str
    gpu_perplexity: float
    pimba_perplexity: float
    gpu_accuracy: dict[str, float]
    pimba_accuracy: dict[str, float]

    @property
    def gpu_geomean(self) -> float:
        return _geomean(self.gpu_accuracy.values())

    @property
    def pimba_geomean(self) -> float:
        return _geomean(self.pimba_accuracy.values())

    @property
    def geomean_delta(self) -> float:
        """Pimba minus GPU, in accuracy points (paper: within ~±0.3)."""
        return self.pimba_geomean - self.gpu_geomean


def _geomean(values) -> float:
    arr = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.mean(np.log(np.maximum(arr, 1e-9)))))


def table2_row(
    family: Family,
    tasks: tuple[TaskSpec, ...] = TABLE2_TASKS,
    n_items: int = 24,
    seed: int = 1,
    data_seed: int = 0,
    pimba_format: str = "mx8SR",
) -> Table2Row:
    """Evaluate one model on all proxy tasks under both systems."""
    lm = SyntheticLm(family, seed=seed)
    rng = np.random.default_rng(data_seed)
    eval_tokens = lm.sample_stream(4, 384, rng)
    student = lm.build_student(pimba_format)

    gpu_acc, pimba_acc = {}, {}
    for task in tasks:
        items = build_items(lm, task, n_items, rng)
        gpu_acc[task.name] = task_accuracy(lm.teacher, items, lm.temperature)
        pimba_acc[task.name] = task_accuracy(student, items, lm.temperature)

    return Table2Row(
        model=family.value,
        gpu_perplexity=evaluate_perplexity(lm.teacher, eval_tokens, lm.temperature),
        pimba_perplexity=evaluate_perplexity(student, eval_tokens, lm.temperature),
        gpu_accuracy=gpu_acc,
        pimba_accuracy=pimba_acc,
    )
