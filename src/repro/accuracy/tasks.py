"""Proxy multiple-choice tasks for Table 2.

The paper scores six models on PIQA, Lambada, HellaSwag, ARC-Easy,
ARC-Challenge and WinoGrande — all of which reduce to *pick the
continuation with the highest sequence log-likelihood*.  The offline
proxy keeps exactly that decision rule:

* each item has a context sampled from the teacher;
* the correct choice is a low-temperature (likely) teacher continuation
  of that context;
* distractors are likely continuations of *other* contexts, so choosing
  correctly requires carrying the context through the recurrent state.

Task definitions vary context length, continuation length and choice
count to mirror the benchmark suite's spread of difficulty.  Table 2's
claim — Pimba (MX8+SR) scores within noise of the fp16 GPU baseline — is
then checked on identical items.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.accuracy.synthetic_lm import SyntheticLm, log_softmax
from repro.models.base import BaseLlm


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """Shape of one proxy benchmark."""

    name: str
    n_choices: int
    context_len: int
    continuation_len: int

    def __post_init__(self) -> None:
        if self.n_choices < 2:
            raise ValueError("need at least two choices")


#: proxies mirroring the paper's Table 2 column structure
TABLE2_TASKS = (
    TaskSpec("Piqa", n_choices=2, context_len=48, continuation_len=12),
    TaskSpec("Lambada", n_choices=2, context_len=96, continuation_len=4),
    TaskSpec("HellaSwag", n_choices=4, context_len=64, continuation_len=16),
    TaskSpec("ARC-E", n_choices=4, context_len=32, continuation_len=8),
    TaskSpec("ARC-C", n_choices=4, context_len=80, continuation_len=8),
    TaskSpec("WinoGrande", n_choices=2, context_len=64, continuation_len=6),
)


@dataclasses.dataclass(frozen=True)
class TaskItem:
    """One multiple-choice item."""

    context: np.ndarray  #: (context_len,)
    choices: np.ndarray  #: (n_choices, continuation_len)
    answer: int


#: tokens of the item context shared by the distractors' source contexts,
#: so local (bigram) cues cannot separate the choices — only the long-range
#: state can, which is what state quantization damages
SHARED_TAIL = 8


def build_items(
    lm: SyntheticLm,
    task: TaskSpec,
    n_items: int,
    rng: np.random.Generator,
) -> list[TaskItem]:
    """Generate items whose choices differ only through long-range context.

    Every choice is a likely teacher continuation of a context ending in
    the *same* ``SHARED_TAIL`` tokens as the item's context; only the
    earlier prefix (and therefore the recurrent state) differs.
    """
    if n_items < 1:
        raise ValueError("n_items must be positive")
    contexts = lm.sample_stream(n_items * task.n_choices, task.context_len, rng)
    contexts = contexts[:, 1:]  # drop the random seed token
    items = []
    for i in range(n_items):
        block = slice(i * task.n_choices, (i + 1) * task.n_choices)
        ctx_block = contexts[block].copy()
        # All source contexts share the item context's tail.
        ctx_block[:, -SHARED_TAIL:] = ctx_block[0, -SHARED_TAIL:]
        cont_block = lm.continue_stream(
            ctx_block, task.continuation_len, rng,
            temperature=lm.temperature / 2,
        )
        answer = int(rng.integers(task.n_choices))
        items.append(TaskItem(
            context=ctx_block[0],
            choices=cont_block[_place_answer(task.n_choices, answer)],
            answer=answer,
        ))
    return items


def _place_answer(n_choices: int, answer: int) -> np.ndarray:
    """Index order putting choice 0 (the correct one) at ``answer``."""
    order = np.empty(n_choices, dtype=np.int64)
    order[answer] = 0
    others = [i for i in range(n_choices) if i != answer]
    for slot, src in zip(others, range(1, n_choices)):
        order[slot] = src
    return order


def sequence_logprob(
    model: BaseLlm,
    context: np.ndarray,
    continuation: np.ndarray,
    temperature: float,
) -> float:
    """Log-likelihood of ``continuation`` given ``context``."""
    tokens = np.concatenate([context, continuation])[None, :]
    logits = model.forward(tokens[:, :-1])
    logp = log_softmax(logits, temperature)
    targets = tokens[:, 1:]
    per_pos = np.take_along_axis(logp, targets[:, :, None], axis=2)[0, :, 0]
    return float(per_pos[len(context) - 1:].sum())


def task_accuracy(
    model: BaseLlm,
    items: list[TaskItem],
    temperature: float,
) -> float:
    """Fraction of items where the model ranks the true continuation first."""
    correct = 0
    for item in items:
        scores = [
            sequence_logprob(model, item.context, choice, temperature)
            for choice in item.choices
        ]
        correct += int(np.argmax(scores) == item.answer)
    return correct / len(items)
