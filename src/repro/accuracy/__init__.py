"""Accuracy harness: synthetic LMs, perplexity, and proxy tasks.

Reproduces the quantization accuracy results (Fig. 4, Fig. 6's y-axis,
Table 2) with a teacher–student construction; see
``repro.accuracy.synthetic_lm`` for the substitution argument.
"""

from repro.accuracy.harness import (
    FIG4_FAMILIES,
    Table2Row,
    fig4_study,
    table2_row,
)
from repro.accuracy.perplexity import (
    evaluate_perplexity,
    perplexity_delta,
    quantization_sweep,
)
from repro.accuracy.synthetic_lm import (
    MIXER_GAIN,
    TEMPERATURE,
    SyntheticLm,
    log_softmax,
)
from repro.accuracy.tasks import (
    TABLE2_TASKS,
    TaskItem,
    TaskSpec,
    build_items,
    sequence_logprob,
    task_accuracy,
)

__all__ = [
    "FIG4_FAMILIES",
    "Table2Row",
    "fig4_study",
    "table2_row",
    "evaluate_perplexity",
    "perplexity_delta",
    "quantization_sweep",
    "MIXER_GAIN",
    "TEMPERATURE",
    "SyntheticLm",
    "log_softmax",
    "TABLE2_TASKS",
    "TaskItem",
    "TaskSpec",
    "build_items",
    "sequence_logprob",
    "task_accuracy",
]
