"""HBM residency accounting for the serving schedulers.

Two reservation models live here, in increasing fidelity:

* :class:`MemoryModel` — the footprint calculator: weights plus
  per-request state/KV bytes at the storage format's true ``repro.quant``
  byte widths.  The capacity schedulers price every reservation through
  it, so admission can never diverge from the Fig. 15 memory numbers.
* :class:`BlockPool` — a vLLM-style paged allocator on top of the same
  byte accounting: KV is claimed in fixed-size *token blocks* as decode
  progresses instead of being reserved at the request's full final
  context up front.  The pool knows each request's final length (the
  simulator does), so a request's tail block is trimmed to the exact
  tokens it will ever hold — block granularity shows up in *when* bytes
  are claimed, never in claiming bytes no token will use.

The conservative and paged models meet in a degenerate corner that the
tests pin down: a :class:`~repro.serving.schedulers.PagedScheduler` with
preemption disabled reserves every request's full-final-context
footprint at admission through the *same* :meth:`MemoryModel.request_bytes`
arithmetic as :class:`~repro.serving.schedulers.MemoryAwareScheduler`,
so the two engines are bit-exact, event for event.
"""

from __future__ import annotations

import dataclasses

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem


@dataclasses.dataclass(frozen=True)
class MemoryModel:
    """HBM residency of weights and per-request state/KV.

    A thin view over the system's own footprint model
    (:meth:`~repro.perf.system.ServingSystem.state_bytes_per_request` /
    ``kv_bytes_per_request``), whose byte widths come from the
    ``repro.quant`` registry's true bits-per-value — so a Pimba MX8 state
    is half an fp16 one, an int8 state carries its 16-bit group scales,
    and the capacity schedulers can never diverge from the Fig. 15
    memory numbers.
    """

    spec: ModelSpec
    system: ServingSystem

    @classmethod
    def for_system(cls, system: ServingSystem, spec: ModelSpec) -> "MemoryModel":
        return cls(spec=spec, system=system)

    @property
    def weights_bytes(self) -> float:
        """Cluster-wide weight bytes (always resident, never per-request)."""
        return self.system.weights_bytes(self.spec)

    def reserved_bytes(self, kv_tokens: int) -> float:
        """Bytes one resident request holds with ``kv_tokens`` of KV claimed.

        The recurrent state is context-invariant and charged in full from
        admission on; the KV cache is charged for exactly ``kv_tokens``
        tokens.  :meth:`request_bytes` is this at the full final context —
        the two share one arithmetic path on purpose, so the conservative
        and paged reservation models can be compared bit for bit.
        """
        if kv_tokens < 0:
            raise ValueError(f"kv_tokens must be non-negative, got {kv_tokens}")
        return self.system.state_bytes_per_request(
            self.spec
        ) + self.system.kv_bytes_per_request(self.spec, kv_tokens)

    def request_bytes(self, input_len: int, output_len: int) -> float:
        """Cluster-wide bytes one request holds resident at full context.

        The full-context (conservative) reservation: KV for every token
        the request will ever hold, claimed up front so an admitted
        request never has to be preempted mid-decode.  Rejects negative
        lengths — a negative ``output_len`` would silently *shrink* the
        reservation below the prompt's own KV and overcommit the pool.
        """
        if input_len < 0 or output_len < 0:
            raise ValueError(
                "request lengths must be non-negative, got "
                f"input_len={input_len}, output_len={output_len}"
            )
        return self.reserved_bytes(input_len + output_len)


def validate_capacity(memory: MemoryModel, capacity_bytes: float) -> None:
    """Reject an HBM budget that cannot even hold the model weights.

    The error spells out both sides of the comparison in bytes *and* GiB:
    capacity knobs are usually set in GiB (``capacity_gib`` on the CLI)
    while footprints are computed in bytes, and a unit slip between the
    two is exactly the mistake this guard exists to catch.
    """
    floor = memory.weights_bytes
    if capacity_bytes <= floor:
        raise ValueError(
            f"capacity does not even hold the weights: budget "
            f"{capacity_bytes:.0f} bytes ({capacity_bytes / 2**30:.3f} GiB) "
            f"<= model-weights floor {floor:.0f} bytes "
            f"({floor / 2**30:.3f} GiB)"
        )


@dataclasses.dataclass
class _Holding:
    """One resident request's share of a :class:`BlockPool`."""

    blocks: int  #: whole KV blocks held (the tail one may be trimmed)
    kv_tokens: int  #: KV tokens actually charged (<= blocks * block_size)
    reserved: float  #: memoized ``reserved_bytes(kv_tokens)`` of this holding


class BlockPool:
    """Block-granular KV reservations inside one HBM budget.

    The pool owns ``capacity_bytes`` minus the always-resident weights.
    Every resident request charges its context-invariant state plus
    ``kv_tokens`` of KV, where ``kv_tokens`` grows in steps of
    ``block_size`` as decode proceeds (:meth:`extend`) and is trimmed to
    the request's known final context, so the tail block never charges
    tokens that will not exist.  All byte arithmetic goes through
    :meth:`MemoryModel.reserved_bytes`, the same path the conservative
    scheduler uses — which is what makes the degenerate
    (reserve-final-context) configuration bit-exact with
    :class:`~repro.serving.schedulers.MemoryAwareScheduler`.

    Lifetime block counters (:attr:`allocated_blocks` /
    :attr:`freed_blocks`) let the invariant tests assert that every block
    ever claimed is returned by the time a trace drains.
    """

    def __init__(
        self, memory: MemoryModel, capacity_bytes: float, block_size: int
    ):
        validate_capacity(memory, capacity_bytes)
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.memory = memory
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self._holdings: dict[int, _Holding] = {}
        self.allocated_blocks = 0  #: lifetime blocks claimed
        self.freed_blocks = 0  #: lifetime blocks returned

    # -- accounting ---------------------------------------------------------

    def blocks_for(self, context: int) -> int:
        """Whole blocks needed to cover ``context`` KV tokens."""
        return -(-context // self.block_size)

    def covered_tokens(self, context: int, final_context: int) -> int:
        """KV tokens charged at ``context``: whole blocks, tail trimmed.

        ``ceil(context / block_size)`` blocks are claimed, but the last
        one is trimmed to ``final_context`` (the request's known total
        length), so at the final context exactly ``final_context`` tokens
        are charged — the conservative footprint, to the byte.
        """
        return min(self.blocks_for(context) * self.block_size, final_context)

    @property
    def free_bytes(self) -> float:
        """Unclaimed pool bytes (budget minus weights minus holdings).

        Deliberately summed fresh over the holdings in admission order —
        with each holding's bytes memoized at claim time — rather than
        tracked incrementally: the sum then matches
        :func:`~repro.serving.schedulers.admit_within_capacity`'s
        arithmetic float for float, which the degenerate bit-exactness
        with the conservative scheduler depends on.
        """
        return self.capacity_bytes - self.memory.weights_bytes - sum(
            h.reserved for h in self._holdings.values()
        )

    @property
    def blocks_in_use(self) -> int:
        return sum(h.blocks for h in self._holdings.values())

    @property
    def n_resident(self) -> int:
        return len(self._holdings)

    def holds(self, request_id: int) -> bool:
        return request_id in self._holdings

    def fits(self, context: int, final_context: int) -> bool:
        """Would a new request at ``context`` fit the current free pool?"""
        return self.memory.reserved_bytes(
            self.covered_tokens(context, final_context)
        ) <= self.free_bytes

    def feasible(self, input_len: int, output_len: int) -> bool:
        """Could this request *ever* complete, even alone in the pool?"""
        return self.memory.request_bytes(input_len, output_len) <= (
            self.capacity_bytes - self.memory.weights_bytes
        )

    # -- mutation -----------------------------------------------------------

    def allocate(self, request_id: int, context: int, final_context: int) -> None:
        """Claim blocks covering ``context`` for a new resident request.

        The caller (scheduler admission/restore) has already checked
        :meth:`fits`; allocating an already-resident id is a logic error.
        """
        if request_id in self._holdings:
            raise ValueError(f"request {request_id} already holds blocks")
        blocks = self.blocks_for(context)
        kv_tokens = self.covered_tokens(context, final_context)
        self._holdings[request_id] = _Holding(
            blocks=blocks,
            kv_tokens=kv_tokens,
            reserved=self.memory.reserved_bytes(kv_tokens),
        )
        self.allocated_blocks += blocks

    def extend(self, request_id: int, context: int, final_context: int) -> bool:
        """Grow a holding to cover ``context``; ``False`` on exhaustion.

        A no-op (``True``) while the context stays inside the already
        claimed blocks; otherwise claims the next block(s) if the pool
        has room, and reports failure — the preemption trigger — if not.
        """
        holding = self._holdings[request_id]
        kv_tokens = self.covered_tokens(context, final_context)
        if kv_tokens <= holding.kv_tokens:
            return True
        reserved = self.memory.reserved_bytes(kv_tokens)
        if reserved - holding.reserved > self.free_bytes:
            return False
        blocks = self.blocks_for(context)
        self.allocated_blocks += blocks - holding.blocks
        holding.blocks = blocks
        holding.kv_tokens = kv_tokens
        holding.reserved = reserved
        return True

    def release(self, request_id: int) -> None:
        """Return all of a request's blocks (completion or preemption)."""
        holding = self._holdings.pop(request_id)
        self.freed_blocks += holding.blocks
