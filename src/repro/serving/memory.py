"""HBM residency accounting for the serving schedulers.

Two reservation models live here, in increasing fidelity:

* :class:`MemoryModel` — the footprint calculator: weights plus
  per-request state/KV bytes at the storage format's true ``repro.quant``
  byte widths.  The capacity schedulers price every reservation through
  it, so admission can never diverge from the Fig. 15 memory numbers.
* :class:`BlockPool` — a vLLM-style paged allocator on top of the same
  byte accounting: KV is claimed in fixed-size *token blocks* as decode
  progresses instead of being reserved at the request's full final
  context up front.  The pool knows each request's final length (the
  simulator does), so a request's tail block is trimmed to the exact
  tokens it will ever hold — block granularity shows up in *when* bytes
  are claimed, never in claiming bytes no token will use.

The conservative and paged models meet in a degenerate corner that the
tests pin down: a :class:`~repro.serving.schedulers.PagedScheduler` with
preemption disabled reserves every request's full-final-context
footprint at admission through the *same* :meth:`MemoryModel.request_bytes`
arithmetic as :class:`~repro.serving.schedulers.MemoryAwareScheduler`,
so the two engines are bit-exact, event for event.
"""

from __future__ import annotations

import dataclasses

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem


@dataclasses.dataclass(frozen=True)
class MemoryModel:
    """HBM residency of weights and per-request state/KV.

    A thin view over the system's own footprint model
    (:meth:`~repro.perf.system.ServingSystem.state_bytes_per_request` /
    ``kv_bytes_per_request``), whose byte widths come from the
    ``repro.quant`` registry's true bits-per-value — so a Pimba MX8 state
    is half an fp16 one, an int8 state carries its 16-bit group scales,
    and the capacity schedulers can never diverge from the Fig. 15
    memory numbers.
    """

    spec: ModelSpec
    system: ServingSystem

    @classmethod
    def for_system(cls, system: ServingSystem, spec: ModelSpec) -> "MemoryModel":
        return cls(spec=spec, system=system)

    @property
    def weights_bytes(self) -> float:
        """Cluster-wide weight bytes (always resident, never per-request)."""
        return self.system.weights_bytes(self.spec)

    def reserved_bytes(self, kv_tokens: int) -> float:
        """Bytes one resident request holds with ``kv_tokens`` of KV claimed.

        The recurrent state is context-invariant and charged in full from
        admission on; the KV cache is charged for exactly ``kv_tokens``
        tokens.  :meth:`request_bytes` is this at the full final context —
        the two share one arithmetic path on purpose, so the conservative
        and paged reservation models can be compared bit for bit.
        """
        if kv_tokens < 0:
            raise ValueError(f"kv_tokens must be non-negative, got {kv_tokens}")
        return self.system.state_bytes_per_request(
            self.spec
        ) + self.system.kv_bytes_per_request(self.spec, kv_tokens)

    def kv_bytes(self, kv_tokens: int) -> float:
        """KV-only bytes of ``kv_tokens`` tokens (no per-request state).

        What a cached prefix block costs: the KV it holds and nothing
        else — the context-invariant request state belongs to whichever
        *request* computes on those tokens, never to the cache entry.
        """
        if kv_tokens < 0:
            raise ValueError(f"kv_tokens must be non-negative, got {kv_tokens}")
        return self.system.kv_bytes_per_request(self.spec, kv_tokens)

    def request_bytes(self, input_len: int, output_len: int) -> float:
        """Cluster-wide bytes one request holds resident at full context.

        The full-context (conservative) reservation: KV for every token
        the request will ever hold, claimed up front so an admitted
        request never has to be preempted mid-decode.  Rejects negative
        lengths — a negative ``output_len`` would silently *shrink* the
        reservation below the prompt's own KV and overcommit the pool.
        """
        if input_len < 0 or output_len < 0:
            raise ValueError(
                "request lengths must be non-negative, got "
                f"input_len={input_len}, output_len={output_len}"
            )
        return self.reserved_bytes(input_len + output_len)


def validate_capacity(memory: MemoryModel, capacity_bytes: float) -> None:
    """Reject an HBM budget that cannot even hold the model weights.

    The error spells out both sides of the comparison in bytes *and* GiB:
    capacity knobs are usually set in GiB (``capacity_gib`` on the CLI)
    while footprints are computed in bytes, and a unit slip between the
    two is exactly the mistake this guard exists to catch.
    """
    floor = memory.weights_bytes
    if capacity_bytes <= floor:
        raise ValueError(
            f"capacity does not even hold the weights: budget "
            f"{capacity_bytes:.0f} bytes ({capacity_bytes / 2**30:.3f} GiB) "
            f"<= model-weights floor {floor:.0f} bytes "
            f"({floor / 2**30:.3f} GiB)"
        )


@dataclasses.dataclass
class _Holding:
    """One resident request's share of a :class:`BlockPool`."""

    blocks: int  #: whole KV blocks held (the tail one may be trimmed)
    kv_tokens: int  #: KV tokens actually charged (<= blocks * block_size)
    reserved: float  #: memoized ``reserved_bytes(kv_tokens)`` of this holding
    #: leading prefix tokens served from shared cache blocks instead of
    #: private ones (0 for every non-sharing holding — the arithmetic
    #: below then reduces to the plain paged path, bit for bit)
    shared_tokens: int = 0


class BlockPool:
    """Block-granular KV reservations inside one HBM budget.

    The pool owns ``capacity_bytes`` minus the always-resident weights.
    Every resident request charges its context-invariant state plus
    ``kv_tokens`` of KV, where ``kv_tokens`` grows in steps of
    ``block_size`` as decode proceeds (:meth:`extend`) and is trimmed to
    the request's known final context, so the tail block never charges
    tokens that will not exist.  All byte arithmetic goes through
    :meth:`MemoryModel.reserved_bytes`, the same path the conservative
    scheduler uses — which is what makes the degenerate
    (reserve-final-context) configuration bit-exact with
    :class:`~repro.serving.schedulers.MemoryAwareScheduler`.

    Lifetime block counters (:attr:`allocated_blocks` /
    :attr:`freed_blocks`) let the invariant tests assert that every block
    ever claimed is returned by the time a trace drains.
    """

    def __init__(
        self, memory: MemoryModel, capacity_bytes: float, block_size: int
    ):
        validate_capacity(memory, capacity_bytes)
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.memory = memory
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self._holdings: dict[int, _Holding] = {}
        self.allocated_blocks = 0  #: lifetime blocks claimed
        self.freed_blocks = 0  #: lifetime blocks returned

    # -- accounting ---------------------------------------------------------

    def blocks_for(self, context: int) -> int:
        """Whole blocks needed to cover ``context`` KV tokens."""
        return -(-context // self.block_size)

    def covered_tokens(self, context: int, final_context: int) -> int:
        """KV tokens charged at ``context``: whole blocks, tail trimmed.

        ``ceil(context / block_size)`` blocks are claimed, but the last
        one is trimmed to ``final_context`` (the request's known total
        length), so at the final context exactly ``final_context`` tokens
        are charged — the conservative footprint, to the byte.
        """
        return min(self.blocks_for(context) * self.block_size, final_context)

    @property
    def free_bytes(self) -> float:
        """Unclaimed pool bytes (budget minus weights minus holdings).

        Deliberately summed fresh over the holdings in admission order —
        with each holding's bytes memoized at claim time — rather than
        tracked incrementally: the sum then matches
        :func:`~repro.serving.schedulers.admit_within_capacity`'s
        arithmetic float for float, which the degenerate bit-exactness
        with the conservative scheduler depends on.
        """
        return self.capacity_bytes - self.memory.weights_bytes - sum(
            h.reserved for h in self._holdings.values()
        )

    @property
    def blocks_in_use(self) -> int:
        return sum(h.blocks for h in self._holdings.values())

    @property
    def n_resident(self) -> int:
        return len(self._holdings)

    def holds(self, request_id: int) -> bool:
        return request_id in self._holdings

    def fits(self, context: int, final_context: int) -> bool:
        """Would a new request at ``context`` fit the current free pool?"""
        return self.memory.reserved_bytes(
            self.covered_tokens(context, final_context)
        ) <= self.free_bytes

    def feasible(self, input_len: int, output_len: int) -> bool:
        """Could this request *ever* complete, even alone in the pool?"""
        return self.memory.request_bytes(input_len, output_len) <= (
            self.capacity_bytes - self.memory.weights_bytes
        )

    # -- mutation -----------------------------------------------------------

    def allocate(
        self,
        request_id: int,
        context: int,
        final_context: int,
        shared_tokens: int = 0,
    ) -> None:
        """Claim blocks covering ``context`` for a new resident request.

        The caller (scheduler admission/restore) has already checked
        :meth:`fits`; allocating an already-resident id is a logic error.
        ``shared_tokens`` (a whole-block multiple) marks a leading prefix
        already resident in shared cache blocks: those blocks are neither
        claimed nor charged here — the holding covers only the private
        remainder.
        """
        if request_id in self._holdings:
            raise ValueError(f"request {request_id} already holds blocks")
        blocks = self.blocks_for(context) - shared_tokens // self.block_size
        kv_tokens = self.covered_tokens(context, final_context) - shared_tokens
        self._holdings[request_id] = _Holding(
            blocks=blocks,
            kv_tokens=kv_tokens,
            reserved=self.memory.reserved_bytes(kv_tokens),
            shared_tokens=shared_tokens,
        )
        self.allocated_blocks += blocks

    def extend(self, request_id: int, context: int, final_context: int) -> bool:
        """Grow a holding to cover ``context``; ``False`` on exhaustion.

        A no-op (``True``) while the context stays inside the already
        claimed blocks; otherwise claims the next block(s) if the pool
        has room, and reports failure — the preemption trigger — if not.
        """
        holding = self._holdings[request_id]
        kv_tokens = (
            self.covered_tokens(context, final_context)
            - holding.shared_tokens
        )
        if kv_tokens <= holding.kv_tokens:
            return True
        reserved = self.memory.reserved_bytes(kv_tokens)
        if reserved - holding.reserved > self.free_bytes:
            return False
        blocks = (
            self.blocks_for(context)
            - holding.shared_tokens // self.block_size
        )
        self.allocated_blocks += blocks - holding.blocks
        holding.blocks = blocks
        holding.kv_tokens = kv_tokens
        holding.reserved = reserved
        return True

    def release(self, request_id: int) -> None:
        """Return all of a request's blocks (completion or preemption)."""
        holding = self._holdings.pop(request_id)
        self.freed_blocks += holding.blocks


class PrefixCache:
    """Refcounted radix-style cache of published session-prefix blocks.

    Keyed by ``(session_id, block_index)`` — the degenerate token-prefix
    hash of the simulator, where a session's token history *is* its
    identity, so two turns of one chat share block ``i`` exactly when
    both cover tokens ``[i * block_size, (i + 1) * block_size)`` of that
    history.  Only *full* blocks are ever published: the partial tail of
    a prompt or an in-flight decode is private by construction
    (copy-on-write — a request whose prompt ends mid-block writes its
    decode tokens into that block, so the block diverges from the
    session history and cannot be shared; :meth:`match` therefore stops
    at the last whole block *strictly before* the first token the new
    request must compute).

    Entries carry a reference count.  Referenced (pinned) blocks belong
    to live requests and are never evicted; unreferenced blocks sit in
    an insertion-ordered LRU and are reclaimed oldest-first whenever
    live KV wants the bytes (:meth:`PrefixBlockPool._trim`) — cached
    blocks always lose to live KV, and they lose *before* any request
    is preempted.  Matching requires the prefix to be contiguous from
    block 0, so evicting a block implicitly unreaches its descendants —
    the radix-tree parent/child rule without materializing a tree.
    """

    def __init__(self, memory: MemoryModel, block_size: int):
        self.memory = memory
        self.block_size = block_size
        #: KV bytes of one full cached block (no per-request state —
        #: that is charged by whichever request computes on the tokens)
        self.block_bytes = memory.kv_bytes(block_size)
        #: (session_id, block_index) -> live references
        self._refs: dict[tuple[int, int], int] = {}
        #: refcount-0 entries in eviction order, oldest first
        self._lru: dict[tuple[int, int], None] = {}
        #: block keys each resident request currently pins
        self._holders: dict[int, list[tuple[int, int]]] = {}
        self.hit_tokens = 0  #: lifetime prefill tokens served from cache
        self.miss_tokens = 0  #: lifetime prefill tokens actually computed
        self.evictions = 0  #: lifetime cached blocks reclaimed for live KV

    # -- accounting ---------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """All cache entries, pinned and evictable."""
        return len(self._refs)

    @property
    def pinned_blocks(self) -> int:
        """Entries referenced by live requests (never evictable)."""
        return len(self._refs) - len(self._lru)

    @property
    def cached_blocks(self) -> int:
        """Unreferenced entries retained for future reuse (evictable)."""
        return len(self._lru)

    @property
    def pinned_bytes(self) -> float:
        return self.pinned_blocks * self.block_bytes

    @property
    def cached_bytes(self) -> float:
        return self.cached_blocks * self.block_bytes

    @property
    def hit_rate(self) -> float:
        seen = self.hit_tokens + self.miss_tokens
        return self.hit_tokens / seen if seen else 0.0

    # -- lookup and lifecycle ----------------------------------------------

    def match(self, session_id: int, prefill_tokens: int) -> int:
        """Cached whole blocks a ``prefill_tokens``-token prefill can reuse.

        Contiguous from block 0, and capped at
        ``(prefill_tokens - 1) // block_size`` so at least one token is
        always left to compute (the engine must price a first-token
        prefill) and the block the request will *write* into (its
        mid-block divergence point) is copied, never shared.
        """
        cap = (prefill_tokens - 1) // self.block_size
        n = 0
        while n < cap and (session_id, n) in self._refs:
            n += 1
        return n

    def acquire(self, request_id: int, session_id: int, n_blocks: int) -> None:
        """Pin blocks ``0..n_blocks-1`` of ``session_id`` for a request."""
        if n_blocks == 0:
            return
        keys = [(session_id, i) for i in range(n_blocks)]
        for key in keys:
            if self._refs[key] == 0:
                del self._lru[key]
            self._refs[key] += 1
        self._holders[request_id] = keys

    def release(self, request_id: int) -> None:
        """Drop a request's pins; newly unreferenced blocks join the LRU."""
        for key in self._holders.pop(request_id, ()):
            self._refs[key] -= 1
            if self._refs[key] == 0:
                self._lru[key] = None

    def publish(self, session_id: int, history_tokens: int) -> None:
        """Make every full block of a session history reusable.

        Called when a request completes: its prompt and generated tokens
        extend the session's shared history.  Already-present blocks are
        refreshed (moved to the LRU tail when unreferenced); the partial
        tail block is never published.
        """
        for i in range(history_tokens // self.block_size):
            key = (session_id, i)
            if key not in self._refs:
                self._refs[key] = 0
                self._lru[key] = None
            elif self._refs[key] == 0:
                del self._lru[key]
                self._lru[key] = None

    def evict_lru(self) -> bool:
        """Reclaim the least-recently-used unreferenced block, if any."""
        if not self._lru:
            return False
        key = next(iter(self._lru))
        del self._lru[key]
        del self._refs[key]
        self.evictions += 1
        return True


class PrefixBlockPool(BlockPool):
    """A :class:`BlockPool` whose blocks can be shared across requests.

    Adds a :class:`PrefixCache` on the side of the base pool's private
    holdings.  The accounting split is deliberate:

    * **Pinned cache bytes** (blocks referenced by live requests) gate
      every decision — they are as unevictable as live KV, so
      :attr:`free_bytes` subtracts them.
    * **Unreferenced cached bytes** do *not* gate decisions: they are
      reclaimed automatically (:meth:`_trim`, LRU order) whenever live
      KV claims the space, so admission and growth behave exactly as if
      the cache were empty — cached blocks always yield to live KV, and
      they are gone long before the scheduler would have to preempt a
      running request.

    With nothing shared and nothing published, every code path reduces
    to the base pool's arithmetic on the same floats in the same order —
    the bit-exactness of the cache-disabled scheduler rests on this.
    """

    def __init__(
        self, memory: MemoryModel, capacity_bytes: float, block_size: int
    ):
        super().__init__(memory, capacity_bytes, block_size)
        self.cache = PrefixCache(memory, block_size)
        #: shared cross-replica tier, attached by the cluster builder
        self.tier: SharedPrefixTier | None = None
        #: this pool's replica index within the tier (meaningless otherwise)
        self.replica = 0
        #: lifetime prefill tokens served by pulling remote KV
        self.remote_hit_tokens = 0
        #: lifetime KV bytes pulled over the link into this pool
        self.transferred_bytes = 0.0
        #: lifetime remote pulls (each covers one contiguous block range)
        self.kv_transfers = 0

    def attach_tier(self, tier: "SharedPrefixTier", replica: int) -> None:
        """Join a cluster-wide shared prefix tier as ``replica``."""
        self.tier = tier
        self.replica = replica

    @property
    def free_bytes(self) -> float:
        return super().free_bytes - self.cache.pinned_bytes

    def allocate_reusing(
        self,
        request_id: int,
        session_id: int,
        context: int,
        final_context: int,
        prefill_tokens: int,
        now: float | None = None,
    ) -> tuple[int, int, float]:
        """Allocate like :meth:`allocate`, reusing cached prefix blocks.

        ``prefill_tokens`` is the prefill the engine is about to price
        (the prompt at admission, prompt + generated at restore); the
        cached prefix shortens it.  When a shared tier is attached and
        ``now`` (the simulated clock) is given, a longer prefix published
        by another replica may be pulled over the link first — the pulled
        blocks land in the local cache and are pinned and charged exactly
        like locally produced ones.  Returns ``(hit_tokens,
        remote_tokens, transfer_s)`` so the scheduler can hand the
        engine both the shortened prefill and the wire time to serialize
        before it.
        """
        hit_blocks = self.cache.match(session_id, prefill_tokens)
        remote_tokens, transfer_s = 0, 0.0
        if self.tier is not None and now is not None:
            hit_blocks, remote_tokens, transfer_s = self.tier.resolve(
                self, session_id, prefill_tokens, hit_blocks, now
            )
        hit_tokens = hit_blocks * self.block_size
        # Pin before allocating: the allocation's trim may otherwise
        # reclaim the very blocks just matched under a tight pool.
        self.cache.acquire(request_id, session_id, hit_blocks)
        self.allocate(
            request_id, context, final_context, shared_tokens=hit_tokens
        )
        self.cache.hit_tokens += hit_tokens
        self.cache.miss_tokens += prefill_tokens - hit_tokens
        if remote_tokens:
            self.remote_hit_tokens += remote_tokens
            # Same payload arithmetic the tier priced the wire time on.
            self.transferred_bytes += self.memory.reserved_bytes(remote_tokens)
            self.kv_transfers += 1
        return hit_tokens, remote_tokens, transfer_s

    def allocate(
        self,
        request_id: int,
        context: int,
        final_context: int,
        shared_tokens: int = 0,
    ) -> None:
        super().allocate(request_id, context, final_context, shared_tokens)
        self._trim()

    def extend(self, request_id: int, context: int, final_context: int) -> bool:
        grew = super().extend(request_id, context, final_context)
        if grew:
            self._trim()
        return grew

    def release(self, request_id: int) -> None:
        super().release(request_id)
        self.cache.release(request_id)

    def publish(
        self, session_id: int, history_tokens: int, at: float | None = None
    ) -> None:
        """Publish a completed request's session history to the cache.

        With a shared tier attached and a completion clock ``at``, the
        history is also advertised fleet-wide so other replicas can pull
        it later.
        """
        self.cache.publish(session_id, history_tokens)
        if self.tier is not None and at is not None:
            self.tier.publish(self.replica, session_id, history_tokens, at)
        self._trim()

    def _trim(self) -> None:
        """Evict unreferenced cached blocks until they fit the free pool.

        The physical bound: private holdings + pinned cache + retained
        cache must fit the budget.  Decisions ignore retained blocks, so
        whenever live KV (or a pin) claims bytes the retained set is
        trimmed LRU-first to whatever headroom is left — cached blocks
        yield to live KV, never the other way around.
        """
        free = self.free_bytes
        while self.cache.cached_bytes > free and self.cache.evict_lru():
            pass


class SharedPrefixTier:
    """A cluster-wide directory of published session prefixes.

    One tier is shared by every replica's :class:`PrefixBlockPool` in a
    cluster.  When a replica completes a session turn it advertises the
    session's block-aligned history here (:meth:`publish`, stamped with
    the completion clock); when another replica later admits a turn of
    the same session it may *pull* the remote prefix (:meth:`resolve`)
    instead of recomputing it — but only when the wire time of moving
    the KV bytes beats the prefill increment it replaces, both priced
    through the same :class:`~repro.serving.costs.IterationCostModel`
    the engine uses.  Pulled blocks are materialized into the
    destination pool's local cache and from then on are pinned, charged,
    trimmed, and evicted exactly like locally produced blocks.

    Two deliberate modeling choices keep the simulation deterministic:

    * **Causality by clock**: replicas simulate in index order, each on
      the shared trace-time axis, so a publish is visible to a lookup
      only when its completion clock is at or before the lookup's clock.
    * **Conservative visibility**: a replica only sees publishes from
      replicas that simulated *before* it (lower index).  Real fleets
      transfer in both directions; this one-directional view undercounts
      remote hits rather than inventing causality-violating ones, and it
      is what makes serial and process-pool runs bit-identical.
    """

    def __init__(self, memory: MemoryModel, block_size: int, cost):
        self.memory = memory
        self.block_size = block_size
        self.cost = cost
        #: session_id -> (replica, block-aligned history tokens, publish clock)
        self._published: dict[int, tuple[int, int, float]] = {}
        #: lifetime pulls that went over the wire
        self.transfers = 0
        #: lifetime lookups where a longer remote prefix existed but
        #: recomputing the suffix was cheaper than moving it
        self.recomputes = 0

    @property
    def n_sessions(self) -> int:
        """Sessions with at least one published prefix."""
        return len(self._published)

    def publish(
        self, replica: int, session_id: int, history_tokens: int, at: float
    ) -> None:
        """Advertise a session's history; the longest prefix wins.

        Ties go to the most recent publisher, so a session that migrates
        replicas keeps its directory entry pointing at warm KV.
        """
        tokens = (history_tokens // self.block_size) * self.block_size
        if tokens < self.block_size:
            return
        entry = self._published.get(session_id)
        if entry is not None and entry[1] > tokens:
            return
        self._published[session_id] = (replica, tokens, at)

    def resolve(
        self,
        pool: PrefixBlockPool,
        session_id: int,
        prefill_tokens: int,
        local_blocks: int,
        now: float,
    ) -> tuple[int, int, float]:
        """Decide transfer vs recompute for one admission.

        Returns ``(hit_blocks, remote_tokens, transfer_s)``: the prefix
        blocks the caller may treat as cached, how many of those tokens
        were pulled over the wire, and the wire seconds to charge before
        the remaining prefill.  Identity (``local_blocks, 0, 0.0``) when
        no visible remote prefix extends the local one or recompute wins.
        """
        entry = self._published.get(session_id)
        if entry is None:
            return local_blocks, 0, 0.0
        replica, history_tokens, published_s = entry
        if replica == pool.replica or published_s > now:
            return local_blocks, 0, 0.0
        # Same cap as the local match: never share the final prompt token.
        cap = (prefill_tokens - 1) // self.block_size
        remote_blocks = min(history_tokens // self.block_size, cap)
        if remote_blocks <= local_blocks:
            return local_blocks, 0, 0.0
        extra_tokens = (remote_blocks - local_blocks) * self.block_size
        # The payload is a resident prefix, not bare KV: the pulled range
        # arrives with the context-invariant state snapshot that lets the
        # destination resume from it, so it is priced at reserved_bytes.
        transfer_s = self.cost.transfer_seconds(
            self.memory.reserved_bytes(extra_tokens)
        )
        recompute_s = self.cost.chunk_prefill_seconds(
            1, local_blocks * self.block_size, remote_blocks * self.block_size
        )
        if transfer_s >= recompute_s:
            self.recomputes += 1
            return local_blocks, 0, 0.0
        # Materialize the pulled range into the destination cache; the
        # caller pins it immediately, so the pool's own trim cannot
        # reclaim it before the allocation lands.
        pool.cache.publish(session_id, remote_blocks * self.block_size)
        self.transfers += 1
        return remote_blocks, extra_tokens, transfer_s
