"""Front-end request routers for a cluster of serving replicas.

A router is the piece of a data-parallel serving fleet that the paper's
single-node evaluation never exercises: every arriving request must be
pinned to one replica *before* that replica's scheduler sees it, and the
choice shapes queueing on every node downstream.  Four policies:

* :class:`RoundRobinRouter` — rotate through replicas; perfectly fair in
  request count, blind to request size and replica backlog.
* :class:`LeastOutstandingRouter` — send each request to the replica with
  the fewest requests still predicted to be in flight.  Predictions come
  from a caller-supplied service-time estimate (the cluster wires in the
  same :class:`~repro.serving.costs.IterationCostModel` that prices the
  engines, so the router never re-derives costs) applied to a virtual
  single-server queue per replica.
* :class:`AffinityRouter` — consistent hashing of a per-request key.  The
  default key is the *session id when the request has one* (falling back
  to the request id for sessionless traffic), so a session's turns all
  land on the replica that holds its prefix/KV state; a custom key (e.g.
  ``input_len``) instead groups identically-shaped prompts.
* :class:`CacheAwareRouter` — least-outstanding backlog in *seconds*,
  minus a cache-warmth credit (estimated prefix-hit tokens times the
  per-token prefill savings) on the replica that last served the
  session — so load balancing and prefix locality are traded off in one
  unit instead of fighting each other.

Routers are deliberately *stateful but seed-free*: given the same trace,
any router produces the same assignment on every run and in every worker
process (hashes go through SHA-256, never Python's randomized ``hash``).
"""

from __future__ import annotations

import abc
import hashlib
from collections.abc import Callable, Sequence

from repro.workloads.requests import TimedRequest, Trace

#: estimated seconds one replica needs to serve a request end to end
ServiceTimeEstimate = Callable[[TimedRequest], float]

#: either one estimate shared by every replica (a homogeneous fleet) or
#: one per replica (heterogeneous node kinds price differently)
ServiceTimeEstimates = ServiceTimeEstimate | Sequence[ServiceTimeEstimate]

#: extracts the affinity key of a request (hashed to pick a replica)
AffinityKey = Callable[[TimedRequest], object]

#: seconds of prefill a replica saves by reusing ``hit_tokens`` of
#: cached prefix (the cluster wires in the engines' own cost model)
PrefixSavingsEstimate = Callable[[int], float]


def _per_replica(
    estimate: "ServiceTimeEstimate | Sequence[ServiceTimeEstimate]",
    n_replicas: int,
    what: str = "service_time",
) -> list[ServiceTimeEstimate]:
    """Normalize a shared-or-per-replica estimate to one entry per replica.

    A single callable fans out to every replica (the homogeneous case —
    identical floats, so pre-heterogeneity assignments are preserved bit
    for bit); a sequence must match the fleet size exactly.
    """
    if callable(estimate):
        return [estimate] * n_replicas
    estimates = list(estimate)
    if len(estimates) != n_replicas:
        raise ValueError(
            f"got {len(estimates)} {what} estimates for "
            f"{n_replicas} replicas"
        )
    if not all(callable(e) for e in estimates):
        raise TypeError(f"every {what} estimate must be callable")
    return estimates


class Router(abc.ABC):
    """Assigns each arriving request of a trace to one replica.

    The contract: :meth:`choose` is called once per request in arrival
    order and may update internal state (backlog predictions, rotation
    position); :meth:`reset` must return that state to its
    freshly-constructed value, because the cluster engine reuses one
    router across runs and a reused engine must route identically to a
    fresh one; :meth:`assign` (final) maps a whole trace and validates
    every choice.  Routers never see engine internals — they decide
    *before* any scheduler runs, which is exactly the information
    asymmetry a real fleet front end has.
    """

    #: registry name (``--set router=...`` on the CLI)
    name: str = "?"

    def __init__(self, n_replicas: int):
        if n_replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self.n_replicas = n_replicas

    @abc.abstractmethod
    def choose(self, request: TimedRequest) -> int:
        """The replica index for ``request`` (may update router state)."""

    def reset(self) -> None:
        """Forget all routing state (start of a fresh trace).

        Stateful policies override this; the cluster engine calls it
        before every run so a reused engine routes a trace identically
        to a fresh one.
        """

    def assign(self, trace: Trace) -> tuple[int, ...]:
        """Route a whole trace in arrival order."""
        choices = []
        for request in trace.requests:
            replica = self.choose(request)
            if not 0 <= replica < self.n_replicas:
                raise ValueError(
                    f"router {self.name!r} chose replica {replica} "
                    f"of {self.n_replicas}"
                )
            choices.append(replica)
        return tuple(choices)


class RoundRobinRouter(Router):
    """Rotate through replicas in arrival order."""

    name = "round-robin"

    def __init__(self, n_replicas: int):
        super().__init__(n_replicas)
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, request: TimedRequest) -> int:
        del request
        replica = self._next
        self._next = (self._next + 1) % self.n_replicas
        return replica


class LeastOutstandingRouter(Router):
    """Pick the replica with the fewest predicted-in-flight requests.

    Each replica is modeled as a virtual single-server queue: a routed
    request starts when the replica's backlog drains (or immediately if
    idle) and occupies it for ``service_time(request)`` seconds.  At each
    arrival the router first expires predictions that finished before the
    arrival instant, then counts what is left.  Ties break toward the
    lowest replica index, so the assignment is fully deterministic.
    """

    name = "least-loaded"

    def __init__(self, n_replicas: int, service_time: ServiceTimeEstimates):
        super().__init__(n_replicas)
        #: per-replica estimates — a heterogeneous fleet prices the same
        #: request differently on different node kinds, so the virtual
        #: queue must ask the *chosen* replica's cost model
        self.service_times = _per_replica(service_time, n_replicas)
        self._in_flight: list[list[float]] = [[] for _ in range(n_replicas)]
        self._busy_until = [0.0] * n_replicas

    def reset(self) -> None:
        self._in_flight = [[] for _ in range(self.n_replicas)]
        self._busy_until = [0.0] * self.n_replicas

    def outstanding(self, replica: int, now_s: float) -> int:
        """Requests predicted to still occupy ``replica`` at ``now_s``."""
        flight = self._in_flight[replica]
        flight[:] = [finish for finish in flight if finish > now_s]
        return len(flight)

    def choose(self, request: TimedRequest) -> int:
        now = request.arrival_s
        replica = min(
            range(self.n_replicas), key=lambda i: (self.outstanding(i, now), i)
        )
        begin = max(now, self._busy_until[replica])
        finish = begin + self.service_times[replica](request)
        self._busy_until[replica] = finish
        self._in_flight[replica].append(finish)
        return replica


def _canonical_key_bytes(value: object) -> bytes:
    """A byte encoding of an affinity key that is stable across processes.

    Only scalars (and tuples/lists of scalars) are accepted: hashing an
    arbitrary object's ``repr`` would silently fold its memory address
    into the digest and break the router's cross-process determinism.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return f"{type(value).__name__}:{value!r}".encode()
    if isinstance(value, (tuple, list)):
        return b"seq:" + b"|".join(_canonical_key_bytes(v) for v in value)
    raise TypeError(
        "affinity keys must be scalars (or tuples of scalars) so hashing "
        f"is deterministic across processes; got {type(value).__name__}"
    )


def _default_affinity_key(request: TimedRequest) -> object:
    """Session id when present, request id otherwise.

    A plain module-level function (not a lambda) so routers stay
    picklable for process-pool experiment runners.
    """
    session = request.session_id
    return session if session is not None else request.request_id


class AffinityRouter(Router):
    """Consistent hashing of a per-request key onto the replica ring.

    The same key always lands on the same replica — the property a
    prefix/session cache needs — and the hash is SHA-256 over a
    canonical scalar encoding of the key, so assignments are stable
    across processes and Python versions (unlike the builtin,
    seed-randomized ``hash``).
    """

    name = "affinity"

    def __init__(self, n_replicas: int, key: AffinityKey | None = None):
        super().__init__(n_replicas)
        # Session id first, request id as the sessionless fallback: the
        # old request-id-only default hashed every *turn* of a session to
        # a different replica, which silently destroyed cluster-level
        # prefix locality (sessionless traces hash identically either
        # way, so fixing it cost no existing assignment).
        self.key = key if key is not None else _default_affinity_key

    def choose(self, request: TimedRequest) -> int:
        digest = hashlib.sha256(
            _canonical_key_bytes(self.key(request))
        ).digest()
        return int.from_bytes(digest[:8], "big") % self.n_replicas


class CacheAwareRouter(LeastOutstandingRouter):
    """Least-outstanding backlog in seconds, minus a cache-warmth credit.

    Each replica keeps the parent's virtual single-server queue, but the
    score compared across replicas is the predicted backlog *in seconds*
    (``busy_until - now``) rather than a request count — so warmth can be
    subtracted in the same unit: for the replica that last served the
    request's session, the score drops by the estimated prefix-hit
    tokens priced through ``prefix_savings`` (the cluster wires in the
    engines' own prefill cost).  A session therefore sticks to its warm
    replica until the backlog gap exceeds what the cached prefix is
    worth, at which point the router deliberately moves it — and with a
    shared prefix tier downstream, the move lands warm via a priced KV
    transfer instead of cold.

    Session history is tracked from the router's own decisions (replica
    and cumulative conversation tokens after each routed turn): a front
    end knows what it routed, not what the engines cached — the same
    information asymmetry the other routers live with.  Sessionless
    requests score with zero warmth everywhere, i.e. plain seconds-based
    least-outstanding routing.
    """

    name = "cache-aware"

    def __init__(
        self,
        n_replicas: int,
        service_time: ServiceTimeEstimates,
        prefix_savings: PrefixSavingsEstimate | None = None,
    ):
        super().__init__(n_replicas, service_time)
        #: per-replica like the parent's service times: a warm prefix is
        #: worth whatever *that* node kind would spend recomputing it
        self.prefix_savings = (
            None
            if prefix_savings is None
            else _per_replica(prefix_savings, n_replicas, "prefix_savings")
        )
        #: session_id -> (replica of the last turn, conversation tokens)
        self._sessions: dict[object, tuple[int, int]] = {}

    def reset(self) -> None:
        super().reset()
        self._sessions = {}

    def _warmth_s(self, request: TimedRequest, replica: int) -> float:
        session = request.session_id
        if session is None or self.prefix_savings is None:
            return 0.0
        home = self._sessions.get(session)
        if home is None or home[0] != replica:
            return 0.0
        # A prefix hit can never cover the whole prompt (the final token
        # is always computed) — mirror the cache's own cap.
        hit_tokens = min(home[1], request.input_len - 1)
        if hit_tokens < 1:
            return 0.0
        return self.prefix_savings[replica](hit_tokens)

    def choose(self, request: TimedRequest) -> int:
        now = request.arrival_s
        replica = min(
            range(self.n_replicas),
            key=lambda i: (
                max(self._busy_until[i] - now, 0.0) - self._warmth_s(
                    request, i
                ),
                i,
            ),
        )
        # Keep the parent's queue bookkeeping (outstanding() also prunes
        # the in-flight list, bounding its growth).
        self.outstanding(replica, now)
        begin = max(now, self._busy_until[replica])
        finish = begin + self.service_times[replica](request)
        self._busy_until[replica] = finish
        self._in_flight[replica].append(finish)
        session = request.session_id
        if session is not None:
            # After this turn the conversation history the next turn
            # could reuse is everything sent plus everything generated.
            self._sessions[session] = (
                replica, request.input_len + request.output_len
            )
        return replica


#: phases a replica may own in a disaggregated fleet
PHASE_NAMES: tuple[str, ...] = ("prefill", "decode", "both")


class DisaggregatedRouter(Router):
    """Phase-pair routing for a prefill/decode-disaggregated fleet.

    Instead of one replica per request, this router picks a *pair*: the
    prefill-capable replica that produces the first token and the
    decode-capable replica that generates the tail.  A ``both`` replica
    may serve a request *colocated* (it is its own pair); a ``decode``
    replica only ever receives continuations, whose KV arrives over the
    priced ``link_gbps`` wire — the handoff estimate is part of the
    score, so a slow link correctly pushes the router back toward
    colocated serving.

    Scoring mirrors :class:`LeastOutstandingRouter`'s virtual
    single-server queues, but in phase-split form.  For prefill replica
    ``p``: ``t_first = max(now, busy[p]) + prefill_time[p](r)`` — the
    estimated TTFT.  A colocated candidate scores ``t_first`` and would
    occupy ``p`` through its decode tail too; a split candidate with
    decode replica ``d`` scores ``max(t_first + handoff_time[d](r),
    busy[d])`` — when the tail could *start* — and occupies ``p`` only
    through prefill, which is exactly the interference-removal
    disaggregation buys.  Ties break toward the lowest ``(p, d)``, so
    assignment is fully deterministic.  On an all-``both`` fleet every
    pair is colocated and the router degrades to TTFT-greedy
    least-backlog routing (usable single-stage).

    Not in :data:`ROUTER_NAMES`: the classic routers assign one replica
    per request and work under any cluster, while this one needs the
    cluster engine's two-stage orchestration to honor its pairs —
    :func:`~repro.serving.cluster.build_cluster` constructs it when
    ``router="disaggregated"``.
    """

    name = "disaggregated"

    def __init__(
        self,
        n_replicas: int,
        phases: Sequence[str],
        prefill_time: ServiceTimeEstimates,
        decode_time: ServiceTimeEstimates,
        handoff_time: ServiceTimeEstimates,
    ):
        super().__init__(n_replicas)
        phases = tuple(phases)
        if len(phases) != n_replicas:
            raise ValueError(
                f"got {len(phases)} phases for {n_replicas} replicas"
            )
        unknown = sorted(set(phases) - set(PHASE_NAMES))
        if unknown:
            raise ValueError(
                f"unknown phase(s) {unknown}; "
                f"available: {', '.join(PHASE_NAMES)}"
            )
        self.phases = phases
        self._prefill_side = [
            i for i, ph in enumerate(phases) if ph != "decode"
        ]
        self._decode_only = [
            i for i, ph in enumerate(phases) if ph == "decode"
        ]
        if not self._prefill_side:
            raise ValueError("a fleet needs a prefill-capable replica")
        if not any(ph != "prefill" for ph in phases):
            raise ValueError("a fleet needs a decode-capable replica")
        self.prefill_times = _per_replica(
            prefill_time, n_replicas, "prefill_time"
        )
        self.decode_times = _per_replica(
            decode_time, n_replicas, "decode_time"
        )
        self.handoff_times = _per_replica(
            handoff_time, n_replicas, "handoff_time"
        )
        self._busy_until = [0.0] * n_replicas

    def reset(self) -> None:
        self._busy_until = [0.0] * self.n_replicas

    def choose_pair(self, request: TimedRequest) -> tuple[int, int]:
        """The ``(prefill_replica, decode_replica)`` pair for ``request``.

        Updates the virtual queues, so call exactly once per request in
        arrival order (:meth:`assign_pairs` does).
        """
        now = request.arrival_s
        busy = self._busy_until
        # Ranked by (score, t_first, p, d): when a saturated decode side
        # makes every pair's score the shared decode backlog, the
        # t_first key still spreads prefills over the prefill side
        # instead of letting the index tie-break pile them on one node.
        best: tuple[float, float, int, int] | None = None
        for p in self._prefill_side:
            t_first = max(now, busy[p]) + self.prefill_times[p](request)
            if self.phases[p] == "both":
                candidate = (t_first, t_first, p, p)
                if best is None or candidate < best:
                    best = candidate
            for d in self._decode_only:
                score = max(
                    t_first + self.handoff_times[d](request), busy[d]
                )
                candidate = (score, t_first, p, d)
                if best is None or candidate < best:
                    best = candidate
        assert best is not None  # __init__ guarantees a prefill side
        score, best_first, p, d = best
        if p == d:
            # Colocated: one node owns prefill and the decode tail.
            busy[p] = best_first + self.decode_times[p](request)
        else:
            busy[p] = best_first
            busy[d] = score + self.decode_times[d](request)
        return p, d

    def choose(self, request: TimedRequest) -> int:
        """Single-replica view: the pair's prefill home.

        Lets an all-``both`` fleet use this router through the ordinary
        single-stage :meth:`Router.assign` path (every pair is colocated
        there, so the prefill home *is* the whole assignment).
        """
        return self.choose_pair(request)[0]

    def assign_pairs(self, trace: Trace) -> tuple[tuple[int, int], ...]:
        """Route a whole trace in arrival order, keeping both halves."""
        pairs = []
        for request in trace.requests:
            p, d = self.choose_pair(request)
            if not (0 <= p < self.n_replicas and 0 <= d < self.n_replicas):
                raise ValueError(
                    f"router {self.name!r} chose pair ({p}, {d}) "
                    f"of {self.n_replicas}"
                )
            pairs.append((p, d))
        return tuple(pairs)


#: router names accepted by :func:`build_router`, in presentation order
ROUTER_NAMES: tuple[str, ...] = (
    RoundRobinRouter.name,
    LeastOutstandingRouter.name,
    AffinityRouter.name,
    CacheAwareRouter.name,
)


def build_router(
    name: str,
    n_replicas: int,
    service_time: ServiceTimeEstimates | None = None,
    affinity_key: AffinityKey | None = None,
    prefix_savings: (
        PrefixSavingsEstimate | Sequence[PrefixSavingsEstimate] | None
    ) = None,
) -> Router:
    """Construct a router by registry name.

    ``least-loaded`` and ``cache-aware`` require ``service_time`` (the
    cluster passes its engines' cost models — one shared callable for a
    homogeneous fleet or one per replica for mixed node kinds); the
    other policies ignore it.  ``cache-aware`` additionally accepts
    ``prefix_savings`` (shared or per-replica likewise) — left ``None``
    it degrades to seconds-based least-outstanding routing.

    The ``disaggregated`` phase-pair router is *not* built here: it
    needs the fleet's phases and three per-replica estimators, which
    only :func:`~repro.serving.cluster.build_cluster` has.
    """
    if name == RoundRobinRouter.name:
        return RoundRobinRouter(n_replicas)
    if name == LeastOutstandingRouter.name:
        if service_time is None:
            raise ValueError(
                "the least-loaded router needs a service_time estimate"
            )
        return LeastOutstandingRouter(n_replicas, service_time)
    if name == AffinityRouter.name:
        return AffinityRouter(n_replicas, key=affinity_key)
    if name == CacheAwareRouter.name:
        if service_time is None:
            raise ValueError(
                "the cache-aware router needs a service_time estimate"
            )
        return CacheAwareRouter(
            n_replicas, service_time, prefix_savings=prefix_savings
        )
    raise KeyError(
        f"unknown router {name!r}; available: {', '.join(ROUTER_NAMES)}"
    )


def load_imbalance(assigned_work: Sequence[float]) -> float:
    """Max-over-mean load ratio across replicas (1.0 = perfectly even).

    The standard imbalance metric of data-parallel serving: how much more
    work the hottest replica carries than the average one.  Zero-work
    fleets report 1.0 (nothing to imbalance).
    """
    if not assigned_work:
        raise ValueError("need at least one replica")
    total = sum(assigned_work)
    if total == 0:
        return 1.0
    return max(assigned_work) / (total / len(assigned_work))
