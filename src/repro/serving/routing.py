"""Front-end request routers for a cluster of serving replicas.

A router is the piece of a data-parallel serving fleet that the paper's
single-node evaluation never exercises: every arriving request must be
pinned to one replica *before* that replica's scheduler sees it, and the
choice shapes queueing on every node downstream.  Four policies:

* :class:`RoundRobinRouter` — rotate through replicas; perfectly fair in
  request count, blind to request size and replica backlog.
* :class:`LeastOutstandingRouter` — send each request to the replica with
  the fewest requests still predicted to be in flight.  Predictions come
  from a caller-supplied service-time estimate (the cluster wires in the
  same :class:`~repro.serving.costs.IterationCostModel` that prices the
  engines, so the router never re-derives costs) applied to a virtual
  single-server queue per replica.
* :class:`AffinityRouter` — consistent hashing of a per-request key.  The
  default key is the *session id when the request has one* (falling back
  to the request id for sessionless traffic), so a session's turns all
  land on the replica that holds its prefix/KV state; a custom key (e.g.
  ``input_len``) instead groups identically-shaped prompts.
* :class:`CacheAwareRouter` — least-outstanding backlog in *seconds*,
  minus a cache-warmth credit (estimated prefix-hit tokens times the
  per-token prefill savings) on the replica that last served the
  session — so load balancing and prefix locality are traded off in one
  unit instead of fighting each other.

Routers are deliberately *stateful but seed-free*: given the same trace,
any router produces the same assignment on every run and in every worker
process (hashes go through SHA-256, never Python's randomized ``hash``).
"""

from __future__ import annotations

import abc
import hashlib
from collections.abc import Callable, Sequence

from repro.workloads.requests import TimedRequest, Trace

#: estimated seconds one replica needs to serve a request end to end
ServiceTimeEstimate = Callable[[TimedRequest], float]

#: extracts the affinity key of a request (hashed to pick a replica)
AffinityKey = Callable[[TimedRequest], object]

#: seconds of prefill a replica saves by reusing ``hit_tokens`` of
#: cached prefix (the cluster wires in the engines' own cost model)
PrefixSavingsEstimate = Callable[[int], float]


class Router(abc.ABC):
    """Assigns each arriving request of a trace to one replica.

    The contract: :meth:`choose` is called once per request in arrival
    order and may update internal state (backlog predictions, rotation
    position); :meth:`reset` must return that state to its
    freshly-constructed value, because the cluster engine reuses one
    router across runs and a reused engine must route identically to a
    fresh one; :meth:`assign` (final) maps a whole trace and validates
    every choice.  Routers never see engine internals — they decide
    *before* any scheduler runs, which is exactly the information
    asymmetry a real fleet front end has.
    """

    #: registry name (``--set router=...`` on the CLI)
    name: str = "?"

    def __init__(self, n_replicas: int):
        if n_replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self.n_replicas = n_replicas

    @abc.abstractmethod
    def choose(self, request: TimedRequest) -> int:
        """The replica index for ``request`` (may update router state)."""

    def reset(self) -> None:
        """Forget all routing state (start of a fresh trace).

        Stateful policies override this; the cluster engine calls it
        before every run so a reused engine routes a trace identically
        to a fresh one.
        """

    def assign(self, trace: Trace) -> tuple[int, ...]:
        """Route a whole trace in arrival order."""
        choices = []
        for request in trace.requests:
            replica = self.choose(request)
            if not 0 <= replica < self.n_replicas:
                raise ValueError(
                    f"router {self.name!r} chose replica {replica} "
                    f"of {self.n_replicas}"
                )
            choices.append(replica)
        return tuple(choices)


class RoundRobinRouter(Router):
    """Rotate through replicas in arrival order."""

    name = "round-robin"

    def __init__(self, n_replicas: int):
        super().__init__(n_replicas)
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, request: TimedRequest) -> int:
        del request
        replica = self._next
        self._next = (self._next + 1) % self.n_replicas
        return replica


class LeastOutstandingRouter(Router):
    """Pick the replica with the fewest predicted-in-flight requests.

    Each replica is modeled as a virtual single-server queue: a routed
    request starts when the replica's backlog drains (or immediately if
    idle) and occupies it for ``service_time(request)`` seconds.  At each
    arrival the router first expires predictions that finished before the
    arrival instant, then counts what is left.  Ties break toward the
    lowest replica index, so the assignment is fully deterministic.
    """

    name = "least-loaded"

    def __init__(self, n_replicas: int, service_time: ServiceTimeEstimate):
        super().__init__(n_replicas)
        self.service_time = service_time
        self._in_flight: list[list[float]] = [[] for _ in range(n_replicas)]
        self._busy_until = [0.0] * n_replicas

    def reset(self) -> None:
        self._in_flight = [[] for _ in range(self.n_replicas)]
        self._busy_until = [0.0] * self.n_replicas

    def outstanding(self, replica: int, now_s: float) -> int:
        """Requests predicted to still occupy ``replica`` at ``now_s``."""
        flight = self._in_flight[replica]
        flight[:] = [finish for finish in flight if finish > now_s]
        return len(flight)

    def choose(self, request: TimedRequest) -> int:
        now = request.arrival_s
        replica = min(
            range(self.n_replicas), key=lambda i: (self.outstanding(i, now), i)
        )
        begin = max(now, self._busy_until[replica])
        finish = begin + self.service_time(request)
        self._busy_until[replica] = finish
        self._in_flight[replica].append(finish)
        return replica


def _canonical_key_bytes(value: object) -> bytes:
    """A byte encoding of an affinity key that is stable across processes.

    Only scalars (and tuples/lists of scalars) are accepted: hashing an
    arbitrary object's ``repr`` would silently fold its memory address
    into the digest and break the router's cross-process determinism.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return f"{type(value).__name__}:{value!r}".encode()
    if isinstance(value, (tuple, list)):
        return b"seq:" + b"|".join(_canonical_key_bytes(v) for v in value)
    raise TypeError(
        "affinity keys must be scalars (or tuples of scalars) so hashing "
        f"is deterministic across processes; got {type(value).__name__}"
    )


def _default_affinity_key(request: TimedRequest) -> object:
    """Session id when present, request id otherwise.

    A plain module-level function (not a lambda) so routers stay
    picklable for process-pool experiment runners.
    """
    session = request.session_id
    return session if session is not None else request.request_id


class AffinityRouter(Router):
    """Consistent hashing of a per-request key onto the replica ring.

    The same key always lands on the same replica — the property a
    prefix/session cache needs — and the hash is SHA-256 over a
    canonical scalar encoding of the key, so assignments are stable
    across processes and Python versions (unlike the builtin,
    seed-randomized ``hash``).
    """

    name = "affinity"

    def __init__(self, n_replicas: int, key: AffinityKey | None = None):
        super().__init__(n_replicas)
        # Session id first, request id as the sessionless fallback: the
        # old request-id-only default hashed every *turn* of a session to
        # a different replica, which silently destroyed cluster-level
        # prefix locality (sessionless traces hash identically either
        # way, so fixing it cost no existing assignment).
        self.key = key if key is not None else _default_affinity_key

    def choose(self, request: TimedRequest) -> int:
        digest = hashlib.sha256(
            _canonical_key_bytes(self.key(request))
        ).digest()
        return int.from_bytes(digest[:8], "big") % self.n_replicas


class CacheAwareRouter(LeastOutstandingRouter):
    """Least-outstanding backlog in seconds, minus a cache-warmth credit.

    Each replica keeps the parent's virtual single-server queue, but the
    score compared across replicas is the predicted backlog *in seconds*
    (``busy_until - now``) rather than a request count — so warmth can be
    subtracted in the same unit: for the replica that last served the
    request's session, the score drops by the estimated prefix-hit
    tokens priced through ``prefix_savings`` (the cluster wires in the
    engines' own prefill cost).  A session therefore sticks to its warm
    replica until the backlog gap exceeds what the cached prefix is
    worth, at which point the router deliberately moves it — and with a
    shared prefix tier downstream, the move lands warm via a priced KV
    transfer instead of cold.

    Session history is tracked from the router's own decisions (replica
    and cumulative conversation tokens after each routed turn): a front
    end knows what it routed, not what the engines cached — the same
    information asymmetry the other routers live with.  Sessionless
    requests score with zero warmth everywhere, i.e. plain seconds-based
    least-outstanding routing.
    """

    name = "cache-aware"

    def __init__(
        self,
        n_replicas: int,
        service_time: ServiceTimeEstimate,
        prefix_savings: PrefixSavingsEstimate | None = None,
    ):
        super().__init__(n_replicas, service_time)
        self.prefix_savings = prefix_savings
        #: session_id -> (replica of the last turn, conversation tokens)
        self._sessions: dict[object, tuple[int, int]] = {}

    def reset(self) -> None:
        super().reset()
        self._sessions = {}

    def _warmth_s(self, request: TimedRequest, replica: int) -> float:
        session = request.session_id
        if session is None or self.prefix_savings is None:
            return 0.0
        home = self._sessions.get(session)
        if home is None or home[0] != replica:
            return 0.0
        # A prefix hit can never cover the whole prompt (the final token
        # is always computed) — mirror the cache's own cap.
        hit_tokens = min(home[1], request.input_len - 1)
        if hit_tokens < 1:
            return 0.0
        return self.prefix_savings(hit_tokens)

    def choose(self, request: TimedRequest) -> int:
        now = request.arrival_s
        replica = min(
            range(self.n_replicas),
            key=lambda i: (
                max(self._busy_until[i] - now, 0.0) - self._warmth_s(
                    request, i
                ),
                i,
            ),
        )
        # Keep the parent's queue bookkeeping (outstanding() also prunes
        # the in-flight list, bounding its growth).
        self.outstanding(replica, now)
        begin = max(now, self._busy_until[replica])
        finish = begin + self.service_time(request)
        self._busy_until[replica] = finish
        self._in_flight[replica].append(finish)
        session = request.session_id
        if session is not None:
            # After this turn the conversation history the next turn
            # could reuse is everything sent plus everything generated.
            self._sessions[session] = (
                replica, request.input_len + request.output_len
            )
        return replica


#: router names accepted by :func:`build_router`, in presentation order
ROUTER_NAMES: tuple[str, ...] = (
    RoundRobinRouter.name,
    LeastOutstandingRouter.name,
    AffinityRouter.name,
    CacheAwareRouter.name,
)


def build_router(
    name: str,
    n_replicas: int,
    service_time: ServiceTimeEstimate | None = None,
    affinity_key: AffinityKey | None = None,
    prefix_savings: PrefixSavingsEstimate | None = None,
) -> Router:
    """Construct a router by registry name.

    ``least-loaded`` and ``cache-aware`` require ``service_time`` (the
    cluster passes its engines' cost model); the other policies ignore
    it.  ``cache-aware`` additionally accepts ``prefix_savings`` — left
    ``None`` it degrades to seconds-based least-outstanding routing.
    """
    if name == RoundRobinRouter.name:
        return RoundRobinRouter(n_replicas)
    if name == LeastOutstandingRouter.name:
        if service_time is None:
            raise ValueError(
                "the least-loaded router needs a service_time estimate"
            )
        return LeastOutstandingRouter(n_replicas, service_time)
    if name == AffinityRouter.name:
        return AffinityRouter(n_replicas, key=affinity_key)
    if name == CacheAwareRouter.name:
        if service_time is None:
            raise ValueError(
                "the cache-aware router needs a service_time estimate"
            )
        return CacheAwareRouter(
            n_replicas, service_time, prefix_savings=prefix_savings
        )
    raise KeyError(
        f"unknown router {name!r}; available: {', '.join(ROUTER_NAMES)}"
    )


def load_imbalance(assigned_work: Sequence[float]) -> float:
    """Max-over-mean load ratio across replicas (1.0 = perfectly even).

    The standard imbalance metric of data-parallel serving: how much more
    work the hottest replica carries than the average one.  Zero-work
    fleets report 1.0 (nothing to imbalance).
    """
    if not assigned_work:
        raise ValueError("need at least one replica")
    total = sum(assigned_work)
    if total == 0:
        return 1.0
    return max(assigned_work) / (total / len(assigned_work))
