"""The scalar reference engine: one Python object touched per event.

This is the pre-vectorization ``ServingEngine`` inner loop, kept verbatim
as an executable *specification*.  It advances every decode iteration one
at a time, touching each :class:`~repro.serving.schedulers.RunningRequest`
individually — O(batch) Python work per iteration — which is exactly what
makes it trustworthy: every engine rule (admission order, padded-cohort
pricing, chunk fusion, preempt/restore accounting) is written out as
straight-line per-request code with no batching cleverness to hide a bug
in.

Two consumers keep it honest and keep it around:

* the differential tests assert ``ServingEngine.serve`` returns a
  bit-identical :class:`~repro.serving.engine.EngineTrace` under every
  scheduler policy, so the vectorized hot path can never drift from this
  specification without turning CI red;
* the ``wallclock`` trial times both engines on the same ~100k-request
  trace, so the speedup the vectorized core exists for is measured (and
  regression-gated) on every PR rather than asserted once in a commit
  message.

Do not optimize this module.  Its slowness is its job.
"""

from __future__ import annotations

import collections

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem
from repro.serving.costs import IterationCostModel
from repro.serving.engine import EngineTrace, _PrefillCohort
from repro.serving.metrics import (
    DEFAULT_SKETCH_CAPACITY,
    DepthSketch,
    RequestTiming,
    ServingReport,
)
from repro.serving.schedulers import RunningRequest, Scheduler
from repro.workloads.requests import Trace


class ReferenceEngine:
    """Serves request traces one scalar event at a time (see module doc)."""

    def __init__(
        self,
        system: ServingSystem,
        spec: ModelSpec,
        scheduler: Scheduler,
    ):
        self.system = system
        self.spec = spec
        self.scheduler = scheduler
        self.cost = IterationCostModel(system, spec)

    def serve(self, trace: Trace) -> EngineTrace:
        """Run ``trace`` to completion and return the raw event record."""
        budget = self.scheduler.chunk_budget
        pending = collections.deque(trace.requests)
        queue: list = []
        running: list[RunningRequest] = []
        preempted: list[RunningRequest] = []
        cohorts: collections.deque[_PrefillCohort] = collections.deque()
        finished: list[RunningRequest] = []
        iterations: list[float] = []
        decode_tokens: list[int] = []
        prefills: list[float] = []
        prefill_tokens: list[int] = []
        preemptions = 0
        handoffs = 0
        handoff_bytes = 0.0
        idle_s = 0.0

        if not pending:
            # An empty trace serves to an empty record: zero span, no
            # events, the NaN-percentile report — exactly what one
            # replica of a cluster that routed it nothing produces.
            return EngineTrace(
                timings=(),
                iteration_seconds=(),
                decode_tokens=(),
                prefill_seconds=(),
                prefill_tokens=(),
                start_s=0.0,
                end_s=0.0,
                mean_queue_depth=0.0,
                max_queue_depth=0,
                preemptions=0,
                cache_hit_tokens=self.scheduler.cache_hit_tokens,
                cache_miss_tokens=self.scheduler.cache_miss_tokens,
                cache_evictions=self.scheduler.cache_evictions,
                remote_hit_tokens=self.scheduler.remote_hit_tokens,
                transferred_bytes=self.scheduler.transferred_bytes,
                kv_transfers=self.scheduler.kv_transfers,
                depth=DepthSketch(DEFAULT_SKETCH_CAPACITY),
            )

        start = pending[0].arrival_s
        clock = start
        depth_area = 0.0
        max_depth = 0
        # Mirror of the vectorized engine's depth-segment accumulation:
        # flush a weighted segment only when the depth changes, so both
        # engines consume identical RNG streams and their sketches
        # compare equal bit for bit.
        depth_sketch = DepthSketch(DEFAULT_SKETCH_CAPACITY)
        cur_depth = 0
        depth_acc = 0.0

        def set_depth(n: int) -> None:
            nonlocal cur_depth, depth_acc
            if depth_acc > 0.0:
                depth_sketch.observe(cur_depth, depth_acc)
                depth_acc = 0.0
            cur_depth = n

        def advance(dt: float) -> None:
            nonlocal clock, depth_area, depth_acc
            depth_area += len(queue) * dt
            depth_acc += dt
            clock += dt

        def generate(members: list[RunningRequest]) -> int:
            """One decode token per unfinished member, stamped at ``clock``."""
            n = 0
            for r in members:
                if r.done:
                    continue
                r.generated += 1
                n += 1
                if r.generated == 1:
                    r.first_token_s = clock
                if r.done:
                    r.finished_s = clock
                    self.scheduler.release(r)
                    finished.append(r)
            return n

        while pending or queue or running or preempted:
            while pending and pending[0].arrival_s <= clock:
                queue.append(pending.popleft())
            qn = len(queue)
            max_depth = max(max_depth, qn)
            if qn != cur_depth:
                set_depth(qn)

            if preempted:
                # Preempted requests are older than everything still
                # queued, so they restore head-of-line: no fresh
                # admission happens while one waits for blocks.
                head = preempted[0]
                if self.scheduler.can_restore(head, running):
                    preempted.pop(0)
                    self.scheduler.on_restore(head)
                    head.prefilled = True
                    # Re-enter in admission-age order, not at the tail:
                    # the restored request is the oldest resident and
                    # age decides who a preemptive scheduler protects.
                    age = (head.admitted_s, head.timed.request_id)
                    at = next(
                        (
                            i
                            for i, r in enumerate(running)
                            if (r.admitted_s, r.timed.request_id) > age
                        ),
                        len(running),
                    )
                    running.insert(at, head)
                    # Recompute-style restore: re-prefill the prompt plus
                    # every token generated before the eviction.  A prefix
                    # cache may cover a leading run of those tokens
                    # (on_restore just re-acquired the session's blocks);
                    # only the uncached suffix is computed and priced —
                    # chunk costs telescope, so the split is exact.
                    context = head.input_len + head.generated
                    cached = head.cache_hit_last
                    if cached:
                        dt = self.cost.chunk_prefill_seconds(
                            1, cached, context
                        )
                    else:
                        dt = self.cost.prefill_seconds(1, context)
                    # A restore that pulled remote prefix blocks pays the
                    # wire time before its (shortened) re-prefill.
                    if head.transfer_s_last:
                        dt += head.transfer_s_last
                    advance(dt)
                    prefills.append(dt)
                    prefill_tokens.append(context - cached)
                    continue
                admitted_n = 0
            else:
                admitted_n = self.scheduler.admit(
                    queue, running, bool(pending)
                )
            if admitted_n > 0:
                admitted, queue[:admitted_n] = queue[:admitted_n], []
                set_depth(len(queue))
                admitted_s = clock
                members = [
                    RunningRequest(
                        timed=t,
                        admitted_s=admitted_s,
                        stride=self.scheduler.request_stride(t.output_len),
                        prefilled=(
                            budget is None or bool(t.prefilled_tokens)
                        ),
                    )
                    for t in admitted
                ]
                running.extend(members)
                self.scheduler.on_admit(members)
                # Disaggregated continuations: the prompt KV arrives
                # precomputed over the wire, so the handoff serializes
                # into this clock *instead of* a prefill.  Handoffs are
                # counted, never recorded as prefill events (a prefill
                # event always covers >= 1 computed token).
                handed = [m for m in members if m.timed.prefilled_tokens]
                if handed:
                    dt = 0.0
                    for m in handed:
                        dt += m.timed.handoff_s
                        handoff_bytes += m.timed.handoff_bytes
                    handoffs += len(handed)
                    advance(dt)
                fresh = [m for m in members if not m.timed.prefilled_tokens]
                if fresh:
                    cohort_input = max(m.input_len for m in fresh)
                    if budget is None:
                        # Padded-cohort pricing reuses only what *every*
                        # member has cached: the cohort runs as one fused
                        # prefill of length cohort_input, so the min hit
                        # is the longest prefix the whole batch can skip.
                        cached = min(m.cache_hit_last for m in fresh)
                        if cached:
                            dt = self.cost.chunk_prefill_seconds(
                                len(fresh), cached, cohort_input
                            )
                        else:
                            dt = self.cost.prefill_seconds(
                                len(fresh), cohort_input
                            )
                        # Remote prefix pulls serialize on the link ahead
                        # of the fused prefill; each member's wire time
                        # adds up.
                        transfer = sum(m.transfer_s_last for m in fresh)
                        if transfer:
                            dt += transfer
                        advance(dt)
                        prefills.append(dt)
                        prefill_tokens.append(cohort_input - cached)
                    else:
                        # Chunking: no clock movement at admission — the
                        # prompt is streamed by the chunk iterations below.
                        cohorts.append(_PrefillCohort(fresh, cohort_input))
                continue

            if cohorts:
                cohort = cohorts[0]
                chunk = min(budget, cohort.remaining)
                chunk_s = self.cost.chunk_prefill_seconds(
                    len(cohort.members), cohort.done, cohort.done + chunk
                )
                decodable = [
                    r for r in running if r.prefilled and not r.done
                ]
                # A cohort's first chunk re-forms the fused batch and runs
                # alone (this is what collapses budget >= prompt onto the
                # blocked FCFS engine); overlap never stalls.
                fused = decodable if (
                    self.scheduler.overlap_decode or cohort.chunks > 0
                ) else []
                if fused:
                    batch, seq = self.scheduler.iteration_shape(fused)
                    decode_s = self.cost.decode_seconds(batch, seq)
                    dt = (
                        max(chunk_s, decode_s)
                        if self.scheduler.overlap_decode
                        else chunk_s + decode_s
                    )
                else:
                    dt = chunk_s
                advance(dt)
                prefills.append(chunk_s)
                prefill_tokens.append(chunk)
                cohort.done += chunk
                cohort.chunks += 1
                if fused:
                    iterations.append(dt)
                    decode_tokens.append(generate(fused))
                    running = [r for r in running if not r.done]
                if cohort.remaining == 0:
                    for r in cohort.members:
                        r.prefilled = True
                    cohorts.popleft()
                continue

            if running:
                victims = self.scheduler.prepare_iteration(running)
                if victims:
                    # Pool exhausted: the scheduler already freed the
                    # victims' blocks; evict them from the running set
                    # and re-queue them (oldest first) for restore.
                    preemptions += len(victims)
                    evicted = {id(v) for v in victims}
                    running = [r for r in running if id(r) not in evicted]
                    for v in victims:
                        v.prefilled = False
                        v.preemptions += 1
                    preempted.extend(victims)
                    preempted.sort(
                        key=lambda r: (r.admitted_s, r.timed.request_id)
                    )
                    if not running:
                        continue
                batch, seq = self.scheduler.iteration_shape(running)
                dt = self.cost.decode_seconds(batch, seq)
                advance(dt)
                iterations.append(dt)
                decode_tokens.append(generate(running))
                if self.scheduler.keep_finished:
                    if all(r.done for r in running):
                        running.clear()
                else:
                    running = [r for r in running if not r.done]
                continue

            if pending:
                dt = pending[0].arrival_s - clock
                advance(dt)
                idle_s += dt
                continue

            raise RuntimeError(
                f"scheduler {self.scheduler.name!r} cannot place "
                f"{len(queue)} waiting request(s) on an idle cluster — "
                "the head request exceeds the admission bound"
            )

        if depth_acc > 0.0:
            depth_sketch.observe(cur_depth, depth_acc)
        end = clock
        timings = tuple(
            RequestTiming(
                request_id=r.timed.request_id,
                input_len=r.input_len,
                output_len=r.output_len,
                arrival_s=r.timed.arrival_s,
                admitted_s=r.admitted_s,
                first_token_s=r.first_token_s,
                finished_s=r.finished_s,
                preemptions=r.preemptions,
                cached_tokens=r.cached_tokens,
                remote_tokens=r.remote_tokens,
            )
            for r in sorted(finished, key=lambda r: r.timed.request_id)
        )
        span = max(end - start, 1e-12)
        return EngineTrace(
            timings=timings,
            iteration_seconds=tuple(iterations),
            decode_tokens=tuple(decode_tokens),
            prefill_seconds=tuple(prefills),
            prefill_tokens=tuple(prefill_tokens),
            start_s=start,
            end_s=end,
            mean_queue_depth=depth_area / span,
            max_queue_depth=max_depth,
            preemptions=preemptions,
            cache_hit_tokens=self.scheduler.cache_hit_tokens,
            cache_miss_tokens=self.scheduler.cache_miss_tokens,
            cache_evictions=self.scheduler.cache_evictions,
            remote_hit_tokens=self.scheduler.remote_hit_tokens,
            transferred_bytes=self.scheduler.transferred_bytes,
            kv_transfers=self.scheduler.kv_transfers,
            handoffs=handoffs,
            handoff_bytes=handoff_bytes,
            busy_s=(end - start) - idle_s,
            depth=depth_sketch,
        )

    def run(self, trace: Trace) -> ServingReport:
        """Serve ``trace`` and return the aggregated report."""
        return self.serve(trace).report()
