"""Per-request timings, SLOs, and streaming serving reports.

The serving literature's quality metrics, computed from the discrete-event
engine's raw timelines:

* **TTFT** — time to first token: arrival to the end of the first decode
  iteration (queueing + prefill + one step).
* **TPOT** — time per output token over the decode tail (first token to
  completion, averaged over the remaining tokens).
* **Goodput** — completed requests per second that met the SLO, the metric
  that actually prices a serving fleet (throughput counts late answers,
  goodput does not).

Aggregation is *streaming*: a :class:`RequestStats` accumulator folds each
completed request into O(1)-memory running counters plus a seeded
fixed-capacity reservoir over the ``(ttft, tpot, e2e)`` latency rows, so a
million-request trace costs the same report memory as a dozen-request one.
Below the reservoir capacity (default ``DEFAULT_SKETCH_CAPACITY``) the
sample *is* the population and every percentile, attainment fraction, and
goodput figure is exact — which is what keeps small-trace reports
bit-identical to the pre-streaming implementation.  Above capacity the
reservoir is a uniform sample (Algorithm R, fixed seed, so results are
reproducible) and a percentile estimate at rank ``p`` carries standard
error ``sqrt(p * (1 - p) / K)`` in rank space — about ±0.7 rank points at
the median for the default K = 4096, tighter in the tails.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from collections.abc import Iterable, Sequence

import numpy as np

#: reservoir rows kept per report; samples below this size are exact
DEFAULT_SKETCH_CAPACITY = 4096

#: fixed reservoir seed — identical streams always keep identical samples
_SKETCH_SEED = 0x51CE7C

#: fixed seed of the queue-depth segment reservoir (distinct from the
#: latency reservoir's, so the two sample streams stay independent)
_DEPTH_SEED = 0xDEE75C


@dataclasses.dataclass(frozen=True)
class RequestTiming:
    """Lifecycle timestamps of one served request (all in trace seconds)."""

    request_id: int
    input_len: int
    output_len: int
    arrival_s: float
    admitted_s: float  #: prefill start (left the waiting queue)
    first_token_s: float  #: end of the first decode iteration
    finished_s: float  #: end of the last decode iteration
    preemptions: int = 0  #: times a paged scheduler evicted this request
    #: prompt tokens served from a prefix cache instead of recomputed
    #: (0 for every scheduler without one)
    cached_tokens: int = 0
    #: the subset of :attr:`cached_tokens` pulled from another replica
    #: through the shared prefix tier (0 without a tier)
    remote_tokens: int = 0

    def __post_init__(self) -> None:
        if not (
            self.arrival_s <= self.admitted_s
            <= self.first_token_s <= self.finished_s
        ):
            raise ValueError("request timestamps must be ordered")

    @property
    def queue_s(self) -> float:
        return self.admitted_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Seconds per output token after the first (0 for one-token jobs)."""
        if self.output_len <= 1:
            return 0.0
        return (self.finished_s - self.first_token_s) / (self.output_len - 1)

    @property
    def e2e_s(self) -> float:
        return self.finished_s - self.arrival_s


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """A latency service-level objective on TTFT and TPOT."""

    ttft_s: float
    tpot_s: float

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.tpot_s <= 0:
            raise ValueError("SLO bounds must be positive")

    def met_by(self, timing: RequestTiming) -> bool:
        return timing.ttft_s <= self.ttft_s and timing.tpot_s <= self.tpot_s


def percentile(values: list[float] | tuple[float, ...], p: float) -> float:
    """The ``p``-th percentile (0-100), linearly interpolated."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    return float(np.percentile(np.asarray(values, dtype=float), p))


class RequestStats:
    """Streaming accumulator over completed requests (O(1) memory).

    Running token counters plus a seeded Algorithm-R reservoir of
    ``(ttft_s, tpot_s, e2e_s)`` rows, capped at ``capacity``.  While the
    stream fits the reservoir (``exact`` is True) the rows are the whole
    population and every derived statistic is exact; past capacity the
    rows are a uniform sample and SLO counts are scaled estimates.

    Equality ignores observation order (and the reservoir's RNG state):
    two accumulators are equal when their counters match and their row
    *multisets* match — so a cluster merge and a request-id-ordered
    replay of the same completions compare equal.
    """

    __slots__ = (
        "capacity", "count", "rows", "prompt_tokens", "generated_tokens",
        "cached_tokens", "remote_tokens", "_rng",
    )

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY):
        if capacity < 1:
            raise ValueError("sketch capacity must be positive")
        self.capacity = capacity
        self.count = 0
        #: plain tuples, not arrays: cheap to append, safe under deepcopy
        self.rows: list[tuple[float, float, float]] = []
        self.prompt_tokens = 0
        self.generated_tokens = 0
        self.cached_tokens = 0
        self.remote_tokens = 0
        self._rng = random.Random(_SKETCH_SEED)

    @property
    def n(self) -> int:
        """Requests observed (the whole stream, not just the sample)."""
        return self.count

    @property
    def exact(self) -> bool:
        """True while the reservoir still holds every observed row."""
        return self.count <= self.capacity

    def observe(self, timing: RequestTiming) -> None:
        """Fold one completed request into the counters and the reservoir."""
        self.prompt_tokens += timing.input_len
        self.generated_tokens += timing.output_len
        self.cached_tokens += timing.cached_tokens
        self.remote_tokens += timing.remote_tokens
        self.count += 1
        row = (timing.ttft_s, timing.tpot_s, timing.e2e_s)
        if len(self.rows) < self.capacity:
            self.rows.append(row)
        else:
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self.rows[j] = row

    # -- derived statistics ---------------------------------------------------

    def _column_percentile(self, column: int, p: float) -> float:
        if not self.rows:
            return float("nan")
        return percentile([row[column] for row in self.rows], p)

    def ttft_percentile(self, p: float) -> float:
        return self._column_percentile(0, p)

    def tpot_percentile(self, p: float) -> float:
        return self._column_percentile(1, p)

    def e2e_percentile(self, p: float) -> float:
        return self._column_percentile(2, p)

    def slo_met(self, slo: SloSpec) -> float:
        """(Estimated) number of observed requests that met ``slo``.

        Exact — an integer-valued float — while :attr:`exact` holds;
        otherwise the sample fraction scaled to the stream size.
        """
        if not self.rows:
            return 0.0
        met = sum(
            1
            for ttft, tpot, _ in self.rows
            if ttft <= slo.ttft_s and tpot <= slo.tpot_s
        )
        return met * (self.count / len(self.rows))

    # -- composition ----------------------------------------------------------

    @classmethod
    def merge(
        cls,
        parts: Iterable["RequestStats"],
        capacity: int | None = None,
    ) -> "RequestStats":
        """Fold several accumulators (e.g. cluster replicas) into one.

        When the concatenated rows fit ``capacity`` the merge is exact.
        Otherwise each part contributes a seeded subsample sized in
        proportion to its *stream* length (not its sample length), so
        overflowed parts keep their fair weight in the merged reservoir.
        """
        parts = [p for p in parts if p is not None]
        if capacity is None:
            capacity = max(
                (p.capacity for p in parts), default=DEFAULT_SKETCH_CAPACITY
            )
        merged = cls(capacity)
        merged.count = sum(p.count for p in parts)
        merged.prompt_tokens = sum(p.prompt_tokens for p in parts)
        merged.generated_tokens = sum(p.generated_tokens for p in parts)
        merged.cached_tokens = sum(p.cached_tokens for p in parts)
        merged.remote_tokens = sum(p.remote_tokens for p in parts)
        if sum(len(p.rows) for p in parts) <= capacity:
            for p in parts:
                merged.rows.extend(p.rows)
            return merged
        quotas = [capacity * p.count / merged.count for p in parts]
        take = [int(q) for q in quotas]
        # Hand the rounded-away remainder to the largest fractions.
        by_fraction = sorted(
            range(len(parts)), key=lambda i: quotas[i] - take[i], reverse=True
        )
        for i in by_fraction[: capacity - sum(take)]:
            take[i] += 1
        rng = random.Random(_SKETCH_SEED)
        for p, k in zip(parts, take):
            k = min(k, len(p.rows))
            merged.rows.extend(
                p.rows if k == len(p.rows) else rng.sample(p.rows, k)
            )
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestStats):
            return NotImplemented
        return (
            self.capacity,
            self.count,
            self.prompt_tokens,
            self.generated_tokens,
            self.cached_tokens,
            self.remote_tokens,
            sorted(self.rows),
        ) == (
            other.capacity,
            other.count,
            other.prompt_tokens,
            other.generated_tokens,
            other.cached_tokens,
            other.remote_tokens,
            sorted(other.rows),
        )

    def __repr__(self) -> str:
        kind = "exact" if self.exact else f"sampled({len(self.rows)})"
        return f"RequestStats(n={self.count}, {kind})"


class DepthSketch:
    """Weighted reservoir over time-at-depth segments (O(1) memory).

    The engine's waiting-queue depth is a piecewise-constant function of
    the simulated clock.  Each *segment* — a depth held for some span of
    simulated seconds — is one weighted observation: ``observe(depth,
    seconds)``.  The sketch keeps at most ``capacity`` segments using the
    A-ES weighted reservoir rule (each segment draws the key
    ``u ** (1 / weight)`` from a seeded RNG and the largest keys
    survive), so a segment's survival probability is proportional to the
    *time* the queue actually spent at that depth — which makes
    :meth:`percentile` a time-weighted depth percentile, the p50/p99
    companions to the exact ``mean_queue_depth`` integral.

    Segments flush only when the depth *changes* (the engine coalesces
    constant-depth stretches), so the RNG cost is O(queue mutations),
    not O(iterations) — the vectorized hot path never pays per step.
    While the stream fits the reservoir the kept segments are the whole
    population and the percentiles are exact.

    Equality ignores heap layout and RNG state: two sketches are equal
    when their counters match and their kept segment *multisets* match
    (like :class:`RequestStats`, so the bit-exactness tests can compare
    engine records containing sketches).  :meth:`merge` is deterministic
    — pooled segments keep the globally largest keys — so cluster merges
    are order-insensitive.
    """

    __slots__ = ("capacity", "count", "total_weight", "_items", "_rng")

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY):
        if capacity < 1:
            raise ValueError("sketch capacity must be positive")
        self.capacity = capacity
        self.count = 0  #: segments observed (the whole stream)
        self.total_weight = 0.0  #: total simulated seconds observed
        #: min-heap of (key, depth, weight); the smallest key is evicted
        self._items: list[tuple[float, int, float]] = []
        self._rng = random.Random(_DEPTH_SEED)

    @property
    def exact(self) -> bool:
        """True while the reservoir still holds every observed segment."""
        return self.count <= self.capacity

    def observe(self, depth: int, weight: float) -> None:
        """One constant-depth segment: ``depth`` held for ``weight`` s."""
        if weight <= 0.0:
            return
        self.count += 1
        self.total_weight += weight
        key = self._rng.random() ** (1.0 / weight)
        if len(self._items) < self.capacity:
            heapq.heappush(self._items, (key, depth, weight))
        elif key > self._items[0][0]:
            heapq.heapreplace(self._items, (key, depth, weight))

    def percentile(self, p: float) -> float:
        """Time-weighted depth percentile (NaN on an empty sketch)."""
        if not self._items:
            return float("nan")
        segments = sorted((depth, weight) for _, depth, weight in self._items)
        kept = sum(weight for _, weight in segments)
        target = kept * min(max(p, 0.0), 100.0) / 100.0
        cumulative = 0.0
        for depth, weight in segments:
            cumulative += weight
            if cumulative >= target:
                return float(depth)
        return float(segments[-1][0])

    @classmethod
    def merge(
        cls,
        parts: Sequence["DepthSketch"],
        capacity: int | None = None,
    ) -> "DepthSketch":
        """Fold several sketches (e.g. cluster replicas) into one.

        Deterministic and order-insensitive: every part's kept segments
        pool together and the ``capacity`` largest keys survive — the
        same rule a single reservoir over the concatenated stream would
        apply, so merging is exact while the pooled segments fit.
        """
        parts = [p for p in parts if p is not None]
        if not parts:
            raise ValueError("cannot merge zero depth sketches")
        if len(parts) == 1:
            return parts[0]
        if capacity is None:
            capacity = max(p.capacity for p in parts)
        merged = cls(capacity)
        merged.count = sum(p.count for p in parts)
        merged.total_weight = sum(p.total_weight for p in parts)
        pooled = sorted(item for p in parts for item in p._items)
        merged._items = pooled[-capacity:]
        heapq.heapify(merged._items)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DepthSketch):
            return NotImplemented
        return (
            self.capacity,
            self.count,
            self.total_weight,
            sorted(self._items),
        ) == (
            other.capacity,
            other.count,
            other.total_weight,
            sorted(other._items),
        )

    def __repr__(self) -> str:
        kind = "exact" if self.exact else f"sampled({len(self._items)})"
        return f"DepthSketch(n={self.count}, {kind})"


@dataclasses.dataclass(frozen=True)
class ServingReport:
    """Aggregate view of one trace served on one system.

    Holds a streaming :class:`RequestStats` instead of per-request
    timings, so its memory is O(1) in the trace length.  A report may
    cover *zero* completed requests (e.g. a run cut while everything was
    still queued): rates are then 0, latency percentiles are NaN — never
    a crash — so downstream tabulation stays total.
    """

    stats: RequestStats
    makespan_s: float  #: first arrival to last completion
    mean_queue_depth: float  #: time-weighted waiting-queue depth
    max_queue_depth: int
    n_iterations: int  #: decode iterations the engine priced
    n_prefills: int  #: prefill events (admissions, chunks, or restores)
    #: paged evictions (each pays a re-prefill); keyword-only so that
    #: subclasses (ClusterReport) can keep required positional fields
    n_preemptions: int = dataclasses.field(default=0, kw_only=True)
    #: time-weighted queue-depth sketch (p50/p99 companions to the exact
    #: mean/max); optional so hand-built reports stay valid without one
    depth: DepthSketch | None = dataclasses.field(default=None, kw_only=True)
    #: prefix-cache counters (all zero for schedulers without a cache)
    cache_hit_tokens: int = dataclasses.field(default=0, kw_only=True)
    cache_miss_tokens: int = dataclasses.field(default=0, kw_only=True)
    cache_evictions: int = dataclasses.field(default=0, kw_only=True)
    #: shared-tier counters (all zero without a cross-replica tier)
    remote_hit_tokens: int = dataclasses.field(default=0, kw_only=True)
    transferred_bytes: float = dataclasses.field(default=0.0, kw_only=True)
    kv_transfers: int = dataclasses.field(default=0, kw_only=True)
    #: disaggregation counters (all zero without a phase-split fleet)
    handoffs: int = dataclasses.field(default=0, kw_only=True)
    handoff_bytes: float = dataclasses.field(default=0.0, kw_only=True)
    #: seconds spent pricing work (makespan minus arrival idle); summed
    #: across replicas in a cluster merge, so divide per replica
    busy_s: float = dataclasses.field(default=0.0, kw_only=True)

    def __post_init__(self) -> None:
        if self.stats.n and self.makespan_s <= 0:
            raise ValueError("makespan must be positive")
        if self.makespan_s < 0:
            raise ValueError("makespan must be non-negative")

    @classmethod
    def from_timings(
        cls,
        timings: Sequence[RequestTiming],
        makespan_s: float,
        mean_queue_depth: float,
        max_queue_depth: int,
        n_iterations: int,
        n_prefills: int,
        *,
        n_preemptions: int = 0,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
        depth: DepthSketch | None = None,
    ) -> "ServingReport":
        """Build a report by streaming ``timings`` through the accumulator."""
        stats = RequestStats(sketch_capacity)
        for timing in timings:
            stats.observe(timing)
        return cls(
            stats=stats,
            makespan_s=makespan_s,
            mean_queue_depth=mean_queue_depth,
            max_queue_depth=max_queue_depth,
            n_iterations=n_iterations,
            n_prefills=n_prefills,
            n_preemptions=n_preemptions,
            depth=depth,
        )

    @property
    def n_requests(self) -> int:
        return self.stats.n

    @property
    def generated_tokens(self) -> int:
        return self.stats.generated_tokens

    @property
    def throughput_tokens_per_s(self) -> float:
        if not self.n_requests:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def completed_per_s(self) -> float:
        if not self.n_requests:
            return 0.0
        return self.n_requests / self.makespan_s

    # -- latency distributions -------------------------------------------------

    def ttft_percentile(self, p: float) -> float:
        return self.stats.ttft_percentile(p)

    def tpot_percentile(self, p: float) -> float:
        return self.stats.tpot_percentile(p)

    def e2e_percentile(self, p: float) -> float:
        return self.stats.e2e_percentile(p)

    def queue_depth_percentile(self, p: float) -> float:
        """Time-weighted depth percentile (NaN without a depth sketch)."""
        if self.depth is None:
            return float("nan")
        return self.depth.percentile(p)

    @property
    def prefix_cache_hit_rate(self) -> float:
        """Fraction of prompt tokens served from the prefix cache.

        0.0 when the run priced no prompt tokens through a cache at all
        (schedulers without one report zero hits *and* zero misses).
        """
        total = self.cache_hit_tokens + self.cache_miss_tokens
        if total == 0:
            return 0.0
        return self.cache_hit_tokens / total

    @property
    def remote_prefix_hit_rate(self) -> float:
        """Fraction of cache-priced prompt tokens pulled from a remote
        replica through the shared tier (a sub-rate of
        :attr:`prefix_cache_hit_rate`; 0.0 without a tier)."""
        total = self.cache_hit_tokens + self.cache_miss_tokens
        if total == 0:
            return 0.0
        return self.remote_hit_tokens / total

    # -- SLO-conditioned metrics ----------------------------------------------

    def slo_attainment(self, slo: SloSpec) -> float:
        """Fraction of requests that met the SLO (0 when none completed)."""
        if not self.n_requests:
            return 0.0
        return self.stats.slo_met(slo) / self.n_requests

    def goodput(self, slo: SloSpec) -> float:
        """SLO-meeting completions per second of makespan."""
        if not self.n_requests:
            return 0.0
        return self.stats.slo_met(slo) / self.makespan_s

    def to_payload(self, slo: SloSpec | None = None) -> dict:
        """JSON-serializable summary (what the ``serving_slo`` trial caches)."""
        payload = {
            "n_requests": self.n_requests,
            "makespan_s": self.makespan_s,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "completed_per_s": self.completed_per_s,
            "ttft_p50_s": self.ttft_percentile(50),
            "ttft_p95_s": self.ttft_percentile(95),
            "ttft_p99_s": self.ttft_percentile(99),
            "tpot_p50_s": self.tpot_percentile(50),
            "tpot_p99_s": self.tpot_percentile(99),
            "e2e_p50_s": self.e2e_percentile(50),
            "e2e_p99_s": self.e2e_percentile(99),
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "n_iterations": self.n_iterations,
            "n_prefills": self.n_prefills,
            "n_preemptions": self.n_preemptions,
        }
        if self.depth is not None:
            # Conditional: hand-built reports without a sketch keep their
            # historical payload keys (and NaN would not survive a JSON
            # round-trip anyway).
            payload["queue_depth_p50"] = self.queue_depth_percentile(50)
            payload["queue_depth_p99"] = self.queue_depth_percentile(99)
        if self.cache_hit_tokens or self.cache_miss_tokens:
            # Conditional like the depth keys: runs under a cacheless
            # scheduler keep their historical payload shape.
            payload["cache_hit_tokens"] = self.cache_hit_tokens
            payload["cache_miss_tokens"] = self.cache_miss_tokens
            payload["cache_evictions"] = self.cache_evictions
            payload["prefix_cache_hit_rate"] = self.prefix_cache_hit_rate
        if self.remote_hit_tokens or self.kv_transfers:
            # Conditional again: only shared-tier runs grow these keys.
            payload["remote_hit_tokens"] = self.remote_hit_tokens
            payload["transferred_bytes"] = self.transferred_bytes
            payload["kv_transfers"] = self.kv_transfers
            payload["remote_prefix_hit_rate"] = self.remote_prefix_hit_rate
        if self.handoffs:
            # And only disaggregated fleets grow the handoff keys.
            payload["n_handoffs"] = self.handoffs
            payload["handoff_bytes"] = self.handoff_bytes
        if slo is not None:
            payload["slo_ttft_s"] = slo.ttft_s
            payload["slo_tpot_s"] = slo.tpot_s
            payload["slo_attainment"] = self.slo_attainment(slo)
            payload["goodput_rps"] = self.goodput(slo)
        return payload


@dataclasses.dataclass(frozen=True)
class EngineStats:
    """Streaming outcome of one engine run (the O(1)-memory EngineTrace).

    What :meth:`ServingEngine.serve_stats` returns: the per-request
    stream already folded into a :class:`RequestStats`, plus the same
    run-level counters :class:`~repro.serving.engine.EngineTrace`
    carries — everything :meth:`report` needs, nothing per-event.
    """

    requests: RequestStats
    start_s: float  #: first arrival
    end_s: float  #: last completion
    mean_queue_depth: float
    max_queue_depth: int
    n_iterations: int
    n_prefills: int
    preemptions: int = 0
    depth: DepthSketch | None = None
    cache_hit_tokens: int = 0
    cache_miss_tokens: int = 0
    cache_evictions: int = 0
    remote_hit_tokens: int = 0
    transferred_bytes: float = 0.0
    kv_transfers: int = 0
    handoffs: int = 0
    handoff_bytes: float = 0.0
    busy_s: float = 0.0

    @property
    def makespan_s(self) -> float:
        return self.end_s - self.start_s

    def report(self) -> ServingReport:
        return ServingReport(
            stats=self.requests,
            makespan_s=self.makespan_s,
            mean_queue_depth=self.mean_queue_depth,
            max_queue_depth=self.max_queue_depth,
            n_iterations=self.n_iterations,
            n_prefills=self.n_prefills,
            n_preemptions=self.preemptions,
            depth=self.depth,
            cache_hit_tokens=self.cache_hit_tokens,
            cache_miss_tokens=self.cache_miss_tokens,
            cache_evictions=self.cache_evictions,
            remote_hit_tokens=self.remote_hit_tokens,
            transferred_bytes=self.transferred_bytes,
            kv_transfers=self.kv_transfers,
            handoffs=self.handoffs,
            handoff_bytes=self.handoff_bytes,
            busy_s=self.busy_s,
        )

    @classmethod
    def merge(
        cls,
        parts: Sequence["EngineStats"],
        capacity: int | None = None,
    ) -> "EngineStats":
        """Fold replica stats into one, mirroring ``ClusterTrace.merged``:
        identity for a single part, depth areas add over the cluster-wide
        span for many."""
        if not parts:
            raise ValueError("cannot merge zero engine stats")
        if len(parts) == 1:
            return parts[0]
        start = min(p.start_s for p in parts)
        end = max(p.end_s for p in parts)
        span = max(end - start, 1e-12)
        depth_area = sum(p.mean_queue_depth * p.makespan_s for p in parts)
        depths = [p.depth for p in parts if p.depth is not None]
        return cls(
            requests=RequestStats.merge(
                (p.requests for p in parts), capacity
            ),
            start_s=start,
            end_s=end,
            mean_queue_depth=depth_area / span,
            max_queue_depth=max(p.max_queue_depth for p in parts),
            n_iterations=sum(p.n_iterations for p in parts),
            n_prefills=sum(p.n_prefills for p in parts),
            preemptions=sum(p.preemptions for p in parts),
            depth=DepthSketch.merge(depths, capacity) if depths else None,
            cache_hit_tokens=sum(p.cache_hit_tokens for p in parts),
            cache_miss_tokens=sum(p.cache_miss_tokens for p in parts),
            cache_evictions=sum(p.cache_evictions for p in parts),
            remote_hit_tokens=sum(p.remote_hit_tokens for p in parts),
            transferred_bytes=sum(p.transferred_bytes for p in parts),
            kv_transfers=sum(p.kv_transfers for p in parts),
            handoffs=sum(p.handoffs for p in parts),
            handoff_bytes=sum(p.handoff_bytes for p in parts),
            busy_s=sum(p.busy_s for p in parts),
        )
