"""Per-request timings, SLOs, and aggregated serving reports.

The serving literature's quality metrics, computed from the discrete-event
engine's raw timelines:

* **TTFT** — time to first token: arrival to the end of the first decode
  iteration (queueing + prefill + one step).
* **TPOT** — time per output token over the decode tail (first token to
  completion, averaged over the remaining tokens).
* **Goodput** — completed requests per second that met the SLO, the metric
  that actually prices a serving fleet (throughput counts late answers,
  goodput does not).
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class RequestTiming:
    """Lifecycle timestamps of one served request (all in trace seconds)."""

    request_id: int
    input_len: int
    output_len: int
    arrival_s: float
    admitted_s: float  #: prefill start (left the waiting queue)
    first_token_s: float  #: end of the first decode iteration
    finished_s: float  #: end of the last decode iteration
    preemptions: int = 0  #: times a paged scheduler evicted this request

    def __post_init__(self) -> None:
        if not (
            self.arrival_s <= self.admitted_s
            <= self.first_token_s <= self.finished_s
        ):
            raise ValueError("request timestamps must be ordered")

    @property
    def queue_s(self) -> float:
        return self.admitted_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Seconds per output token after the first (0 for one-token jobs)."""
        if self.output_len <= 1:
            return 0.0
        return (self.finished_s - self.first_token_s) / (self.output_len - 1)

    @property
    def e2e_s(self) -> float:
        return self.finished_s - self.arrival_s


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """A latency service-level objective on TTFT and TPOT."""

    ttft_s: float
    tpot_s: float

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.tpot_s <= 0:
            raise ValueError("SLO bounds must be positive")

    def met_by(self, timing: RequestTiming) -> bool:
        return timing.ttft_s <= self.ttft_s and timing.tpot_s <= self.tpot_s


def percentile(values: list[float] | tuple[float, ...], p: float) -> float:
    """The ``p``-th percentile (0-100), linearly interpolated."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    return float(np.percentile(np.asarray(values, dtype=float), p))


@dataclasses.dataclass(frozen=True)
class ServingReport:
    """Aggregate view of one trace served on one system.

    A report may cover *zero* completed requests (e.g. a run cut while
    everything was still queued): rates are then 0, latency percentiles
    are NaN — never a crash — so downstream tabulation stays total.
    """

    timings: tuple[RequestTiming, ...]
    makespan_s: float  #: first arrival to last completion
    mean_queue_depth: float  #: time-weighted waiting-queue depth
    max_queue_depth: int
    n_iterations: int  #: decode iterations the engine priced
    n_prefills: int  #: prefill events (admissions, chunks, or restores)
    #: paged evictions (each pays a re-prefill); keyword-only so that
    #: subclasses (ClusterReport) can keep required positional fields
    n_preemptions: int = dataclasses.field(default=0, kw_only=True)

    def __post_init__(self) -> None:
        if self.timings and self.makespan_s <= 0:
            raise ValueError("makespan must be positive")
        if self.makespan_s < 0:
            raise ValueError("makespan must be non-negative")

    @property
    def n_requests(self) -> int:
        return len(self.timings)

    @property
    def generated_tokens(self) -> int:
        return sum(t.output_len for t in self.timings)

    @property
    def throughput_tokens_per_s(self) -> float:
        if not self.timings:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def completed_per_s(self) -> float:
        if not self.timings:
            return 0.0
        return self.n_requests / self.makespan_s

    # -- latency distributions -------------------------------------------------

    def ttft_percentile(self, p: float) -> float:
        if not self.timings:
            return float("nan")
        return percentile([t.ttft_s for t in self.timings], p)

    def tpot_percentile(self, p: float) -> float:
        if not self.timings:
            return float("nan")
        return percentile([t.tpot_s for t in self.timings], p)

    def e2e_percentile(self, p: float) -> float:
        if not self.timings:
            return float("nan")
        return percentile([t.e2e_s for t in self.timings], p)

    # -- SLO-conditioned metrics ----------------------------------------------

    def slo_attainment(self, slo: SloSpec) -> float:
        """Fraction of requests that met the SLO (0 when none completed)."""
        if not self.timings:
            return 0.0
        return sum(slo.met_by(t) for t in self.timings) / self.n_requests

    def goodput(self, slo: SloSpec) -> float:
        """SLO-meeting completions per second of makespan."""
        if not self.timings:
            return 0.0
        return sum(slo.met_by(t) for t in self.timings) / self.makespan_s

    def to_payload(self, slo: SloSpec | None = None) -> dict:
        """JSON-serializable summary (what the ``serving_slo`` trial caches)."""
        payload = {
            "n_requests": self.n_requests,
            "makespan_s": self.makespan_s,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "completed_per_s": self.completed_per_s,
            "ttft_p50_s": self.ttft_percentile(50),
            "ttft_p95_s": self.ttft_percentile(95),
            "ttft_p99_s": self.ttft_percentile(99),
            "tpot_p50_s": self.tpot_percentile(50),
            "tpot_p99_s": self.tpot_percentile(99),
            "e2e_p50_s": self.e2e_percentile(50),
            "e2e_p99_s": self.e2e_percentile(99),
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "n_iterations": self.n_iterations,
            "n_prefills": self.n_prefills,
            "n_preemptions": self.n_preemptions,
        }
        if slo is not None:
            payload["slo_ttft_s"] = slo.ttft_s
            payload["slo_tpot_s"] = slo.tpot_s
            payload["slo_attainment"] = self.slo_attainment(slo)
            payload["goodput_rps"] = self.goodput(slo)
        return payload
