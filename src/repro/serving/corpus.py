"""The shipped trace corpus: replayable request streams under ``traces/``.

Two small JSON replay files converted from public-trace *shapes* ship with
the repository (the upstream datasets are far too large to vendor, so each
file is a seeded resample of the published arrival/length statistics in
the repo's own ``save_trace`` schema):

* ``bursty`` — BurstGPT-style chat traffic: strongly clustered arrivals
  (gamma gaps, cv 4) with long-tailed lognormal prompt/answer lengths.
* ``steady`` — Azure-LLM-inference-style API traffic: near-Poisson
  arrivals at a steady rate with tightly concentrated lengths.
* ``multiturn`` — multi-turn chat sessions
  (:func:`~repro.serving.arrivals.multiturn_chat_trace`): each session's
  turns re-send the growing conversation as the prompt and carry a
  ``session_id``, so the file exercises the prefix cache's shared-prefix
  reuse path (the sessionless files never do).

:func:`trace_path` resolves a corpus name to its file, and the
``trace-replay`` sweep serves every shipped trace on every system through
the cluster engine — each trial's cache identity includes the file's
content hash, so editing a trace re-runs it instead of answering stale.
"""

from __future__ import annotations

import pathlib

from repro.experiments.registry import sweep, trial
from repro.experiments.spec import ExperimentSpec

#: corpus name -> file name under ``traces/``
SHIPPED_TRACES = {
    "bursty": "bursty_chat.json",
    "multiturn": "multiturn_chat.json",
    "steady": "steady_api.json",
}

#: repository-root ``traces/`` directory (source/editable layouts)
TRACE_DIR = pathlib.Path(__file__).resolve().parents[3] / "traces"


def trace_path(name: str) -> pathlib.Path:
    """Absolute path of a shipped corpus trace, by registry name."""
    if name not in SHIPPED_TRACES:
        raise KeyError(
            f"unknown corpus trace {name!r}; "
            f"shipped: {', '.join(sorted(SHIPPED_TRACES))}"
        )
    path = TRACE_DIR / SHIPPED_TRACES[name]
    if not path.is_file():
        raise FileNotFoundError(
            f"corpus trace {path} is missing — the trace corpus ships with "
            "the repository checkout, not with wheel installs"
        )
    return path


def pinned_trace(name: str) -> str:
    """A ``name@sha`` axis value pinning a corpus trace to its content.

    The hash rides inside the *trace axis value*, so each trial's cache
    identity covers exactly its own file: editing one trace re-runs (and
    perf-gate-unmatches) only that trace's trials, never its siblings'.
    """
    from repro.serving.experiments import trace_fingerprint

    return f"{name}@{trace_fingerprint(trace_path(name))}"


@trial("trace_replay_slo")
def trace_replay_slo(
    system: str,
    trace: str,
    replicas: int = 1,
    router: str = "round-robin",
    scheduler: str = "fcfs",
    max_batch: int = 32,
    step_stride: int = 32,
    model: str = "Zamba2",
    scale: str = "small",
    cache: bool = True,
    shared_tier: bool = False,
    link_gbps: float | None = None,
    slo_ttft_s: float = 2.0,
    slo_tpot_s: float = 0.018,
) -> dict:
    """Replay one shipped corpus trace (optionally on a cluster).

    A thin wrapper over :func:`~repro.serving.experiments.cluster_slo`
    that resolves a corpus name — or a :func:`pinned_trace` ``name@sha``
    value — to its file.  When a hash is pinned it feeds the replay
    guard, so the cache can never serve metrics of an edited trace; a
    bare name (e.g. ``--set trace=bursty`` on the CLI) replays unguarded.
    ``cache``/``shared_tier``/``link_gbps`` pass straight through to the
    cluster builder (the ``cross_replica_prefix`` sweep sets them).
    """
    from repro.serving.costs import DEFAULT_LINK_GBPS
    from repro.serving.experiments import cluster_slo

    name, _, sha = trace.partition("@")
    path = trace_path(name)
    return cluster_slo(
        system,
        qps=0.0,  # unused: the replay file supplies arrivals
        replicas=replicas,
        router=router,
        scheduler=scheduler,
        max_batch=max_batch,
        step_stride=step_stride,
        model=model,
        scale=scale,
        cache=cache,
        shared_tier=shared_tier,
        link_gbps=DEFAULT_LINK_GBPS if link_gbps is None else link_gbps,
        slo_ttft_s=slo_ttft_s,
        slo_tpot_s=slo_tpot_s,
        trace_file=str(path),
        trace_sha=sha or None,
    )


@sweep("trace-replay")
def trace_replay_spec(smoke: bool = False) -> ExperimentSpec:
    """Replay the shipped corpus on every system (smoke: steady, 2 systems)."""
    from repro.serving.experiments import SERVING_SYSTEMS

    names = ("steady",) if smoke else tuple(sorted(SHIPPED_TRACES))
    systems = ("GPU", "Pimba") if smoke else SERVING_SYSTEMS
    return ExperimentSpec(
        name="trace-replay",
        trial_fn="trace_replay_slo",
        axes={
            "system": systems,
            "trace": tuple(pinned_trace(n) for n in names),
        },
        fixed={"max_batch": 8},
    )
