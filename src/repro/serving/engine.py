"""Discrete-event, request-level serving engine.

Advances a :class:`~repro.perf.system.ServingSystem` through a
:class:`~repro.workloads.requests.Trace` one event at a time.  Three event
kinds move the clock:

* **arrival idle** — nothing resident: jump to the next arrival;
* **prefill** — the scheduler admits waiting requests; their prompts are
  processed in one compute-bound prefill that blocks the whole cluster
  (GPU and PIM execute in a blocked fashion, Section 5.6 — there is no
  chunked-prefill overlap in the modeled systems);
* **decode iteration** — every resident request generates one token; the
  iteration is priced by ``perf.system`` at the scheduler-chosen
  (batch, context) point.

The engine records per-request lifecycle timestamps (arrival, admission,
first token, completion) and aggregates them into a
:class:`~repro.serving.metrics.ServingReport` with TTFT/TPOT percentiles,
queue depths, and SLO goodput.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem
from repro.serving.costs import IterationCostModel
from repro.serving.metrics import RequestTiming, ServingReport
from repro.serving.schedulers import RunningRequest, Scheduler
from repro.workloads.requests import Trace


@dataclasses.dataclass(frozen=True)
class EngineTrace:
    """Raw outcome of one engine run (before metric aggregation)."""

    timings: tuple[RequestTiming, ...]
    iteration_seconds: tuple[float, ...]  #: every priced decode iteration
    prefill_seconds: tuple[float, ...]  #: every priced prefill event
    start_s: float  #: first arrival
    end_s: float  #: last completion
    mean_queue_depth: float
    max_queue_depth: int

    @property
    def makespan_s(self) -> float:
        return self.end_s - self.start_s

    def report(self) -> ServingReport:
        return ServingReport(
            timings=self.timings,
            makespan_s=self.makespan_s,
            mean_queue_depth=self.mean_queue_depth,
            max_queue_depth=self.max_queue_depth,
            n_iterations=len(self.iteration_seconds),
            n_prefills=len(self.prefill_seconds),
        )


class ServingEngine:
    """Serves request traces on one system under one scheduling policy."""

    def __init__(
        self,
        system: ServingSystem,
        spec: ModelSpec,
        scheduler: Scheduler,
    ):
        self.system = system
        self.spec = spec
        self.scheduler = scheduler
        self.cost = IterationCostModel(system, spec)

    def serve(self, trace: Trace) -> EngineTrace:
        """Run ``trace`` to completion and return the raw event record."""
        pending = collections.deque(trace.requests)
        queue: list = []
        running: list[RunningRequest] = []
        finished: list[RunningRequest] = []
        iterations: list[float] = []
        prefills: list[float] = []

        start = pending[0].arrival_s
        clock = start
        depth_area = 0.0
        max_depth = 0

        def advance(dt: float) -> None:
            nonlocal clock, depth_area
            depth_area += len(queue) * dt
            clock += dt

        while pending or queue or running:
            while pending and pending[0].arrival_s <= clock:
                queue.append(pending.popleft())
            max_depth = max(max_depth, len(queue))

            admitted_n = self.scheduler.admit(queue, running, bool(pending))
            if admitted_n > 0:
                admitted, queue[:admitted_n] = queue[:admitted_n], []
                admitted_s = clock
                advance(self.cost.prefill_seconds(
                    len(admitted), max(t.input_len for t in admitted)
                ))
                prefills.append(clock - admitted_s)
                running.extend(
                    RunningRequest(
                        timed=t,
                        admitted_s=admitted_s,
                        stride=self.scheduler.request_stride(t.output_len),
                    )
                    for t in admitted
                )
                continue

            if running:
                batch, seq = self.scheduler.iteration_shape(running)
                dt = self.cost.decode_seconds(batch, seq)
                advance(dt)
                iterations.append(dt)
                for r in running:
                    if r.done:
                        continue
                    r.generated += 1
                    if r.generated == 1:
                        r.first_token_s = clock
                    if r.done:
                        r.finished_s = clock
                        finished.append(r)
                if self.scheduler.keep_finished:
                    if all(r.done for r in running):
                        running.clear()
                else:
                    running = [r for r in running if not r.done]
                continue

            if pending:
                advance(pending[0].arrival_s - clock)
                continue

            raise RuntimeError(
                f"scheduler {self.scheduler.name!r} cannot place "
                f"{len(queue)} waiting request(s) on an idle cluster — "
                "the head request exceeds the admission bound"
            )

        end = clock
        timings = tuple(
            RequestTiming(
                request_id=r.timed.request_id,
                input_len=r.input_len,
                output_len=r.output_len,
                arrival_s=r.timed.arrival_s,
                admitted_s=r.admitted_s,
                first_token_s=r.first_token_s,
                finished_s=r.finished_s,
            )
            for r in sorted(finished, key=lambda r: r.timed.request_id)
        )
        span = max(end - start, 1e-12)
        return EngineTrace(
            timings=timings,
            iteration_seconds=tuple(iterations),
            prefill_seconds=tuple(prefills),
            start_s=start,
            end_s=end,
            mean_queue_depth=depth_area / span,
            max_queue_depth=max_depth,
        )

    def run(self, trace: Trace) -> ServingReport:
        """Serve ``trace`` and return the aggregated report."""
        return self.serve(trace).report()
