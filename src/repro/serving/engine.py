"""Discrete-event, request-level serving engine (vectorized hot path).

Advances a :class:`~repro.perf.system.ServingSystem` through a
:class:`~repro.workloads.requests.Trace` one event at a time.  Four event
kinds move the clock:

* **arrival idle** — nothing resident: jump to the next arrival;
* **prefill** — the scheduler admits waiting requests; under a monolithic
  scheduler their prompts are processed in one compute-bound prefill that
  blocks the whole cluster (GPU and PIM execute in a blocked fashion,
  Section 5.6);
* **prefill chunk** — under a chunking scheduler
  (:class:`~repro.serving.schedulers.ChunkedPrefillScheduler` /
  :class:`~repro.serving.schedulers.OverlapScheduler`) each admitted
  cohort's prompt is instead streamed in budget-bounded chunks; the
  running decode batch piggybacks into the same priced iteration
  (Sarathi-style, cost = chunk + decode) or overlaps it entirely
  (NeuPIMs-style, cost = max(chunk, decode));
* **decode iteration** — every fully-prefilled resident request generates
  one token; the iteration is priced by ``perf.system`` at the
  scheduler-chosen (batch, context) point.  Under a preemptive scheduler
  (:class:`~repro.serving.schedulers.PagedScheduler`) the iteration first
  grows each resident's paged KV, which may *preempt* the youngest
  residents — their blocks are freed and they re-queue for restore;
* **restore prefill** — a previously preempted request re-enters by
  recomputing its KV: a solo prefill over prompt + already-generated
  tokens, priced like any other prefill, so preemption's cost is visible
  in the clock and the token accounting.

**The hot path is coalesced.**  Between two batch-composition events —
a finish, an admission, an arrival crossing the clock, a preemption —
nothing about the decode batch can change, so the engine prices the whole
stretch at once: it snapshots the running set into a columnar
:class:`~repro.serving.slots.SlotView`, asks the scheduler's
:meth:`~repro.serving.schedulers.Scheduler.decode_run` for the run's
``(batch, seq)`` pricing points in one vectorized call, maps them through
the memoized cost model, and replays only the clock/queue-depth
accumulation as a tight scalar loop (float addition is order-sensitive,
so that part *must* stay sequential to remain bit-exact).  Per-request
Python work happens once per run instead of once per iteration — the
difference between O(batch) and O(1) bookkeeping per decode step, and the
source of the wall-clock speedup the ``wallclock`` benchmark gates.
Schedulers that cannot promise a predictable run (paged KV grows and
evicts per token) opt out via
:attr:`~repro.serving.schedulers.Scheduler.coalescable` and take the
scalar path, which is kept verbatim from the reference implementation
(:mod:`repro.serving._reference` — the specification both paths are
differentially tested against).

The engine records per-request lifecycle timestamps (arrival, admission,
first token, completion).  :meth:`ServingEngine.serve` keeps every event
(an :class:`EngineTrace`, what the bit-exactness tests compare);
:meth:`ServingEngine.serve_stats` streams them instead into an
O(1)-memory :class:`~repro.serving.metrics.EngineStats`, which is how a
million-request trace stays in interactive reach.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem
from repro.serving.costs import IterationCostModel
from repro.serving.metrics import (
    DEFAULT_SKETCH_CAPACITY,
    DepthSketch,
    EngineStats,
    RequestStats,
    RequestTiming,
    ServingReport,
)
from repro.serving.schedulers import RunningRequest, Scheduler
from repro.serving.slots import SlotView
from repro.workloads.requests import Trace

if TYPE_CHECKING:  # telemetry is optional at runtime; never imported here
    from repro.serving.telemetry import Collector

#: cap on iterations priced per coalesced run — bounds the batch x steps
#: pricing matrix a single ``decode_run`` call materializes (a longer
#: stretch simply takes several runs, with identical results)
_MAX_RUN_STEPS = 4096


@dataclasses.dataclass(frozen=True)
class EngineTrace:
    """Raw outcome of one engine run (before metric aggregation)."""

    timings: tuple[RequestTiming, ...]
    iteration_seconds: tuple[float, ...]  #: every iteration that decoded
    decode_tokens: tuple[int, ...]  #: tokens generated per such iteration
    prefill_seconds: tuple[float, ...]  #: every priced prefill event
    prefill_tokens: tuple[int, ...]  #: prompt tokens per prefill event
    start_s: float  #: first arrival
    end_s: float  #: last completion
    mean_queue_depth: float
    max_queue_depth: int
    preemptions: int = 0  #: paged evictions (each implies one restore)
    #: prefix-cache counters (all zero for schedulers without a cache)
    cache_hit_tokens: int = 0
    cache_miss_tokens: int = 0
    cache_evictions: int = 0
    #: shared-tier counters (all zero without a cross-replica tier)
    remote_hit_tokens: int = 0
    transferred_bytes: float = 0.0
    kv_transfers: int = 0
    #: disaggregation counters: prefill→decode KV handoffs this engine
    #: *received* (all zero without a phase-split cluster upstream)
    handoffs: int = 0
    handoff_bytes: float = 0.0
    #: seconds the engine spent pricing work (makespan minus arrival
    #: idle) — the numerator of a replica's utilization
    busy_s: float = 0.0
    #: time-weighted queue-depth sketch (p50/p99); optional so that
    #: hand-built traces in tests stay valid without one
    depth: DepthSketch | None = None

    @property
    def makespan_s(self) -> float:
        return self.end_s - self.start_s

    def stats(
        self, sketch_capacity: int = DEFAULT_SKETCH_CAPACITY
    ) -> EngineStats:
        """Fold the per-event record into its streaming equivalent."""
        requests = RequestStats(sketch_capacity)
        for timing in self.timings:
            requests.observe(timing)
        return EngineStats(
            requests=requests,
            start_s=self.start_s,
            end_s=self.end_s,
            mean_queue_depth=self.mean_queue_depth,
            max_queue_depth=self.max_queue_depth,
            n_iterations=len(self.iteration_seconds),
            n_prefills=len(self.prefill_seconds),
            preemptions=self.preemptions,
            depth=self.depth,
            cache_hit_tokens=self.cache_hit_tokens,
            cache_miss_tokens=self.cache_miss_tokens,
            cache_evictions=self.cache_evictions,
            remote_hit_tokens=self.remote_hit_tokens,
            transferred_bytes=self.transferred_bytes,
            kv_transfers=self.kv_transfers,
            handoffs=self.handoffs,
            handoff_bytes=self.handoff_bytes,
            busy_s=self.busy_s,
        )

    def report(self) -> ServingReport:
        return self.stats().report()


@dataclasses.dataclass
class _PrefillCohort:
    """One admission's prompts, streamed chunk by chunk (padded cohort).

    Mirrors the monolithic engine's padded-prefill semantics: the cohort
    is priced at its batch size and *max* input length, and every member
    becomes decodable only when the whole cohort finishes — so a single
    full-prompt chunk reproduces blocked FCFS exactly.
    """

    members: list[RunningRequest]
    max_input: int
    done: int = 0  #: prompt tokens already processed
    chunks: int = 0  #: chunk iterations taken so far

    @property
    def remaining(self) -> int:
        return self.max_input - self.done


class _TraceRecorder:
    """Keeps every event — what :meth:`ServingEngine.serve` returns."""

    __slots__ = (
        "iterations", "decode_tokens", "prefills", "prefill_tokens",
        "finished",
    )

    def __init__(self):
        self.iterations: list[float] = []
        self.decode_tokens: list[int] = []
        self.prefills: list[float] = []
        self.prefill_tokens: list[int] = []
        self.finished: list[RunningRequest] = []

    def prefill(self, dt: float, tokens: int) -> None:
        self.prefills.append(dt)
        self.prefill_tokens.append(tokens)

    def decode(self, dt: float, tokens: int) -> None:
        self.iterations.append(dt)
        self.decode_tokens.append(tokens)

    def decode_run(self, dts: list[float], tokens_each: int) -> None:
        self.iterations.extend(dts)
        self.decode_tokens.extend([tokens_each] * len(dts))

    def finish(self, request: RunningRequest) -> None:
        self.finished.append(request)


class _StatsRecorder:
    """Streams events into counters + a :class:`RequestStats` (O(1) mem)."""

    __slots__ = ("requests", "n_iterations", "n_prefills")

    def __init__(self, sketch_capacity: int):
        self.requests = RequestStats(sketch_capacity)
        self.n_iterations = 0
        self.n_prefills = 0

    def prefill(self, dt: float, tokens: int) -> None:
        self.n_prefills += 1

    def decode(self, dt: float, tokens: int) -> None:
        self.n_iterations += 1

    def decode_run(self, dts: list[float], tokens_each: int) -> None:
        self.n_iterations += len(dts)

    def finish(self, request: RunningRequest) -> None:
        self.requests.observe(
            RequestTiming(
                request_id=request.timed.request_id,
                input_len=request.input_len,
                output_len=request.output_len,
                arrival_s=request.timed.arrival_s,
                admitted_s=request.admitted_s,
                first_token_s=request.first_token_s,
                finished_s=request.finished_s,
                preemptions=request.preemptions,
                cached_tokens=request.cached_tokens,
                remote_tokens=request.remote_tokens,
            )
        )


class ServingEngine:
    """Serves request traces on one system under one scheduling policy.

    The engine is the *mechanism*: it owns the clock, the waiting queue,
    the running set, and every per-request timestamp, and it prices each
    event through an :class:`~repro.serving.costs.IterationCostModel`.
    All *policy* — admission, iteration pricing shape, paged-KV growth,
    preemption — is delegated to the
    :class:`~repro.serving.schedulers.Scheduler`, whose lifecycle hooks
    (``on_admit``/``prepare_iteration``/``can_restore``/``on_restore``/
    ``release``) the engine calls in a fixed order each loop iteration.
    One engine serves one trace at a time; :meth:`serve` returns the raw
    :class:`EngineTrace` (what equivalence tests compare bit for bit),
    :meth:`serve_stats` the O(1)-memory streaming
    :class:`~repro.serving.metrics.EngineStats`, and :meth:`run` the
    aggregated :class:`~repro.serving.metrics.ServingReport`.
    """

    def __init__(
        self,
        system: ServingSystem,
        spec: ModelSpec,
        scheduler: Scheduler,
    ):
        self.system = system
        self.spec = spec
        self.scheduler = scheduler
        self.cost = IterationCostModel(system, spec)
        # Refuse to coalesce a subclass that reshaped scalar pricing
        # without teaching decode_run the same shape — silent divergence
        # between the two paths is the one bug class this line removes.
        cls = type(scheduler)
        self._coalesce = scheduler.coalescable and (
            cls.decode_run is not Scheduler.decode_run
            or cls.iteration_shape is Scheduler.iteration_shape
        )

    def serve(
        self, trace: Trace, collector: "Collector | None" = None
    ) -> EngineTrace:
        """Run ``trace`` to completion and return the raw event record.

        ``collector`` optionally taps the run's span/gauge stream (see
        :mod:`repro.serving.telemetry`); the simulation itself — every
        priced event, every timestamp — is identical with or without one.
        """
        recorder = _TraceRecorder()
        (
            start, end, depth_area, max_depth, preemptions, depth,
            handoffs, handoff_bytes, idle_s,
        ) = self._serve(trace, recorder, collector)
        timings = tuple(
            RequestTiming(
                request_id=r.timed.request_id,
                input_len=r.input_len,
                output_len=r.output_len,
                arrival_s=r.timed.arrival_s,
                admitted_s=r.admitted_s,
                first_token_s=r.first_token_s,
                finished_s=r.finished_s,
                preemptions=r.preemptions,
                cached_tokens=r.cached_tokens,
                remote_tokens=r.remote_tokens,
            )
            for r in sorted(
                recorder.finished, key=lambda r: r.timed.request_id
            )
        )
        span = max(end - start, 1e-12)
        return EngineTrace(
            timings=timings,
            iteration_seconds=tuple(recorder.iterations),
            decode_tokens=tuple(recorder.decode_tokens),
            prefill_seconds=tuple(recorder.prefills),
            prefill_tokens=tuple(recorder.prefill_tokens),
            start_s=start,
            end_s=end,
            mean_queue_depth=depth_area / span,
            max_queue_depth=max_depth,
            preemptions=preemptions,
            cache_hit_tokens=self.scheduler.cache_hit_tokens,
            cache_miss_tokens=self.scheduler.cache_miss_tokens,
            cache_evictions=self.scheduler.cache_evictions,
            remote_hit_tokens=self.scheduler.remote_hit_tokens,
            transferred_bytes=self.scheduler.transferred_bytes,
            kv_transfers=self.scheduler.kv_transfers,
            handoffs=handoffs,
            handoff_bytes=handoff_bytes,
            busy_s=(end - start) - idle_s,
            depth=depth,
        )

    def serve_stats(
        self,
        trace: Trace,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
        collector: "Collector | None" = None,
    ) -> EngineStats:
        """Serve ``trace`` keeping O(1) memory: stream, don't record.

        Identical simulation to :meth:`serve` — same clock, same
        timestamps — but per-request outcomes fold straight into a
        :class:`~repro.serving.metrics.RequestStats` reservoir instead
        of accumulating event lists, so memory does not grow with the
        trace.  Below ``sketch_capacity`` completed requests the
        resulting report is bit-identical to ``serve(trace).report()``;
        above it, latency percentiles come from the seeded sample.
        """
        recorder = _StatsRecorder(sketch_capacity)
        (
            start, end, depth_area, max_depth, preemptions, depth,
            handoffs, handoff_bytes, idle_s,
        ) = self._serve(trace, recorder, collector, sketch_capacity)
        span = max(end - start, 1e-12)
        return EngineStats(
            requests=recorder.requests,
            start_s=start,
            end_s=end,
            mean_queue_depth=depth_area / span,
            max_queue_depth=max_depth,
            n_iterations=recorder.n_iterations,
            n_prefills=recorder.n_prefills,
            preemptions=preemptions,
            depth=depth,
            cache_hit_tokens=self.scheduler.cache_hit_tokens,
            cache_miss_tokens=self.scheduler.cache_miss_tokens,
            cache_evictions=self.scheduler.cache_evictions,
            remote_hit_tokens=self.scheduler.remote_hit_tokens,
            transferred_bytes=self.scheduler.transferred_bytes,
            kv_transfers=self.scheduler.kv_transfers,
            handoffs=handoffs,
            handoff_bytes=handoff_bytes,
            busy_s=(end - start) - idle_s,
        )

    def run(
        self, trace: Trace, collector: "Collector | None" = None
    ) -> ServingReport:
        """Serve ``trace`` (streaming) and return the aggregated report."""
        return self.serve_stats(trace, collector=collector).report()

    def _serve(
        self,
        trace: Trace,
        rec,
        col: "Collector | None" = None,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
    ) -> tuple[
        float, float, float, int, int, DepthSketch, int, float, float
    ]:
        """The event loop; returns (start, end, depth_area, max_depth,
        preemptions, depth_sketch, handoffs, handoff_bytes, idle_s) and
        emits events through ``rec``."""
        budget = self.scheduler.chunk_budget
        coalesce = self._coalesce
        #: one bool gates every telemetry touch on the hot path
        tel = col is not None and col.enabled
        pending = collections.deque(trace.requests)
        queue: list = []
        running: list[RunningRequest] = []
        preempted: list[RunningRequest] = []
        cohorts: collections.deque[_PrefillCohort] = collections.deque()
        preemptions = 0
        handoffs = 0
        handoff_bytes = 0.0
        idle_s = 0.0

        if not pending:
            # An empty trace serves to an empty record: zero span, no
            # events, the NaN-percentile report — exactly what one
            # replica of a cluster that routed it nothing produces.
            return (
                0.0, 0.0, 0.0, 0, 0, DepthSketch(sketch_capacity),
                0, 0.0, 0.0,
            )

        start = pending[0].arrival_s
        clock = start
        depth_area = 0.0
        max_depth = 0
        # Queue depth is piecewise-constant: accumulate time at the
        # current depth and flush one weighted segment into the sketch
        # only when the depth *changes* — O(queue mutations) RNG cost,
        # never per iteration.
        depth_sketch = DepthSketch(sketch_capacity)
        cur_depth = 0
        depth_acc = 0.0

        def set_depth(n: int) -> None:
            nonlocal cur_depth, depth_acc
            if depth_acc > 0.0:
                depth_sketch.observe(cur_depth, depth_acc)
                depth_acc = 0.0
            cur_depth = n

        def advance(dt: float) -> None:
            nonlocal clock, depth_area, depth_acc
            depth_area += len(queue) * dt
            depth_acc += dt
            clock += dt

        def generate(members: list[RunningRequest]) -> int:
            """One decode token per unfinished member, stamped at ``clock``."""
            n = 0
            for r in members:
                if r.done:
                    continue
                r.generated += 1
                n += 1
                if r.generated == 1:
                    r.first_token_s = clock
                if r.done:
                    r.finished_s = clock
                    self.scheduler.release(r)
                    rec.finish(r)
                    if tel:
                        col.finish(r)
            return n

        while pending or queue or running or preempted:
            while pending and pending[0].arrival_s <= clock:
                queue.append(pending.popleft())
            qn = len(queue)
            max_depth = max(max_depth, qn)
            if qn != cur_depth:
                set_depth(qn)

            if preempted:
                # Preempted requests are older than everything still
                # queued, so they restore head-of-line: no fresh
                # admission happens while one waits for blocks.
                head = preempted[0]
                if self.scheduler.can_restore(head, running):
                    preempted.pop(0)
                    self.scheduler.on_restore(head)
                    head.prefilled = True
                    # Re-enter in admission-age order, not at the tail:
                    # the restored request is the oldest resident and
                    # age decides who a preemptive scheduler protects.
                    age = (head.admitted_s, head.timed.request_id)
                    at = next(
                        (
                            i
                            for i, r in enumerate(running)
                            if (r.admitted_s, r.timed.request_id) > age
                        ),
                        len(running),
                    )
                    running.insert(at, head)
                    # Recompute-style restore: re-prefill the prompt plus
                    # every token generated before the eviction.  A prefix
                    # cache may cover a leading run of those tokens
                    # (on_restore just re-acquired the session's blocks);
                    # only the uncached suffix is computed and priced —
                    # chunk costs telescope, so the split is exact.
                    context = head.input_len + head.generated
                    cached = head.cache_hit_last
                    if cached:
                        dt = self.cost.chunk_prefill_seconds(
                            1, cached, context
                        )
                    else:
                        dt = self.cost.prefill_seconds(1, context)
                    # A restore that pulled remote prefix blocks pays the
                    # wire time before its (shortened) re-prefill.
                    if head.transfer_s_last:
                        dt += head.transfer_s_last
                    t0 = clock
                    advance(dt)
                    rec.prefill(dt, context - cached)
                    if tel:
                        col.prefill_span(
                            t0, clock, context - cached, (head,), "restore"
                        )
                        col.gauge(
                            clock, len(queue), len(running),
                            self.scheduler.blocks_in_use, preemptions,
                            self.scheduler.cache_hit_tokens,
                            self.scheduler.cache_miss_tokens,
                            self.scheduler.cache_evictions,
                            self.scheduler.remote_hit_tokens,
                            self.scheduler.transferred_bytes,
                        )
                    continue
                admitted_n = 0
            else:
                admitted_n = self.scheduler.admit(
                    queue, running, bool(pending)
                )
            if admitted_n > 0:
                admitted, queue[:admitted_n] = queue[:admitted_n], []
                set_depth(len(queue))
                admitted_s = clock
                members = [
                    RunningRequest(
                        timed=t,
                        admitted_s=admitted_s,
                        stride=self.scheduler.request_stride(t.output_len),
                        prefilled=(
                            budget is None or bool(t.prefilled_tokens)
                        ),
                    )
                    for t in admitted
                ]
                running.extend(members)
                self.scheduler.on_admit(members)
                # Disaggregated continuations: the prompt KV arrives
                # precomputed over the wire, so the handoff serializes
                # into this clock *instead of* a prefill.  Handoffs are
                # counted, never recorded as prefill events (a prefill
                # event always covers >= 1 computed token).
                handed = [m for m in members if m.timed.prefilled_tokens]
                if handed:
                    dt = 0.0
                    for m in handed:
                        dt += m.timed.handoff_s
                        handoff_bytes += m.timed.handoff_bytes
                    handoffs += len(handed)
                    advance(dt)
                    if tel:
                        col.prefill_span(
                            admitted_s, clock, 0, handed, "handoff"
                        )
                fresh = [m for m in members if not m.timed.prefilled_tokens]
                if fresh:
                    t0 = clock
                    cohort_input = max(m.input_len for m in fresh)
                    if budget is None:
                        # Padded-cohort pricing reuses only what *every*
                        # member has cached: the cohort runs as one fused
                        # prefill of length cohort_input, so the min hit
                        # is the longest prefix the whole batch can skip.
                        cached = min(m.cache_hit_last for m in fresh)
                        if cached:
                            dt = self.cost.chunk_prefill_seconds(
                                len(fresh), cached, cohort_input
                            )
                        else:
                            dt = self.cost.prefill_seconds(
                                len(fresh), cohort_input
                            )
                        # Remote prefix pulls serialize on the link ahead
                        # of the fused prefill; each member's wire time
                        # adds up.
                        transfer = sum(m.transfer_s_last for m in fresh)
                        if transfer:
                            dt += transfer
                        advance(dt)
                        rec.prefill(dt, cohort_input - cached)
                        if tel:
                            col.prefill_span(
                                t0, clock, cohort_input - cached,
                                fresh, "prefill",
                            )
                    else:
                        # Chunking: no clock movement at admission — the
                        # prompt is streamed by the chunk iterations below.
                        cohorts.append(_PrefillCohort(fresh, cohort_input))
                if tel:
                    col.gauge(
                        clock, len(queue), len(running),
                        self.scheduler.blocks_in_use, preemptions,
                        self.scheduler.cache_hit_tokens,
                        self.scheduler.cache_miss_tokens,
                        self.scheduler.cache_evictions,
                        self.scheduler.remote_hit_tokens,
                        self.scheduler.transferred_bytes,
                    )
                continue

            if cohorts:
                cohort = cohorts[0]
                chunk = min(budget, cohort.remaining)
                chunk_s = self.cost.chunk_prefill_seconds(
                    len(cohort.members), cohort.done, cohort.done + chunk
                )
                decodable = [
                    r for r in running if r.prefilled and not r.done
                ]
                # A cohort's first chunk re-forms the fused batch and runs
                # alone (this is what collapses budget >= prompt onto the
                # blocked FCFS engine); overlap never stalls.
                fused = decodable if (
                    self.scheduler.overlap_decode or cohort.chunks > 0
                ) else []
                if fused:
                    batch, seq = self.scheduler.iteration_shape(fused)
                    decode_s = self.cost.decode_seconds(batch, seq)
                    dt = (
                        max(chunk_s, decode_s)
                        if self.scheduler.overlap_decode
                        else chunk_s + decode_s
                    )
                else:
                    dt = chunk_s
                t0 = clock
                advance(dt)
                rec.prefill(chunk_s, chunk)
                cohort.done += chunk
                cohort.chunks += 1
                if tel:
                    col.prefill_span(t0, clock, chunk, cohort.members, "chunk")
                if fused:
                    n_tok = generate(fused)
                    rec.decode(dt, n_tok)
                    if tel:
                        col.decode_span(t0, clock, 1, n_tok, fused)
                    running = [r for r in running if not r.done]
                if cohort.remaining == 0:
                    for r in cohort.members:
                        r.prefilled = True
                    cohorts.popleft()
                if tel:
                    col.gauge(
                        clock, len(queue), len(running),
                        self.scheduler.blocks_in_use, preemptions,
                        self.scheduler.cache_hit_tokens,
                        self.scheduler.cache_miss_tokens,
                        self.scheduler.cache_evictions,
                        self.scheduler.remote_hit_tokens,
                        self.scheduler.transferred_bytes,
                    )
                continue

            if running and coalesce:
                # Coalesced decode run: until a resident finishes or an
                # arrival crosses the clock, the batch cannot change —
                # price the whole stretch in one vectorized call and
                # replay only the order-sensitive float accumulation.
                slots = SlotView.from_requests(running)
                steps = min(slots.max_coalesced_steps(), _MAX_RUN_STEPS)
                batch, seqs = self.scheduler.decode_run(slots, steps)
                uniq, inverse = np.unique(seqs, return_inverse=True)
                costs = np.fromiter(
                    (self.cost.decode_seconds(batch, s) for s in uniq.tolist()),
                    float,
                    len(uniq),
                )
                dts = costs[inverse].tolist()
                qlen = len(queue)
                clock_before = clock
                if pending:
                    next_arrival = pending[0].arrival_s
                    executed = 0
                    for dt in dts:
                        depth_area += qlen * dt
                        depth_acc += dt
                        clock += dt
                        executed += 1
                        if next_arrival <= clock:
                            break
                else:
                    for dt in dts:
                        depth_area += qlen * dt
                        depth_acc += dt
                        clock += dt
                    executed = steps
                # Bit-exact re-derivation: after the first iteration the
                # clock was exactly clock_before + dts[0] (one float add).
                first_clock = clock_before + dts[0]
                rec.decode_run(
                    dts if executed == steps else dts[:executed],
                    slots.n_active,
                )
                for r in running:
                    if r.done:
                        continue
                    if r.generated == 0:
                        r.first_token_s = first_clock
                    r.generated += executed
                    if r.done:
                        r.finished_s = clock
                        self.scheduler.release(r)
                        rec.finish(r)
                        if tel:
                            col.finish(r)
                if tel:
                    # The whole coalesced stretch is one decode span; the
                    # exporter expands it per member (the batch could not
                    # change mid-run — that is what made it coalescable).
                    col.decode_span(
                        clock_before, clock, executed,
                        executed * slots.n_active, slots.requests,
                    )
                if executed == steps:
                    # Only a full run can finish anyone (executed equals
                    # the minimum remaining output among active slots).
                    if self.scheduler.keep_finished:
                        if all(r.done for r in running):
                            running.clear()
                    else:
                        running = [r for r in running if not r.done]
                if tel:
                    col.gauge(
                        clock, len(queue), len(running),
                        self.scheduler.blocks_in_use, preemptions,
                        self.scheduler.cache_hit_tokens,
                        self.scheduler.cache_miss_tokens,
                        self.scheduler.cache_evictions,
                        self.scheduler.remote_hit_tokens,
                        self.scheduler.transferred_bytes,
                    )
                continue

            if running:
                victims = self.scheduler.prepare_iteration(running)
                if victims:
                    # Pool exhausted: the scheduler already freed the
                    # victims' blocks; evict them from the running set
                    # and re-queue them (oldest first) for restore.
                    preemptions += len(victims)
                    evicted = {id(v) for v in victims}
                    running = [r for r in running if id(r) not in evicted]
                    for v in victims:
                        v.prefilled = False
                        v.preemptions += 1
                    preempted.extend(victims)
                    preempted.sort(
                        key=lambda r: (r.admitted_s, r.timed.request_id)
                    )
                    if tel:
                        col.preempt(clock, victims)
                    if not running:
                        if tel:
                            col.gauge(
                                clock, len(queue), 0,
                                self.scheduler.blocks_in_use, preemptions,
                                self.scheduler.cache_hit_tokens,
                                self.scheduler.cache_miss_tokens,
                                self.scheduler.cache_evictions,
                                self.scheduler.remote_hit_tokens,
                                self.scheduler.transferred_bytes,
                            )
                        continue
                batch, seq = self.scheduler.iteration_shape(running)
                dt = self.cost.decode_seconds(batch, seq)
                t0 = clock
                advance(dt)
                n_tok = generate(running)
                rec.decode(dt, n_tok)
                if tel:
                    col.decode_span(t0, clock, 1, n_tok, running)
                if self.scheduler.keep_finished:
                    if all(r.done for r in running):
                        running.clear()
                else:
                    running = [r for r in running if not r.done]
                if tel:
                    col.gauge(
                        clock, len(queue), len(running),
                        self.scheduler.blocks_in_use, preemptions,
                        self.scheduler.cache_hit_tokens,
                        self.scheduler.cache_miss_tokens,
                        self.scheduler.cache_evictions,
                        self.scheduler.remote_hit_tokens,
                        self.scheduler.transferred_bytes,
                    )
                continue

            if pending:
                dt = pending[0].arrival_s - clock
                advance(dt)
                idle_s += dt
                if tel:
                    col.gauge(
                        clock, len(queue), len(running),
                        self.scheduler.blocks_in_use, preemptions,
                        self.scheduler.cache_hit_tokens,
                        self.scheduler.cache_miss_tokens,
                        self.scheduler.cache_evictions,
                        self.scheduler.remote_hit_tokens,
                        self.scheduler.transferred_bytes,
                    )
                continue

            raise RuntimeError(
                f"scheduler {self.scheduler.name!r} cannot place "
                f"{len(queue)} waiting request(s) on an idle cluster — "
                "the head request exceeds the admission bound"
            )

        if depth_acc > 0.0:
            depth_sketch.observe(cur_depth, depth_acc)
        return (
            start, clock, depth_area, max_depth, preemptions, depth_sketch,
            handoffs, handoff_bytes, idle_s,
        )
