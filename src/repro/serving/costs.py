"""Pricing bridge from the request-level engine to ``perf.system``.

The discrete-event engine advances one decode iteration at a time; this
module prices each iteration (and each prefill) on a
:class:`~repro.perf.system.ServingSystem` and memoizes the results.  Two
properties matter:

* **Fidelity** — an iteration is priced at its true batch size and context
  length through the same ``step_latency`` cost model the static
  simulators use, so request-level and batch-level results are directly
  comparable (and exactly equal under static batching).
* **Speed** — contexts are anchored to the scheduler-chosen stride before
  pricing, so a multi-thousand-iteration trace touches only a few hundred
  distinct ``(batch, seq)`` points.
"""

from __future__ import annotations

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem

#: default inter-replica link bandwidth in gigabits per second — a single
#: commodity 100 GbE NIC, deliberately far below NVLink-class fabrics so
#: the transfer-vs-recompute decision stays a real decision.
DEFAULT_LINK_GBPS = 100.0


class IterationCostModel:
    """Memoized prefill/decode pricing on one serving system.

    ``link_gbps`` prices cross-replica KV movement (the shared prefix
    tier); it never enters prefill/decode pricing, so two models differing
    only in link bandwidth price every iteration identically.
    """

    def __init__(
        self,
        system: ServingSystem,
        spec: ModelSpec,
        link_gbps: float = DEFAULT_LINK_GBPS,
    ):
        if link_gbps <= 0:
            raise ValueError("link_gbps must be positive")
        self.system = system
        self.spec = spec
        self.link_gbps = link_gbps
        self._decode: dict[tuple[int, int], float] = {}
        self._prefill: dict[tuple[int, int], float] = {}

    def decode_seconds(self, batch: int, seq_len: int) -> float:
        """One decode iteration for ``batch`` requests at context ``seq_len``."""
        key = (int(batch), int(seq_len))
        if key not in self._decode:
            self._decode[key] = self.system.step_latency(self.spec, *key).total
        return self._decode[key]

    def prefill_seconds(self, batch: int, input_len: int) -> float:
        """Prefill of ``batch`` admitted requests at ``input_len`` tokens."""
        key = (int(batch), int(input_len))
        if key not in self._prefill:
            self._prefill[key] = self.system.prefill_latency(self.spec, *key)
        return self._prefill[key]

    def chunk_prefill_seconds(self, batch: int, start: int, end: int) -> float:
        """Prefill of the prompt token range ``[start, end)`` for ``batch``.

        Priced as the *increment* of the cumulative prefill cost, so later
        chunks are more expensive (their attention spans the context built
        by earlier chunks) and a partition of ``[0, L)`` telescopes to the
        monolithic cost: one chunk covering the whole prompt is priced
        *identically* to :meth:`prefill_seconds` — the chunked scheduler's
        budget->infinity equivalence with blocked FCFS rests on this.
        """
        if not 0 <= start < end:
            raise ValueError("need a non-empty token range with start >= 0")
        if start == 0:
            return self.prefill_seconds(batch, end)
        return self.prefill_seconds(batch, end) - self.prefill_seconds(
            batch, start
        )

    def transfer_seconds(self, n_bytes: float) -> float:
        """Wire time to move ``n_bytes`` of KV state between replicas.

        A bandwidth-only model: latency and protocol overhead are folded
        into the configured ``link_gbps`` rather than modeled separately,
        which keeps the transfer-vs-recompute comparison monotone in
        prefix length.
        """
        if n_bytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return n_bytes * 8.0 / (self.link_gbps * 1e9)

    @property
    def n_priced_points(self) -> int:
        """Distinct (batch, seq) points actually sent to the cost model."""
        return len(self._decode) + len(self._prefill)
