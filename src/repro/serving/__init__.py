"""Request-level serving simulator: traces, continuous batching, SLOs.

The layer between the paper's fixed-shape evaluation and production
traffic.  A :class:`~repro.workloads.requests.Trace` of timed requests
(seeded Poisson/Gamma arrivals, long-tailed lengths, or a replayed JSON
file) is served by a discrete-event :class:`ServingEngine` that prices
every prefill and decode iteration on a
:class:`~repro.perf.system.ServingSystem`, under a pluggable batching
policy (static, FCFS continuous, HBM-capacity-aware, Sarathi-style
chunked prefill, NeuPIMs-style prefill/decode overlap, or vLLM-style
paged KV with preempt/restore).  The outcome is a
:class:`ServingReport`: TTFT/TPOT/latency percentiles, queue depths,
preemption counts, throughput, and goodput under an SLO.

See ``docs/ARCHITECTURE.md`` for the request lifecycle walkthrough, the
scheduler selection table, and the bit-exactness lattice relating the
policies to each other.

The cluster layer (:mod:`repro.serving.cluster` /
:mod:`repro.serving.routing`) scales this to a data-parallel fleet: a
:class:`ClusterEngine` drives N independent engine replicas behind a
front-end router (round-robin, least-loaded, session-affinity hashing,
or cache-aware least-backlog) and merges their events into one report
with per-replica breakdowns; a :class:`SharedPrefixTier` optionally
joins the replicas' prefix pools so session history published on one
node can be pulled by another over a priced interconnect; the shipped
trace corpus (:mod:`repro.serving.corpus`) provides replayable
bursty/steady request streams under ``traces/``.
"""

from repro.serving.arrivals import (
    LengthSampler,
    empirical_lengths,
    fixed_lengths,
    gamma_trace,
    load_trace,
    lognormal_lengths,
    multiturn_chat_trace,
    poisson_trace,
    save_trace,
    static_trace,
)
from repro.serving.cluster import (
    ClusterEngine,
    ClusterReport,
    ClusterTrace,
    ReplicaStats,
    build_cluster,
)
from repro.serving._reference import ReferenceEngine
from repro.serving.costs import DEFAULT_LINK_GBPS, IterationCostModel
from repro.serving.engine import EngineTrace, ServingEngine
from repro.serving.memory import (
    BlockPool,
    MemoryModel,
    PrefixBlockPool,
    PrefixCache,
    SharedPrefixTier,
    validate_capacity,
)
from repro.serving.routing import (
    PHASE_NAMES,
    ROUTER_NAMES,
    AffinityRouter,
    CacheAwareRouter,
    DisaggregatedRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    Router,
    build_router,
    load_imbalance,
)
from repro.serving.metrics import (
    DEFAULT_SKETCH_CAPACITY,
    DepthSketch,
    EngineStats,
    RequestStats,
    RequestTiming,
    ServingReport,
    SloSpec,
    percentile,
)
from repro.serving.slots import SlotView
from repro.serving.telemetry import (
    Collector,
    NullCollector,
    Timeline,
    TimelineCollector,
    Track,
    validate_trace_events,
    write_trace_file,
)
from repro.serving.schedulers import (
    ChunkedPrefillScheduler,
    FcfsContinuousScheduler,
    MemoryAwareScheduler,
    OverlapScheduler,
    PagedScheduler,
    PrefixCachingScheduler,
    RunningRequest,
    Scheduler,
    StaticBatchScheduler,
    build_scheduler,
)

__all__ = [
    "LengthSampler",
    "empirical_lengths",
    "fixed_lengths",
    "gamma_trace",
    "load_trace",
    "lognormal_lengths",
    "multiturn_chat_trace",
    "poisson_trace",
    "save_trace",
    "static_trace",
    "DEFAULT_LINK_GBPS",
    "IterationCostModel",
    "EngineTrace",
    "ReferenceEngine",
    "ServingEngine",
    "SlotView",
    "ClusterEngine",
    "ClusterReport",
    "ClusterTrace",
    "ReplicaStats",
    "build_cluster",
    "PHASE_NAMES",
    "ROUTER_NAMES",
    "AffinityRouter",
    "CacheAwareRouter",
    "DisaggregatedRouter",
    "LeastOutstandingRouter",
    "RoundRobinRouter",
    "Router",
    "build_router",
    "load_imbalance",
    "DEFAULT_SKETCH_CAPACITY",
    "DepthSketch",
    "Collector",
    "NullCollector",
    "Timeline",
    "TimelineCollector",
    "Track",
    "validate_trace_events",
    "write_trace_file",
    "EngineStats",
    "RequestStats",
    "RequestTiming",
    "ServingReport",
    "SloSpec",
    "percentile",
    "BlockPool",
    "ChunkedPrefillScheduler",
    "FcfsContinuousScheduler",
    "MemoryAwareScheduler",
    "MemoryModel",
    "OverlapScheduler",
    "PagedScheduler",
    "PrefixBlockPool",
    "PrefixCache",
    "PrefixCachingScheduler",
    "SharedPrefixTier",
    "RunningRequest",
    "Scheduler",
    "StaticBatchScheduler",
    "build_scheduler",
    "validate_capacity",
]
