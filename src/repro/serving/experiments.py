"""Serving-simulator trials and sweeps for the experiment engine.

Registers the ``serving_slo`` trial function and the ``serving`` sweep
(the ``latency_throughput`` figure): every evaluated system serves the
same seeded arrival trace, and the cached result carries the full SLO
report — TTFT/TPOT percentiles, queue depths, throughput and goodput — so
latency-throughput curves come straight out of ``repro sweep serving``.

The cluster layer adds ``cluster_slo`` (the same trace served by a
:class:`~repro.serving.cluster.ClusterEngine` of N replicas behind a
router), the ``cluster`` sweep (replicas x router x scheduler grid), and
the ``scaling`` sweep/figure (goodput and TTFT p99 vs replica count, one
curve per router).

Prefill shaping adds the ``chunking`` sweep (chunked vs overlap
schedulers over the chunk-budget grid on GPU and Pimba) and the
``ttft_tradeoff`` sweep/figure: every system serves the same saturating
trace under both prefill-shaping schedulers at every chunk budget, so
the TTFT-p99-vs-TPOT-p99 tradeoff (and where its crossover sits per
system) reads straight off the table.

Paged KV adds the ``preemption_tradeoff`` sweep/figure (full-context
vs block-granular reservation under a tight HBM budget as load rises:
goodput gained from tighter admission vs latency lost to
preempt/restore thrashing) and the ``paged`` sweep (block-size
sensitivity of the paged policy at a fixed capacity-bound load).

Prefix reuse adds the ``prefix_cache`` sweep (the ``prefix_reuse``
figure): paged-without-reuse vs the radix prefix cache over the same
seeded multi-turn chat sessions as the session rate rises, so the
goodput/TTFT win of not re-prefilling shared conversation history —
and the hit rate the perf gate watches — reads off one table.

Observability adds the ``serving_timeline`` trial (``serving_slo`` with
the flight recorder on: the same scalar payload plus a per-window
time-series) and the ``utilization_timeline`` sweep/figure — the
paged-vs-memory face-off rendered window by window, so *when* each
policy wins is visible, not just that it does.  :func:`collect_timeline`
re-runs any serving trial with a recording collector for
``repro trace export``.

The engine itself is benchmarked by the ``wallclock`` trial/sweep: the
vectorized production engine (bare and with telemetry recording) and
the scalar reference serve the same ~100k-request trace under a
stopwatch, and CI asserts both the speedup floor the vectorized core
was merged at and the telemetry overhead ceiling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import pathlib
import time

from repro.experiments.registry import sweep, trial
from repro.experiments.runner import RunReport
from repro.experiments.spec import ExperimentSpec
from repro.models import spec_for
from repro.perf import SystemKind, build_system
from repro.serving.arrivals import (
    fixed_lengths,
    gamma_trace,
    lognormal_lengths,
    load_trace,
    multiturn_chat_trace,
    poisson_trace,
)
from repro.serving import corpus as _corpus
from repro.serving._reference import ReferenceEngine
from repro.serving.cluster import build_cluster
from repro.serving.costs import DEFAULT_LINK_GBPS
from repro.serving.engine import ServingEngine
from repro.serving.metrics import SloSpec
from repro.serving.routing import ROUTER_NAMES
from repro.serving.schedulers import build_scheduler
from repro.serving.telemetry import Timeline, TimelineCollector
from repro.workloads.requests import Trace

#: all five evaluated systems, in the paper's presentation order
SERVING_SYSTEMS = tuple(kind.value for kind in SystemKind)

#: QPS grid of the latency-throughput sweep: from a lightly loaded cluster
#: to well past the GPU baseline's saturation point (small scale, Zamba2,
#: (1024, 256) requests, 32 slots)
SERVING_QPS_GRID = (2.0, 6.0, 10.0, 14.0)

#: replica-count grid of the cluster sweeps (1 doubles as the equivalence
#: anchor: a 1-replica cluster is bit-exact with the bare engine)
CLUSTER_REPLICA_GRID = (1, 2, 4)

#: the scaling figure's deeper replica axis
SCALING_REPLICA_GRID = (1, 2, 4, 8)

#: chunk-budget axis of the prefill-shaping sweeps, descending from one
#: chunk per prompt (1024 covers the default 1024-token inputs, so the
#: chunked scheduler's first point *is* the blocked FCFS baseline) down
#: to fine-grained chunks
CHUNK_BUDGET_GRID = (1024, 512, 256, 128, 64)

#: the prefill-shaping sweeps run every system under a load where prefill
#: stalls dominate the TTFT tail: admissions are frequent relative to the
#: decode tail, and the slot-bound queue is what a smaller chunk budget
#: (faster slot turnover, no blocked prefills) can actually drain
CHUNKING_LOAD = dict(
    qps=16.0,
    n_requests=64,
    input_len=1024,
    output_len=128,
    max_batch=8,
)


def build_arrival_trace(
    qps: float,
    n_requests: int,
    seed: int,
    arrival: str,
    cv: float,
    length_dist: str,
    input_len: int,
    output_len: int,
    sigma: float,
    trace_file: str | None = None,
    trace_sha: str | None = None,
    *,
    turns: int = 4,
    think_s: float = 4.0,
) -> Trace:
    """The seeded (or replayed) request stream every serving trial uses.

    Shared by the single-node and cluster trials so both serve the
    *identical* workload for identical parameters.  ``trace_file``
    overrides the generator; ``trace_sha`` guards against replaying an
    edited file under a stale cache identity (see :func:`replay_spec`).

    ``arrival="multiturn"`` builds chat sessions instead of independent
    requests: ``qps`` becomes the session-opening rate, ``n_requests``
    must be a multiple of ``turns`` (sessions × turns), ``input_len`` is
    the first turn's prompt (later turns re-send the whole conversation,
    growing the shared prefix), and ``length_dist`` is ignored — turn
    lengths come from the session chain itself.
    """
    if trace_file is not None:
        if trace_sha is not None and trace_fingerprint(trace_file) != trace_sha:
            raise ValueError(
                f"{trace_file} no longer matches trace_sha={trace_sha!r}; "
                "rebuild the sweep with replay_spec() to re-key the cache"
            )
        return load_trace(trace_file)
    if arrival == "multiturn":
        if n_requests % turns:
            raise ValueError(
                f"n_requests={n_requests} is not a whole number of "
                f"{turns}-turn sessions"
            )
        return multiturn_chat_trace(
            qps,
            n_requests // turns,
            turns,
            first_input=input_len,
            user_tokens=max(1, input_len // 4),
            output_len=output_len,
            think_s=think_s,
            seed=seed,
        )
    if length_dist == "fixed":
        lengths = fixed_lengths(input_len, output_len)
    elif length_dist == "lognormal":
        lengths = lognormal_lengths(input_len, output_len, sigma)
    else:
        raise KeyError(
            f"unknown length_dist {length_dist!r}; use fixed|lognormal"
        )
    if arrival == "poisson":
        return poisson_trace(qps, n_requests, lengths, seed)
    if arrival == "gamma":
        return gamma_trace(qps, n_requests, cv, lengths, seed)
    raise KeyError(
        f"unknown arrival {arrival!r}; use poisson|gamma|multiturn"
    )


def build_serving_engine(
    system: str,
    model: str = "Zamba2",
    scale: str = "small",
    scheduler: str = "fcfs",
    max_batch: int = 32,
    step_stride: int = 32,
    capacity_gib: float | None = None,
    chunk_budget: int = 256,
    block_size: int = 64,
    preempt: bool = True,
    cache: bool = True,
) -> ServingEngine:
    """One configured engine, exactly as the ``serving_slo`` trial builds it.

    Shared by the trial, the ``serving_timeline`` trial, and the
    ``repro trace export`` path, so an exported timeline always comes
    from the same engine configuration the cached metrics did.
    """
    spec = spec_for(model, scale)
    serving = build_system(SystemKind(system), scale)
    policy = build_scheduler(
        scheduler,
        serving,
        spec,
        max_batch=max_batch,
        step_stride=step_stride,
        capacity_bytes=None if capacity_gib is None else capacity_gib * 2**30,
        chunk_budget=chunk_budget,
        block_size=block_size,
        preempt=preempt,
        cache=cache,
    )
    return ServingEngine(serving, spec, policy)


@trial("serving_slo")
def serving_slo(
    system: str,
    qps: float,
    model: str = "Zamba2",
    scale: str = "small",
    scheduler: str = "fcfs",
    n_requests: int = 64,
    seed: int = 0,
    arrival: str = "poisson",
    cv: float = 2.0,
    length_dist: str = "fixed",
    input_len: int = 1024,
    output_len: int = 256,
    sigma: float = 0.5,
    max_batch: int = 32,
    step_stride: int = 32,
    capacity_gib: float | None = None,
    chunk_budget: int = 256,
    block_size: int = 64,
    preempt: bool = True,
    cache: bool = True,
    slo_ttft_s: float = 2.0,
    slo_tpot_s: float = 0.018,
    trace_file: str | None = None,
    trace_sha: str | None = None,
) -> dict:
    """Serve one seeded arrival trace on one system; report SLO metrics.

    The trace is fully determined by ``(qps, n_requests, seed, arrival,
    cv, length_dist, ...)``, so every system sees the identical request
    stream and the results are directly comparable.  ``trace_file``
    replays a recorded JSON trace instead (overrides the generator);
    because the result cache keys on parameters, pair it with
    ``trace_sha`` — the file's content fingerprint, baked into the cache
    key by :func:`replay_spec` — so editing the trace file re-runs the
    trial instead of serving the old file's metrics (a mismatch between
    the two raises instead of answering stale).
    """
    engine = build_serving_engine(
        system, model, scale, scheduler, max_batch, step_stride,
        capacity_gib, chunk_budget, block_size, preempt, cache,
    )
    trace = build_arrival_trace(
        qps, n_requests, seed, arrival, cv, length_dist,
        input_len, output_len, sigma, trace_file, trace_sha,
    )
    report = engine.run(trace)
    return report.to_payload(SloSpec(ttft_s=slo_ttft_s, tpot_s=slo_tpot_s))


def trace_fingerprint(path: str | pathlib.Path) -> str:
    """Short content hash of a trace replay file."""
    return hashlib.sha256(pathlib.Path(path).read_bytes()).hexdigest()[:20]


def replay_spec(
    trace_file: str | pathlib.Path,
    systems: tuple[str, ...] = SERVING_SYSTEMS,
    name: str = "serving-replay",
    **fixed,
) -> ExperimentSpec:
    """A sweep replaying one recorded trace across ``systems``.

    The trace file's content fingerprint becomes part of every trial's
    cache key, so editing the file invalidates cached results instead of
    silently serving the old workload's metrics.
    """
    return ExperimentSpec(
        name=name,
        trial_fn="serving_slo",
        axes={"system": tuple(systems)},
        fixed={
            "qps": 0.0,  # unused: the replay file supplies arrivals
            "trace_file": str(trace_file),
            "trace_sha": trace_fingerprint(trace_file),
            **fixed,
        },
    )


@sweep("serving")
def serving_spec(smoke: bool = False) -> ExperimentSpec:
    """Latency-throughput sweep: all systems under rising Poisson load."""
    if smoke:
        return ExperimentSpec(
            name="serving",
            trial_fn="serving_slo",
            axes={"system": ("GPU", "Pimba"), "qps": (8.0,)},
            fixed={
                "model": "Zamba2",
                "scheduler": "fcfs",
                "n_requests": 12,
                "input_len": 512,
                "output_len": 64,
                "max_batch": 8,
            },
        )
    return ExperimentSpec(
        name="serving",
        trial_fn="serving_slo",
        axes={"system": SERVING_SYSTEMS, "qps": SERVING_QPS_GRID},
    )


def serving_assemble(report: RunReport) -> dict:
    """Reshape to ``{system: [(qps, slo payload), ...]}`` in grid order."""
    out: dict = {}
    for (system, qps), value in report.mapping("system", "qps").items():
        out.setdefault(system, []).append((qps, value))
    return out


def parse_fleet(
    nodes: str, scale: str = "small"
) -> tuple[tuple, tuple[str, ...]]:
    """Parse a ``"KIND[:phase],..."`` fleet string into systems + phases.

    ``"GPU:prefill,GPU:prefill,Pimba:decode,Pimba:decode"`` is two GPU
    nodes dedicated to prefill feeding two Pimba decode nodes; a bare
    kind (``"GPU"``) serves both phases.  This is the CLI-friendly spelling
    of :func:`~repro.serving.cluster.build_cluster`'s
    ``node_kinds``/``phases`` pair, shared by the ``cluster_slo`` trial
    and ``repro trace export``.
    """
    kinds = []
    phases = []
    for item in nodes.split(","):
        kind, _, phase = item.strip().partition(":")
        kinds.append(build_system(SystemKind(kind), scale))
        phases.append(phase or "both")
    return tuple(kinds), tuple(phases)


@trial("cluster_slo")
def cluster_slo(
    system: str,
    qps: float,
    replicas: int = 2,
    router: str = "round-robin",
    nodes: str | None = None,
    model: str = "Zamba2",
    scale: str = "small",
    scheduler: str = "fcfs",
    n_requests: int = 64,
    seed: int = 0,
    arrival: str = "poisson",
    cv: float = 2.0,
    length_dist: str = "fixed",
    input_len: int = 1024,
    output_len: int = 256,
    sigma: float = 0.5,
    max_batch: int = 32,
    step_stride: int = 32,
    capacity_gib: float | None = None,
    chunk_budget: int = 256,
    block_size: int = 64,
    preempt: bool = True,
    cache: bool = True,
    shared_tier: bool = False,
    link_gbps: float = DEFAULT_LINK_GBPS,
    slo_ttft_s: float = 2.0,
    slo_tpot_s: float = 0.018,
    trace_file: str | None = None,
    trace_sha: str | None = None,
) -> dict:
    """Serve one arrival trace on a router-fronted cluster of replicas.

    Identical parameters (minus ``replicas``/``router``) produce the
    identical request stream as :func:`serving_slo`, so cluster curves
    overlay single-node ones directly — and ``replicas=1`` reproduces the
    bare engine bit-for-bit under every router (the merge is the identity
    for one replica; the equivalence is tested).  ``shared_tier=True``
    (prefix scheduler only) joins the replicas' prefix pools into one
    cross-replica tier with KV pulls priced over ``link_gbps``.

    ``nodes`` builds a heterogeneous (and optionally phase-split) fleet
    from a ``"KIND[:phase],..."`` string (see :func:`parse_fleet`),
    overriding ``system`` and ``replicas`` — the replica count is the
    fleet's length.  Phase restrictions need ``router="disaggregated"``.
    """
    spec = spec_for(model, scale)
    serving = build_system(SystemKind(system), scale)
    node_kinds = fleet_phases = None
    if nodes is not None:
        node_kinds, fleet_phases = parse_fleet(nodes, scale)
        replicas = len(node_kinds)
    trace = build_arrival_trace(
        qps, n_requests, seed, arrival, cv, length_dist,
        input_len, output_len, sigma, trace_file, trace_sha,
    )
    cluster = build_cluster(
        serving,
        spec,
        n_replicas=replicas,
        router=router,
        node_kinds=node_kinds,
        phases=fleet_phases,
        scheduler=scheduler,
        max_batch=max_batch,
        step_stride=step_stride,
        capacity_bytes=None if capacity_gib is None else capacity_gib * 2**30,
        chunk_budget=chunk_budget,
        block_size=block_size,
        preempt=preempt,
        cache=cache,
        shared_tier=shared_tier,
        link_gbps=link_gbps,
    )
    report = cluster.run(trace)
    return report.to_payload(SloSpec(ttft_s=slo_ttft_s, tpot_s=slo_tpot_s))


#: the cluster sweeps run one system under deliberately saturating load —
#: one replica misses the TTFT SLO on most requests, so added replicas
#: convert queueing delay straight into goodput
CLUSTER_LOAD = dict(
    system="Pimba",
    qps=64.0,
    n_requests=128,
    input_len=512,
    output_len=64,
    max_batch=8,
)


@sweep("cluster")
def cluster_spec(smoke: bool = False) -> ExperimentSpec:
    """Cluster grid: replicas x router x scheduler under saturating load."""
    if smoke:
        return ExperimentSpec(
            name="cluster",
            trial_fn="cluster_slo",
            axes={"replicas": (1, 2), "router": ("round-robin",)},
            fixed={
                **CLUSTER_LOAD,
                "scheduler": "fcfs",
                "n_requests": 16,
                "qps": 16.0,
            },
        )
    return ExperimentSpec(
        name="cluster",
        trial_fn="cluster_slo",
        axes={
            "replicas": CLUSTER_REPLICA_GRID,
            "router": ROUTER_NAMES,
            "scheduler": ("fcfs", "memory", "chunked", "overlap"),
        },
        fixed=CLUSTER_LOAD,
    )


@sweep("scaling")
def scaling_spec(smoke: bool = False) -> ExperimentSpec:
    """Scaling figure: goodput and TTFT p99 vs replica count per router."""
    if smoke:
        return ExperimentSpec(
            name="scaling",
            trial_fn="cluster_slo",
            axes={"router": ("least-loaded",), "replicas": (1, 2)},
            fixed={
                **CLUSTER_LOAD,
                "scheduler": "fcfs",
                "n_requests": 16,
                "qps": 16.0,
            },
        )
    return ExperimentSpec(
        name="scaling",
        trial_fn="cluster_slo",
        axes={"router": ROUTER_NAMES, "replicas": SCALING_REPLICA_GRID},
        fixed={**CLUSTER_LOAD, "scheduler": "fcfs"},
    )


def scaling_assemble(report: RunReport) -> dict:
    """Reshape to ``{router: [(replicas, payload), ...]}`` in grid order."""
    out: dict = {}
    for (router, replicas), value in report.mapping("router", "replicas").items():
        out.setdefault(router, []).append((replicas, value))
    return out


def scaling_render(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "router", "replicas", "goodput (req/s)", "SLO attainment",
        "ttft p99 (s)", "tpot p99 (ms)", "load imbalance", "tokens/s",
    ]
    rows = []
    for router, points in data.items():
        for replicas, m in points:
            rows.append([
                router,
                replicas,
                m.get("goodput_rps", float("nan")),
                m.get("slo_attainment", float("nan")),
                m["ttft_p99_s"],
                m["tpot_p99_s"] * 1e3,
                m["load_imbalance"],
                m["throughput_tokens_per_s"],
            ])
    return header, rows


#: fleets of the disaggregation face-off, one ``nodes`` string per row:
#: colocated references (every node serves both phases), the mixed
#: colocated fleet, and both directions of the 2+2 prefill/decode split.
#: All rows share the disaggregated router so the *only* moving part is
#: the phase assignment, never the routing policy.
DISAGG_FLEETS = (
    "GPU,GPU,GPU,GPU",
    "Pimba,Pimba,Pimba,Pimba",
    "GPU,GPU,Pimba,Pimba",
    "GPU:prefill,GPU:prefill,Pimba:decode,Pimba:decode",
    "Pimba:prefill,Pimba:prefill,GPU:decode,GPU:decode",
)

#: QPS axis of the disaggregation figure; the knee sits at 12-16, where
#: colocated admission stalls start missing the TPOT SLO
DISAGG_QPS_GRID = (8.0, 12.0, 16.0, 20.0)

#: the disaggregation sweep serves prefill-heavy prompts under a tight
#: TPOT SLO: every colocated admission injects a ~2k-token monolithic
#: prefill into the decode batch (FCFS — deliberately unchunked, this is
#: the interference disaggregation removes), pushing colocated TPOT p99
#: past 12 ms at the knee, while split decode nodes only ever pay the
#: ~3 ms KV handoff per admission over the 400 Gbps fabric.  The prefill
#: side pays for the split with queueing (its TTFT tail grows), which is
#: why the win only appears once interference dominates — past the knee.
DISAGG_LOAD = dict(
    system="GPU",  # overridden per row by ``nodes``; kept for the cache key
    router="disaggregated",
    scheduler="fcfs",
    n_requests=96,
    input_len=2048,
    output_len=128,
    max_batch=8,
    link_gbps=400.0,
    slo_ttft_s=1.0,
    slo_tpot_s=0.012,
)


@sweep("disaggregation")
def disaggregation_spec(smoke: bool = False) -> ExperimentSpec:
    """Prefill/decode disaggregation: split fleets vs colocated at the knee.

    Every cell serves the identical prefill-heavy trace on a four-node
    fleet under the disaggregated router; the ``nodes`` axis moves nodes
    between colocated, mixed, and phase-split arrangements.  Past the
    knee the GPU-prefill/Pimba-decode split wins goodput outright —
    decode nodes never stall behind an admission's monolithic prefill —
    which is the claim the ``disaggregation`` benchmark asserts and the
    reverse split (Pimba prefill, GPU decode) shows is a *placement*
    win, not a node-count artifact.
    """
    if smoke:
        return ExperimentSpec(
            name="disaggregation",
            trial_fn="cluster_slo",
            axes={
                "nodes": (
                    "GPU,Pimba",
                    "GPU:prefill,Pimba:decode",
                ),
                "qps": (12.0,),
            },
            fixed={**DISAGG_LOAD, "n_requests": 16},
        )
    return ExperimentSpec(
        name="disaggregation",
        trial_fn="cluster_slo",
        axes={"nodes": DISAGG_FLEETS, "qps": DISAGG_QPS_GRID},
        fixed=DISAGG_LOAD,
    )


def disaggregation_assemble(report: RunReport) -> dict:
    """Reshape to ``{nodes: [(qps, payload), ...]}`` in grid order."""
    out: dict = {}
    for (nodes, qps), value in report.mapping("nodes", "qps").items():
        out.setdefault(nodes, []).append((qps, value))
    return out


def disaggregation_render(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "fleet", "qps", "goodput (req/s)", "SLO attainment",
        "ttft p99 (s)", "tpot p99 (ms)", "handoffs", "handoff (GiB)",
        "prefill util", "decode util",
    ]
    rows = []
    for nodes, points in data.items():
        for qps, m in points:
            rows.append([
                nodes,
                qps,
                m.get("goodput_rps", float("nan")),
                m.get("slo_attainment", float("nan")),
                m["ttft_p99_s"],
                m["tpot_p99_s"] * 1e3,
                m.get("n_handoffs", 0),
                m.get("handoff_bytes", 0.0) / 2**30,
                m.get("prefill_utilization", float("nan")),
                m.get("decode_utilization", float("nan")),
            ])
    return header, rows


#: light load shared by the prefill-shaping smoke grids
CHUNKING_SMOKE_LOAD = dict(
    qps=16.0,
    n_requests=12,
    input_len=512,
    output_len=64,
    max_batch=4,
)


@sweep("chunking")
def chunking_spec(smoke: bool = False) -> ExperimentSpec:
    """Prefill shaping: chunked vs overlap over the chunk-budget grid.

    The full grid is the GPU-vs-Pimba slice of the ``ttft_tradeoff``
    figure grid — derived from it, so the two sweeps can never drift
    apart and their overlapping cells share cache entries.
    """
    if smoke:
        return ExperimentSpec(
            name="chunking",
            trial_fn="serving_slo",
            axes={
                "scheduler": ("chunked", "overlap"),
                "chunk_budget": (128,),
            },
            fixed={"system": "Pimba", **CHUNKING_SMOKE_LOAD},
        )
    return dataclasses.replace(
        ttft_tradeoff_spec().with_axes(system=("GPU", "Pimba")),
        name="chunking",
    )


@sweep("ttft_tradeoff")
def ttft_tradeoff_spec(smoke: bool = False) -> ExperimentSpec:
    """TTFT/TPOT tradeoff figure: chunk budget axis on every system.

    The 1024-token budget covers the whole (fixed-length) prompt, so the
    ``chunked`` curve's first point is *exactly* the blocked FCFS
    baseline (the equivalence is tested) and every smaller budget reads
    as a delta against it.
    """
    if smoke:
        return ExperimentSpec(
            name="ttft_tradeoff",
            trial_fn="serving_slo",
            axes={"system": ("GPU", "Pimba"), "chunk_budget": (512, 128)},
            fixed={"scheduler": "overlap", **CHUNKING_SMOKE_LOAD},
        )
    return ExperimentSpec(
        name="ttft_tradeoff",
        trial_fn="serving_slo",
        axes={
            "system": SERVING_SYSTEMS,
            "scheduler": ("chunked", "overlap"),
            "chunk_budget": CHUNK_BUDGET_GRID,
        },
        fixed=CHUNKING_LOAD,
    )


def ttft_tradeoff_assemble(report: RunReport) -> dict:
    """Reshape to ``{(system, scheduler): [(budget, payload), ...]}``."""
    out: dict = {}
    mapping = report.mapping("system", "scheduler", "chunk_budget")
    for (system, scheduler, budget), value in mapping.items():
        out.setdefault((system, scheduler), []).append((budget, value))
    return out


def ttft_tradeoff_render(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "system", "scheduler", "chunk budget", "ttft p50 (s)",
        "ttft p99 (s)", "tpot p99 (ms)", "goodput (req/s)", "SLO attainment",
    ]
    rows = []
    for (system, scheduler), points in data.items():
        for budget, m in points:
            rows.append([
                system,
                scheduler,
                budget,
                m["ttft_p50_s"],
                m["ttft_p99_s"],
                m["tpot_p99_s"] * 1e3,
                m.get("goodput_rps", float("nan")),
                m.get("slo_attainment", float("nan")),
            ])
    return header, rows


#: QPS axis of the preemption-tradeoff figure, from untroubled (both
#: reservation policies make identical decisions, zero preemptions) to a
#: saturating load where the paged pool thrashes
PAGED_QPS_GRID = (0.5, 1.0, 2.0, 4.0, 8.0)

#: the paged sweeps run one system against a deliberately *tight* HBM
#: budget: the 9.7 GiB capacity holds the 9.07 GiB weights plus only ~6
#: full-context (128, 384) request footprints, so full-context
#: reservation queues hard while block-granular admission packs roughly
#: twice the residents (a prompt is ~57% of the final footprint) and
#: pays for the slack with preempt/restore thrashing instead
PAGED_LOAD = dict(
    system="Pimba",
    model="Zamba2",
    n_requests=64,
    input_len=128,
    output_len=384,
    max_batch=512,
    capacity_gib=9.7,
    # block_size rides on the trial default (64); the ``paged`` sweep
    # makes it an axis, so it must not be fixed here
)


@sweep("preemption_tradeoff")
def preemption_tradeoff_spec(smoke: bool = False) -> ExperimentSpec:
    """Reservation-policy face-off: full-context vs paged as load rises.

    Both schedulers serve the identical seeded trace against the same
    tight HBM budget at every QPS.  At light load the two are
    indistinguishable (the capacity bound never binds); as load rises,
    paged admission converts reservation slack into goodput while
    preemptions (and their re-prefill work) push the decode tail out —
    the slack-vs-thrashing tradeoff, one row per (policy, qps).
    """
    if smoke:
        return ExperimentSpec(
            name="preemption_tradeoff",
            trial_fn="serving_slo",
            axes={"scheduler": ("memory", "paged"), "qps": (4.0,)},
            fixed={**PAGED_LOAD, "n_requests": 16},
        )
    return ExperimentSpec(
        name="preemption_tradeoff",
        trial_fn="serving_slo",
        axes={"scheduler": ("memory", "paged"), "qps": PAGED_QPS_GRID},
        fixed=PAGED_LOAD,
    )


@sweep("paged")
def paged_spec(smoke: bool = False) -> ExperimentSpec:
    """Block-size sensitivity of the paged policy at a capacity-bound load.

    Smaller blocks track each request's true context more tightly (less
    rounding slack per resident) at the price of more frequent growth
    claims; the sweep quantifies how much block granularity matters next
    to the headline full-context-vs-paged gap.
    """
    if smoke:
        return ExperimentSpec(
            name="paged",
            trial_fn="serving_slo",
            axes={"block_size": (64,)},
            fixed={
                **PAGED_LOAD,
                "scheduler": "paged",
                "qps": 4.0,
                "n_requests": 16,
            },
        )
    return ExperimentSpec(
        name="paged",
        trial_fn="serving_slo",
        axes={"block_size": (16, 64, 256, 1024)},
        fixed={**PAGED_LOAD, "scheduler": "paged", "qps": 4.0},
    )


#: session-rate axis of the prefix-reuse figure (sessions per second;
#: every session is four turns, so request rate is 4x this)
PREFIX_QPS_GRID = (0.25, 0.5, 1.0, 2.0, 4.0)

#: the prefix sweeps serve multi-turn chat sessions whose turns re-send
#: the growing conversation: turn 4's prompt is ~2k tokens of which
#: ~60% is the session's own history.  Monolithic prefills of that size
#: dominate TTFT under a 0.5 s SLO, so past the knee (~1 session/s) the
#: paged baseline re-prefills history it already computed and misses the
#: SLO on the tail, while the prefix cache serves the history from
#: shared blocks and keeps attainment at 1.0 — the goodput gap *is* the
#: recomputed-token gap
PREFIX_LOAD = dict(
    system="Pimba",
    model="Zamba2",
    arrival="multiturn",
    n_requests=64,  # 16 sessions x 4 turns
    input_len=1024,
    output_len=64,
    max_batch=512,
    slo_ttft_s=0.5,
)


@sweep("prefix_cache")
def prefix_cache_spec(smoke: bool = False) -> ExperimentSpec:
    """Prefix reuse face-off: paged-without-reuse vs the radix cache.

    Both schedulers serve the identical seeded multi-turn trace at every
    session rate; the ``prefix`` scheduler is bit-exact with ``paged``
    until a shared prefix actually hits (tested), so every difference in
    the rows is attributable to reuse — skipped prefill work, lower
    TTFT, and the goodput win at the saturation knee that the
    ``prefix_reuse`` benchmark asserts and the perf gate watches via
    ``prefix_cache_hit_rate``.
    """
    if smoke:
        return ExperimentSpec(
            name="prefix_cache",
            trial_fn="serving_slo",
            axes={"scheduler": ("paged", "prefix"), "qps": (1.0,)},
            fixed={**PREFIX_LOAD, "n_requests": 16},
        )
    return ExperimentSpec(
        name="prefix_cache",
        trial_fn="serving_slo",
        axes={"scheduler": ("paged", "prefix"), "qps": PREFIX_QPS_GRID},
        fixed=PREFIX_LOAD,
    )


def prefix_reuse_assemble(report: RunReport) -> dict:
    """Reshape to ``{scheduler: [(qps, payload), ...]}`` in grid order."""
    out: dict = {}
    for (scheduler, qps), value in report.mapping("scheduler", "qps").items():
        out.setdefault(scheduler, []).append((qps, value))
    return out


def prefix_reuse_render(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "policy", "sessions/s", "goodput (req/s)", "SLO attainment",
        "ttft p50 (s)", "ttft p99 (s)", "hit rate", "cached tokens",
        "evictions",
    ]
    rows = []
    for scheduler, points in data.items():
        for qps, m in points:
            rows.append([
                scheduler,
                qps,
                m.get("goodput_rps", float("nan")),
                m.get("slo_attainment", float("nan")),
                m["ttft_p50_s"],
                m["ttft_p99_s"],
                m.get("prefix_cache_hit_rate", 0.0),
                m.get("cache_hit_tokens", 0),
                m.get("cache_evictions", 0),
            ])
    return header, rows


#: replica axis of the cross-replica prefix figure (1 is the anchor where
#: every router is the identity and the tier has nobody to talk to)
CROSS_REPLICA_GRID = (1, 2, 4)

#: the cross-replica sweep replays the shipped multi-turn corpus on
#: single-request replicas under a tight TTFT SLO, so one replica misses
#: the SLO on half the turns and the knee sits at two: there, a router
#: that scatters a session's turns (round-robin) recomputes or transfers
#: history every turn, affinity keeps sessions warm but ignores load
#: (its hash leaves one replica oversubscribed), and cache-aware trades
#: the two explicitly — which is exactly where it wins the face-off
CROSS_REPLICA_LOAD = dict(
    system="Pimba",
    scheduler="prefix",
    shared_tier=True,
    max_batch=1,
    slo_ttft_s=0.1,
)

#: the router face-off of the cross-replica figure
CROSS_REPLICA_ROUTERS = ("round-robin", "affinity", "cache-aware")


@sweep("cross_replica_prefix")
def cross_replica_prefix_spec(smoke: bool = False) -> ExperimentSpec:
    """Cross-replica prefix reuse: router face-off over the shared tier.

    Every cell replays the pinned multi-turn chat corpus on a prefix
    cluster whose pools share one :class:`SharedPrefixTier`: round-robin
    scatters each session's turns and leans on priced KV transfers,
    affinity pins sessions (cold only on rebalance — never here, but
    also blind to load), and cache-aware folds cache warmth into the
    backlog estimate, migrating sessions exactly when the backlog gap
    outweighs the prefix.  The ``cluster_prefix_cache_hit_rate`` the
    perf gate watches is this sweep's ``prefix_cache_hit_rate`` column.
    """
    if smoke:
        return ExperimentSpec(
            name="cross_replica_prefix",
            trial_fn="trace_replay_slo",
            axes={
                "router": ("round-robin", "cache-aware"),
                "replicas": (2,),
            },
            fixed={
                **CROSS_REPLICA_LOAD,
                "trace": _corpus.pinned_trace("multiturn"),
            },
        )
    return ExperimentSpec(
        name="cross_replica_prefix",
        trial_fn="trace_replay_slo",
        axes={
            "router": CROSS_REPLICA_ROUTERS,
            "replicas": CROSS_REPLICA_GRID,
        },
        fixed={
            **CROSS_REPLICA_LOAD,
            "trace": _corpus.pinned_trace("multiturn"),
        },
    )


def cross_replica_prefix_assemble(report: RunReport) -> dict:
    """Reshape to ``{router: [(replicas, payload), ...]}`` in grid order."""
    out: dict = {}
    mapping = report.mapping("router", "replicas")
    for (router, replicas), value in mapping.items():
        out.setdefault(router, []).append((replicas, value))
    return out


def cross_replica_prefix_render(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "router", "replicas", "goodput (req/s)", "SLO attainment",
        "ttft p99 (s)", "hit rate", "remote hit tokens",
        "transferred (MiB)", "transfers", "load imbalance",
    ]
    rows = []
    for router, points in data.items():
        for replicas, m in points:
            rows.append([
                router,
                replicas,
                m.get("goodput_rps", float("nan")),
                m.get("slo_attainment", float("nan")),
                m["ttft_p99_s"],
                m.get("prefix_cache_hit_rate", 0.0),
                m.get("remote_hit_tokens", 0),
                m.get("transferred_bytes", 0.0) / 2**20,
                m.get("kv_transfers", 0),
                m["load_imbalance"],
            ])
    return header, rows


def preemption_tradeoff_assemble(report: RunReport) -> dict:
    """Reshape to ``{scheduler: [(qps, payload), ...]}`` in grid order."""
    out: dict = {}
    for (scheduler, qps), value in report.mapping("scheduler", "qps").items():
        out.setdefault(scheduler, []).append((qps, value))
    return out


def preemption_tradeoff_render(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "policy", "qps", "goodput (req/s)", "SLO attainment",
        "ttft p99 (s)", "tpot p99 (ms)", "preemptions", "prefill events",
    ]
    rows = []
    for scheduler, points in data.items():
        for qps, m in points:
            rows.append([
                scheduler,
                qps,
                m.get("goodput_rps", float("nan")),
                m.get("slo_attainment", float("nan")),
                m["ttft_p99_s"],
                m["tpot_p99_s"] * 1e3,
                m.get("n_preemptions", 0),
                m.get("n_prefills", 0),
            ])
    return header, rows


@trial("serving_timeline")
def serving_timeline(
    system: str,
    qps: float,
    model: str = "Zamba2",
    scale: str = "small",
    scheduler: str = "fcfs",
    n_requests: int = 64,
    seed: int = 0,
    arrival: str = "poisson",
    cv: float = 2.0,
    length_dist: str = "fixed",
    input_len: int = 1024,
    output_len: int = 256,
    sigma: float = 0.5,
    max_batch: int = 32,
    step_stride: int = 32,
    capacity_gib: float | None = None,
    chunk_budget: int = 256,
    block_size: int = 64,
    preempt: bool = True,
    cache: bool = True,
    slo_ttft_s: float = 2.0,
    slo_tpot_s: float = 0.018,
    n_windows: int = 8,
    trace_file: str | None = None,
    trace_sha: str | None = None,
) -> dict:
    """:func:`serving_slo` with the flight recorder on: payload + windows.

    Identical parameters build the identical engine and trace as
    ``serving_slo`` (telemetry never changes the simulation — tested bit
    for bit), so the scalar metrics match that trial's exactly; the extra
    ``windows`` list is the run's per-window time-series
    (:meth:`~repro.serving.telemetry.Timeline.windowed`): TTFT/TPOT
    percentiles over the requests finishing in each window, engine
    occupancy, sampled queue depth, preemption deltas, and per-window
    goodput — what the ``utilization_timeline`` figure tabulates.
    """
    engine = build_serving_engine(
        system, model, scale, scheduler, max_batch, step_stride,
        capacity_gib, chunk_budget, block_size, preempt, cache,
    )
    trace = build_arrival_trace(
        qps, n_requests, seed, arrival, cv, length_dist,
        input_len, output_len, sigma, trace_file, trace_sha,
    )
    collector = TimelineCollector()
    slo = SloSpec(ttft_s=slo_ttft_s, tpot_s=slo_tpot_s)
    report = engine.run(trace, collector=collector)
    payload = report.to_payload(slo)
    payload["n_windows"] = n_windows
    payload["windows"] = collector.timeline.windowed(n_windows, slo)
    return payload


def _trial_defaults(fn) -> dict:
    return {
        name: p.default
        for name, p in inspect.signature(fn).parameters.items()
        if p.default is not inspect.Parameter.empty
    }


def collect_timeline(
    trial_name: str = "serving_slo", **params
) -> tuple[Timeline, SloSpec, dict]:
    """Re-run one serving trial with the flight recorder attached.

    Builds the same engine (or cluster) and trace that ``serving_slo`` /
    ``cluster_slo`` would for ``params`` (missing keys take the trial's
    own defaults; ``system``/``qps`` default to Pimba at 8 QPS), serves
    it once with a :class:`~repro.serving.telemetry.TimelineCollector`,
    and returns ``(timeline, slo, payload)``.  This is what backs
    ``repro trace export``.
    """
    if trial_name == "serving_slo":
        base = _trial_defaults(serving_slo)
    elif trial_name == "cluster_slo":
        base = _trial_defaults(cluster_slo)
    else:
        raise KeyError(
            f"unknown trial {trial_name!r}; use serving_slo|cluster_slo"
        )
    base.setdefault("system", "Pimba")
    base.setdefault("qps", 8.0)
    unknown = sorted(set(params) - set(base))
    if unknown:
        raise KeyError(
            f"unknown parameter(s) {unknown} for trial {trial_name!r}"
        )
    p = {**base, **params}
    trace = build_arrival_trace(
        p["qps"], p["n_requests"], p["seed"], p["arrival"], p["cv"],
        p["length_dist"], p["input_len"], p["output_len"], p["sigma"],
        p["trace_file"], p["trace_sha"],
    )
    slo = SloSpec(ttft_s=p["slo_ttft_s"], tpot_s=p["slo_tpot_s"])
    collector = TimelineCollector()
    if trial_name == "serving_slo":
        engine = build_serving_engine(
            p["system"], p["model"], p["scale"], p["scheduler"],
            p["max_batch"], p["step_stride"], p["capacity_gib"],
            p["chunk_budget"], p["block_size"], p["preempt"], p["cache"],
        )
        report = engine.run(trace, collector=collector)
    else:
        node_kinds = fleet_phases = None
        n_replicas = p["replicas"]
        if p["nodes"] is not None:
            node_kinds, fleet_phases = parse_fleet(p["nodes"], p["scale"])
            n_replicas = len(node_kinds)
        cluster = build_cluster(
            build_system(SystemKind(p["system"]), p["scale"]),
            spec_for(p["model"], p["scale"]),
            n_replicas=n_replicas,
            router=p["router"],
            node_kinds=node_kinds,
            phases=fleet_phases,
            scheduler=p["scheduler"],
            max_batch=p["max_batch"],
            step_stride=p["step_stride"],
            capacity_bytes=(
                None
                if p["capacity_gib"] is None
                else p["capacity_gib"] * 2**30
            ),
            chunk_budget=p["chunk_budget"],
            block_size=p["block_size"],
            preempt=p["preempt"],
            cache=p["cache"],
            shared_tier=p["shared_tier"],
            link_gbps=p["link_gbps"],
        )
        report = cluster.run(trace, collector=collector)
    return collector.timeline, slo, report.to_payload(slo)


@sweep("utilization_timeline")
def utilization_timeline_spec(smoke: bool = False) -> ExperimentSpec:
    """Per-window utilization of the paged-vs-memory face-off.

    The same tight-HBM load as ``preemption_tradeoff`` at its knee
    (4 QPS), served with the flight recorder on: where the end-of-run
    rows of that figure show paged reservation winning goodput *overall*,
    the windows here show *when* — full-context admission stalls early
    (occupancy holds but the queue builds and TTFT climbs window over
    window) while paged admission keeps latency flat until the preemption
    columns start paying for the packing.
    """
    if smoke:
        return ExperimentSpec(
            name="utilization_timeline",
            trial_fn="serving_timeline",
            axes={"scheduler": ("memory", "paged")},
            fixed={
                **PAGED_LOAD,
                "qps": 4.0,
                "n_requests": 16,
                "n_windows": 4,
            },
        )
    return ExperimentSpec(
        name="utilization_timeline",
        trial_fn="serving_timeline",
        axes={"scheduler": ("memory", "paged")},
        fixed={**PAGED_LOAD, "qps": 4.0, "n_windows": 8},
    )


def utilization_timeline_assemble(report: RunReport) -> dict:
    """Reshape to ``{scheduler: trial payload}`` (one cell per policy)."""
    return report.mapping("scheduler")


def utilization_timeline_render(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "policy", "window", "t0 (s)", "t1 (s)", "finished",
        "ttft p99 (s)", "occupancy", "queue depth", "preemptions",
        "goodput (req/s)",
    ]
    rows = []
    for scheduler, payload in data.items():
        for w in payload["windows"]:
            rows.append([
                scheduler,
                w["window"],
                w["t0_s"],
                w["t1_s"],
                w["n_finished"],
                w["ttft_p99_s"],
                w["occupancy"],
                w["mean_queue_depth"],
                w["preemptions"],
                w.get("goodput_rps"),
            ])
    return header, rows


#: load profile of the wall-clock benchmark: ~100k requests arriving fast
#: enough to keep the decode batch full, fixed lengths so the simulated
#: outcome (and therefore the simulation *work*) is identical run to run
WALLCLOCK_LOAD = dict(
    system="Pimba",
    model="Zamba2",
    scale="small",
    scheduler="fcfs",
    qps=2000.0,
    n_requests=100_000,
    input_len=128,
    output_len=128,
    max_batch=64,
    seed=0,
)


@trial("wallclock")
def wallclock(
    engine: str,
    system: str = "Pimba",
    qps: float = 2000.0,
    model: str = "Zamba2",
    scale: str = "small",
    scheduler: str = "fcfs",
    n_requests: int = 100_000,
    input_len: int = 128,
    output_len: int = 128,
    max_batch: int = 64,
    seed: int = 0,
) -> dict:
    """Time one engine implementation serving a large seeded trace.

    ``engine`` selects the implementation under test: ``"slot"`` is the
    production :class:`~repro.serving.engine.ServingEngine` (slot-array
    coalesced hot path, streaming stats), ``"reference"`` the scalar
    :class:`~repro.serving._reference.ReferenceEngine` specification, and
    ``"slot+telemetry"`` the production engine with a recording
    :class:`~repro.serving.telemetry.TimelineCollector` attached.
    All serve the *identical* trace, so the ratio of their ``wall_s`` is
    the hot path's speedup — what CI's ``perf-wallclock`` job asserts,
    along with the telemetry overhead ceiling
    (``slot+telemetry`` ≤ 1.15 × ``slot``).
    Only the serve call is timed; trace construction and report
    aggregation happen outside the stopwatch.  Never cache this trial's
    results (``repro sweep wallclock --no-cache``): a timing replayed
    from the cache says nothing about the code under test.
    """
    spec = spec_for(model, scale)
    serving = build_system(SystemKind(system), scale)
    trace = poisson_trace(
        qps, n_requests, fixed_lengths(input_len, output_len), seed
    )
    policy = build_scheduler(
        scheduler, serving, spec, max_batch=max_batch
    )
    if engine == "slot":
        impl = ServingEngine(serving, spec, policy)
        t0 = time.perf_counter()
        stats = impl.serve_stats(trace)
        wall_s = time.perf_counter() - t0
    elif engine == "slot+telemetry":
        impl = ServingEngine(serving, spec, policy)
        collector = TimelineCollector()
        t0 = time.perf_counter()
        stats = impl.serve_stats(trace, collector=collector)
        wall_s = time.perf_counter() - t0
    elif engine == "reference":
        ref = ReferenceEngine(serving, spec, policy)
        t0 = time.perf_counter()
        run = ref.serve(trace)
        wall_s = time.perf_counter() - t0
        stats = run.stats()
    else:
        raise KeyError(
            f"unknown engine {engine!r}; "
            "use slot|slot+telemetry|reference"
        )
    report = stats.report()
    return {
        "engine": engine,
        "wall_s": wall_s,
        "requests_per_wall_s": n_requests / wall_s,
        "sim_iterations_per_wall_s": stats.n_iterations / wall_s,
        # Simulated-outcome fields: identical for both engines (the
        # bit-exactness the differential tests pin), so any diff here
        # is a correctness regression, not noise.
        "n_requests": report.n_requests,
        "n_iterations": report.n_iterations,
        "makespan_s": report.makespan_s,
        "throughput_tokens_per_s": report.throughput_tokens_per_s,
        "ttft_p99_s": report.ttft_percentile(99),
    }


@sweep("wallclock")
def wallclock_spec(smoke: bool = False) -> ExperimentSpec:
    """Wall-clock benchmark: production engine vs scalar reference.

    Three rows — ``engine=reference``, ``engine=slot``, and
    ``engine=slot+telemetry`` — over the same ~100k-request trace.  CI
    runs this serially and uncached (``repro sweep wallclock --serial
    --no-cache``) and fails the build if ``reference.wall_s /
    slot.wall_s`` drops below the floor the vectorized core was merged
    at (5x), or if the recording collector costs more than 15% over the
    bare engine (``slot+telemetry.wall_s / slot.wall_s`` > 1.15).
    """
    if smoke:
        return ExperimentSpec(
            name="wallclock",
            trial_fn="wallclock",
            axes={"engine": ("reference", "slot", "slot+telemetry")},
            fixed={**WALLCLOCK_LOAD, "n_requests": 2000},
        )
    return ExperimentSpec(
        name="wallclock",
        trial_fn="wallclock",
        axes={"engine": ("reference", "slot", "slot+telemetry")},
        fixed=WALLCLOCK_LOAD,
    )


def serving_render(data: dict) -> tuple[list[str], list[list]]:
    header = [
        "system", "qps", "ttft p50 (s)", "ttft p99 (s)", "tpot p99 (ms)",
        "tokens/s", "goodput (req/s)", "SLO attainment",
    ]
    rows = []
    for system, points in data.items():
        for qps, m in points:
            rows.append([
                system,
                qps,
                m["ttft_p50_s"],
                m["ttft_p99_s"],
                m["tpot_p99_s"] * 1e3,
                m["throughput_tokens_per_s"],
                m.get("goodput_rps", float("nan")),
                m.get("slo_attainment", float("nan")),
            ])
    return header, rows
