"""Data-parallel cluster serving: N engine replicas behind a router.

The paper evaluates one accelerator node; a production fleet is many such
nodes behind a front end.  :class:`ClusterEngine` models exactly that
composition — each replica is a full
:class:`~repro.serving.engine.ServingEngine` with its own scheduler, HBM
budget, and clock, and a :class:`~repro.serving.routing.Router` pins every
arriving request to one replica *before* any scheduler sees it.  Replicas
never steal work from each other (there is no global queue), so routing
quality shows up directly as per-node queueing: an unlucky policy leaves
one replica saturated while others idle, and the merged tail latencies
pay for it.

The merged outcome is an ordinary
:class:`~repro.serving.metrics.ServingReport`, extended with per-replica
breakdowns and a load-imbalance figure — and a single-replica cluster is
*bit-exact* with the bare engine (any router is the identity on one
replica; the merge returns the lone replica's record untouched, which the
equivalence tests pin down).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem
from repro.serving.costs import DEFAULT_LINK_GBPS, IterationCostModel
from repro.serving.engine import EngineTrace, ServingEngine
from repro.serving.memory import MemoryModel, SharedPrefixTier
from repro.serving.metrics import (
    DEFAULT_SKETCH_CAPACITY,
    DepthSketch,
    EngineStats,
    RequestTiming,
    ServingReport,
    SloSpec,
)

if TYPE_CHECKING:  # telemetry stays optional at runtime
    from repro.serving.telemetry import Collector
from repro.serving.routing import (
    PHASE_NAMES,
    AffinityKey,
    DisaggregatedRouter,
    Router,
    build_router,
    load_imbalance,
)
from repro.serving.schedulers import build_scheduler
from repro.workloads.requests import Request, TimedRequest, Trace


def _empty_record(
    sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
) -> EngineTrace:
    """The record a run that dispatched nothing produced.

    Byte-for-byte what the bare engine serves for an empty trace (zero
    span, no events, fresh depth sketch), so the 1-replica equivalence
    holds even when there was nothing to route.
    """
    return EngineTrace(
        timings=(),
        iteration_seconds=(),
        decode_tokens=(),
        prefill_seconds=(),
        prefill_tokens=(),
        start_s=0.0,
        end_s=0.0,
        mean_queue_depth=0.0,
        max_queue_depth=0,
        preemptions=0,
        cache_hit_tokens=0,
        cache_miss_tokens=0,
        cache_evictions=0,
        remote_hit_tokens=0,
        transferred_bytes=0.0,
        kv_transfers=0,
        depth=DepthSketch(sketch_capacity),
    )


@dataclasses.dataclass(frozen=True)
class ReplicaStats:
    """One replica's share of a cluster run (idle replicas report zeros).

    Holds the replica's streaming :class:`EngineStats` rather than its
    full event record, so a cluster run's per-replica breakdown costs
    O(sketch capacity) per node regardless of how many requests each
    node served.
    """

    replica: int
    stats: EngineStats | None

    @property
    def n_requests(self) -> int:
        return 0 if self.stats is None else self.stats.requests.n

    @property
    def assigned_tokens(self) -> int:
        """Total input+output tokens routed to this replica (its load)."""
        if self.stats is None:
            return 0
        requests = self.stats.requests
        return requests.prompt_tokens + requests.generated_tokens

    def to_payload(self, slo: SloSpec | None = None) -> dict:
        payload: dict = {
            "replica": self.replica,
            "n_requests": self.n_requests,
            "assigned_tokens": self.assigned_tokens,
        }
        if self.stats is not None:
            report = self.stats.report()
            payload.update(
                makespan_s=report.makespan_s,
                mean_queue_depth=report.mean_queue_depth,
                max_queue_depth=report.max_queue_depth,
                ttft_p99_s=report.ttft_percentile(99),
            )
            if slo is not None:
                payload["goodput_rps"] = report.goodput(slo)
        return payload


@dataclasses.dataclass(frozen=True)
class ClusterReport(ServingReport):
    """A merged :class:`ServingReport` plus the per-replica view."""

    router: str
    per_replica: tuple[ReplicaStats, ...]
    #: phase per replica; ``None`` marks a pre-disaggregation report and
    #: keeps its payload byte-identical to earlier runs
    phases: tuple[str, ...] | None = dataclasses.field(
        default=None, kw_only=True
    )

    @property
    def n_replicas(self) -> int:
        return len(self.per_replica)

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean assigned tokens across replicas (1.0 = even)."""
        return load_imbalance([r.assigned_tokens for r in self.per_replica])

    @property
    def disaggregated(self) -> bool:
        """Whether any replica was phase-restricted this run."""
        return self.phases is not None and any(
            phase != "both" for phase in self.phases
        )

    def _side_utilization(self, want_decode: bool) -> float:
        """Mean busy fraction over one side of a phase-split fleet.

        A replica's busy fraction is ``busy_s / makespan_s`` — the share
        of its active span it spent pricing work rather than idling on
        an empty queue.  Replicas that never dispatched count as 0.0
        (an idle node is utilization the fleet paid for); an empty side
        is NaN rather than a misleading zero.
        """
        if self.phases is None:
            return float("nan")
        fractions: list[float] = []
        for entry, phase in zip(self.per_replica, self.phases):
            if (phase == "decode") != want_decode:
                continue
            stats = entry.stats
            if stats is None or stats.makespan_s <= 0:
                fractions.append(0.0)
            else:
                fractions.append(stats.busy_s / stats.makespan_s)
        if not fractions:
            return float("nan")
        return sum(fractions) / len(fractions)

    @property
    def prefill_utilization(self) -> float:
        """Mean busy fraction of prefill-capable replicas (``both`` too)."""
        return self._side_utilization(want_decode=False)

    @property
    def decode_utilization(self) -> float:
        """Mean busy fraction of decode-only replicas."""
        return self._side_utilization(want_decode=True)

    def to_payload(self, slo: SloSpec | None = None) -> dict:
        payload = super().to_payload(slo)
        payload["router"] = self.router
        payload["n_replicas"] = self.n_replicas
        payload["load_imbalance"] = self.load_imbalance
        if self.disaggregated:
            # Emitted only for phase-split fleets so colocated payloads
            # stay byte-identical to pre-disaggregation runs.
            payload["phases"] = list(self.phases or ())
            payload["prefill_utilization"] = self.prefill_utilization
            payload["decode_utilization"] = self.decode_utilization
        payload["per_replica"] = [
            r.to_payload(slo) for r in self.per_replica
        ]
        return payload


@dataclasses.dataclass(frozen=True)
class ClusterTrace:
    """Raw outcome of one cluster run: who went where, what each node did."""

    assignments: tuple[int, ...]  #: replica index per trace request
    replicas: tuple[EngineTrace | None, ...]  #: ``None`` = never dispatched
    router: str
    #: phase per replica; ``None`` for a colocated (pre-phase) run
    phases: tuple[str, ...] | None = None
    #: decode replica per request (equals ``assignments`` when colocated)
    decode_assignments: tuple[int, ...] | None = None
    #: whole-lifecycle timings of split requests; their per-replica
    #: half-timings are dropped by :meth:`merged` in favour of these
    stitched: tuple[RequestTiming, ...] = ()
    #: request ids that ran as a prefill half plus a decode half
    split_ids: frozenset[int] = frozenset()

    def merged(self) -> EngineTrace:
        """All replicas' events folded into one engine-level record.

        With one active replica (and no split requests) this returns its
        record *unchanged* — the bit-exactness guarantee of the 1-replica
        equivalence.  With many, timings re-sort by request id, event
        lists concatenate in replica order, and the time-weighted queue
        depth is re-averaged over the cluster-wide span (per-replica
        depth areas add; spans overlap).  Split requests contribute their
        stitched whole-lifecycle timing instead of two half-timings.
        """
        active = [t for t in self.replicas if t is not None]
        if not active:
            # Empty trace: nothing was dispatched anywhere.  Fold to the
            # bare engine's empty record, not an error, so the cluster
            # and the engine agree on the degenerate input too.
            return _empty_record()
        if len(active) == 1 and not self.split_ids:
            return active[0]
        timings: list[RequestTiming] = [
            t
            for trace in active
            for t in trace.timings
            if t.request_id not in self.split_ids
        ]
        timings.extend(self.stitched)
        timings.sort(key=lambda t: t.request_id)
        start = min(t.start_s for t in active)
        end = max(t.end_s for t in active)
        span = max(end - start, 1e-12)
        depth_area = sum(t.mean_queue_depth * t.makespan_s for t in active)
        depths = [t.depth for t in active if t.depth is not None]
        return EngineTrace(
            timings=tuple(timings),
            iteration_seconds=tuple(
                s for t in active for s in t.iteration_seconds
            ),
            decode_tokens=tuple(
                n for t in active for n in t.decode_tokens
            ),
            prefill_seconds=tuple(
                s for t in active for s in t.prefill_seconds
            ),
            prefill_tokens=tuple(
                n for t in active for n in t.prefill_tokens
            ),
            start_s=start,
            end_s=end,
            mean_queue_depth=depth_area / span,
            max_queue_depth=max(t.max_queue_depth for t in active),
            preemptions=sum(t.preemptions for t in active),
            cache_hit_tokens=sum(t.cache_hit_tokens for t in active),
            cache_miss_tokens=sum(t.cache_miss_tokens for t in active),
            cache_evictions=sum(t.cache_evictions for t in active),
            remote_hit_tokens=sum(t.remote_hit_tokens for t in active),
            transferred_bytes=sum(t.transferred_bytes for t in active),
            kv_transfers=sum(t.kv_transfers for t in active),
            handoffs=sum(t.handoffs for t in active),
            handoff_bytes=sum(t.handoff_bytes for t in active),
            busy_s=sum(t.busy_s for t in active),
            depth=DepthSketch.merge(depths) if depths else None,
        )

    def report(
        self, sketch_capacity: int = DEFAULT_SKETCH_CAPACITY
    ) -> ClusterReport:
        merged = self.merged().stats(sketch_capacity).report()
        # Shallow field copy (asdict would recurse into RequestTiming).
        fields = {
            f.name: getattr(merged, f.name)
            for f in dataclasses.fields(ServingReport)
        }
        return ClusterReport(
            **fields,
            router=self.router,
            phases=self.phases,
            per_replica=tuple(
                ReplicaStats(
                    replica=i,
                    stats=None if t is None else t.stats(sketch_capacity),
                )
                for i, t in enumerate(self.replicas)
            ),
        )


class ClusterEngine:
    """Drives N independent serving replicas behind a front-end router.

    Composition, not simulation glue: each replica is a complete
    :class:`~repro.serving.engine.ServingEngine` with its own scheduler
    state (slots, HBM ledger, block pool), its own clock, and its own
    event record; the router fixes the request→replica mapping for a
    whole trace before any replica runs.  :meth:`serve` returns the raw
    :class:`ClusterTrace` (assignments + per-replica
    :class:`~repro.serving.engine.EngineTrace`\\ s); :meth:`run` merges it
    into a :class:`ClusterReport`.  Because replicas are independent,
    the merge is pure bookkeeping — and the 1-replica merge is the
    identity, which is what makes a 1-replica cluster bit-exact with
    the bare engine under every router and scheduler (tested).
    """

    def __init__(
        self,
        replicas: Sequence[ServingEngine],
        router: Router,
        phases: Sequence[str] | None = None,
        link_gbps: float = DEFAULT_LINK_GBPS,
    ):
        replicas = tuple(replicas)
        if not replicas:
            raise ValueError("a cluster needs at least one replica")
        if router.n_replicas != len(replicas):
            raise ValueError(
                f"router expects {router.n_replicas} replicas, "
                f"cluster has {len(replicas)}"
            )
        if phases is None:
            phases = ("both",) * len(replicas)
        phases = tuple(phases)
        if len(phases) != len(replicas):
            raise ValueError(
                f"got {len(phases)} phases for {len(replicas)} replicas"
            )
        unknown = sorted(set(phases) - set(PHASE_NAMES))
        if unknown:
            raise ValueError(
                f"unknown phases {unknown}; pick from {PHASE_NAMES}"
            )
        self.split = any(phase != "both" for phase in phases)
        if self.split and not isinstance(router, DisaggregatedRouter):
            raise ValueError(
                "a phase-split fleet needs the 'disaggregated' router "
                "(classic routers pin one replica per request)"
            )
        if isinstance(router, DisaggregatedRouter) and router.phases != phases:
            raise ValueError(
                f"router phases {router.phases} disagree with "
                f"cluster phases {phases}"
            )
        self.replicas = replicas
        self.router = router
        self.phases = phases
        self.link_gbps = link_gbps
        # Handoff pricing is fixed per *destination* replica: the wire
        # moves the destination's KV layout, so bytes and seconds come
        # from its memory and cost models — the same formula the
        # disaggregated router uses to score candidate pairs.
        self._handoff = tuple(
            (
                MemoryModel.for_system(engine.system, engine.spec),
                IterationCostModel(
                    engine.system, engine.spec, link_gbps=link_gbps
                ),
            )
            for engine in replicas
        )

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def serve(
        self, trace: Trace, collector: "Collector | None" = None
    ) -> ClusterTrace:
        """Route ``trace``, run every dispatched replica, keep the split.

        A ``collector`` forks one child per dispatched replica
        (:meth:`~repro.serving.telemetry.Collector.fork`), so the merged
        timeline keeps one track per node.  Phase-split fleets run the
        two-stage orchestration (:meth:`_serve_split`) instead.
        """
        if self.split:
            return self._serve_split(trace, collector)
        self.router.reset()  # a reused engine must route like a fresh one
        assignments = self.router.assign(trace)
        parts = trace.partition(assignments)
        return ClusterTrace(
            assignments=assignments,
            replicas=tuple(
                engine.serve(
                    parts[i],
                    None if collector is None else collector.fork(i),
                )
                if i in parts
                else None
                for i, engine in enumerate(self.replicas)
            ),
            router=self.router.name,
            phases=self.phases,
            decode_assignments=assignments,
        )

    def _serve_split(
        self, trace: Trace, collector: "Collector | None" = None
    ) -> ClusterTrace:
        """Two-stage prefill/decode orchestration over a split fleet.

        Stage 1 runs every request's prefill half (or, for colocated
        picks, its whole lifetime) on its prefill replica.  Each split
        request then re-arrives at its decode replica the instant its
        first token left the prefill node, carrying its whole prompt KV
        (plus that first token) as precomputed state priced over the
        ``link_gbps`` wire into the destination clock.  Stage 2 runs the
        decode-only replicas on those continuations.  Stage sets are
        disjoint, so every replica still runs exactly once.
        """
        assert isinstance(self.router, DisaggregatedRouter)
        self.router.reset()
        pairs = self.router.assign_pairs(trace)
        stage1: dict[int, list[TimedRequest]] = {}
        split_pair: dict[int, tuple[int, int]] = {}
        for timed, (prefill, decode) in zip(trace.requests, pairs):
            if prefill == decode or timed.output_len <= 1:
                # Colocated pick — or a one-token request, which finishes
                # at its first token with nothing left to hand off.
                stage1.setdefault(prefill, []).append(timed)
                continue
            split_pair[timed.request_id] = (prefill, decode)
            stage1.setdefault(prefill, []).append(
                TimedRequest(
                    Request(
                        timed.request_id,
                        timed.input_len,
                        1,
                        session_id=timed.request.session_id,
                    ),
                    timed.arrival_s,
                )
            )
        results: list[EngineTrace | None] = [None] * self.n_replicas
        by_request: dict[int, dict[int, RequestTiming]] = {}
        for i, requests in sorted(stage1.items()):
            # Stage-1 parts keep trace order, so arrivals stay sorted.
            results[i] = self.replicas[i].serve(
                Trace(tuple(requests)),
                None if collector is None else collector.fork(i),
            )
            by_request[i] = {
                t.request_id: t for t in results[i].timings
            }
        originals = {t.request_id: t for t in trace.requests}
        stage2: dict[int, list[TimedRequest]] = {}
        for request_id, (prefill, decode) in split_pair.items():
            first = by_request[prefill][request_id]
            original = originals[request_id]
            memory, cost = self._handoff[decode]
            moved = memory.reserved_bytes(original.input_len + 1)
            stage2.setdefault(decode, []).append(
                TimedRequest(
                    # session_id=None: the decode node holds the KV
                    # in-flight state, not a reusable session prefix.
                    Request(
                        request_id,
                        original.input_len + 1,
                        original.output_len - 1,
                        session_id=None,
                    ),
                    arrival_s=first.first_token_s,
                    prefilled_tokens=original.input_len + 1,
                    handoff_s=cost.transfer_seconds(moved),
                    handoff_bytes=moved,
                )
            )
        for decode, requests in sorted(stage2.items()):
            # Continuations arrive at first-token times, which do not
            # follow trace order — re-sort into a valid arrival stream.
            requests.sort(key=lambda t: (t.arrival_s, t.request_id))
            results[decode] = self.replicas[decode].serve(
                Trace(tuple(requests)),
                None if collector is None else collector.fork(decode),
            )
            by_request[decode] = {
                t.request_id: t for t in results[decode].timings
            }
        stitched: list[RequestTiming] = []
        for request_id in sorted(split_pair):
            prefill, decode = split_pair[request_id]
            first = by_request[prefill][request_id]
            rest = by_request[decode][request_id]
            original = originals[request_id]
            stitched.append(
                RequestTiming(
                    request_id=request_id,
                    input_len=original.input_len,
                    output_len=original.output_len,
                    arrival_s=first.arrival_s,
                    admitted_s=first.admitted_s,
                    first_token_s=first.first_token_s,
                    finished_s=rest.finished_s,
                    preemptions=first.preemptions + rest.preemptions,
                    cached_tokens=first.cached_tokens,
                    remote_tokens=first.remote_tokens,
                )
            )
        return ClusterTrace(
            assignments=tuple(p for p, _ in pairs),
            replicas=tuple(results),
            router=self.router.name,
            phases=self.phases,
            decode_assignments=tuple(d for _, d in pairs),
            stitched=tuple(stitched),
            split_ids=frozenset(split_pair),
        )

    def run(
        self,
        trace: Trace,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
        collector: "Collector | None" = None,
    ) -> ClusterReport:
        """Serve ``trace`` (streaming) and return the merged report.

        Every replica runs through
        :meth:`~repro.serving.engine.ServingEngine.serve_stats`, so no
        per-event lists are ever materialized — the cluster-wide merge
        adds counters and depth areas and concatenates/resamples the
        per-replica latency reservoirs
        (:meth:`~repro.serving.metrics.EngineStats.merge`).  Below the
        sketch capacity this is bit-identical to
        ``serve(trace).report()``; use :meth:`serve` when the raw event
        record itself is wanted.
        """
        if self.split:
            # Two-stage orchestration needs the raw per-request timings
            # to stitch split lifecycles, so split fleets run through
            # :meth:`serve` and fold afterwards.
            return self._serve_split(trace, collector).report(
                sketch_capacity
            )
        self.router.reset()  # a reused engine must route like a fresh one
        assignments = self.router.assign(trace)
        parts = trace.partition(assignments)
        stats = tuple(
            engine.serve_stats(
                parts[i],
                sketch_capacity,
                None if collector is None else collector.fork(i),
            )
            if i in parts
            else None
            for i, engine in enumerate(self.replicas)
        )
        active = [s for s in stats if s is not None]
        if active:
            merged = EngineStats.merge(active).report()
        else:
            # Empty trace: same NaN-percentile report the bare engine's
            # streaming path returns for an empty trace.
            merged = _empty_record(sketch_capacity).stats().report()
        fields = {
            f.name: getattr(merged, f.name)
            for f in dataclasses.fields(ServingReport)
        }
        return ClusterReport(
            **fields,
            router=self.router.name,
            phases=self.phases,
            per_replica=tuple(
                ReplicaStats(replica=i, stats=s)
                for i, s in enumerate(stats)
            ),
        )


def _service_time_estimate(cost: IterationCostModel):
    """One replica's whole-lifetime service-time estimate for routing."""

    def service_time(request: TimedRequest) -> float:
        mid_context = request.input_len + request.output_len // 2
        return cost.prefill_seconds(
            1, request.input_len
        ) + request.output_len * cost.decode_seconds(1, mid_context)

    return service_time


def _prefix_savings_estimate(cost: IterationCostModel):
    """One replica's warm-prefix savings estimate for routing."""

    def prefix_savings(hit_tokens: int) -> float:
        # Prefill chunk costs telescope, so skipping a cached prefix of
        # hit_tokens saves roughly its own solo-prefill time.
        return cost.prefill_seconds(1, hit_tokens)

    return prefix_savings


def _prefill_time_estimate(cost: IterationCostModel):
    """Time-to-first-token on one replica: solo prefill + first step."""

    def prefill_time(request: TimedRequest) -> float:
        return cost.prefill_seconds(
            1, request.input_len
        ) + cost.decode_seconds(1, request.input_len)

    return prefill_time


def _decode_time_estimate(cost: IterationCostModel):
    """Decode-tail estimate on one replica, priced at mid-generation."""

    def decode_time(request: TimedRequest) -> float:
        mid_context = request.input_len + request.output_len // 2
        return request.output_len * cost.decode_seconds(1, mid_context)

    return decode_time


def _handoff_time_estimate(memory: MemoryModel, cost: IterationCostModel):
    """Wire seconds to land a request's prefilled KV on one replica.

    Exactly the pricing :class:`ClusterEngine` charges the destination
    clock — ``reserved_bytes(input_len + 1)`` over the fleet link — so
    the disaggregated router's scores match execution.
    """

    def handoff_time(request: TimedRequest) -> float:
        return cost.transfer_seconds(
            memory.reserved_bytes(request.input_len + 1)
        )

    return handoff_time


def build_cluster(
    system: ServingSystem,
    spec: ModelSpec,
    n_replicas: int,
    router: str = "round-robin",
    scheduler: str = "fcfs",
    max_batch: int = 32,
    step_stride: int = 32,
    capacity_bytes: float | None = None,
    chunk_budget: int = 256,
    block_size: int = 64,
    preempt: bool = True,
    affinity_key: AffinityKey | None = None,
    cache: bool = True,
    shared_tier: bool = False,
    link_gbps: float = DEFAULT_LINK_GBPS,
    node_kinds: Sequence[ServingSystem] | None = None,
    phases: Sequence[str] | None = None,
) -> ClusterEngine:
    """A cluster of ``n_replicas`` nodes, homogeneous or mixed.

    Every replica gets its *own* scheduler instance (and therefore its own
    HBM reservation ledger under the ``memory`` policy and its own block
    pool under ``paged`` — ``block_size``/``preempt``/``cache`` are
    threaded through to every replica's scheduler).  By default all
    replicas share one node design; ``node_kinds`` (one
    :class:`~repro.perf.system.ServingSystem` per replica) builds a mixed
    fleet instead — e.g. GPU nodes next to PIM nodes.  Router estimates
    are *per replica*: each node's own
    :class:`~repro.serving.costs.IterationCostModel` prices one solo
    prefill plus ``output_len`` decode steps at the request's
    mid-generation context, so routing and execution can never disagree
    about costs on any node kind (and a homogeneous fleet routes
    bit-identically to the single-estimate era).

    ``phases`` restricts replicas to ``prefill``, ``decode``, or
    ``both`` (the default).  Any restriction requires
    ``router="disaggregated"``, which scores (prefill, decode) replica
    pairs by estimated first-token time *including* the KV handoff over
    the ``link_gbps`` wire; the cluster then runs the two-stage
    orchestration.  ``router="disaggregated"`` with no ``phases`` is a
    colocated fleet where pairs may still split when the wire is cheap.

    ``shared_tier=True`` joins every replica's prefix pool to one
    :class:`~repro.serving.memory.SharedPrefixTier`, pricing cross-replica
    prefix pulls over a ``link_gbps`` interconnect; it requires the
    ``prefix`` scheduler with its cache on and a homogeneous fleet (a
    prefix computed in one KV layout cannot be reused in another).  Left
    ``False`` (the default) every replica is bit-exact with a standalone
    engine.
    """
    if node_kinds is not None:
        systems = tuple(node_kinds)
        if len(systems) != n_replicas:
            raise ValueError(
                f"got {len(systems)} node kinds for {n_replicas} replicas"
            )
    else:
        systems = (system,) * n_replicas
    mixed = any(kind != systems[0] for kind in systems[1:])
    if shared_tier and (scheduler != "prefix" or not cache):
        raise ValueError(
            "a shared prefix tier needs the prefix scheduler with "
            "cache=True (nothing else publishes session prefixes)"
        )
    if shared_tier and mixed:
        raise ValueError(
            "a shared prefix tier needs a homogeneous fleet (a prefix "
            "computed in one node kind's KV layout cannot be reused in "
            "another's)"
        )
    if phases is not None:
        phases = tuple(phases)
        if any(phase != "both" for phase in phases) and (
            router != DisaggregatedRouter.name
        ):
            raise ValueError(
                "phase-restricted replicas need router='disaggregated' "
                "(classic routers cannot pair prefill and decode nodes)"
            )
    replicas = tuple(
        ServingEngine(
            kind,
            spec,
            build_scheduler(
                scheduler,
                kind,
                spec,
                max_batch=max_batch,
                step_stride=step_stride,
                capacity_bytes=capacity_bytes,
                chunk_budget=chunk_budget,
                block_size=block_size,
                preempt=preempt,
                cache=cache,
            ),
        )
        for kind in systems
    )
    if shared_tier:
        tier = SharedPrefixTier(
            MemoryModel.for_system(system, spec),
            block_size,
            IterationCostModel(system, spec, link_gbps=link_gbps),
        )
        for i, engine in enumerate(replicas):
            engine.scheduler.pool.attach_tier(tier, i)

    if router == DisaggregatedRouter.name:
        router_obj: Router = DisaggregatedRouter(
            n_replicas,
            phases if phases is not None else ("both",) * n_replicas,
            prefill_time=[
                _prefill_time_estimate(engine.cost) for engine in replicas
            ],
            decode_time=[
                _decode_time_estimate(engine.cost) for engine in replicas
            ],
            handoff_time=[
                _handoff_time_estimate(
                    MemoryModel.for_system(engine.system, engine.spec),
                    IterationCostModel(
                        engine.system, engine.spec, link_gbps=link_gbps
                    ),
                )
                for engine in replicas
            ],
        )
    else:
        router_obj = build_router(
            router,
            n_replicas,
            service_time=[
                _service_time_estimate(engine.cost) for engine in replicas
            ],
            affinity_key=affinity_key,
            prefix_savings=[
                _prefix_savings_estimate(engine.cost) for engine in replicas
            ],
        )
    return ClusterEngine(
        replicas, router_obj, phases=phases, link_gbps=link_gbps
    )
