"""Data-parallel cluster serving: N engine replicas behind a router.

The paper evaluates one accelerator node; a production fleet is many such
nodes behind a front end.  :class:`ClusterEngine` models exactly that
composition — each replica is a full
:class:`~repro.serving.engine.ServingEngine` with its own scheduler, HBM
budget, and clock, and a :class:`~repro.serving.routing.Router` pins every
arriving request to one replica *before* any scheduler sees it.  Replicas
never steal work from each other (there is no global queue), so routing
quality shows up directly as per-node queueing: an unlucky policy leaves
one replica saturated while others idle, and the merged tail latencies
pay for it.

The merged outcome is an ordinary
:class:`~repro.serving.metrics.ServingReport`, extended with per-replica
breakdowns and a load-imbalance figure — and a single-replica cluster is
*bit-exact* with the bare engine (any router is the identity on one
replica; the merge returns the lone replica's record untouched, which the
equivalence tests pin down).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem
from repro.serving.costs import DEFAULT_LINK_GBPS, IterationCostModel
from repro.serving.engine import EngineTrace, ServingEngine
from repro.serving.memory import MemoryModel, SharedPrefixTier
from repro.serving.metrics import (
    DEFAULT_SKETCH_CAPACITY,
    DepthSketch,
    EngineStats,
    RequestTiming,
    ServingReport,
    SloSpec,
)

if TYPE_CHECKING:  # telemetry stays optional at runtime
    from repro.serving.telemetry import Collector
from repro.serving.routing import (
    AffinityKey,
    Router,
    build_router,
    load_imbalance,
)
from repro.serving.schedulers import build_scheduler
from repro.workloads.requests import TimedRequest, Trace


def _empty_record(
    sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
) -> EngineTrace:
    """The record a run that dispatched nothing produced.

    Byte-for-byte what the bare engine serves for an empty trace (zero
    span, no events, fresh depth sketch), so the 1-replica equivalence
    holds even when there was nothing to route.
    """
    return EngineTrace(
        timings=(),
        iteration_seconds=(),
        decode_tokens=(),
        prefill_seconds=(),
        prefill_tokens=(),
        start_s=0.0,
        end_s=0.0,
        mean_queue_depth=0.0,
        max_queue_depth=0,
        preemptions=0,
        cache_hit_tokens=0,
        cache_miss_tokens=0,
        cache_evictions=0,
        remote_hit_tokens=0,
        transferred_bytes=0.0,
        kv_transfers=0,
        depth=DepthSketch(sketch_capacity),
    )


@dataclasses.dataclass(frozen=True)
class ReplicaStats:
    """One replica's share of a cluster run (idle replicas report zeros).

    Holds the replica's streaming :class:`EngineStats` rather than its
    full event record, so a cluster run's per-replica breakdown costs
    O(sketch capacity) per node regardless of how many requests each
    node served.
    """

    replica: int
    stats: EngineStats | None

    @property
    def n_requests(self) -> int:
        return 0 if self.stats is None else self.stats.requests.n

    @property
    def assigned_tokens(self) -> int:
        """Total input+output tokens routed to this replica (its load)."""
        if self.stats is None:
            return 0
        requests = self.stats.requests
        return requests.prompt_tokens + requests.generated_tokens

    def to_payload(self, slo: SloSpec | None = None) -> dict:
        payload: dict = {
            "replica": self.replica,
            "n_requests": self.n_requests,
            "assigned_tokens": self.assigned_tokens,
        }
        if self.stats is not None:
            report = self.stats.report()
            payload.update(
                makespan_s=report.makespan_s,
                mean_queue_depth=report.mean_queue_depth,
                max_queue_depth=report.max_queue_depth,
                ttft_p99_s=report.ttft_percentile(99),
            )
            if slo is not None:
                payload["goodput_rps"] = report.goodput(slo)
        return payload


@dataclasses.dataclass(frozen=True)
class ClusterReport(ServingReport):
    """A merged :class:`ServingReport` plus the per-replica view."""

    router: str
    per_replica: tuple[ReplicaStats, ...]

    @property
    def n_replicas(self) -> int:
        return len(self.per_replica)

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean assigned tokens across replicas (1.0 = even)."""
        return load_imbalance([r.assigned_tokens for r in self.per_replica])

    def to_payload(self, slo: SloSpec | None = None) -> dict:
        payload = super().to_payload(slo)
        payload["router"] = self.router
        payload["n_replicas"] = self.n_replicas
        payload["load_imbalance"] = self.load_imbalance
        payload["per_replica"] = [
            r.to_payload(slo) for r in self.per_replica
        ]
        return payload


@dataclasses.dataclass(frozen=True)
class ClusterTrace:
    """Raw outcome of one cluster run: who went where, what each node did."""

    assignments: tuple[int, ...]  #: replica index per trace request
    replicas: tuple[EngineTrace | None, ...]  #: ``None`` = never dispatched
    router: str

    def merged(self) -> EngineTrace:
        """All replicas' events folded into one engine-level record.

        With one active replica this returns its record *unchanged* — the
        bit-exactness guarantee of the 1-replica equivalence.  With many,
        timings re-sort by request id, event lists concatenate in replica
        order, and the time-weighted queue depth is re-averaged over the
        cluster-wide span (per-replica depth areas add; spans overlap).
        """
        active = [t for t in self.replicas if t is not None]
        if not active:
            # Empty trace: nothing was dispatched anywhere.  Fold to the
            # bare engine's empty record, not an error, so the cluster
            # and the engine agree on the degenerate input too.
            return _empty_record()
        if len(active) == 1:
            return active[0]
        timings: list[RequestTiming] = [
            t for trace in active for t in trace.timings
        ]
        timings.sort(key=lambda t: t.request_id)
        start = min(t.start_s for t in active)
        end = max(t.end_s for t in active)
        span = max(end - start, 1e-12)
        depth_area = sum(t.mean_queue_depth * t.makespan_s for t in active)
        depths = [t.depth for t in active if t.depth is not None]
        return EngineTrace(
            timings=tuple(timings),
            iteration_seconds=tuple(
                s for t in active for s in t.iteration_seconds
            ),
            decode_tokens=tuple(
                n for t in active for n in t.decode_tokens
            ),
            prefill_seconds=tuple(
                s for t in active for s in t.prefill_seconds
            ),
            prefill_tokens=tuple(
                n for t in active for n in t.prefill_tokens
            ),
            start_s=start,
            end_s=end,
            mean_queue_depth=depth_area / span,
            max_queue_depth=max(t.max_queue_depth for t in active),
            preemptions=sum(t.preemptions for t in active),
            cache_hit_tokens=sum(t.cache_hit_tokens for t in active),
            cache_miss_tokens=sum(t.cache_miss_tokens for t in active),
            cache_evictions=sum(t.cache_evictions for t in active),
            remote_hit_tokens=sum(t.remote_hit_tokens for t in active),
            transferred_bytes=sum(t.transferred_bytes for t in active),
            kv_transfers=sum(t.kv_transfers for t in active),
            depth=DepthSketch.merge(depths) if depths else None,
        )

    def report(self) -> ClusterReport:
        merged = self.merged().report()
        # Shallow field copy (asdict would recurse into RequestTiming).
        fields = {
            f.name: getattr(merged, f.name)
            for f in dataclasses.fields(ServingReport)
        }
        return ClusterReport(
            **fields,
            router=self.router,
            per_replica=tuple(
                ReplicaStats(
                    replica=i, stats=None if t is None else t.stats()
                )
                for i, t in enumerate(self.replicas)
            ),
        )


class ClusterEngine:
    """Drives N independent serving replicas behind a front-end router.

    Composition, not simulation glue: each replica is a complete
    :class:`~repro.serving.engine.ServingEngine` with its own scheduler
    state (slots, HBM ledger, block pool), its own clock, and its own
    event record; the router fixes the request→replica mapping for a
    whole trace before any replica runs.  :meth:`serve` returns the raw
    :class:`ClusterTrace` (assignments + per-replica
    :class:`~repro.serving.engine.EngineTrace`\\ s); :meth:`run` merges it
    into a :class:`ClusterReport`.  Because replicas are independent,
    the merge is pure bookkeeping — and the 1-replica merge is the
    identity, which is what makes a 1-replica cluster bit-exact with
    the bare engine under every router and scheduler (tested).
    """

    def __init__(self, replicas: Sequence[ServingEngine], router: Router):
        replicas = tuple(replicas)
        if not replicas:
            raise ValueError("a cluster needs at least one replica")
        if router.n_replicas != len(replicas):
            raise ValueError(
                f"router expects {router.n_replicas} replicas, "
                f"cluster has {len(replicas)}"
            )
        self.replicas = replicas
        self.router = router

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def serve(
        self, trace: Trace, collector: "Collector | None" = None
    ) -> ClusterTrace:
        """Route ``trace``, run every dispatched replica, keep the split.

        A ``collector`` forks one child per dispatched replica
        (:meth:`~repro.serving.telemetry.Collector.fork`), so the merged
        timeline keeps one track per node.
        """
        self.router.reset()  # a reused engine must route like a fresh one
        assignments = self.router.assign(trace)
        parts = trace.partition(assignments)
        return ClusterTrace(
            assignments=assignments,
            replicas=tuple(
                engine.serve(
                    parts[i],
                    None if collector is None else collector.fork(i),
                )
                if i in parts
                else None
                for i, engine in enumerate(self.replicas)
            ),
            router=self.router.name,
        )

    def run(
        self,
        trace: Trace,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
        collector: "Collector | None" = None,
    ) -> ClusterReport:
        """Serve ``trace`` (streaming) and return the merged report.

        Every replica runs through
        :meth:`~repro.serving.engine.ServingEngine.serve_stats`, so no
        per-event lists are ever materialized — the cluster-wide merge
        adds counters and depth areas and concatenates/resamples the
        per-replica latency reservoirs
        (:meth:`~repro.serving.metrics.EngineStats.merge`).  Below the
        sketch capacity this is bit-identical to
        ``serve(trace).report()``; use :meth:`serve` when the raw event
        record itself is wanted.
        """
        self.router.reset()  # a reused engine must route like a fresh one
        assignments = self.router.assign(trace)
        parts = trace.partition(assignments)
        stats = tuple(
            engine.serve_stats(
                parts[i],
                sketch_capacity,
                None if collector is None else collector.fork(i),
            )
            if i in parts
            else None
            for i, engine in enumerate(self.replicas)
        )
        active = [s for s in stats if s is not None]
        if active:
            merged = EngineStats.merge(active).report()
        else:
            # Empty trace: same NaN-percentile report the bare engine's
            # streaming path returns for an empty trace.
            merged = _empty_record(sketch_capacity).stats().report()
        fields = {
            f.name: getattr(merged, f.name)
            for f in dataclasses.fields(ServingReport)
        }
        return ClusterReport(
            **fields,
            router=self.router.name,
            per_replica=tuple(
                ReplicaStats(replica=i, stats=s)
                for i, s in enumerate(stats)
            ),
        )


def build_cluster(
    system: ServingSystem,
    spec: ModelSpec,
    n_replicas: int,
    router: str = "round-robin",
    scheduler: str = "fcfs",
    max_batch: int = 32,
    step_stride: int = 32,
    capacity_bytes: float | None = None,
    chunk_budget: int = 256,
    block_size: int = 64,
    preempt: bool = True,
    affinity_key: AffinityKey | None = None,
    cache: bool = True,
    shared_tier: bool = False,
    link_gbps: float = DEFAULT_LINK_GBPS,
) -> ClusterEngine:
    """A homogeneous cluster: ``n_replicas`` copies of one node design.

    Every replica gets its *own* scheduler instance (and therefore its own
    HBM reservation ledger under the ``memory`` policy and its own block
    pool under ``paged`` — ``block_size``/``preempt``/``cache`` are
    threaded through to every replica's scheduler); the system cost model
    is shared because pricing is pure.  The least-loaded and cache-aware
    routers' estimates reuse replica 0's
    :class:`~repro.serving.costs.IterationCostModel` — one solo prefill
    plus ``output_len`` decode steps priced at the request's mid-generation
    context — so routing and execution can never disagree about costs.

    ``shared_tier=True`` joins every replica's prefix pool to one
    :class:`~repro.serving.memory.SharedPrefixTier`, pricing cross-replica
    prefix pulls over a ``link_gbps`` interconnect; it requires the
    ``prefix`` scheduler with its cache on.  Left ``False`` (the default)
    every replica is bit-exact with a standalone engine.
    """
    if shared_tier and (scheduler != "prefix" or not cache):
        raise ValueError(
            "a shared prefix tier needs the prefix scheduler with "
            "cache=True (nothing else publishes session prefixes)"
        )
    replicas = tuple(
        ServingEngine(
            system,
            spec,
            build_scheduler(
                scheduler,
                system,
                spec,
                max_batch=max_batch,
                step_stride=step_stride,
                capacity_bytes=capacity_bytes,
                chunk_budget=chunk_budget,
                block_size=block_size,
                preempt=preempt,
                cache=cache,
            ),
        )
        for _ in range(n_replicas)
    )
    if shared_tier:
        tier = SharedPrefixTier(
            MemoryModel.for_system(system, spec),
            block_size,
            IterationCostModel(system, spec, link_gbps=link_gbps),
        )
        for i, engine in enumerate(replicas):
            engine.scheduler.pool.attach_tier(tier, i)

    def service_time(request: TimedRequest) -> float:
        cost = replicas[0].cost
        mid_context = request.input_len + request.output_len // 2
        return cost.prefill_seconds(
            1, request.input_len
        ) + request.output_len * cost.decode_seconds(1, mid_context)

    def prefix_savings(hit_tokens: int) -> float:
        # Prefill chunk costs telescope, so skipping a cached prefix of
        # hit_tokens saves roughly its own solo-prefill time.
        return replicas[0].cost.prefill_seconds(1, hit_tokens)

    return ClusterEngine(
        replicas,
        build_router(
            router,
            n_replicas,
            service_time=service_time,
            affinity_key=affinity_key,
            prefix_savings=prefix_savings,
        ),
    )
