"""Slot-array batch state: the running set as numpy arrays.

The engine's hot path coalesces long stretches of decode iterations whose
batch composition cannot change (no finish, no admission, no arrival in
range, no preemption).  Inside such a run, per-request Python objects are
pure overhead — what the pricing math needs is the *columns* of the
running set.  A :class:`SlotView` is exactly that: one array per
:class:`~repro.serving.schedulers.RunningRequest` field that pricing
reads, built in one pass whenever the batch re-forms and handed to
:meth:`~repro.serving.schedulers.Scheduler.decode_run` so a scheduler can
price a whole run of iterations with vectorized arithmetic instead of
O(batch) attribute walks per step.

The view is a snapshot, not a live mirror: the engine folds the run's
outcome (tokens generated, finishers) back into the ``RunningRequest``
objects afterwards, which stay the single source of truth for every
non-coalesced event (admission, chunking, preemption, restore).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.serving.schedulers import RunningRequest


@dataclasses.dataclass(frozen=True)
class SlotView:
    """Columnar snapshot of the running set at one batch composition."""

    requests: tuple[RunningRequest, ...]  #: slot index -> request
    input_len: np.ndarray  #: int64, prompt tokens per slot
    output_len: np.ndarray  #: int64, requested output tokens per slot
    generated: np.ndarray  #: int64, tokens decoded so far per slot
    stride: np.ndarray  #: int64, per-slot pricing-anchor stride
    done: np.ndarray  #: bool, finished slots (static batching keeps them)

    @classmethod
    def from_requests(cls, running: Sequence[RunningRequest]) -> "SlotView":
        input_len = np.fromiter(
            (r.input_len for r in running), np.int64, len(running)
        )
        output_len = np.fromiter(
            (r.output_len for r in running), np.int64, len(running)
        )
        generated = np.fromiter(
            (r.generated for r in running), np.int64, len(running)
        )
        stride = np.fromiter(
            (r.stride for r in running), np.int64, len(running)
        )
        return cls(
            requests=tuple(running),
            input_len=input_len,
            output_len=output_len,
            generated=generated,
            stride=stride,
            done=generated >= output_len,
        )

    @property
    def n_slots(self) -> int:
        return len(self.requests)

    @property
    def n_active(self) -> int:
        """Slots still decoding (a token per iteration comes from each)."""
        return int((~self.done).sum())

    def max_coalesced_steps(self) -> int:
        """Iterations until the *earliest* active slot finishes.

        That finish changes the batch composition, so it bounds how far a
        decode run may be priced ahead; every active slot has at least
        one token left, so the bound is always >= 1.
        """
        remaining = (self.output_len - self.generated)[~self.done]
        return int(remaining.min())
