"""Flight recorder for the serving engine: spans, gauges, exporters.

End-of-run aggregates (a :class:`~repro.serving.metrics.ServingReport`)
can say *that* goodput fell past the knee or *that* preemptions rose —
never *when* or *why*.  This module adds the time axis back: a
:class:`Collector` taps the engine's event loop and records

* **spans** — every priced stretch of simulated time, tagged with the
  requests it served: monolithic prefills, prefill chunks, restore
  re-prefills, scalar decode iterations, and whole coalesced decode runs
  (one span per run; the batch provably cannot change mid-run, so the
  span's members hold for its entire ``[t0, t1]`` — expanding it per
  request at export time is exact, not an approximation);
* **gauges** — sampled at every batch-composition event: waiting-queue
  depth, running batch size, :class:`~repro.serving.memory.BlockPool`
  blocks in use, cumulative preemptions, and cumulative prefill/decode
  token counters;
* **preempt spans** — each eviction paired with the start of its restore
  re-prefill, so the time a request's KV spent evicted is a first-class
  interval.

**Overhead contract.**  The engine guards every telemetry touch behind a
single ``tel`` bool (``collector is not None and collector.enabled``), so
the default :class:`NullCollector`/``None`` path costs one falsy check
per event and the simulation stays bit-exact — asserted by
``tests/serving/test_telemetry.py`` across every scheduler configuration
and enforced by the CI ``perf-wallclock`` job, which also bounds the
telemetry-*on* wall-clock overhead (≤ 15% over the bare engine on the
100k-request trace).  Hooks store plain tuples and object references
(request timings materialize lazily at export), never dicts or copies of
per-request state.

Exporters on the collected :class:`Timeline`:

* :meth:`Timeline.to_trace_events` — Chrome trace-event / Perfetto JSON:
  one process per replica, an ``engine`` thread carrying every priced
  span plus counter tracks, and one thread per request so its lifecycle
  reads as a row (``repro trace export`` on the CLI);
* :meth:`Timeline.windowed` — a per-window time-series (TTFT/TPOT
  percentiles via the same :class:`~repro.serving.metrics.RequestStats`
  reservoir the reports use, goodput, engine occupancy, sampled queue
  depth, preemption deltas) consumed by the ``utilization_timeline``
  figure.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from collections.abc import Sequence

from repro.serving.metrics import RequestStats, RequestTiming, SloSpec
from repro.serving.schedulers import RunningRequest

#: span kinds a collector may receive (restore = post-preemption
#: re-prefill; handoff = a disaggregated continuation's KV landing over
#: the wire, always 0 tokens — nothing is computed during one)
SPAN_KINDS = ("prefill", "chunk", "restore", "handoff", "decode")


class Collector:
    """The engine's telemetry seam: no-op hooks, disabled by default.

    The engine calls these at every batch-composition event; with
    :attr:`enabled` False it never gets past its one guard bool, so this
    base class (and :class:`NullCollector`) is free on the hot path.
    Subclasses that record set ``enabled = True`` and override the hooks
    they care about.  ``t``/``t0``/``t1`` are simulated-clock seconds.
    """

    #: the engine hoists this into a local once per run — False means no
    #: hook is ever called, not even as a no-op
    enabled: bool = False

    def fork(self, replica: int) -> "Collector":
        """A child collector for one cluster replica's run."""
        del replica
        return self

    def prefill_span(
        self,
        t0: float,
        t1: float,
        tokens: int,
        members: Sequence[RunningRequest],
        kind: str,
    ) -> None:
        """A priced prefill-side stretch: monolithic prefill, one chunk,
        a restore, or a zero-token KV handoff."""

    def decode_span(
        self,
        t0: float,
        t1: float,
        steps: int,
        tokens: int,
        members: Sequence[RunningRequest],
    ) -> None:
        """A priced decode stretch: one iteration or a coalesced run."""

    def preempt(self, t: float, victims: Sequence[RunningRequest]) -> None:
        """A paged scheduler just evicted ``victims`` at time ``t``."""

    def finish(self, request: RunningRequest) -> None:
        """``request`` completed (its timestamps are final from now on)."""

    def gauge(
        self,
        t: float,
        queue_depth: int,
        n_running: int,
        blocks_in_use: int,
        preemptions: int,
        cache_hit_tokens: int = 0,
        cache_miss_tokens: int = 0,
        cache_evictions: int = 0,
        remote_hit_tokens: int = 0,
        transferred_bytes: float = 0.0,
    ) -> None:
        """Iteration gauges at a batch-composition event.

        The prefix-cache and shared-tier counters are cumulative and
        default to 0 so hand-written collectors predating them stay
        valid callers.
        """


class NullCollector(Collector):
    """The explicit do-nothing collector (identical to passing ``None``)."""


class Track:
    """One replica's recorded stream: spans, gauges, preempt intervals.

    Storage is flat tuples appended in event order; per-request timings
    materialize lazily from the stored :class:`RunningRequest` references
    (their timestamps are final once :meth:`Collector.finish` fired), so
    the hot path never builds a :class:`RequestTiming`.
    """

    __slots__ = (
        "replica", "spans", "gauges", "preempt_spans", "finished",
        "prefill_tokens", "decode_tokens", "_open_preempt", "_timings",
    )

    def __init__(self, replica: int):
        self.replica = replica
        #: (kind, t0, t1, tokens, steps, members) — kind in SPAN_KINDS;
        #: steps is 0 for prefill kinds, >= 1 for decode spans
        self.spans: list[tuple] = []
        #: (t, queue_depth, n_running, blocks_in_use, preemptions,
        #:  prefill_tokens_cum, decode_tokens_cum,
        #:  cache_hit_tokens_cum, cache_miss_tokens_cum, cache_evictions_cum,
        #:  remote_hit_tokens_cum, transferred_bytes_cum)
        self.gauges: list[tuple] = []
        #: (request_id, t_preempt, t_restore_start)
        self.preempt_spans: list[tuple[int, float, float]] = []
        self.finished: list[RunningRequest] = []
        self.prefill_tokens = 0
        self.decode_tokens = 0
        self._open_preempt: dict[int, float] = {}
        self._timings: list[RequestTiming] | None = None

    @property
    def empty(self) -> bool:
        return not (self.spans or self.gauges or self.finished)

    def timings(self) -> list[RequestTiming]:
        """Completed-request timings, sorted by request id (cached)."""
        if self._timings is None or len(self._timings) != len(self.finished):
            self._timings = sorted(
                (
                    RequestTiming(
                        request_id=r.timed.request_id,
                        input_len=r.input_len,
                        output_len=r.output_len,
                        arrival_s=r.timed.arrival_s,
                        admitted_s=r.admitted_s,
                        first_token_s=r.first_token_s,
                        finished_s=r.finished_s,
                        preemptions=r.preemptions,
                        cached_tokens=r.cached_tokens,
                    )
                    for r in self.finished
                ),
                key=lambda t: t.request_id,
            )
        return self._timings

    def busy_intervals(self) -> list[tuple[float, float]]:
        """Union of all span intervals (the engine was pricing *something*)."""
        raw = sorted((s[1], s[2]) for s in self.spans)
        merged: list[tuple[float, float]] = []
        for lo, hi in raw:
            if merged and lo <= merged[-1][1]:
                if hi > merged[-1][1]:
                    merged[-1] = (merged[-1][0], hi)
            else:
                merged.append((lo, hi))
        return merged

    def bounds(self) -> tuple[float, float]:
        """(earliest, latest) simulated time this track covers."""
        if self.empty:
            raise ValueError("cannot take the bounds of an empty track")
        lows: list[float] = []
        highs: list[float] = []
        if self.spans:
            lows.append(min(s[1] for s in self.spans))
            highs.append(max(s[2] for s in self.spans))
        if self.gauges:
            lows.append(self.gauges[0][0])
            highs.append(self.gauges[-1][0])
        if self.finished:
            lows.append(min(r.timed.arrival_s for r in self.finished))
            highs.append(max(r.finished_s for r in self.finished))
        return min(lows), max(highs)


class _TrackCollector(Collector):
    """Records one engine run into a :class:`Track`."""

    enabled = True
    __slots__ = ("track",)

    def __init__(self, track: Track):
        self.track = track

    def prefill_span(self, t0, t1, tokens, members, kind):
        track = self.track
        track.prefill_tokens += tokens
        track.spans.append((kind, t0, t1, tokens, 0, tuple(members)))
        if kind == "restore":
            # Close the matching eviction interval: a request cannot be
            # preempted twice without a restore in between.
            rid = members[0].timed.request_id
            t_preempt = track._open_preempt.pop(rid, None)
            if t_preempt is not None:
                track.preempt_spans.append((rid, t_preempt, t0))

    def decode_span(self, t0, t1, steps, tokens, members):
        track = self.track
        track.decode_tokens += tokens
        track.spans.append(("decode", t0, t1, tokens, steps, tuple(members)))

    def preempt(self, t, victims):
        open_preempt = self.track._open_preempt
        for v in victims:
            open_preempt[v.timed.request_id] = t

    def finish(self, request):
        self.track.finished.append(request)

    def gauge(
        self, t, queue_depth, n_running, blocks_in_use, preemptions,
        cache_hit_tokens=0, cache_miss_tokens=0, cache_evictions=0,
        remote_hit_tokens=0, transferred_bytes=0.0,
    ):
        track = self.track
        track.gauges.append(
            (
                t, queue_depth, n_running, blocks_in_use, preemptions,
                track.prefill_tokens, track.decode_tokens,
                cache_hit_tokens, cache_miss_tokens, cache_evictions,
                remote_hit_tokens, transferred_bytes,
            )
        )


class Timeline:
    """Every track of one run (a bare engine holds one, a cluster N)."""

    def __init__(self):
        self._tracks: dict[int, Track] = {}

    def track(self, replica: int) -> Track:
        """The replica's track, created on first use."""
        track = self._tracks.get(replica)
        if track is None:
            track = self._tracks[replica] = Track(replica)
        return track

    @property
    def tracks(self) -> list[Track]:
        """Non-empty tracks, ordered by replica index."""
        return [
            t
            for _, t in sorted(self._tracks.items())
            if not t.empty
        ]

    def bounds(self) -> tuple[float, float]:
        tracks = self.tracks
        if not tracks:
            raise ValueError("cannot take the bounds of an empty timeline")
        per = [t.bounds() for t in tracks]
        return min(lo for lo, _ in per), max(hi for _, hi in per)

    # -- exporter 1: windowed time-series -----------------------------------

    def windowed(
        self, n_windows: int, slo: SloSpec | None = None
    ) -> list[dict]:
        """Per-window serving quality over the run's ``[start, end]`` span.

        Each row aggregates the requests that *finished* inside the
        window through a fresh :class:`RequestStats` (so percentiles are
        computed exactly as the end-of-run report computes them), plus:
        ``occupancy`` — the fraction of window × track time covered by
        the union of priced spans; ``mean_queue_depth`` — the average of
        the gauge samples falling in the window (``None`` when none do);
        ``preemptions`` — the delta of the cumulative preemption counter
        across the window.  Latency fields are ``None`` (not NaN — rows
        must survive a JSON round-trip) for windows nothing finished in.
        """
        if n_windows < 1:
            raise ValueError("n_windows must be positive")
        tracks = self.tracks
        t0, t1 = self.bounds()
        span = max(t1 - t0, 1e-12)
        width = span / n_windows
        busy = [t.busy_intervals() for t in tracks]
        gauge_ts = [[g[0] for g in t.gauges] for t in tracks]
        rows: list[dict] = []
        for w in range(n_windows):
            w0 = t0 + w * width
            w1 = t1 if w == n_windows - 1 else t0 + (w + 1) * width
            stats = RequestStats()
            busy_s = 0.0
            depth_sum = 0.0
            depth_n = 0
            preempt_delta = 0
            for track, intervals, ts in zip(tracks, busy, gauge_ts):
                for timing in track.timings():
                    # Half-open windows; the final window also takes its
                    # right edge so the last completion is never dropped.
                    if w0 <= timing.finished_s < w1 or (
                        w == n_windows - 1 and timing.finished_s == w1
                    ):
                        stats.observe(timing)
                for lo, hi in intervals:
                    if hi <= w0 or lo >= w1:
                        continue
                    busy_s += min(hi, w1) - max(lo, w0)
                lo_i = bisect_right(ts, w0)
                hi_i = bisect_right(ts, w1)
                for g in track.gauges[lo_i:hi_i]:
                    depth_sum += g[1]
                    depth_n += 1
                # Cumulative counter delta across the window's edges.
                before = track.gauges[lo_i - 1][4] if lo_i > 0 else 0
                after = track.gauges[hi_i - 1][4] if hi_i > 0 else 0
                preempt_delta += after - before
            n = stats.n
            row: dict = {
                "window": w,
                "t0_s": w0,
                "t1_s": w1,
                "n_finished": n,
                "ttft_p50_s": stats.ttft_percentile(50) if n else None,
                "ttft_p99_s": stats.ttft_percentile(99) if n else None,
                "tpot_p99_s": stats.tpot_percentile(99) if n else None,
                "occupancy": busy_s / ((w1 - w0) * max(len(tracks), 1)),
                "mean_queue_depth": (
                    depth_sum / depth_n if depth_n else None
                ),
                "preemptions": preempt_delta,
            }
            if slo is not None:
                met = stats.slo_met(slo)
                row["slo_attainment"] = met / n if n else None
                row["goodput_rps"] = met / (w1 - w0)
            rows.append(row)
        return rows

    # -- exporter 2: Chrome trace-event / Perfetto JSON ----------------------

    def to_trace_events(self) -> dict:
        """The run as trace-event JSON (load in Perfetto / chrome://tracing).

        Layout: one *process* per replica.  Thread 0 (``engine``) carries
        every priced span exactly once plus the counter tracks; thread
        ``request_id + 1`` carries that request's own row — its spans
        re-emitted per member (exact for coalesced runs: the batch could
        not change mid-run) and its ``preempted`` gap intervals — so a
        request's whole lifecycle reads left to right.  Timestamps are
        simulated-clock microseconds (the trace-event unit).
        """

        def us(seconds: float) -> float:
            return round(seconds * 1e6, 3)

        events: list[dict] = []
        for track in self.tracks:
            pid = track.replica
            events.append(
                {
                    "ph": "M", "pid": pid, "tid": 0,
                    "name": "process_name",
                    "args": {"name": f"replica {pid}"},
                }
            )
            events.append(
                {
                    "ph": "M", "pid": pid, "tid": 0,
                    "name": "thread_name",
                    "args": {"name": "engine"},
                }
            )
            rids = sorted(
                {r.timed.request_id for s in track.spans for r in s[5]}
            )
            for rid in rids:
                events.append(
                    {
                        "ph": "M", "pid": pid, "tid": rid + 1,
                        "name": "thread_name",
                        "args": {"name": f"request {rid}"},
                    }
                )
            for kind, t0, t1, tokens, steps, members in track.spans:
                base = {
                    "ph": "X", "pid": pid, "cat": "serving",
                    "name": kind, "ts": us(t0), "dur": us(t1 - t0),
                }
                args = {"tokens": tokens, "batch": len(members)}
                if steps:
                    args["steps"] = steps
                events.append({**base, "tid": 0, "args": args})
                for r in members:
                    events.append(
                        {**base, "tid": r.timed.request_id + 1, "args": args}
                    )
            for rid, t_preempt, t_restore in track.preempt_spans:
                events.append(
                    {
                        "ph": "X", "pid": pid, "tid": rid + 1,
                        "cat": "serving", "name": "preempted",
                        "ts": us(t_preempt),
                        "dur": us(t_restore - t_preempt),
                        "args": {},
                    }
                )
            any_cache = any(
                g[7] or g[8] or g[9] for g in track.gauges
            )
            any_remote = any(
                g[10] or g[11] for g in track.gauges
            )
            for (
                t, depth, running, blocks, preempts, pf_tok, dc_tok,
                hit_tok, miss_tok, evictions, remote_tok, xfer_bytes,
            ) in track.gauges:
                ts = us(t)
                counters = [
                    ("queue_depth", {"requests": depth}),
                    ("running", {"requests": running}),
                    ("blocks_in_use", {"blocks": blocks}),
                    ("preemptions", {"count": preempts}),
                    ("tokens", {"prefill": pf_tok, "decode": dc_tok}),
                ]
                if any_cache:
                    # Only runs under a prefix-caching scheduler grow the
                    # extra track; cacheless exports keep their shape.
                    counters.append((
                        "prefix_cache",
                        {
                            "hit_tokens": hit_tok,
                            "miss_tokens": miss_tok,
                            "evictions": evictions,
                        },
                    ))
                if any_remote:
                    # And only shared-tier runs grow the transfer track.
                    counters.append((
                        "kv_transfer",
                        {
                            "remote_hit_tokens": remote_tok,
                            "transferred_bytes": xfer_bytes,
                        },
                    ))
                for name, args in counters:
                    events.append(
                        {
                            "ph": "C", "pid": pid, "tid": 0,
                            "name": name, "ts": ts, "args": args,
                        }
                    )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated seconds, exported as microseconds",
                "tracks": len(self.tracks),
            },
        }


def validate_trace_events(payload: object) -> list[str]:
    """Schema-check a trace-event payload; returns problems (empty = ok).

    Checks what Perfetto/chrome://tracing actually require to load the
    file: a ``traceEvents`` list of dict events, each with a known phase
    and pid/tid/name, complete (``X``) events carrying finite numeric
    ``ts`` and non-negative ``dur``, and counter (``C``) events carrying
    only numeric series values.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]

    def numeric(value: object) -> bool:
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value)
        )

    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        if ph in ("X", "C"):
            if not numeric(event.get("ts")):
                errors.append(f"{where}: ts is not finite")
        if ph == "X":
            dur = event.get("dur")
            if not numeric(dur) or dur < 0:
                errors.append(f"{where}: dur is not a finite non-negative")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: counter without series args")
            else:
                for series, value in args.items():
                    if not numeric(value):
                        errors.append(
                            f"{where}: counter series {series!r} "
                            "is not numeric"
                        )
        if ph == "M" and not isinstance(event.get("args"), dict):
            errors.append(f"{where}: metadata without args")
    return errors


def write_trace_file(timeline: Timeline, path: str) -> dict:
    """Export ``timeline`` as validated trace-event JSON at ``path``."""
    payload = timeline.to_trace_events()
    errors = validate_trace_events(payload)
    if errors:
        raise ValueError(
            "refusing to write an invalid trace: " + "; ".join(errors[:5])
        )
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return payload


class TimelineCollector(_TrackCollector):
    """The collector to hand an engine (or cluster) run.

    Records into an owned :class:`Timeline`: a bare
    :class:`~repro.serving.engine.ServingEngine` writes track 0
    directly; a :class:`~repro.serving.cluster.ClusterEngine` calls
    :meth:`fork` per dispatched replica and each child writes its own
    track.  After the run, export via :attr:`timeline`
    (:meth:`Timeline.to_trace_events` / :meth:`Timeline.windowed`).
    """

    __slots__ = ("timeline",)

    def __init__(self):
        self.timeline = Timeline()
        super().__init__(self.timeline.track(0))

    def fork(self, replica: int) -> Collector:
        return _TrackCollector(self.timeline.track(replica))
