"""Batching policies for the request-level serving engine.

Seven schedulers, in increasing order of sophistication:

* :class:`StaticBatchScheduler` — wait for a full batch, run it to
  completion, repeat.  Parity with the paper's evaluation shape (and with
  :class:`~repro.workloads.serving.ServingSimulator`, exactly — the
  equivalence is tested).
* :class:`FcfsContinuousScheduler` — Orca/vLLM-style iteration-level
  scheduling: finished requests free their slot immediately and waiting
  requests join at any decode-iteration boundary, bounded only by a slot
  count.
* :class:`MemoryAwareScheduler` — iteration-level scheduling bounded by
  HBM *capacity* instead of a slot count: each admission reserves the
  request's full state + KV footprint, priced with the true per-value byte
  widths of the system's storage format (``repro.quant`` bit widths via
  the system precision).  Quantized systems (GPU+Q, Pimba) fit more
  concurrent requests in the same HBM, which is exactly the Fig. 15
  capacity argument at request level.
* :class:`ChunkedPrefillScheduler` — Sarathi-style prefill shaping on top
  of continuous batching: each admitted cohort's prompt is processed in
  fixed-token-budget chunks, and the running decode batch piggybacks into
  the same priced iteration instead of stalling for a monolithic prefill
  (the paper's Section 5.6 blocked execution).
* :class:`OverlapScheduler` — NeuPIMs-style sub-batch overlap: the
  prefill chunk and the decode batch execute *concurrently* (prefill on
  the compute units, decode on the PIM/memory side), so the iteration is
  priced at the max of the two instead of their sum.
* :class:`PagedScheduler` — vLLM-style paged KV on top of the capacity
  bound: admission reserves only the *prompt's* blocks from a
  :class:`~repro.serving.memory.BlockPool`, decode claims one block per
  ``block_size`` generated tokens, and on pool exhaustion the youngest
  running request is preempted (its blocks freed, the request re-queued
  for a recompute-style restore whose re-prefill is priced like any
  other prefill — preemption has a visible latency cost).
* :class:`PrefixCachingScheduler` — SGLang-style radix prefix reuse on
  top of the paged pool: completed requests publish their session's
  whole KV blocks to a refcounted
  :class:`~repro.serving.memory.PrefixCache`, later turns of the same
  chat pin the shared prefix instead of recomputing it, and only the
  uncached suffix is charged — and priced.  Unreferenced cached blocks
  are evicted LRU-first the moment live KV wants the space.

A scheduler also owns the *pricing shape* of a decode iteration — which
(batch, context) point the cost model is asked for — because that shape is
what distinguishes padded static batching from continuous batching.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem
from repro.serving.memory import (
    BlockPool,
    MemoryModel,
    PrefixBlockPool,
    validate_capacity,
)
from repro.workloads.requests import TimedRequest
from repro.workloads.serving import clamped_stride

if TYPE_CHECKING:
    from repro.serving.slots import SlotView


@dataclasses.dataclass
class RunningRequest:
    """One request's mutable in-flight state inside the engine."""

    timed: TimedRequest
    admitted_s: float
    stride: int  #: pricing-anchor stride (clamped per request)
    generated: int = 0
    first_token_s: float | None = None
    finished_s: float | None = None
    #: prompt fully processed — False while a chunking scheduler is still
    #: streaming this request's prefill, or after a paged preemption
    #: evicted its KV (it cannot decode until restored by a re-prefill)
    prefilled: bool = True
    #: times this request was preempted (blocks freed, re-queued for a
    #: recompute-style restore) by a preemptive scheduler
    preemptions: int = 0
    #: lifetime prefill tokens served from the prefix cache instead of
    #: being recomputed (admissions + restores; 0 without a cache)
    cached_tokens: int = 0
    #: prefix-cache hit of the *latest* allocation — what the engine
    #: subtracts from the prefill it is about to price (reset per
    #: admission/restore by the caching scheduler; 0 for everyone else)
    cache_hit_last: int = 0
    #: lifetime prefix tokens pulled from *another replica* through the
    #: shared tier (a subset of :attr:`cached_tokens`; 0 without a tier)
    remote_tokens: int = 0
    #: remote share of :attr:`cache_hit_last` for the latest allocation
    remote_hit_last: int = 0
    #: wire seconds the latest allocation's remote pull costs — the
    #: engine serializes this ahead of the prefill it prices (reset per
    #: admission/restore; 0.0 whenever nothing moved)
    transfer_s_last: float = 0.0

    @property
    def input_len(self) -> int:
        return self.timed.input_len

    @property
    def output_len(self) -> int:
        return self.timed.output_len

    @property
    def done(self) -> bool:
        return self.generated >= self.output_len

    @property
    def priced_context(self) -> int:
        """Current context, anchored to the stride grid for pricing."""
        return self.input_len + (self.generated // self.stride) * self.stride


class Scheduler(abc.ABC):
    """Admission + pricing policy for the discrete-event engine.

    The engine owns the clock and the request lifecycle; the scheduler
    owns every *decision*.  The contract, in the order the engine calls
    it each loop iteration:

    * :meth:`admit` — how many queued requests join now.  Must be pure
      (no state mutation): the engine may call it and then admit exactly
      that many requests, after which :meth:`on_admit` fires once with
      the new residents.  An admission implies the request's whole
      reservation (slots, HBM, blocks) fits *right now* — an admitted
      request is never silently dropped, only (for preemptive policies)
      explicitly preempted later.
    * :meth:`prepare_iteration` — claim whatever the next decode
      iteration needs (paged policies grow each resident's KV by one
      token here) and return the requests that had to be *preempted* to
      make room, youngest first.  Non-preemptive policies return ``[]``.
    * :meth:`iteration_shape` — the (batch, context) point the cost
      model prices the iteration at.  Must depend only on the running
      set passed in, so identical engine states always price
      identically (the bit-exactness equivalences rest on this).
    * :meth:`can_restore` / :meth:`on_restore` — gate and record the
      re-admission of a previously preempted request (the engine prices
      its recompute-style re-prefill).
    * :meth:`release` — a resident request completed or was preempted;
      return its reservation.  Called exactly once per completion.

    **Coalescing contract.**  A scheduler declaring :attr:`coalescable`
    promises that between two batch-composition events (admission,
    finish, arrival crossing) a stretch of decode iterations is fully
    predictable: :meth:`prepare_iteration` never evicts, :meth:`admit`
    depends only on the queue and the running *composition* (never on
    residents' decode progress), and :meth:`decode_run` returns exactly
    the ``(batch, seq)`` points that calling :meth:`iteration_shape`
    once per step would — so the engine may price the whole run from a
    :class:`~repro.serving.slots.SlotView` without touching per-request
    state.  A policy that reserves or evicts per token (paged KV) must
    set it False and take the scalar path.  Overriding
    :meth:`iteration_shape` obliges overriding :meth:`decode_run` to
    match; the engine refuses to coalesce when only the former changed.
    """

    #: registry name (``--set scheduler=...`` on the CLI)
    name: str = "?"
    #: safe to price decode runs many iterations at a time (see contract)
    coalescable: bool = True
    #: static batching keeps finished requests in their (padded) slots
    keep_finished: bool = False
    #: prompt tokens per prefill chunk; ``None`` means monolithic prefill
    #: (the engine blocks the whole cluster for each admission, Section 5.6)
    chunk_budget: int | None = None
    #: chunk iterations run concurrently with the decode batch and are
    #: priced at max(chunk, decode) instead of their sum (NeuPIMs overlap)
    overlap_decode: bool = False

    def __init__(self, step_stride: int = 32):
        if step_stride < 1:
            raise ValueError("step_stride must be positive")
        self.step_stride = step_stride

    def request_stride(self, output_len: int) -> int:
        """Per-request pricing stride (clamped like the static simulator)."""
        return clamped_stride(self.step_stride, output_len)

    @abc.abstractmethod
    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        """How many requests to admit from the front of ``queue`` now.

        Pure: must not mutate scheduler state (the engine follows up
        with :meth:`on_admit` for exactly the returned prefix).
        ``more_arrivals`` distinguishes a momentarily empty queue from a
        drained trace, which is what lets static batching flush its
        final partial batch.
        """

    def on_admit(self, admitted: Sequence[RunningRequest]) -> None:
        """The engine just admitted these requests (claim reservations)."""

    def prepare_iteration(
        self, running: Sequence[RunningRequest]
    ) -> list[RunningRequest]:
        """Reserve what the next decode iteration needs; return victims.

        Preemptive policies grow each resident request's KV here and, on
        exhaustion, evict the youngest residents until the survivors
        fit; the engine removes the returned victims from the running
        set and re-queues them for restore.  The default (every
        non-preemptive policy) reserves nothing and evicts nobody.
        """
        del running
        return []

    def can_restore(
        self,
        request: RunningRequest,
        running: Sequence[RunningRequest],
    ) -> bool:
        """May this preempted request re-enter the running set now?"""
        del request, running
        return True

    def on_restore(self, request: RunningRequest) -> None:
        """The engine is re-admitting a preempted request (re-reserve)."""

    def release(self, request: RunningRequest) -> None:
        """A resident request completed — return its reservation."""

    @property
    def blocks_in_use(self) -> int:
        """KV blocks currently claimed (0 for non-paged policies).

        Read by the telemetry gauge stream; policies without a
        :class:`~repro.serving.memory.BlockPool` report zero so the
        counter track renders flat rather than missing.
        """
        return 0

    # Prefix-cache counters, read by the engine for gauges and the run
    # record.  Zero for every policy without a cache, so the fields they
    # feed keep their defaults and traces stay comparable across
    # policies.

    @property
    def cache_hit_tokens(self) -> int:
        """Lifetime prefill tokens served from a prefix cache."""
        return 0

    @property
    def cache_miss_tokens(self) -> int:
        """Lifetime prefill tokens actually computed under a prefix cache."""
        return 0

    @property
    def cache_evictions(self) -> int:
        """Lifetime cached blocks reclaimed to make room for live KV."""
        return 0

    @property
    def remote_hit_tokens(self) -> int:
        """Lifetime prefill tokens pulled from another replica's cache."""
        return 0

    @property
    def transferred_bytes(self) -> float:
        """Lifetime KV bytes pulled over the inter-replica link."""
        return 0.0

    @property
    def kv_transfers(self) -> int:
        """Lifetime cross-replica prefix pulls."""
        return 0

    def iteration_shape(
        self, running: Sequence[RunningRequest]
    ) -> tuple[int, int]:
        """The (batch, context) point one decode iteration is priced at.

        Continuous batching prices the iteration at the running batch size
        and the *mean* anchored context: per-request decode cost is linear
        in context length for every memory-bound operator, so the batch at
        the mean context costs the same as the sum of the true per-request
        costs.
        """
        contexts = [r.priced_context for r in running]
        return len(running), int(round(sum(contexts) / len(contexts)))

    def decode_run(
        self, slots: SlotView, steps: int
    ) -> tuple[int, np.ndarray]:
        """Pricing points for ``steps`` consecutive decode iterations.

        The vectorized counterpart of :meth:`iteration_shape`: element
        ``j`` of the returned context array must *bit-exactly* equal the
        scalar shape after ``j`` tokens of progress on every slot (the
        differential tests enforce this).  Mean-context arithmetic stays
        exact because integer sums are exact in int64, ``totals / n``
        performs the same correctly-rounded float64 division as Python's
        ``int / int``, and ``np.rint`` rounds half-to-even exactly like
        builtin ``round``.
        """
        offsets = np.arange(steps, dtype=np.int64)
        anchored = (
            (slots.generated[:, None] + offsets[None, :])
            // slots.stride[:, None] * slots.stride[:, None]
        )
        totals = (slots.input_len[:, None] + anchored).sum(axis=0)
        return slots.n_slots, np.rint(totals / slots.n_slots).astype(np.int64)


class StaticBatchScheduler(Scheduler):
    """Fixed-size batches run to completion (the paper's serving shape)."""

    name = "static"
    keep_finished = True

    def __init__(self, batch_size: int, step_stride: int = 32):
        super().__init__(step_stride)
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        if running:
            return 0
        if len(queue) >= self.batch_size:
            return self.batch_size
        if queue and not more_arrivals:
            return len(queue)  # flush the final partial batch
        return 0

    def iteration_shape(
        self, running: Sequence[RunningRequest]
    ) -> tuple[int, int]:
        """Padded-cohort pricing, identical to ``ServingSimulator.run``:
        the whole cohort decodes at its max input length and shared decode
        position, finished requests still occupying their slots."""
        input_len = max(r.input_len for r in running)
        stride = clamped_stride(
            self.step_stride, max(r.output_len for r in running)
        )
        position = max(r.generated for r in running)
        return len(running), input_len + (position // stride) * stride

    def decode_run(
        self, slots: SlotView, steps: int
    ) -> tuple[int, np.ndarray]:
        """Padded-cohort pricing over a whole run: batch counts every
        slot (finished ones still hold theirs), and the shared decode
        position is the max over frozen finished slots and the advancing
        active ones."""
        input_len = int(slots.input_len.max())
        stride = clamped_stride(self.step_stride, int(slots.output_len.max()))
        active = ~slots.done
        frozen = int(slots.generated[slots.done].max(initial=0))
        advancing = int(slots.generated[active].max())
        positions = np.maximum(
            frozen, advancing + np.arange(steps, dtype=np.int64)
        )
        return slots.n_slots, input_len + positions // stride * stride


class FcfsContinuousScheduler(Scheduler):
    """First-come-first-served continuous batching with a slot bound."""

    name = "fcfs"

    def __init__(self, max_batch: int = 32, step_stride: int = 32):
        super().__init__(step_stride)
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_batch = max_batch

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        return min(len(queue), self.max_batch - len(running))


def admit_within_capacity(
    memory: MemoryModel,
    capacity_bytes: float,
    queue: Sequence[TimedRequest],
    running: Sequence[RunningRequest],
    limit: int,
) -> int:
    """Longest FCFS prefix of ``queue[:limit]`` whose reservations fit.

    The single home of the Fig. 15 capacity semantics: weights plus every
    resident request's full-final-context state+KV footprint are already
    reserved, and each admission reserves the candidate's own footprint.
    Shared by :class:`MemoryAwareScheduler` and the capacity-bounded
    chunking schedulers so their accounting can never diverge.
    """
    free = capacity_bytes - memory.weights_bytes - sum(
        memory.request_bytes(r.input_len, r.output_len) for r in running
    )
    n = 0
    for request in queue[:max(0, limit)]:
        need = memory.request_bytes(request.input_len, request.output_len)
        if need > free:
            break
        free -= need
        n += 1
    return n


class MemoryAwareScheduler(Scheduler):
    """Continuous batching bounded by HBM state+KV capacity.

    Admits the longest FCFS prefix whose reserved footprint (weights plus
    every resident request at its full final context) fits in
    ``capacity_bytes``, additionally capped by ``max_batch`` slots.
    """

    name = "memory"

    def __init__(
        self,
        memory: MemoryModel,
        capacity_bytes: float,
        max_batch: int = 512,
        step_stride: int = 32,
    ):
        super().__init__(step_stride)
        validate_capacity(memory, capacity_bytes)
        self.memory = memory
        self.capacity_bytes = capacity_bytes
        self.max_batch = max_batch

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        return admit_within_capacity(
            self.memory,
            self.capacity_bytes,
            queue,
            running,
            self.max_batch - len(running),
        )


class ChunkedPrefillScheduler(FcfsContinuousScheduler):
    """Sarathi-style chunked prefill on top of continuous batching.

    Admission is FCFS (slot-bounded, and additionally capacity-bounded
    when a :class:`MemoryModel` is attached), but each admitted cohort's
    prompt is processed in chunks of at most ``chunk_budget`` tokens.  A
    cohort's *first* chunk runs alone — the engine re-forms the fused
    batch at the admission boundary, exactly the blocked execution the
    monolithic engine models — and every later chunk piggybacks the
    running decode batch into the same priced iteration, so decode stalls
    for one chunk instead of one whole prefill.

    ``chunk_budget`` >= the longest prompt therefore degenerates to
    :class:`FcfsContinuousScheduler` *iteration for iteration*: one chunk
    covers the whole cohort prompt, runs alone, and is priced identically
    to the monolithic prefill (the chunk cost telescopes — see
    :meth:`~repro.serving.costs.IterationCostModel.chunk_prefill_seconds`).
    Shrinking the budget trades that blocked time for fused iterations:
    TTFT tails fall (slots recycle faster, admissions stall less) while
    TPOT rises (decode tokens now share iterations with chunk work).
    """

    name = "chunked"

    def __init__(
        self,
        chunk_budget: int,
        max_batch: int = 32,
        step_stride: int = 32,
        memory: MemoryModel | None = None,
        capacity_bytes: float | None = None,
    ):
        super().__init__(max_batch, step_stride)
        if chunk_budget < 1:
            raise ValueError("chunk_budget must be positive")
        if (memory is None) != (capacity_bytes is None):
            raise ValueError(
                "memory and capacity_bytes must be given together"
            )
        if memory is not None:
            validate_capacity(memory, capacity_bytes)
        self.chunk_budget = chunk_budget
        self.memory = memory
        self.capacity_bytes = capacity_bytes

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        n = super().admit(queue, running, more_arrivals)
        if self.memory is None or n == 0:
            return n
        # Capacity bound: still-prefilling requests hold their full
        # reservation, so chunked admission can never overcommit HBM.
        return admit_within_capacity(
            self.memory, self.capacity_bytes, queue, running, n
        )


class PagedScheduler(Scheduler):
    """Block-granular (paged) KV reservation with preempt/restore.

    The vLLM allocation model on top of the engine's capacity semantics:
    admission charges a :class:`~repro.serving.memory.BlockPool` for the
    *prompt's* KV blocks only (plus the context-invariant state), and
    decode claims one more block every ``block_size`` generated tokens
    via :meth:`prepare_iteration`.  Admission therefore packs against
    *current* block usage instead of every resident's full-final-context
    footprint — far more requests fit the same HBM — at the price of
    possible exhaustion mid-decode: when a growth claim fails, the
    youngest running request is preempted (all its blocks freed) and
    re-queued for a recompute-style restore, whose re-prefill over
    prompt + already-generated tokens the engine prices like any other
    prefill.  Preemption is visible in the clock, the report
    (``n_preemptions``), and the token accounting.

    ``preempt=False`` is the degenerate, thrash-free configuration: with
    nothing to evict on exhaustion, admission must reserve the full
    final context up front — the same :meth:`MemoryModel.request_bytes`
    arithmetic as :class:`MemoryAwareScheduler`, so the two engines are
    bit-exact, event for event (tested, bare and clustered).
    """

    name = "paged"
    #: block growth and eviction happen per token inside
    #: :meth:`prepare_iteration` — the one policy the engine must step
    #: one scalar iteration at a time
    coalescable = False

    def __init__(
        self,
        memory: MemoryModel,
        capacity_bytes: float,
        block_size: int = 64,
        preempt: bool = True,
        max_batch: int = 512,
        step_stride: int = 32,
    ):
        super().__init__(step_stride)
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.memory = memory
        self.capacity_bytes = capacity_bytes
        self.pool = BlockPool(memory, capacity_bytes, block_size)
        self.block_size = block_size
        self.preempt = preempt
        self.max_batch = max_batch

    def _admission_context(self, input_len: int, output_len: int) -> int:
        """KV tokens claimed at admission (or restore-from-``generated``).

        Paged mode claims the prompt only; with preemption disabled the
        full final context must be reserved up front, because exhaustion
        would otherwise leave nothing legal to evict.
        """
        if self.preempt:
            return input_len
        return input_len + output_len

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        free = self.pool.free_bytes
        n = 0
        for request in queue[:max(0, self.max_batch - len(running))]:
            final = request.input_len + request.output_len
            need = self.memory.reserved_bytes(
                self.pool.covered_tokens(
                    self._admission_context(
                        request.input_len, request.output_len
                    ),
                    final,
                )
            )
            if need > free or not self.pool.feasible(
                request.input_len, request.output_len
            ):
                break
            free -= need
            n += 1
        return n

    def on_admit(self, admitted: Sequence[RunningRequest]) -> None:
        for r in admitted:
            self.pool.allocate(
                r.timed.request_id,
                self._admission_context(r.input_len, r.output_len),
                r.input_len + r.output_len,
            )

    def prepare_iteration(
        self, running: Sequence[RunningRequest]
    ) -> list[RunningRequest]:
        """Grow every resident by one token's KV; evict youngest on ENOSPC.

        Residents grow oldest-first (admission order), and every failed
        claim evicts the *youngest* resident — vLLM's preemption order,
        which protects the request closest to completion.  A resident may
        evict itself when it is the youngest; the head resident never
        can, because admission feasibility guarantees it fits alone.
        """
        if not self.preempt:
            return []  # full context reserved at admission; nothing to grow
        victims: list[RunningRequest] = []
        # Age order by *original* admission (restores keep their first
        # admission stamp), not list position: a restored request is the
        # oldest resident and must be the last evicted, never the first
        # — else a full pool re-evicts it before it decodes a token and
        # every restore re-prefill is pure waste.
        alive = sorted(
            running, key=lambda r: (r.admitted_s, r.timed.request_id)
        )
        i = 0
        while i < len(alive):
            r = alive[i]
            final = r.input_len + r.output_len
            self_evicted = False
            while not self.pool.extend(
                r.timed.request_id, r.input_len + r.generated + 1, final
            ):
                if len(alive) == 1:
                    # Nothing else to evict and self-eviction would just
                    # restore into the same exhausted pool (a livelock);
                    # admission feasibility makes this unreachable.
                    raise RuntimeError(
                        "paged pool exhausted growing request "
                        f"{r.timed.request_id} with no victim to preempt"
                    )
                victim = alive.pop()
                self.pool.release(victim.timed.request_id)
                victims.append(victim)
                if victim is r:
                    self_evicted = True
                    break
            if not self_evicted:
                i += 1
        return victims

    def can_restore(
        self,
        request: RunningRequest,
        running: Sequence[RunningRequest],
    ) -> bool:
        if len(running) >= self.max_batch:
            return False
        # +1: headroom for the token the next decode iteration writes,
        # so a restored request always makes progress before any further
        # exhaustion can evict anything (it grows first — it is oldest).
        return self.pool.fits(
            self._admission_context(request.input_len, request.output_len)
            + request.generated
            + 1,
            request.input_len + request.output_len,
        )

    def on_restore(self, request: RunningRequest) -> None:
        self.pool.allocate(
            request.timed.request_id,
            self._admission_context(request.input_len, request.output_len)
            + request.generated,
            request.input_len + request.output_len,
        )

    def release(self, request: RunningRequest) -> None:
        self.pool.release(request.timed.request_id)

    @property
    def blocks_in_use(self) -> int:
        return self.pool.blocks_in_use


class PrefixCachingScheduler(PagedScheduler):
    """Paged KV with SGLang-style radix prefix reuse across a session.

    Identical decision machinery to :class:`PagedScheduler` — same
    admission packing, same growth, same youngest-first preemption — on
    top of a :class:`~repro.serving.memory.PrefixBlockPool`:

    * **Allocation reuses.**  An admitted (or restored) request whose
      :attr:`~repro.workloads.requests.Request.session_id` has published
      prefix blocks pins them instead of claiming private ones, and only
      the uncached suffix is charged to the pool.  The engine then
      prices only that suffix
      (:meth:`~repro.serving.costs.IterationCostModel.chunk_prefill_seconds`
      from the hit boundary, so chunk costs telescope exactly).
    * **Completion publishes.**  A finished request's prompt + generated
      tokens extend its session's shared history; every full block
      becomes reusable by later turns.  Preemption publishes nothing —
      its restore recomputes, like the base policy.
    * **Cached blocks lose to live KV.**  Unreferenced cached blocks
      never gate admission or growth; they are reclaimed LRU-first the
      moment live KV wants the bytes, so eviction always precedes (and
      usually prevents nothing about) preemption — shared pinned blocks
      are never evicted at all.

    ``cache=False`` — or any trace without session ids — makes every
    decision, every float, and every counter identical to
    :class:`PagedScheduler`: the equivalence tests pin this bit for bit.
    """

    name = "prefix"

    def __init__(
        self,
        memory: MemoryModel,
        capacity_bytes: float,
        block_size: int = 64,
        preempt: bool = True,
        max_batch: int = 512,
        step_stride: int = 32,
        cache: bool = True,
    ):
        super().__init__(
            memory, capacity_bytes, block_size, preempt, max_batch,
            step_stride,
        )
        self.pool = PrefixBlockPool(memory, capacity_bytes, block_size)
        self.cache_enabled = cache

    def _reusable(self, r: RunningRequest) -> bool:
        return self.cache_enabled and r.timed.session_id is not None

    def _allocate(self, r: RunningRequest, prefill_tokens: int) -> None:
        """Allocate for an admission/restore, reusing cached blocks.

        ``prefill_tokens`` is what the engine is about to price (the
        prompt at admission, prompt + generated at restore); the
        recorded hit shortens exactly that prefill.
        """
        context = (
            self._admission_context(r.input_len, r.output_len) + r.generated
        )
        final = r.input_len + r.output_len
        if self._reusable(r):
            # The admission clock doubles as the tier-lookup clock: a
            # restore reuses the original admission time, which can only
            # hide (never invent) remote publishes — deterministic and
            # conservative.
            hit, remote, transfer_s = self.pool.allocate_reusing(
                r.timed.request_id,
                r.timed.session_id,
                context,
                final,
                prefill_tokens,
                now=r.admitted_s,
            )
        else:
            self.pool.allocate(r.timed.request_id, context, final)
            hit, remote, transfer_s = 0, 0, 0.0
        r.cache_hit_last = hit
        r.cached_tokens += hit
        r.remote_hit_last = remote
        r.remote_tokens += remote
        r.transfer_s_last = transfer_s

    def on_admit(self, admitted: Sequence[RunningRequest]) -> None:
        for r in admitted:
            self._allocate(r, r.input_len)

    def on_restore(self, request: RunningRequest) -> None:
        self._allocate(request, request.input_len + request.generated)

    def release(self, request: RunningRequest) -> None:
        if self._reusable(request) and request.done:
            self.pool.publish(
                request.timed.session_id,
                request.input_len + request.generated,
                at=request.finished_s,
            )
        self.pool.release(request.timed.request_id)

    @property
    def cache_hit_tokens(self) -> int:
        return self.pool.cache.hit_tokens

    @property
    def cache_miss_tokens(self) -> int:
        return self.pool.cache.miss_tokens

    @property
    def cache_evictions(self) -> int:
        return self.pool.cache.evictions

    @property
    def remote_hit_tokens(self) -> int:
        return self.pool.remote_hit_tokens

    @property
    def transferred_bytes(self) -> float:
        return self.pool.transferred_bytes

    @property
    def kv_transfers(self) -> int:
        return self.pool.kv_transfers


class OverlapScheduler(ChunkedPrefillScheduler):
    """NeuPIMs-style prefill/decode sub-batch overlap.

    Same chunked admission and prefill shaping as
    :class:`ChunkedPrefillScheduler`, but the chunk and the decode batch
    execute *concurrently* — prefill is compute-bound (GPU side), decode
    is memory-bound (PIM side) — so every chunk iteration is priced at
    ``max(chunk, decode)`` instead of their sum, and decode piggybacks
    from the very first chunk (there is no re-forming stall).
    """

    name = "overlap"
    overlap_decode = True


def build_scheduler(
    name: str,
    system: ServingSystem,
    spec: ModelSpec,
    max_batch: int = 32,
    step_stride: int = 32,
    capacity_bytes: float | None = None,
    chunk_budget: int = 256,
    block_size: int = 64,
    preempt: bool = True,
    cache: bool = True,
) -> Scheduler:
    """Construct a scheduler by registry name.

    ``static`` uses ``max_batch`` as its fixed batch size; ``memory``
    and ``paged`` default ``capacity_bytes`` to the system's aggregate
    HBM capacity.  ``chunked``/``overlap`` split prefills into
    ``chunk_budget``-token chunks and become capacity-bounded (instead
    of slot-only) when ``capacity_bytes`` is given.  ``paged`` reserves
    KV in ``block_size``-token blocks as decode progresses and preempts
    on exhaustion unless ``preempt=False`` (which reserves the full
    final context up front, the :class:`MemoryAwareScheduler`-bit-exact
    degenerate mode).  ``cache=False`` builds ``prefix`` with its cache
    off — the :class:`PagedScheduler`-bit-exact degenerate mode — and is
    ignored by every other policy.
    """
    if name in ("paged", "prefix"):
        if name == "paged":
            return PagedScheduler(
                MemoryModel.for_system(system, spec),
                capacity_bytes if capacity_bytes is not None
                else system.capacity_bytes,
                block_size=block_size,
                preempt=preempt,
                max_batch=max_batch,
                step_stride=step_stride,
            )
        return PrefixCachingScheduler(
            MemoryModel.for_system(system, spec),
            capacity_bytes if capacity_bytes is not None
            else system.capacity_bytes,
            block_size=block_size,
            preempt=preempt,
            max_batch=max_batch,
            step_stride=step_stride,
            cache=cache,
        )
    if name == "static":
        return StaticBatchScheduler(max_batch, step_stride)
    if name == "fcfs":
        return FcfsContinuousScheduler(max_batch, step_stride)
    if name == "memory":
        return MemoryAwareScheduler(
            MemoryModel.for_system(system, spec),
            capacity_bytes if capacity_bytes is not None
            else system.capacity_bytes,
            max_batch=max_batch,
            step_stride=step_stride,
        )
    if name in ("chunked", "overlap"):
        cls = ChunkedPrefillScheduler if name == "chunked" else OverlapScheduler
        return cls(
            chunk_budget,
            max_batch=max_batch,
            step_stride=step_stride,
            memory=None if capacity_bytes is None
            else MemoryModel.for_system(system, spec),
            capacity_bytes=capacity_bytes,
        )
    raise KeyError(
        f"unknown scheduler {name!r}; "
        "available: static, fcfs, memory, chunked, overlap, paged, prefix"
    )
