"""Batching policies for the request-level serving engine.

Five schedulers, in increasing order of sophistication:

* :class:`StaticBatchScheduler` — wait for a full batch, run it to
  completion, repeat.  Parity with the paper's evaluation shape (and with
  :class:`~repro.workloads.serving.ServingSimulator`, exactly — the
  equivalence is tested).
* :class:`FcfsContinuousScheduler` — Orca/vLLM-style iteration-level
  scheduling: finished requests free their slot immediately and waiting
  requests join at any decode-iteration boundary, bounded only by a slot
  count.
* :class:`MemoryAwareScheduler` — iteration-level scheduling bounded by
  HBM *capacity* instead of a slot count: each admission reserves the
  request's full state + KV footprint, priced with the true per-value byte
  widths of the system's storage format (``repro.quant`` bit widths via
  the system precision).  Quantized systems (GPU+Q, Pimba) fit more
  concurrent requests in the same HBM, which is exactly the Fig. 15
  capacity argument at request level.
* :class:`ChunkedPrefillScheduler` — Sarathi-style prefill shaping on top
  of continuous batching: each admitted cohort's prompt is processed in
  fixed-token-budget chunks, and the running decode batch piggybacks into
  the same priced iteration instead of stalling for a monolithic prefill
  (the paper's Section 5.6 blocked execution).
* :class:`OverlapScheduler` — NeuPIMs-style sub-batch overlap: the
  prefill chunk and the decode batch execute *concurrently* (prefill on
  the compute units, decode on the PIM/memory side), so the iteration is
  priced at the max of the two instead of their sum.

A scheduler also owns the *pricing shape* of a decode iteration — which
(batch, context) point the cost model is asked for — because that shape is
what distinguishes padded static batching from continuous batching.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Sequence

from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem
from repro.workloads.requests import TimedRequest
from repro.workloads.serving import clamped_stride


@dataclasses.dataclass
class RunningRequest:
    """One request's mutable in-flight state inside the engine."""

    timed: TimedRequest
    admitted_s: float
    stride: int  #: pricing-anchor stride (clamped per request)
    generated: int = 0
    first_token_s: float | None = None
    finished_s: float | None = None
    #: prompt fully processed — False only while a chunking scheduler is
    #: still streaming this request's prefill (it holds its slot/capacity
    #: reservation but cannot decode yet)
    prefilled: bool = True

    @property
    def input_len(self) -> int:
        return self.timed.input_len

    @property
    def output_len(self) -> int:
        return self.timed.output_len

    @property
    def done(self) -> bool:
        return self.generated >= self.output_len

    @property
    def priced_context(self) -> int:
        """Current context, anchored to the stride grid for pricing."""
        return self.input_len + (self.generated // self.stride) * self.stride


@dataclasses.dataclass(frozen=True)
class MemoryModel:
    """HBM residency of weights and per-request state/KV.

    A thin view over the system's own footprint model
    (:meth:`~repro.perf.system.ServingSystem.state_bytes_per_request` /
    ``kv_bytes_per_request``), whose byte widths come from the
    ``repro.quant`` registry's true bits-per-value — so a Pimba MX8 state
    is half an fp16 one, an int8 state carries its 16-bit group scales,
    and the capacity scheduler can never diverge from the Fig. 15
    memory numbers.
    """

    spec: ModelSpec
    system: ServingSystem

    @classmethod
    def for_system(cls, system: ServingSystem, spec: ModelSpec) -> "MemoryModel":
        return cls(spec=spec, system=system)

    @property
    def weights_bytes(self) -> float:
        return self.system.weights_bytes(self.spec)

    def request_bytes(self, input_len: int, output_len: int) -> float:
        """Cluster-wide bytes one request holds resident at full context.

        The recurrent state is context-invariant; the KV cache is reserved
        at the request's final length so an admitted request never has to
        be preempted mid-decode.
        """
        return self.system.state_bytes_per_request(
            self.spec
        ) + self.system.kv_bytes_per_request(
            self.spec, input_len + output_len
        )


class Scheduler(abc.ABC):
    """Admission + pricing policy for the discrete-event engine."""

    #: registry name (``--set scheduler=...`` on the CLI)
    name: str = "?"
    #: static batching keeps finished requests in their (padded) slots
    keep_finished: bool = False
    #: prompt tokens per prefill chunk; ``None`` means monolithic prefill
    #: (the engine blocks the whole cluster for each admission, Section 5.6)
    chunk_budget: int | None = None
    #: chunk iterations run concurrently with the decode batch and are
    #: priced at max(chunk, decode) instead of their sum (NeuPIMs overlap)
    overlap_decode: bool = False

    def __init__(self, step_stride: int = 32):
        if step_stride < 1:
            raise ValueError("step_stride must be positive")
        self.step_stride = step_stride

    def request_stride(self, output_len: int) -> int:
        """Per-request pricing stride (clamped like the static simulator)."""
        return clamped_stride(self.step_stride, output_len)

    @abc.abstractmethod
    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        """How many requests to admit from the front of ``queue`` now."""

    def iteration_shape(
        self, running: Sequence[RunningRequest]
    ) -> tuple[int, int]:
        """The (batch, context) point one decode iteration is priced at.

        Continuous batching prices the iteration at the running batch size
        and the *mean* anchored context: per-request decode cost is linear
        in context length for every memory-bound operator, so the batch at
        the mean context costs the same as the sum of the true per-request
        costs.
        """
        contexts = [r.priced_context for r in running]
        return len(running), int(round(sum(contexts) / len(contexts)))


class StaticBatchScheduler(Scheduler):
    """Fixed-size batches run to completion (the paper's serving shape)."""

    name = "static"
    keep_finished = True

    def __init__(self, batch_size: int, step_stride: int = 32):
        super().__init__(step_stride)
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        if running:
            return 0
        if len(queue) >= self.batch_size:
            return self.batch_size
        if queue and not more_arrivals:
            return len(queue)  # flush the final partial batch
        return 0

    def iteration_shape(
        self, running: Sequence[RunningRequest]
    ) -> tuple[int, int]:
        """Padded-cohort pricing, identical to ``ServingSimulator.run``:
        the whole cohort decodes at its max input length and shared decode
        position, finished requests still occupying their slots."""
        input_len = max(r.input_len for r in running)
        stride = clamped_stride(
            self.step_stride, max(r.output_len for r in running)
        )
        position = max(r.generated for r in running)
        return len(running), input_len + (position // stride) * stride


class FcfsContinuousScheduler(Scheduler):
    """First-come-first-served continuous batching with a slot bound."""

    name = "fcfs"

    def __init__(self, max_batch: int = 32, step_stride: int = 32):
        super().__init__(step_stride)
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_batch = max_batch

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        return min(len(queue), self.max_batch - len(running))


def _validate_capacity(memory: MemoryModel, capacity_bytes: float) -> None:
    if capacity_bytes <= memory.weights_bytes:
        raise ValueError("capacity does not even hold the weights")


def admit_within_capacity(
    memory: MemoryModel,
    capacity_bytes: float,
    queue: Sequence[TimedRequest],
    running: Sequence[RunningRequest],
    limit: int,
) -> int:
    """Longest FCFS prefix of ``queue[:limit]`` whose reservations fit.

    The single home of the Fig. 15 capacity semantics: weights plus every
    resident request's full-final-context state+KV footprint are already
    reserved, and each admission reserves the candidate's own footprint.
    Shared by :class:`MemoryAwareScheduler` and the capacity-bounded
    chunking schedulers so their accounting can never diverge.
    """
    free = capacity_bytes - memory.weights_bytes - sum(
        memory.request_bytes(r.input_len, r.output_len) for r in running
    )
    n = 0
    for request in queue[:max(0, limit)]:
        need = memory.request_bytes(request.input_len, request.output_len)
        if need > free:
            break
        free -= need
        n += 1
    return n


class MemoryAwareScheduler(Scheduler):
    """Continuous batching bounded by HBM state+KV capacity.

    Admits the longest FCFS prefix whose reserved footprint (weights plus
    every resident request at its full final context) fits in
    ``capacity_bytes``, additionally capped by ``max_batch`` slots.
    """

    name = "memory"

    def __init__(
        self,
        memory: MemoryModel,
        capacity_bytes: float,
        max_batch: int = 512,
        step_stride: int = 32,
    ):
        super().__init__(step_stride)
        _validate_capacity(memory, capacity_bytes)
        self.memory = memory
        self.capacity_bytes = capacity_bytes
        self.max_batch = max_batch

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        return admit_within_capacity(
            self.memory,
            self.capacity_bytes,
            queue,
            running,
            self.max_batch - len(running),
        )


class ChunkedPrefillScheduler(FcfsContinuousScheduler):
    """Sarathi-style chunked prefill on top of continuous batching.

    Admission is FCFS (slot-bounded, and additionally capacity-bounded
    when a :class:`MemoryModel` is attached), but each admitted cohort's
    prompt is processed in chunks of at most ``chunk_budget`` tokens.  A
    cohort's *first* chunk runs alone — the engine re-forms the fused
    batch at the admission boundary, exactly the blocked execution the
    monolithic engine models — and every later chunk piggybacks the
    running decode batch into the same priced iteration, so decode stalls
    for one chunk instead of one whole prefill.

    ``chunk_budget`` >= the longest prompt therefore degenerates to
    :class:`FcfsContinuousScheduler` *iteration for iteration*: one chunk
    covers the whole cohort prompt, runs alone, and is priced identically
    to the monolithic prefill (the chunk cost telescopes — see
    :meth:`~repro.serving.costs.IterationCostModel.chunk_prefill_seconds`).
    Shrinking the budget trades that blocked time for fused iterations:
    TTFT tails fall (slots recycle faster, admissions stall less) while
    TPOT rises (decode tokens now share iterations with chunk work).
    """

    name = "chunked"

    def __init__(
        self,
        chunk_budget: int,
        max_batch: int = 32,
        step_stride: int = 32,
        memory: MemoryModel | None = None,
        capacity_bytes: float | None = None,
    ):
        super().__init__(max_batch, step_stride)
        if chunk_budget < 1:
            raise ValueError("chunk_budget must be positive")
        if (memory is None) != (capacity_bytes is None):
            raise ValueError(
                "memory and capacity_bytes must be given together"
            )
        if memory is not None:
            _validate_capacity(memory, capacity_bytes)
        self.chunk_budget = chunk_budget
        self.memory = memory
        self.capacity_bytes = capacity_bytes

    def admit(
        self,
        queue: Sequence[TimedRequest],
        running: Sequence[RunningRequest],
        more_arrivals: bool,
    ) -> int:
        n = super().admit(queue, running, more_arrivals)
        if self.memory is None or n == 0:
            return n
        # Capacity bound: still-prefilling requests hold their full
        # reservation, so chunked admission can never overcommit HBM.
        return admit_within_capacity(
            self.memory, self.capacity_bytes, queue, running, n
        )


class OverlapScheduler(ChunkedPrefillScheduler):
    """NeuPIMs-style prefill/decode sub-batch overlap.

    Same chunked admission and prefill shaping as
    :class:`ChunkedPrefillScheduler`, but the chunk and the decode batch
    execute *concurrently* — prefill is compute-bound (GPU side), decode
    is memory-bound (PIM side) — so every chunk iteration is priced at
    ``max(chunk, decode)`` instead of their sum, and decode piggybacks
    from the very first chunk (there is no re-forming stall).
    """

    name = "overlap"
    overlap_decode = True


def build_scheduler(
    name: str,
    system: ServingSystem,
    spec: ModelSpec,
    max_batch: int = 32,
    step_stride: int = 32,
    capacity_bytes: float | None = None,
    chunk_budget: int = 256,
) -> Scheduler:
    """Construct a scheduler by registry name.

    ``static`` uses ``max_batch`` as its fixed batch size; ``memory``
    defaults ``capacity_bytes`` to the system's aggregate HBM capacity.
    ``chunked``/``overlap`` split prefills into ``chunk_budget``-token
    chunks and become capacity-bounded (instead of slot-only) when
    ``capacity_bytes`` is given.
    """
    if name == "static":
        return StaticBatchScheduler(max_batch, step_stride)
    if name == "fcfs":
        return FcfsContinuousScheduler(max_batch, step_stride)
    if name == "memory":
        return MemoryAwareScheduler(
            MemoryModel.for_system(system, spec),
            capacity_bytes if capacity_bytes is not None
            else system.capacity_bytes,
            max_batch=max_batch,
            step_stride=step_stride,
        )
    if name in ("chunked", "overlap"):
        cls = ChunkedPrefillScheduler if name == "chunked" else OverlapScheduler
        return cls(
            chunk_budget,
            max_batch=max_batch,
            step_stride=step_stride,
            memory=None if capacity_bytes is None
            else MemoryModel.for_system(system, spec),
            capacity_bytes=capacity_bytes,
        )
    raise KeyError(
        f"unknown scheduler {name!r}; "
        "available: static, fcfs, memory, chunked, overlap"
    )
