"""Seeded arrival processes and length distributions for serving traces.

Production traffic is neither fixed-shape nor synchronized: requests
arrive as a point process and carry their own prompt/answer lengths.  This
module builds :class:`~repro.workloads.requests.Trace` objects from

* **Poisson** arrivals (exponential gaps — the memoryless baseline),
* **Gamma** arrivals with a coefficient of variation (``cv > 1`` models
  bursty traffic, ``cv = 1`` degenerates to Poisson),
* **multi-turn chat** sessions (:func:`multiturn_chat_trace`): Poisson
  session arrivals whose turns re-send the growing conversation as the
  prompt — the shared-prefix workload a prefix cache exists for,
* length samplers: fixed (the paper's evaluation shape), lognormal
  (the long-tailed shape of real chat traces), or empirical pairs,

plus JSON save/load so measured traces can be replayed bit-for-bit.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Callable, Sequence

import numpy as np

from repro.workloads.requests import Batch, Request, TimedRequest, Trace

#: draws one (input_len, output_len) pair
LengthSampler = Callable[[np.random.Generator], tuple[int, int]]


# ---------------------------------------------------------------------------
# length distributions
# ---------------------------------------------------------------------------


def fixed_lengths(input_len: int = 1024, output_len: int = 256) -> LengthSampler:
    """Every request has the same shape (the paper's static evaluation)."""
    if input_len < 1 or output_len < 1:
        raise ValueError("request lengths must be positive")

    def sample(rng: np.random.Generator) -> tuple[int, int]:
        del rng
        return input_len, output_len

    return sample


def lognormal_lengths(
    median_input: int = 1024,
    median_output: int = 256,
    sigma: float = 0.5,
    max_input: int = 8192,
    max_output: int = 4096,
) -> LengthSampler:
    """Long-tailed lengths: lognormal around the medians, clipped."""
    if median_input < 1 or median_output < 1 or sigma <= 0:
        raise ValueError("medians must be positive and sigma > 0")

    def sample(rng: np.random.Generator) -> tuple[int, int]:
        inp = int(np.clip(round(median_input * np.exp(rng.normal(0, sigma))),
                          1, max_input))
        out = int(np.clip(round(median_output * np.exp(rng.normal(0, sigma))),
                          1, max_output))
        return inp, out

    return sample


def empirical_lengths(pairs: Sequence[tuple[int, int]]) -> LengthSampler:
    """Resample (input, output) pairs measured from a real trace."""
    if not pairs:
        raise ValueError("need at least one length pair")
    frozen = tuple((int(i), int(o)) for i, o in pairs)

    def sample(rng: np.random.Generator) -> tuple[int, int]:
        return frozen[int(rng.integers(len(frozen)))]

    return sample


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------


def _trace_from_gaps(
    gaps: np.ndarray, lengths: LengthSampler, rng: np.random.Generator
) -> Trace:
    arrivals = np.cumsum(gaps)
    requests = []
    for i, arrival in enumerate(arrivals):
        inp, out = lengths(rng)
        requests.append(TimedRequest(Request(i, inp, out), float(arrival)))
    return Trace(tuple(requests))


def poisson_trace(
    qps: float,
    n_requests: int,
    lengths: LengthSampler | None = None,
    seed: int = 0,
) -> Trace:
    """A Poisson arrival process at ``qps`` requests per second."""
    if qps <= 0 or n_requests < 1:
        raise ValueError("qps must be positive and n_requests >= 1")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / qps, size=n_requests)
    return _trace_from_gaps(gaps, lengths or fixed_lengths(), rng)


def gamma_trace(
    qps: float,
    n_requests: int,
    cv: float = 2.0,
    lengths: LengthSampler | None = None,
    seed: int = 0,
) -> Trace:
    """Gamma-gap arrivals with coefficient of variation ``cv``.

    Mean gap is ``1/qps``; ``cv > 1`` produces bursts separated by lulls
    (shape ``1/cv**2 < 1``), the regime where tail latencies blow up first.
    ``cv = 1`` is exactly Poisson.
    """
    if qps <= 0 or n_requests < 1 or cv <= 0:
        raise ValueError("qps, n_requests and cv must be positive")
    rng = np.random.default_rng(seed)
    shape = 1.0 / cv**2
    gaps = rng.gamma(shape, scale=cv**2 / qps, size=n_requests)
    return _trace_from_gaps(gaps, lengths or fixed_lengths(), rng)


def static_trace(batch: Batch) -> Trace:
    """All requests of ``batch`` arrive at t=0 (static-batching parity)."""
    return Trace.from_batch(batch)


def multiturn_chat_trace(
    session_qps: float,
    n_sessions: int,
    turns: int = 4,
    *,
    first_input: int = 128,
    user_tokens: int = 32,
    output_len: int = 48,
    think_s: float = 4.0,
    seed: int = 0,
) -> Trace:
    """Multi-turn chat sessions whose turns share a growing token prefix.

    Sessions open as a Poisson process at ``session_qps``.  Each session
    runs ``turns`` turns: turn 0 sends ``first_input`` prompt tokens, and
    every later turn re-sends the whole conversation so far — previous
    prompt, the model's answer, plus fresh user tokens (uniform in
    ``[1, 2 * user_tokens)``) — as its prompt.  Answer lengths are uniform
    in ``[ceil(output_len / 2), 2 * output_len)``.  Turns within a session
    are separated by exponential think-time gaps with mean ``think_s``.

    Every turn of session ``s`` carries ``session_id=s``, so a
    prefix-caching scheduler can reuse the blocks of turn ``j`` when turn
    ``j + 1`` arrives.  Requests are re-numbered 0..n-1 in arrival order
    (arrivals interleave across sessions).
    """
    if session_qps <= 0 or n_sessions < 1 or turns < 1:
        raise ValueError("session_qps, n_sessions and turns must be positive")
    if first_input < 1 or user_tokens < 1 or output_len < 1 or think_s <= 0:
        raise ValueError("token counts and think_s must be positive")
    rng = np.random.default_rng(seed)
    openings = np.cumsum(rng.exponential(1.0 / session_qps, size=n_sessions))
    rows: list[tuple[float, int, int, int]] = []
    for session, opening in enumerate(openings):
        arrival = float(opening)
        history = 0
        for turn in range(turns):
            fresh = (
                first_input if turn == 0
                else int(rng.integers(1, 2 * user_tokens))
            )
            inp = history + fresh
            out = int(rng.integers((output_len + 1) // 2, 2 * output_len))
            rows.append((arrival, session, inp, out))
            history = inp + out
            arrival += float(rng.exponential(think_s))
    rows.sort(key=lambda row: row[0])
    return Trace(tuple(
        TimedRequest(Request(i, inp, out, session_id=session), arrival)
        for i, (arrival, session, inp, out) in enumerate(rows)
    ))


# ---------------------------------------------------------------------------
# replay files
# ---------------------------------------------------------------------------


def save_trace(trace: Trace, path: pathlib.Path | str) -> pathlib.Path:
    """Write a trace as a JSON replay file."""
    path = pathlib.Path(path)
    path.write_text(json.dumps({"requests": trace.to_payload()}, indent=1))
    return path


def load_trace(path: pathlib.Path | str) -> Trace:
    """Reload a trace written by :func:`save_trace` (or hand-authored)."""
    payload = json.loads(pathlib.Path(path).read_text())
    return Trace.from_payload(payload["requests"])
