"""Serving workload generation and the batched serving loop."""

from repro.workloads.requests import Batch, Request, sampled_batch, uniform_batch
from repro.workloads.serving import ServingResult, ServingSimulator, generate_tokens

__all__ = [
    "Batch",
    "Request",
    "sampled_batch",
    "uniform_batch",
    "ServingResult",
    "ServingSimulator",
    "generate_tokens",
]
