"""Serving workload generation and the batched serving loop."""

from repro.workloads.requests import (
    Batch,
    Request,
    TimedRequest,
    Trace,
    sampled_batch,
    uniform_batch,
)
from repro.workloads.serving import (
    ServingResult,
    ServingSimulator,
    clamped_stride,
    generate_tokens,
)

__all__ = [
    "Batch",
    "Request",
    "TimedRequest",
    "Trace",
    "sampled_batch",
    "uniform_batch",
    "ServingResult",
    "ServingSimulator",
    "clamped_stride",
    "generate_tokens",
]
