"""Batched serving loop: prefill + token-by-token decode.

Two simulators share this module:

* :class:`ServingSimulator` — *performance*: walks a batch through a
  :class:`~repro.perf.system.ServingSystem`, pricing every decode step at
  its true context length (this is what Fig. 15's latency-vs-output-token
  curves need — no midpoint approximation).
* :func:`generate_tokens` — *functional*: greedy decoding with a real
  (tiny) model from ``repro.models``, exercising cache handling end to
  end; used by the examples and integration tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.models.base import BaseLlm
from repro.models.config import ModelSpec
from repro.perf.system import ServingSystem
from repro.workloads.requests import Batch


@dataclasses.dataclass(frozen=True)
class ServingResult:
    """Timing of one batch through a serving system."""

    prefill_seconds: float
    decode_seconds: float
    step_seconds: tuple[float, ...]
    generated_tokens: int

    @property
    def total_seconds(self) -> float:
        return self.prefill_seconds + self.decode_seconds

    @property
    def generation_throughput(self) -> float:
        """Tokens per second of decode time (the Fig. 12 metric)."""
        if self.decode_seconds == 0:
            return 0.0
        return self.generated_tokens / self.decode_seconds


def clamped_stride(step_stride: int, output_len: int) -> int:
    """Pricing stride for a decode of ``output_len`` tokens.

    A stride wider than the decode itself would collapse the anchor grid to
    the single leading point, pricing every step at the context of the
    first; clamp so the grid always has at least a start and a midpoint
    anchor.  Shared by :class:`ServingSimulator` and the request-level
    engine (:mod:`repro.serving`) so static batching prices identically on
    both paths.
    """
    if step_stride < 1:
        raise ValueError("step_stride must be positive")
    return min(step_stride, max(1, output_len // 2))


class ServingSimulator:
    """Prices a whole batch on a serving system, step by step."""

    def __init__(self, system: ServingSystem, spec: ModelSpec):
        self.system = system
        self.spec = spec

    def run(self, batch: Batch, step_stride: int = 32) -> ServingResult:
        """Serve ``batch``; decode steps are priced every ``step_stride``
        tokens and interpolated (attention cost varies smoothly)."""
        b = batch.size
        input_len = batch.max_input_len
        output_len = batch.max_output_len
        step_stride = clamped_stride(step_stride, output_len)

        prefill = self.system.prefill_latency(self.spec, b, input_len)
        steps: list[float] = []
        cached: dict[int, float] = {}
        for t in range(output_len):
            anchor = (t // step_stride) * step_stride
            if anchor not in cached:
                seq = input_len + anchor
                cached[anchor] = self.system.step_latency(self.spec, b, seq).total
            steps.append(cached[anchor])
        return ServingResult(
            prefill_seconds=prefill,
            decode_seconds=float(np.sum(steps)),
            step_seconds=tuple(steps),
            generated_tokens=batch.generated_tokens,
        )

    def latency_curve(
        self, batch: Batch, checkpoints: tuple[int, ...]
    ) -> dict[int, float]:
        """Cumulative latency after N output tokens (Fig. 15 left)."""
        result = self.run(batch)
        curve = {}
        for n in checkpoints:
            if not 0 < n <= len(result.step_seconds):
                raise ValueError(f"checkpoint {n} outside the decode range")
            curve[n] = result.prefill_seconds + float(
                np.sum(result.step_seconds[:n])
            )
        return curve


def generate_tokens(
    model: BaseLlm,
    prompts: np.ndarray,
    n_tokens: int,
    greedy: bool = True,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Functional generation with a tiny model: (batch, prompt_len) ->
    (batch, n_tokens) of generated ids."""
    prompts = np.asarray(prompts)
    if prompts.ndim != 2:
        raise ValueError("prompts must be (batch, prompt_len)")
    cache = model.init_cache(prompts.shape[0])
    logits = None
    for t in range(prompts.shape[1]):
        logits = model.step(prompts[:, t], cache)
    out = []
    rng = rng or np.random.default_rng(0)
    for _ in range(n_tokens):
        if greedy:
            token = np.argmax(logits, axis=-1)
        else:
            probs = np.exp(logits - logits.max(axis=-1, keepdims=True))
            probs /= probs.sum(axis=-1, keepdims=True)
            token = np.array([
                rng.choice(len(p), p=p) for p in probs
            ])
        out.append(token)
        logits = model.step(token, cache)
    return np.stack(out, axis=1)
