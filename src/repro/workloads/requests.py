"""Serving request traces (the workload generator behind Figs. 12-16).

The paper evaluates fixed-shape batches — (input, output) = (2048, 2048)
for throughput, (1024, 1024) for the NeuPIMs study — but the generator
also produces randomized traces for stress tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class Request:
    """One user request in a serving batch."""

    request_id: int
    input_len: int
    output_len: int

    def __post_init__(self) -> None:
        if self.input_len < 1 or self.output_len < 1:
            raise ValueError("request lengths must be positive")

    @property
    def total_len(self) -> int:
        return self.input_len + self.output_len


@dataclasses.dataclass(frozen=True)
class Batch:
    """A batch of requests served together (static batching, as evaluated)."""

    requests: tuple[Request, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("batch must contain at least one request")

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def max_input_len(self) -> int:
        return max(r.input_len for r in self.requests)

    @property
    def max_output_len(self) -> int:
        return max(r.output_len for r in self.requests)

    @property
    def generated_tokens(self) -> int:
        return sum(r.output_len for r in self.requests)


def uniform_batch(batch_size: int, input_len: int = 2048, output_len: int = 2048) -> Batch:
    """The paper's fixed-shape batch."""
    return Batch(tuple(
        Request(i, input_len, output_len) for i in range(batch_size)
    ))


def sampled_batch(
    batch_size: int,
    rng: np.random.Generator,
    mean_input: int = 1024,
    mean_output: int = 512,
) -> Batch:
    """A lognormal-ish trace for robustness tests."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    inputs = np.maximum(1, rng.poisson(mean_input, size=batch_size))
    outputs = np.maximum(1, rng.poisson(mean_output, size=batch_size))
    return Batch(tuple(
        Request(i, int(inp), int(out))
        for i, (inp, out) in enumerate(zip(inputs, outputs))
    ))
