"""Serving request traces (the workload generator behind Figs. 12-16).

The paper evaluates fixed-shape batches — (input, output) = (2048, 2048)
for throughput, (1024, 1024) for the NeuPIMs study — but the generator
also produces randomized traces for stress tests.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class Request:
    """One user request in a serving batch.

    ``session_id`` groups the turns of one multi-turn conversation:
    every turn's prompt is the session's token history so far, so two
    requests of one session share a growing token prefix — what a
    prefix-caching scheduler reuses.  ``None`` (the default) means the
    request shares tokens with nobody.
    """

    request_id: int
    input_len: int
    output_len: int
    session_id: int | None = None

    def __post_init__(self) -> None:
        if self.input_len < 1 or self.output_len < 1:
            raise ValueError("request lengths must be positive")

    @property
    def total_len(self) -> int:
        return self.input_len + self.output_len


@dataclasses.dataclass(frozen=True)
class Batch:
    """A batch of requests served together (static batching, as evaluated)."""

    requests: tuple[Request, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("batch must contain at least one request")

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def max_input_len(self) -> int:
        return max(r.input_len for r in self.requests)

    @property
    def max_output_len(self) -> int:
        return max(r.output_len for r in self.requests)

    @property
    def generated_tokens(self) -> int:
        return sum(r.output_len for r in self.requests)


@dataclasses.dataclass(frozen=True)
class TimedRequest:
    """A request stamped with its arrival time (request-level serving).

    The three handoff fields describe a *continuation*: a request whose
    prompt KV was already computed on another replica (a disaggregated
    prefill node) and arrives over the wire instead of being recomputed.
    ``prefilled_tokens`` is all-or-nothing — either 0 (an ordinary
    request) or the full ``input_len`` (the continuation of a finished
    prefill); ``handoff_s``/``handoff_bytes`` price the transfer that
    the destination engine serializes into its clock at admission.
    Continuations are in-memory only: trace JSON never carries them.
    """

    request: Request
    arrival_s: float
    #: prompt tokens whose KV arrives precomputed (0 or ``input_len``)
    prefilled_tokens: int = 0
    #: wire seconds the KV handoff costs the destination clock
    handoff_s: float = 0.0
    #: KV + state bytes moved by the handoff (counter, not a cost)
    handoff_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.prefilled_tokens not in (0, self.request.input_len):
            raise ValueError(
                "prefilled_tokens is all-or-nothing: 0 or the full "
                f"input_len, got {self.prefilled_tokens} of "
                f"{self.request.input_len}"
            )
        if self.handoff_s < 0 or self.handoff_bytes < 0:
            raise ValueError("handoff cost fields must be non-negative")
        if self.prefilled_tokens == 0 and (
            self.handoff_s or self.handoff_bytes
        ):
            raise ValueError(
                "handoff costs require prefilled_tokens (nothing moved)"
            )

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def input_len(self) -> int:
        return self.request.input_len

    @property
    def output_len(self) -> int:
        return self.request.output_len

    @property
    def session_id(self) -> int | None:
        return self.request.session_id


@dataclasses.dataclass(frozen=True)
class Trace:
    """A stream of timed requests, ordered by arrival.

    The request-level analogue of :class:`Batch`: where a batch is the
    paper's fixed-shape evaluation unit, a trace is what a serving cluster
    actually sees — requests arriving over time, each with its own lengths.

    A trace may be *empty*: a cluster replica that the router never
    dispatches to effectively serves the empty trace, and the 1-replica
    equivalence only holds everywhere if the bare engine accepts it too
    (it serves to a zero-span record with NaN percentiles).
    """

    requests: tuple[TimedRequest, ...]

    def __post_init__(self) -> None:
        arrivals = [r.arrival_s for r in self.requests]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("trace arrivals must be non-decreasing")

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def duration_s(self) -> float:
        """Time span between the first and the last arrival (0 if empty)."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_s - self.requests[0].arrival_s

    @property
    def offered_qps(self) -> float:
        """Average arrival rate over the trace's span (0 for a burst)."""
        if self.duration_s == 0:
            return 0.0
        return (self.n_requests - 1) / self.duration_s

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_len for r in self.requests)

    @classmethod
    def from_batch(cls, batch: Batch, arrival_s: float = 0.0) -> "Trace":
        """A burst trace: every request of ``batch`` arrives at once."""
        return cls(tuple(TimedRequest(r, arrival_s) for r in batch.requests))

    def partition(self, labels: "Sequence[int]") -> dict[int, "Trace"]:
        """Split by a per-request label (e.g. a router's replica choice).

        Arrival order is preserved inside every part, so each part is a
        valid trace; labels that never occur simply have no entry.
        """
        if len(labels) != self.n_requests:
            raise ValueError(
                f"got {len(labels)} labels for {self.n_requests} requests"
            )
        parts: dict[int, list[TimedRequest]] = {}
        for request, label in zip(self.requests, labels):
            parts.setdefault(int(label), []).append(request)
        return {label: Trace(tuple(rs)) for label, rs in parts.items()}

    @classmethod
    def merge(cls, traces: "Sequence[Trace]") -> "Trace":
        """Interleave several traces back into one arrival-ordered stream.

        The stable sort keeps same-instant requests in the order of the
        ``traces`` argument, so ``merge(partition(...).values())`` restores
        a round-trip whenever arrivals are distinct.
        """
        if not traces:
            raise ValueError("cannot merge zero traces")
        requests = [r for trace in traces for r in trace.requests]
        requests.sort(key=lambda r: r.arrival_s)
        return cls(tuple(requests))

    def to_payload(self) -> list[dict]:
        """JSON-serializable form (see :func:`repro.serving.save_trace`).

        ``session_id`` is emitted only when present, so sessionless
        corpus files keep their historical byte-for-byte shape (the
        replay sweep pins them by content hash).
        """
        payload = []
        for r in self.requests:
            entry = {
                "request_id": r.request_id,
                "input_len": r.input_len,
                "output_len": r.output_len,
                "arrival_s": r.arrival_s,
            }
            if r.session_id is not None:
                entry["session_id"] = r.session_id
            payload.append(entry)
        return payload

    @classmethod
    def from_payload(cls, payload: list[dict]) -> "Trace":
        return cls(tuple(
            TimedRequest(
                Request(
                    int(d["request_id"]),
                    int(d["input_len"]),
                    int(d["output_len"]),
                    session_id=(
                        int(d["session_id"])
                        if d.get("session_id") is not None
                        else None
                    ),
                ),
                float(d["arrival_s"]),
            )
            for d in payload
        ))


def uniform_batch(
    batch_size: int, input_len: int = 2048, output_len: int = 2048
) -> Batch:
    """The paper's fixed-shape batch."""
    return Batch(tuple(
        Request(i, input_len, output_len) for i in range(batch_size)
    ))


def sampled_batch(
    batch_size: int,
    rng: np.random.Generator,
    mean_input: int = 1024,
    mean_output: int = 512,
) -> Batch:
    """A lognormal-ish trace for robustness tests."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    inputs = np.maximum(1, rng.poisson(mean_input, size=batch_size))
    outputs = np.maximum(1, rng.poisson(mean_output, size=batch_size))
    return Batch(tuple(
        Request(i, int(inp), int(out))
        for i, (inp, out) in enumerate(zip(inputs, outputs))
    ))
