"""Quickstart: generate text through a Pimba-backed Mamba-2 and estimate
the serving speedup of offloading its state updates to PIM.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.experiments import ExperimentSpec, Runner
from repro.experiments.catalog import FIG12_SYSTEMS
from repro.models import Family, build_tiny
from repro.perf import OpKind
from repro.quant import get_format
from repro.workloads import generate_tokens


def main() -> None:
    # --- 1. functional: a tiny Mamba-2 whose state lives in MX8+SR -------
    print("1) Functional generation with MX8+SR state storage")
    exact = build_tiny(Family.MAMBA2, seed=7)
    pimba = build_tiny(
        Family.MAMBA2, seed=7,
        state_format=get_format("mx8SR"), kv_format=get_format("mx8SR"),
    )
    prompts = np.random.default_rng(0).integers(0, 256, size=(2, 8))
    out_exact = generate_tokens(exact, prompts, 12)
    out_pimba = generate_tokens(pimba, prompts, 12)
    agree = float((out_exact == out_pimba).mean())
    print(f"   tokens (exact state): {out_exact[0].tolist()}")
    print(f"   tokens (MX8+SR state): {out_pimba[0].tolist()}")
    print(f"   agreement under greedy decoding: {agree:.0%}\n")

    # --- 2. performance: what Pimba buys at serving scale -----------------
    # One engine sweep over the system axis; results come from the on-disk
    # cache on a rerun.
    print("2) Serving Mamba-2 2.7B at batch 128, (2048, 2048)")
    spec = ExperimentSpec(
        name="quickstart",
        trial_fn="serving_throughput",
        axes={"system": FIG12_SYSTEMS},
        fixed={"model": "Mamba-2", "batch": 128, "scale": "small"},
    )
    report = Runner().run(spec)
    su = OpKind.STATE_UPDATE.value
    for system, m in report.mapping("system").items():
        su_ms = m["step_by_kind"].get(su, 0.0) * 1e3
        print(f"   {system:8s} {m['tokens_per_second']:8.0f} tok/s   "
              f"step {m['step_total']*1e3:6.2f} ms   state update {su_ms:6.2f} ms "
              f"on {m['placements'].get(su, '-')}")
    print(f"\n   [{report.summary()}]")


if __name__ == "__main__":
    main()
