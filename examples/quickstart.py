"""Quickstart: generate text through a Pimba-backed Mamba-2 and estimate
the serving speedup of offloading its state updates to PIM.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.models import Family, build_tiny, mamba2_2p7b
from repro.perf import OpKind, SystemKind, build_system
from repro.quant import get_format
from repro.workloads import generate_tokens


def main() -> None:
    # --- 1. functional: a tiny Mamba-2 whose state lives in MX8+SR -------
    print("1) Functional generation with MX8+SR state storage")
    exact = build_tiny(Family.MAMBA2, seed=7)
    pimba = build_tiny(
        Family.MAMBA2, seed=7,
        state_format=get_format("mx8SR"), kv_format=get_format("mx8SR"),
    )
    prompts = np.random.default_rng(0).integers(0, 256, size=(2, 8))
    out_exact = generate_tokens(exact, prompts, 12)
    out_pimba = generate_tokens(pimba, prompts, 12)
    agree = float((out_exact == out_pimba).mean())
    print(f"   tokens (exact state): {out_exact[0].tolist()}")
    print(f"   tokens (MX8+SR state): {out_pimba[0].tolist()}")
    print(f"   agreement under greedy decoding: {agree:.0%}\n")

    # --- 2. performance: what Pimba buys at serving scale -----------------
    print("2) Serving Mamba-2 2.7B at batch 128, (2048, 2048)")
    spec = mamba2_2p7b()
    for kind in (SystemKind.GPU, SystemKind.GPU_Q, SystemKind.GPU_PIM,
                 SystemKind.PIMBA):
        system = build_system(kind, "small")
        metrics = system.generation_metrics(spec, 128)
        step = metrics.step
        su_ms = step.seconds_by_kind.get(OpKind.STATE_UPDATE, 0.0) * 1e3
        print(f"   {kind.value:8s} {metrics.tokens_per_second:8.0f} tok/s   "
              f"step {step.total*1e3:6.2f} ms   state update {su_ms:6.2f} ms "
              f"on {step.placements.get(OpKind.STATE_UPDATE, '-')}")


if __name__ == "__main__":
    main()
