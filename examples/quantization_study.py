"""Quantization study: how storage formats damage a recurrent state.

Reproduces the Fig. 4 mechanism on one model family: sweep the nine
formats through the cached experiment engine, show the swamping blow-up
of fp8, the stochastic-rounding rescue, and MX8's fp16-grade fidelity —
then check a downstream proxy task (Table 2 style).

Run:  python examples/quantization_study.py [--family gla|retnet|mamba2|hgrn2|opt]
"""

import argparse

import numpy as np

from repro.accuracy import (
    SyntheticLm,
    TaskSpec,
    build_items,
    task_accuracy,
)
from repro.experiments import Runner
from repro.experiments.catalog import quant_spec
from repro.models import Family
from repro.quant import FIG4_FORMATS

FAMILIES = {f.value: f for f in Family}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", choices=sorted(FAMILIES), default="gla")
    args = parser.parse_args()
    family = FAMILIES[args.family]

    print(f"Perplexity of {family.value} under state/KV storage formats")
    report = Runner().run(quant_spec(family=family.value))
    results = report.mapping("fmt")
    base = results["fp64"]
    for fmt in ("fp64",) + FIG4_FORMATS:
        ppl = results[fmt]
        bar = "#" * int(min(60, 40 * (ppl / base - 1) * 10 + 1))
        print(f"  {fmt:8s} {ppl:8.2f}  (+{100 * (ppl / base - 1):5.1f}%) {bar}")
    print(f"  [{report.summary()}]")

    print("\nDownstream proxy task (state-dependent multiple choice):")
    lm = SyntheticLm(family)
    task = TaskSpec("probe", n_choices=2, context_len=48, continuation_len=12)
    items = build_items(lm, task, 16, np.random.default_rng(0))
    for label, model in (
        ("GPU fp16", lm.teacher),
        ("Pimba mx8SR", lm.build_student("mx8SR")),
        ("e5m2 (nearest)", lm.build_student("e5m2")),
    ):
        acc = task_accuracy(model, items, lm.temperature)
        print(f"  {label:16s} accuracy {acc:.0%}")


if __name__ == "__main__":
    main()
