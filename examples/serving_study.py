"""Serving study, request level: what each system's throughput means for
real traffic — TTFT/TPOT tails, queue depths, and goodput under an SLO.

Built on ``repro.serving``: a seeded Poisson arrival trace is served by
every system with FCFS continuous batching (and, for comparison, static
batching, prefill shaping — chunked prefill and prefill/decode overlap —
and the HBM-capacity-aware policy on the strongest contenders).
All grids run through the ``repro.experiments`` engine, so reruns are
served from the result cache.

Run:  python examples/serving_study.py [--qps N ...] [--model NAME] [--jobs N]
"""

import argparse

from repro.experiments import ExperimentSpec, Runner
from repro.serving.experiments import SERVING_SYSTEMS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="Zamba2")
    parser.add_argument("--qps", type=float, nargs="+",
                        default=[2.0, 6.0, 10.0, 14.0])
    parser.add_argument("--n-requests", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()
    runner = Runner(max_workers=args.jobs, use_cache=not args.no_cache)
    fixed = dict(model=args.model, n_requests=args.n_requests,
                 max_batch=args.max_batch)

    print(f"{args.model}, Poisson arrivals, (1024, 256) requests, "
          f"{args.max_batch} slots, SLO: TTFT<=2s TPOT<=18ms\n")

    spec = ExperimentSpec(
        name="serving-study",
        trial_fn="serving_slo",
        axes={"system": SERVING_SYSTEMS, "qps": tuple(args.qps)},
        fixed=fixed,
    )
    results = runner.run(spec).mapping("system", "qps")

    header = (f"{'system':8s} {'qps':>6s} {'ttft p50':>9s} {'ttft p99':>9s} "
              f"{'tpot p99':>9s} {'queue':>6s} {'tok/s':>7s} "
              f"{'goodput':>8s} {'SLO %':>6s}")
    print(header)
    for system in SERVING_SYSTEMS:
        for qps in args.qps:
            m = results[(system, qps)]
            print(f"{system:8s} {qps:6.1f} {m['ttft_p50_s']:8.2f}s "
                  f"{m['ttft_p99_s']:8.2f}s {m['tpot_p99_s']*1e3:7.1f}ms "
                  f"{m['mean_queue_depth']:6.1f} "
                  f"{m['throughput_tokens_per_s']:7.0f} "
                  f"{m['goodput_rps']:8.2f} {m['slo_attainment']*100:5.0f}%")
        print()

    # Scheduler face-off at the load where the GPU baseline saturates:
    # full static batches vs. iteration-level admission at matched slots,
    # then prefill shaping (Sarathi-style chunked prefill and
    # NeuPIMs-style overlap at a 256-token budget), and finally
    # HBM-capacity-aware packing (no slot cap — residency is bounded by
    # the state+KV footprint at the storage format's true byte width, so
    # Pimba's MX8 fits ~2x the concurrent requests of fp16).
    qps = max(args.qps)
    sched_spec = ExperimentSpec(
        name="serving-study-schedulers",
        trial_fn="serving_slo",
        axes={
            "scheduler": ("static", "fcfs", "chunked", "overlap"),
            "system": ("GPU", "Pimba"),
        },
        fixed={**fixed, "qps": qps},
    )
    by_policy = runner.run(sched_spec).mapping("scheduler", "system")
    capacity_spec = ExperimentSpec(
        name="serving-study-capacity",
        trial_fn="serving_slo",
        axes={"system": ("GPU", "Pimba")},
        fixed={**fixed, "qps": qps, "scheduler": "memory",
               "max_batch": 512, "capacity_gib": 24.0},
    )
    by_capacity = runner.run(capacity_spec).mapping("system")

    print(f"Scheduler comparison at qps={qps:.0f} (goodput req/s, ttft p99):")
    for scheduler in ("static", "fcfs", "chunked", "overlap"):
        row = []
        for system in ("GPU", "Pimba"):
            m = by_policy[(scheduler, system)]
            row.append(f"{system} {m['goodput_rps']:5.2f} / "
                       f"{m['ttft_p99_s']:5.2f}s")
        print(f"  {scheduler:12s} " + "   ".join(row))
    row = []
    for system in ("GPU", "Pimba"):
        m = by_capacity[system]
        row.append(f"{system} {m['goodput_rps']:5.2f} / "
                   f"{m['ttft_p99_s']:5.2f}s")
    print(f"  {'memory@24GiB':12s} " + "   ".join(row))


if __name__ == "__main__":
    main()
