"""Serving study: throughput, latency breakdown and memory for all six
evaluated models under every system — a miniature of Figs. 12/13.

Driven by the ``repro.experiments`` engine: the model x system grid fans
out over worker processes and is served from the result cache on reruns.

Run:  python examples/serving_study.py [--scale small|large] [--jobs N]
"""

import argparse

from repro.experiments import ExperimentSpec, Runner
from repro.experiments.catalog import FIG12_SYSTEMS as SYSTEMS
from repro.models import MODEL_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "large"), default="large")
    parser.add_argument("--batch", type=int, default=128)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()
    runner = Runner(max_workers=args.jobs, use_cache=not args.no_cache)

    print(f"scale={args.scale}, batch={args.batch}, (2048, 2048) lengths\n")
    sim_spec = ExperimentSpec(
        name="serving-study",
        trial_fn="served_throughput",
        axes={"model": MODEL_NAMES, "system": SYSTEMS},
        fixed={"batch": args.batch, "scale": args.scale},
    )
    tput = {
        key: value["generation_throughput"]
        for key, value in runner.run(sim_spec).mapping("model", "system").items()
    }
    header = f"{'model':10s} " + "".join(f"{s:>10s}" for s in SYSTEMS)
    print(header + f"{'Pimba gain':>12s}")
    for name in MODEL_NAMES:
        gain = tput[(name, "Pimba")] / tput[(name, "GPU")]
        print(f"{name:10s} "
              + "".join(f"{tput[(name, s)]:10.0f}" for s in SYSTEMS)
              + f"{gain:11.2f}x")

    # The step breakdown and memory numbers ride on the same trial function
    # (and therefore the same cache entries) as Fig. 12's metric.
    step_spec = ExperimentSpec(
        name="serving-study-breakdown",
        trial_fn="serving_throughput",
        axes={"model": ("RetNet", "Mamba-2", "OPT"), "system": ("GPU", "Pimba")},
        fixed={"batch": args.batch, "scale": args.scale},
    )
    detail = runner.run(step_spec).mapping("model", "system")

    print("\nWhere does Pimba's time go? (RetNet, batch 128, mid-generation)")
    for system in ("GPU", "Pimba"):
        m = detail[("RetNet", system)]
        parts = ", ".join(
            f"{kind}={seconds*1e3:.2f}ms" for kind, seconds in m["step_by_kind"].items()
            if seconds > m["step_total"] * 0.02
        )
        print(f"  {system:8s} total {m['step_total']*1e3:7.2f} ms   ({parts})")

    print("\nPer-device memory at seq 4096 (GiB):")
    for name in ("Mamba-2", "OPT"):
        for system in ("GPU", "Pimba"):
            mem = detail[(name, system)]["memory_bytes"]
            print(f"  {name:8s} {system:8s} {mem/2**30:8.1f}")


if __name__ == "__main__":
    main()
