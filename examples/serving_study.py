"""Serving study: throughput, latency breakdown and memory for all six
evaluated models under every system — a miniature of Figs. 12/13.

Run:  python examples/serving_study.py [--scale small|large]
"""

import argparse

from repro.models import MODEL_NAMES, spec_for
from repro.perf import OpKind, SystemKind, build_system
from repro.workloads import ServingSimulator, uniform_batch

SYSTEMS = (SystemKind.GPU, SystemKind.GPU_Q, SystemKind.GPU_PIM, SystemKind.PIMBA)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "large"), default="large")
    parser.add_argument("--batch", type=int, default=128)
    args = parser.parse_args()

    print(f"scale={args.scale}, batch={args.batch}, (2048, 2048) lengths\n")
    header = f"{'model':10s} " + "".join(f"{k.value:>10s}" for k in SYSTEMS)
    print(header + f"{'Pimba gain':>12s}")
    for name in MODEL_NAMES:
        spec = spec_for(name, args.scale)
        tput = {}
        for kind in SYSTEMS:
            sim = ServingSimulator(build_system(kind, args.scale), spec)
            result = sim.run(uniform_batch(args.batch))
            tput[kind] = result.generation_throughput
        gain = tput[SystemKind.PIMBA] / tput[SystemKind.GPU]
        print(f"{name:10s} " + "".join(f"{tput[k]:10.0f}" for k in SYSTEMS)
              + f"{gain:11.2f}x")

    print("\nWhere does Pimba's time go? (RetNet, batch 128)")
    spec = spec_for("RetNet", args.scale)
    for kind in (SystemKind.GPU, SystemKind.PIMBA):
        step = build_system(kind, args.scale).step_latency(spec, args.batch, 3072)
        parts = ", ".join(
            f"{k.value}={v*1e3:.2f}ms" for k, v in step.seconds_by_kind.items()
            if v > step.total * 0.02
        )
        print(f"  {kind.value:8s} total {step.total*1e3:7.2f} ms   ({parts})")

    print("\nPer-device memory at seq 4096 (GiB):")
    for name in ("Mamba-2", "OPT"):
        spec = spec_for(name, args.scale)
        for kind in (SystemKind.GPU, SystemKind.PIMBA):
            mem = build_system(kind, args.scale).memory_usage(spec, args.batch, 4096)
            print(f"  {name:8s} {kind.value:8s} {mem/2**30:8.1f}")


if __name__ == "__main__":
    main()
