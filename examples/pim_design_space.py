"""PIM design-space exploration: sharing, pipelining, and formats.

Sweeps the accelerator organization (per-bank time-multiplexed, per-bank
pipelined, Pimba's shared SPU) crossed with storage formats, and prints
each point's state-update throughput, area overhead and unit power — the
landscape behind Figs. 5/6 and Table 3.

Run:  python examples/pim_design_space.py
"""

from repro.core import PimbaAccelerator, PimbaConfig, PimDesign
from repro.hw import area_overhead_percent, unit_power
from repro.models import mamba2_2p7b


def main() -> None:
    spec = mamba2_2p7b()
    heads = 128 * spec.n_heads  # batch 128
    designs = {
        "time-mux/bank": dict(design=PimDesign.TIME_MULTIPLEXED, time_mux_sharing=1),
        "time-mux/2banks": dict(design=PimDesign.TIME_MULTIPLEXED, time_mux_sharing=2),
        "pipelined/bank": dict(design=PimDesign.PER_BANK_PIPELINED),
        "pimba shared SPU": dict(design=PimDesign.SHARED_PIPELINED),
    }
    formats = ("fp16", "int8", "mx8SR")

    print(f"{'design':18s} {'format':8s} {'M subchunks/s':>14s} "
          f"{'area %':>8s} {'mW/unit':>8s} {'budget':>8s}")
    for dname, overrides in designs.items():
        for fmt in formats:
            cfg = PimbaConfig(state_format=fmt, **overrides)
            pim = PimbaAccelerator(cfg)
            t = pim.state_update_timing(heads, spec.dim_head, spec.dim_state)
            rate = t.sweep.rows * cfg.hbm.organization.columns_per_row / t.seconds
            area = area_overhead_percent(cfg)
            power = unit_power(cfg).milliwatts
            ok = "OK" if area < 25 else "OVER"
            print(f"{dname:18s} {fmt:8s} {rate/1e6:14.1f} "
                  f"{area:8.1f} {power:8.2f} {ok:>8s}")

    print("\nTakeaway: only the shared SPU keeps pipelined throughput under")
    print("the 25% logic budget, and MX8 halves the sweep on top of it.")


if __name__ == "__main__":
    main()
