"""PIM design-space exploration: sharing, pipelining, and formats.

Sweeps the accelerator organization (per-bank time-multiplexed, per-bank
pipelined, Pimba's shared SPU) crossed with storage formats, and prints
each point's state-update throughput, area overhead and unit power — the
landscape behind Figs. 5/6 and Table 3.  The grid is the registered
``design-space`` sweep, so ``repro sweep design-space`` prints the raw
trial values behind this table.

Run:  python examples/pim_design_space.py
"""

from repro.experiments import Runner
from repro.experiments.catalog import DESIGN_SPACE, design_space_spec


def main() -> None:
    spec = design_space_spec()
    report = Runner().run(spec)
    points = report.mapping("design", "fmt")

    print(f"{'design':18s} {'format':8s} {'M subchunks/s':>14s} "
          f"{'area %':>8s} {'mW/unit':>8s} {'budget':>8s}")
    for dname in DESIGN_SPACE:
        for fmt in spec.axes["fmt"]:
            point = points[(dname, fmt)]
            ok = "OK" if point["area_pct"] < 25 else "OVER"
            print(f"{dname:18s} {fmt:8s} {point['subchunks_per_s']/1e6:14.1f} "
                  f"{point['area_pct']:8.1f} {point['unit_mw']:8.2f} {ok:>8s}")

    print(f"\n[{report.summary()}]")
    print("\nTakeaway: only the shared SPU keeps pipelined throughput under")
    print("the 25% logic budget, and MX8 halves the sweep on top of it.")


if __name__ == "__main__":
    main()
