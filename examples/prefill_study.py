"""Prefill shaping study: how much of the TTFT tail is blocked prefill?

The paper's systems execute in a blocked fashion (Section 5.6): every
admission stalls the running decode batch for one monolithic
compute-bound prefill.  This study serves the same saturating trace
under the two standard fixes — Sarathi-style chunked prefill (the decode
batch piggybacks into each chunk iteration; iterations are priced as
chunk + decode) and NeuPIMs-style sub-batch overlap (prefill and decode
run concurrently; iterations are priced at max(chunk, decode)) — across
a chunk-budget grid, with the blocked FCFS engine as the anchor (the
chunked scheduler at a whole-prompt budget *is* FCFS, bit for bit).

What to look for: the overlap scheduler's TTFT p99 falls monotonically
as the budget shrinks while its TPOT p99 stays above the blocked
baseline's (the quantified tradeoff), and the budget where TTFT bottoms
out differs per system — Pimba's PIM-side decode keeps smaller chunks
profitable for longer than the GPU baseline.

Run:  python examples/prefill_study.py [--budgets N ...] [--jobs N]
"""

import argparse

from repro.experiments import ExperimentSpec, Runner
from repro.serving.experiments import CHUNK_BUDGET_GRID, CHUNKING_LOAD


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="Zamba2")
    parser.add_argument("--systems", nargs="+", default=["GPU", "Pimba"])
    parser.add_argument("--budgets", type=int, nargs="+",
                        default=list(CHUNK_BUDGET_GRID))
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()
    runner = Runner(max_workers=args.jobs, use_cache=not args.no_cache)

    load = {**CHUNKING_LOAD, "model": args.model}
    print(f"{args.model}, Poisson arrivals at qps={load['qps']:.0f}, "
          f"({load['input_len']}, {load['output_len']}) requests, "
          f"{load['max_batch']} slots; anchor = blocked FCFS\n")

    anchor_spec = ExperimentSpec(
        name="prefill-study-anchor",
        trial_fn="serving_slo",
        axes={"system": tuple(args.systems)},
        fixed={**load, "scheduler": "fcfs"},
    )
    anchors = runner.run(anchor_spec).mapping("system")

    shaped_spec = ExperimentSpec(
        name="prefill-study",
        trial_fn="serving_slo",
        axes={
            "system": tuple(args.systems),
            "scheduler": ("chunked", "overlap"),
            "chunk_budget": tuple(args.budgets),
        },
        fixed=load,
    )
    shaped = runner.run(shaped_spec).mapping(
        "system", "scheduler", "chunk_budget"
    )

    header = (f"{'system':8s} {'scheduler':9s} {'budget':>7s} "
              f"{'ttft p99':>9s} {'tpot p99':>9s} {'goodput':>8s} "
              f"{'vs blocked':>11s}")
    print(header)
    for system in args.systems:
        anchor = anchors[system]
        print(f"{system:8s} {'fcfs':9s} {'—':>7s} "
              f"{anchor['ttft_p99_s']:8.2f}s "
              f"{anchor['tpot_p99_s'] * 1e3:7.1f}ms "
              f"{anchor['goodput_rps']:8.2f} {'—':>11s}")
        for scheduler in ("chunked", "overlap"):
            for budget in args.budgets:
                m = shaped[(system, scheduler, budget)]
                delta = m["ttft_p99_s"] / anchor["ttft_p99_s"] - 1.0
                print(f"{system:8s} {scheduler:9s} {budget:7d} "
                      f"{m['ttft_p99_s']:8.2f}s "
                      f"{m['tpot_p99_s'] * 1e3:7.1f}ms "
                      f"{m['goodput_rps']:8.2f} {delta:+10.1%}")
        print()


if __name__ == "__main__":
    main()
