"""Cluster study: how many replicas does an SLO need, and which router?

A saturating arrival trace is served by router-fronted fleets of 1-8
Pimba replicas under each routing policy (round-robin, least-loaded,
prefix/session affinity).  The study prints goodput, TTFT tails, and
load imbalance per (router, replicas) point — the capacity-planning
view: find the smallest fleet whose goodput matches the offered load,
and see what a load-blind router costs you on the way there.

All grids run through the ``repro.experiments`` engine (cached reruns),
and the shipped trace corpus can replace the synthetic load.

Run:  python examples/cluster_study.py [--qps N] [--trace bursty|steady]
"""

import argparse

from repro.experiments import ExperimentSpec, Runner
from repro.serving.corpus import SHIPPED_TRACES, trace_path
from repro.serving.experiments import trace_fingerprint
from repro.serving.routing import ROUTER_NAMES


def cluster_axes(args: argparse.Namespace) -> ExperimentSpec:
    fixed: dict = dict(
        system=args.system,
        qps=args.qps,
        n_requests=args.n_requests,
        input_len=512,
        output_len=64,
        max_batch=args.max_batch,
        scheduler=args.scheduler,
    )
    if args.trace is not None:
        fixed.update(
            trace_file=str(trace_path(args.trace)),
            trace_sha=trace_fingerprint(trace_path(args.trace)),
        )
    return ExperimentSpec(
        name="cluster-study",
        trial_fn="cluster_slo",
        axes={
            "router": ROUTER_NAMES,
            "replicas": tuple(args.replicas),
        },
        fixed=fixed,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--system", default="Pimba")
    parser.add_argument("--scheduler", default="fcfs")
    parser.add_argument("--qps", type=float, default=64.0)
    parser.add_argument("--n-requests", type=int, default=128)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--replicas", type=int, nargs="+",
                        default=[1, 2, 4, 8])
    parser.add_argument("--trace", choices=sorted(SHIPPED_TRACES),
                        default=None,
                        help="replay a shipped corpus trace instead of "
                             "synthetic Poisson arrivals")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    runner = Runner(max_workers=args.jobs, use_cache=not args.no_cache)
    load = (f"shipped '{args.trace}' trace" if args.trace
            else f"Poisson {args.qps:g} qps")
    print(f"{args.system} x {max(args.replicas)} replicas, {load}, "
          f"{args.scheduler} scheduling, SLO: TTFT<=2s TPOT<=18ms\n")

    results = runner.run(cluster_axes(args)).mapping("router", "replicas")

    header = (f"{'router':13s} {'repl':>4s} {'goodput':>8s} {'SLO %':>6s} "
              f"{'ttft p99':>9s} {'tpot p99':>9s} {'imbalance':>9s}")
    print(header)
    for router in ROUTER_NAMES:
        for n in args.replicas:
            m = results[(router, n)]
            print(f"{router:13s} {n:4d} "
                  f"{m['goodput_rps']:8.2f} "
                  f"{100 * m['slo_attainment']:5.1f}% "
                  f"{m['ttft_p99_s']:8.3f}s "
                  f"{1e3 * m['tpot_p99_s']:7.2f}ms "
                  f"{m['load_imbalance']:9.2f}")
        print()

    for router in ROUTER_NAMES:
        curve = [results[(router, n)]["goodput_rps"] for n in args.replicas]
        enough = next(
            (
                n for n, g in zip(args.replicas, curve)
                if g >= 0.95 * max(curve)
            ),
            max(args.replicas),
        )
        print(f"{router}: ~{enough} replica(s) reach 95% of peak goodput")


if __name__ == "__main__":
    main()
