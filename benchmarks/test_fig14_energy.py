"""Fig. 14 — normalized energy per generation step (large scale, batch 128).

Paper: Pimba consumes 2.2x less energy than GPU and 1.3x less than
GPU+PIM on average; the GPU's energy is dominated by state-update I/O for
SU-LLMs, which PIM execution (no channel crossing) plus MX8 eliminates.
"""

import numpy as np
from conftest import print_table, run_once

from repro.models import spec_for
from repro.perf import CATEGORIES, SystemKind, step_energy_for

SYSTEMS = (SystemKind.GPU, SystemKind.GPU_Q, SystemKind.GPU_PIM, SystemKind.PIMBA)
MODELS = ("RetNet", "GLA", "HGRN2", "Mamba-2", "Zamba2", "OPT")


def _fig14():
    out = {}
    for name in MODELS:
        spec = spec_for(name, "large")
        for kind in SYSTEMS:
            bd = step_energy_for(kind, spec, 128, 3072)
            out[(name, kind.value)] = dict(bd.joules_by_category, total=bd.total)
    return out


def test_fig14_energy(benchmark):
    data = run_once(benchmark, _fig14)
    rows = []
    for (name, system), d in data.items():
        base = data[(name, "GPU")]["total"]
        rows.append([name, system, d["total"] / base]
                    + [d[c] / base for c in CATEGORIES])
    print_table("Fig. 14: normalized energy (batch 128, large scale)",
                ["model", "system", "total"] + list(CATEGORIES), rows)

    gpu_ratio = np.mean([
        data[(m, "GPU")]["total"] / data[(m, "Pimba")]["total"] for m in MODELS
    ])
    pim_ratio = np.mean([
        data[(m, "GPU+PIM")]["total"] / data[(m, "Pimba")]["total"] for m in MODELS
    ])
    assert 1.8 < gpu_ratio < 3.2     # paper: 2.2x
    assert 1.05 < pim_ratio < 1.6    # paper: 1.3x
    # GPU energy for RetNet is dominated by state-update I/O.
    retnet_gpu = data[("RetNet", "GPU")]
    assert retnet_gpu["State Update (I/O)"] / retnet_gpu["total"] > 0.4
