"""Table 3 — area and power of the Pimba SPU vs. the HBM-PIM unit.

Paper: Pimba compute 0.053 mm^2 + buffers 0.039 = 0.092 mm^2 per unit at
13.4% area overhead (vs HBM-PIM's 0.081 mm^2 / 11.8%), both under the
25% logic budget; compute power 8.29 mW vs 6.03 mW.
"""

import pytest
from conftest import engine_runner, print_table, run_once

from repro.experiments.catalog import table3_assemble, table3_spec


def _table3():
    report = engine_runner().run(table3_spec())
    return table3_assemble(report)


def test_table3_area_power(benchmark):
    data = run_once(benchmark, _table3)
    paper = {
        "Pimba": (0.053, 0.039, 0.092, 13.4, 8.29),
        "HBM-PIM": (0.042, 0.039, 0.081, 11.8, 6.03),
    }
    rows = []
    for name, d in data.items():
        rows.append([name, d["compute_mm2"], d["buffer_mm2"], d["total_mm2"],
                     d["overhead_pct"], d["power_mw"]])
        rows.append(["  (paper)"] + list(paper[name]))
    print_table("Table 3: unit area and power",
                ["design", "compute mm2", "buffer mm2", "total mm2",
                 "overhead %", "power mW"], rows)

    p = data["Pimba"]
    assert p["compute_mm2"] == pytest.approx(0.053, rel=0.1)
    assert p["total_mm2"] == pytest.approx(0.092, rel=0.1)
    assert p["overhead_pct"] == pytest.approx(13.4, abs=1.5)
    assert p["power_mw"] == pytest.approx(8.29, rel=0.15)
    h = data["HBM-PIM"]
    assert h["total_mm2"] == pytest.approx(0.081, rel=0.1)
    assert h["power_mw"] == pytest.approx(6.03, rel=0.15)
    # Pimba costs ~1.5% more area than HBM-PIM and both stay under 25%.
    assert 0.5 < p["overhead_pct"] - h["overhead_pct"] < 3.0
    assert p["overhead_pct"] < 25.0
