"""Cluster scaling: replicas behind a router convert queueing into goodput.

The data-parallel extension of the serving study: one Pimba node under
the cluster sweep's saturating load misses the TTFT SLO on most
requests; each added replica drains the queue sooner, so goodput climbs
with replica count and the TTFT tail collapses.  The least-loaded router
must scale at least as well as blind round-robin and strictly better
than affinity hashing somewhere on the grid (hashing ignores load, so
bursts pile onto hot replicas).
"""

from conftest import engine_runner, print_table, run_once

from repro.serving.experiments import (
    SCALING_REPLICA_GRID,
    scaling_assemble,
    scaling_render,
    scaling_spec,
)


def _scaling_curves():
    return scaling_assemble(engine_runner().run(scaling_spec()))


def test_goodput_scales_with_replicas(benchmark):
    data = run_once(benchmark, _scaling_curves)
    header, rows = scaling_render(data)
    print_table("Cluster scaling: goodput/TTFT vs replicas per router",
                header, rows)

    for router, points in data.items():
        by_n = dict(points)
        assert set(by_n) == set(SCALING_REPLICA_GRID)

    least = dict(data["least-loaded"])
    # The acceptance shape: goodput strictly increases with replica count
    # under the least-loaded router...
    goodputs = [least[n]["goodput_rps"] for n in SCALING_REPLICA_GRID]
    assert all(a < b for a, b in zip(goodputs, goodputs[1:]))
    # ...and the TTFT tail moves the other way.
    assert (
        least[max(SCALING_REPLICA_GRID)]["ttft_p99_s"]
        < least[1]["ttft_p99_s"]
    )

    # Every router's fleet beats its own single node.
    for router, points in data.items():
        by_n = dict(points)
        assert (
            by_n[max(SCALING_REPLICA_GRID)]["goodput_rps"]
            > by_n[1]["goodput_rps"]
        )

    # Load-aware routing beats load-blind affinity hashing somewhere on
    # the grid (hashing piles bursts onto hot replicas).
    affinity = dict(data["affinity"])
    assert any(
        least[n]["goodput_rps"] > affinity[n]["goodput_rps"]
        or least[n]["ttft_p99_s"] < affinity[n]["ttft_p99_s"]
        for n in SCALING_REPLICA_GRID[1:]
    )

    # All routers agree bit-for-bit at one replica: routing is the
    # identity there, so the curves share their anchor point.
    anchors = {
        router: dict(points)[1]["goodput_rps"]
        for router, points in data.items()
    }
    assert len(set(anchors.values())) == 1
