"""Fig. 5 — throughput and area of the two strawman PIM designs.

Paper: per-bank time-multiplexed PIM reaches 2.8x the GPU's state-update
throughput at 17.8% area overhead; per-bank pipelined reaches 4.3x but
costs 32.4% — over the ~25% practical budget.  Neither wins both, which
motivates Pimba's shared SPU.
"""

from conftest import print_table, run_once

from repro.core import (
    hbm_pim_config,
    per_bank_pipelined_config,
    pimba_config,
    PimbaAccelerator,
)
from repro.hw import area_overhead_percent
from repro.models import spec_for
from repro.perf import OpKind, SystemKind, build_system

#: Fig. 5's time-multiplexed straw man: per-bank units with a fused
#: read-compute-write path (3 passes), unlike the 2-bank HBM-PIM baseline.
FIG5_TIME_MUX = dict(time_mux_sharing=1, time_multiplexed_passes=3)


def _fig5():
    spec = spec_for("Mamba-2")
    batch = 128
    gpu = build_system(SystemKind.GPU, "small")
    t_gpu = gpu.step_latency(spec, batch, 2048).seconds_by_kind[OpKind.STATE_UPDATE]

    designs = {
        "time-multiplexed": hbm_pim_config(**FIG5_TIME_MUX),
        "pipelined": per_bank_pipelined_config(),
        "pimba (shared+MX8)": pimba_config(),
    }
    rows = []
    for name, cfg in designs.items():
        pim = PimbaAccelerator(cfg)
        t = pim.state_update_timing(
            batch * spec.n_heads, spec.dim_head, spec.dim_state
        ).seconds * spec.state_update_layers
        rows.append([name, t_gpu / t, area_overhead_percent(cfg)])
    return [["GPU", 1.0, 0.0]] + rows


def test_fig5_design_tradeoff(benchmark):
    rows = run_once(benchmark, _fig5)
    print_table("Fig. 5: state-update throughput and area of PIM designs",
                ["design", "normalized throughput", "area overhead %"], rows)
    by_name = {r[0]: r[1:] for r in rows}
    tmux_tput, tmux_area = by_name["time-multiplexed"]
    pipe_tput, pipe_area = by_name["pipelined"]
    pimba_tput, pimba_area = by_name["pimba (shared+MX8)"]

    assert 1.5 < tmux_tput < pipe_tput          # paper: 2.8x < 4.3x
    assert tmux_area < 25.0 < pipe_area         # paper: 17.8% / 32.4%
    # Pimba: throughput at least the pipelined design's, within budget.
    assert pimba_tput >= pipe_tput
    assert pimba_area < 25.0
