"""Table 2 — downstream accuracy: GPU (fp16) vs. Pimba (MX8 + SR).

Paper: across WikiText-2 perplexity and six multiple-choice benchmarks,
Pimba's MX8+SR state/KV storage changes geomean accuracy by at most a
few tenths of a point (-0.3 .. +0.1).

Offline substitution: proxy tasks whose choices are separable only
through long-range state (``repro.accuracy.tasks``).
"""

import pytest
from conftest import print_table, run_once

from repro.accuracy import TABLE2_TASKS, table2_row
from repro.models import Family

pytestmark = pytest.mark.slow

FAMILIES = (Family.RETNET, Family.GLA, Family.MAMBA2, Family.TRANSFORMER)
N_ITEMS = 16


def _table2():
    return [table2_row(family, n_items=N_ITEMS) for family in FAMILIES]


def test_table2_accuracy(benchmark):
    rows_data = run_once(benchmark, _table2)
    header = (["model", "method", "ppl"]
              + [t.name for t in TABLE2_TASKS] + ["geomean"])
    rows = []
    for row in rows_data:
        rows.append([row.model, "GPU", row.gpu_perplexity]
                    + [row.gpu_accuracy[t.name] * 100 for t in TABLE2_TASKS]
                    + [row.gpu_geomean * 100])
        rows.append([row.model, "Pimba", row.pimba_perplexity]
                    + [row.pimba_accuracy[t.name] * 100 for t in TABLE2_TASKS]
                    + [row.pimba_geomean * 100])
    print_table("Table 2: accuracy, GPU (fp16) vs Pimba (mx8SR)", header, rows)

    for row in rows_data:
        # Perplexity within a few percent of the exact baseline.
        assert row.pimba_perplexity < row.gpu_perplexity * 1.08, row.model
        # Geomean accuracy within a few points (paper: within ~0.3).
        assert abs(row.geomean_delta) < 0.06, row.model
        # The tasks are far from chance for both systems.
        assert row.gpu_geomean > 0.55
        assert row.pimba_geomean > 0.55
