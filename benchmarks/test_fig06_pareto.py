"""Fig. 6 — accuracy-area tradeoff of low-precision formats on Mamba-2.

Paper: fp16 is accurate but enormous; int8(+SR) is accurate but carries
dequant/requant logic; fp8 is small but inaccurate; MX8 (+SR, at
negligible extra area) is Pareto-optimal.  Stochastic rounding costs
almost nothing in area.
"""

import pytest
from conftest import engine_runner, print_table, run_once

from repro.experiments.catalog import fig06_assemble, fig06_spec

pytestmark = pytest.mark.slow


def _fig6():
    report = engine_runner().run(fig06_spec())
    return fig06_assemble(report)


def _dominates(a, b) -> bool:
    """True if point a is at least as good as b on both axes, better on one."""
    (area_a, ppl_a), (area_b, ppl_b) = a, b
    return area_a <= area_b and ppl_a <= ppl_b and (area_a, ppl_a) != (area_b, ppl_b)


def test_fig6_accuracy_area_pareto(benchmark):
    points, base_ppl = run_once(benchmark, _fig6)
    rows = [[fmt, area, ppl] for fmt, (area, ppl) in points.items()]
    print_table(f"Fig. 6: area vs perplexity (Mamba-2, fp64 ppl={base_ppl:.1f})",
                ["format", "area overhead %", "perplexity"], rows)

    # fp16 is the area ceiling.
    assert points["fp16"][0] == max(p[0] for p in points.values())
    # int8 add logic costs well over mx8 (Section 4.2's dequant/requant).
    assert points["int8"][0] > 1.3 * points["mx8"][0]
    # SR is nearly free in area.
    for fmt in ("int8", "e4m3", "e5m2", "mx8"):
        assert points[fmt + "SR"][0] - points[fmt][0] < 1.0
    # mx8SR is accurate (near the fp64 reference)...
    assert points["mx8SR"][1] < base_ppl * 1.08
    # ...and no non-MX accurate format dominates the MX family: nothing
    # else is both smaller and at least as accurate.
    accurate = {f: p for f, p in points.items() if p[1] < base_ppl * 1.08}
    assert not any(
        _dominates(p, points["mx8SR"])
        for f, p in accurate.items() if not f.startswith("mx8")
    )
