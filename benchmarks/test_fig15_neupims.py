"""Fig. 15 — Pimba vs. NeuPIMs: latency and memory vs. output tokens.

Paper: on Zamba2-70B, batch 128, (1024, 1024), Pimba consistently shows
lower latency than NeuPIMs (which cannot offload state updates) with a
similar scaling slope, and lower memory thanks to MX8 states and KV.
"""

from conftest import print_table, run_once

from repro.models import spec_for
from repro.perf import SystemKind, build_system
from repro.workloads import ServingSimulator, uniform_batch

CHECKPOINTS = (125, 256, 512, 768, 1024)


def _fig15():
    spec = spec_for("Zamba2", "large")
    batch = uniform_batch(128, 1024, 1024)
    out = {}
    for kind in (SystemKind.PIMBA, SystemKind.NEUPIMS):
        system = build_system(kind, "large")
        sim = ServingSimulator(system, spec)
        curve = sim.latency_curve(batch, CHECKPOINTS)
        memory = {
            n: system.memory_usage(spec, 128, 1024 + n) / 2**30
            for n in CHECKPOINTS
        }
        out[kind.value] = (curve, memory)
    return out


def test_fig15_pimba_vs_neupims(benchmark):
    data = run_once(benchmark, _fig15)
    rows = []
    for n in CHECKPOINTS:
        rows.append([
            n,
            data["Pimba"][0][n] * 1e3, data["NeuPIMs"][0][n] * 1e3,
            data["Pimba"][1][n], data["NeuPIMs"][1][n],
        ])
    print_table("Fig. 15: Zamba2-70B, batch 128 (cumulative latency, memory)",
                ["output tokens", "Pimba ms", "NeuPIMs ms",
                 "Pimba GiB", "NeuPIMs GiB"], rows)

    for n in CHECKPOINTS:
        assert data["Pimba"][0][n] < data["NeuPIMs"][0][n]
        assert data["Pimba"][1][n] < data["NeuPIMs"][1][n]
    # Similar scaling: latency grows with output length for both, and the
    # slope ratio stays bounded.
    slope = lambda c: (c[1024] - c[125]) / (1024 - 125)
    ratio = slope(data["NeuPIMs"][0]) / slope(data["Pimba"][0])
    assert 1.0 < ratio < 4.0
