"""Paged KV reservation: goodput from tighter admission, latency from thrash.

The request-level capacity story the ROADMAP's first open item asked
for: under a tight HBM budget, full-context reservation
(`MemoryAwareScheduler`) queues requests it could physically serve,
while block-granular reservation (`PagedScheduler`) admits against
*current* block usage and pays for the extra residency with
preempt/restore thrashing as load rises.  The figure pins down both
sides of that trade:

* at light load the capacity bound never binds: the two policies make
  identical decisions and the paged pool never preempts;
* past the knee, paged reservation *strictly* beats full-context
  reservation on goodput at every load — the acceptance shape;
* the win is not free: preemptions appear and grow with load, visible
  as re-prefill work (extra prefill events) and a fatter decode tail
  (TPOT p99 above the full-context baseline).
"""

from conftest import engine_runner, print_table, run_once

from repro.serving.experiments import (
    PAGED_QPS_GRID,
    preemption_tradeoff_assemble,
    preemption_tradeoff_render,
    preemption_tradeoff_spec,
)


def _tradeoff_curves():
    return preemption_tradeoff_assemble(
        engine_runner().run(preemption_tradeoff_spec())
    )


def test_paged_reservation_beats_full_context_at_a_thrashing_cost(benchmark):
    data = run_once(benchmark, _tradeoff_curves)
    header, rows = preemption_tradeoff_render(data)
    print_table(
        "Paged KV: goodput vs preemption thrashing as load rises",
        header, rows,
    )

    memory = dict(data["memory"])
    paged = dict(data["paged"])
    light = [q for q in PAGED_QPS_GRID if q <= 1.0]
    heavy = [q for q in PAGED_QPS_GRID if q > 1.0]
    assert light and heavy

    # Light load: the capacity bound never binds, so block-granular and
    # full-context reservation make identical decisions — no preemption,
    # same goodput, same tails.
    for q in light:
        assert paged[q]["n_preemptions"] == 0
        assert paged[q]["goodput_rps"] == memory[q]["goodput_rps"]
        assert paged[q]["tpot_p99_s"] == memory[q]["tpot_p99_s"]

    # Past the knee: paged reservation strictly beats full-context
    # reservation on goodput at every load (the acceptance criterion —
    # a regime where tighter reservation wins).
    for q in heavy:
        assert paged[q]["goodput_rps"] > memory[q]["goodput_rps"]

    # ...but the slack is bought with thrashing: preemptions appear,
    # each paying a recompute-style re-prefill (more prefill events than
    # the full-context policy ever issues) and fattening the decode tail.
    for q in heavy:
        assert paged[q]["n_preemptions"] > 0
        assert memory[q]["n_preemptions"] == 0
        assert paged[q]["n_prefills"] > memory[q]["n_prefills"]
        assert paged[q]["tpot_p99_s"] > memory[q]["tpot_p99_s"]

    # Thrashing intensifies with load across the heavy regime.
    assert paged[max(heavy)]["n_preemptions"] > paged[min(heavy)]["n_preemptions"]
