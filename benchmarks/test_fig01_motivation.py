"""Fig. 1 — motivation: transformer vs. Mamba-2, and the roofline.

(a) memory usage and generation throughput of a 2.7B transformer vs.
    Mamba-2 (paper: 2.3x less memory, 2.6x higher throughput);
(b) roofline placement of GEMM / attention / state update (paper: both
    mixers far left of the ridge; state update above attention).
"""

from conftest import print_table, run_once

from repro.models import mamba2_2p7b, spec_for
from repro.perf import OpKind, SystemKind, build_system, roofline_points


def _fig1a():
    system = build_system(SystemKind.GPU, "small")
    transformer = spec_for("OPT")
    mamba = mamba2_2p7b()
    seq = 4096
    rows = []
    for spec in (transformer, mamba):
        mem = system.memory_usage(spec, 32, seq) / 2**30
        tput = system.generation_metrics(spec, 32).tokens_per_second
        rows.append([spec.name, mem, tput])
    return rows


def test_fig1a_memory_and_throughput(benchmark):
    rows = run_once(benchmark, _fig1a)
    print_table("Fig. 1(a): transformer vs Mamba-2 (batch 32)",
                ["model", "memory GiB", "throughput tok/s"], rows)
    (opt_mem, opt_tput), (mamba_mem, mamba_tput) = (r[1:] for r in rows)
    assert opt_mem / mamba_mem > 1.8          # paper: 2.3x less memory
    assert mamba_tput / opt_tput > 1.8        # paper: 2.6x higher throughput


def _fig1b():
    # The paper plots two GEMM markers (intensity ~28 and ~140): GEMV-like
    # small-batch GEMMs are memory-bound, large-batch GEMMs compute-bound.
    out = {}
    for batch in (32, 256):
        points = roofline_points(spec_for("Zamba2"), batch, 2048)
        out[batch] = {
            kind: (p.intensity, p.attained_tflops, p.memory_bound)
            for kind, p in points.items()
        }
    return out


def test_fig1b_roofline(benchmark):
    data = run_once(benchmark, _fig1b)
    rows = [
        [batch, kind.value, intensity, tflops, "memory" if mb else "compute"]
        for batch, points in data.items()
        for kind, (intensity, tflops, mb) in sorted(
            points.items(), key=lambda kv: kv[1][0]
        )
    ]
    print_table("Fig. 1(b): roofline (Zamba2)",
                ["batch", "op", "FLOPs/byte", "attained TFLOPS", "bound"], rows)
    small = data[32]
    assert small[OpKind.STATE_UPDATE][0] > small[OpKind.ATTENTION][0]
    assert small[OpKind.STATE_UPDATE][2] and small[OpKind.ATTENTION][2]
    # Mixers stay memory-bound even at batch 256; GEMM crosses the ridge.
    large = data[256]
    assert large[OpKind.STATE_UPDATE][2] and large[OpKind.ATTENTION][2]
    assert not large[OpKind.GEMM][2]
