"""Ablation: which of Pimba's three design choices buys what.

Not a paper figure — an ablation over the design decisions Sections
5.2/5.3/5.5 argue for, isolating each on the same state-update sweep:

1. **MX8 vs fp16 state** (Section 5.3): halves rows swept.
2. **Shared SPU vs per-bank units** (Section 5.2): same schedule length,
   half the processing units -> area, not time.
3. **Fig. 11 command overlap** (Section 5.5): hides REG_WRITE/RESULT_READ
   in activation/precharge shadows (quantified via the scheduler's
   exposed-I/O accounting).
"""

from conftest import engine_runner, print_table, run_once

from repro.experiments.catalog import ablation_assemble, ablation_spec


def _ablation():
    report = engine_runner().run(ablation_spec())
    return ablation_assemble(report)


def test_design_choice_ablation(benchmark):
    rows = run_once(benchmark, _ablation)
    print_table(
        "Ablation: Mamba-2 2.7B state-update sweep, batch 128 (per layer)",
        ["variant", "latency us", "area %", "exposed I/O %"], rows,
    )
    by_name = {r[0]: r[1:] for r in rows}
    base_lat, base_area, base_io = by_name["pimba (mx8SR, shared, overlap)"]

    # 1. Dropping MX8 roughly doubles the sweep (2x rows), same area class.
    fp16_lat, fp16_area, _ = by_name["- MX8 (fp16 state)"]
    assert 1.6 < fp16_lat / base_lat < 2.4
    # 2. Dropping sharing keeps latency but roughly doubles area.
    nb_lat, nb_area, _ = by_name["- sharing (per-bank units)"]
    assert nb_lat == base_lat
    assert 1.6 < nb_area / base_area < 2.6
    # 3. The HBM-PIM baseline exposes operand I/O and serial passes.
    hb_lat, _, hb_io = by_name["- overlap & pipeline (HBM-PIM)"]
    assert hb_lat > 4 * base_lat
    assert hb_io > base_io
