"""Prefix reuse: the radix cache's goodput and TTFT win on multi-turn chat.

Multi-turn sessions re-send their growing conversation as each turn's
prompt, so the paged baseline re-prefills history it already computed.
The prefix cache serves that history from shared pool blocks and prices
only the uncached suffix — and since the ``prefix`` scheduler is
bit-exact with ``paged`` whenever no prefix hits (pinned by the
equivalence suite), every gap in this figure is attributable to reuse:

* at light load both policies meet the 0.5 s TTFT SLO on every request
  — reuse shortens prefills but attainment is already 1.0;
* at and past the saturation knee (~1 session/s), the prefix policy
  *strictly* beats paged on goodput at every load — the acceptance
  shape — because the skipped history keeps tail TTFT inside the SLO;
* the cache earns its keep: hit rate stays above 0.5 at every load
  (most prompt tokens of a deep session are history), which is the
  number the CI perf gate watches via ``prefix_cache_hit_rate``.
"""

from conftest import engine_runner, print_table, run_once

from repro.serving.experiments import (
    PREFIX_QPS_GRID,
    prefix_cache_spec,
    prefix_reuse_assemble,
    prefix_reuse_render,
)


def _reuse_curves():
    return prefix_reuse_assemble(engine_runner().run(prefix_cache_spec()))


def test_radix_cache_beats_paged_at_the_knee(benchmark):
    data = run_once(benchmark, _reuse_curves)
    header, rows = prefix_reuse_render(data)
    print_table(
        "Prefix reuse: radix cache vs paged-without-reuse on "
        "multi-turn chat",
        header, rows,
    )

    paged = dict(data["paged"])
    prefix = dict(data["prefix"])
    light = [q for q in PREFIX_QPS_GRID if q < 1.0]
    knee_on = [q for q in PREFIX_QPS_GRID if q >= 1.0]
    assert light and knee_on

    # The cache actually engages: over half of all prompt tokens are
    # served from shared blocks at every session rate.
    for q in PREFIX_QPS_GRID:
        assert prefix[q]["prefix_cache_hit_rate"] > 0.5
        assert prefix[q]["cache_hit_tokens"] > 0

    # The baseline never touches a cache — its payload keeps the
    # historical shape (no cache keys), so the gap below is pure reuse.
    for q in PREFIX_QPS_GRID:
        assert "cache_hit_tokens" not in paged[q]

    # Light load: the SLO never binds, both policies serve everything.
    for q in light:
        assert paged[q]["slo_attainment"] == 1.0
        assert prefix[q]["slo_attainment"] == 1.0

    # At the knee and beyond: skipping the re-prefilled history keeps
    # tail TTFT inside the SLO, so prefix strictly wins goodput at
    # every saturated load (the acceptance criterion).
    for q in knee_on:
        assert prefix[q]["goodput_rps"] > paged[q]["goodput_rps"]

    # The mechanism is latency, not throughput accounting: the cache
    # never worsens the TTFT tail at any load.
    for q in PREFIX_QPS_GRID:
        assert prefix[q]["ttft_p99_s"] <= paged[q]["ttft_p99_s"]
