"""Prefill shaping: chunked prefill cuts the TTFT tail at a TPOT cost.

The request-level extension of the Section 5.6 blocked-execution
discussion: under a saturating load, the overlap scheduler's TTFT p99
falls *strictly* as the chunk budget shrinks (slots recycle faster, the
queue drains), while the decode tail pays a quantified TPOT price
relative to the blocked baseline — and the budget where TTFT bottoms
out differs between the GPU baseline and Pimba (PIM-side decode keeps
smaller chunks profitable for longer).
"""

from conftest import engine_runner, print_table, run_once

from repro.serving.experiments import (
    CHUNK_BUDGET_GRID,
    ttft_tradeoff_assemble,
    ttft_tradeoff_render,
    ttft_tradeoff_spec,
)


def _tradeoff_curves():
    return ttft_tradeoff_assemble(engine_runner().run(ttft_tradeoff_spec()))


def test_chunked_prefill_cuts_ttft_tail_at_a_tpot_cost(benchmark):
    data = run_once(benchmark, _tradeoff_curves)
    header, rows = ttft_tradeoff_render(data)
    print_table(
        "Prefill shaping: TTFT p99 / TPOT p99 / goodput vs chunk budget",
        header, rows,
    )

    budgets = list(CHUNK_BUDGET_GRID)  # descending
    systems = sorted({system for system, _ in data})
    for system in systems:
        overlap = dict(data[(system, "overlap")])
        chunked = dict(data[(system, "chunked")])
        anchor = chunked[max(budgets)]  # == blocked FCFS (tested)

        # TTFT p99 strictly improves as the budget shrinks, on every
        # system, down to the 128-token chunk (the acceptance shape).
        shrinking = [overlap[b]["ttft_p99_s"] for b in budgets if b >= 128]
        assert shrinking == sorted(shrinking, reverse=True)
        assert len(set(shrinking)) == len(shrinking)  # strictly
        assert overlap[128]["ttft_p99_s"] < anchor["ttft_p99_s"]

        # ...at a quantified TPOT cost against the blocked baseline.
        assert overlap[128]["tpot_p99_s"] > anchor["tpot_p99_s"]
        assert chunked[128]["tpot_p99_s"] > anchor["tpot_p99_s"]

        # Goodput follows the TTFT tail down.
        assert overlap[128]["goodput_rps"] > anchor["goodput_rps"]

    def best_budget(system):
        curve = dict(data[(system, "overlap")])
        return min(budgets, key=lambda b: curve[b]["ttft_p99_s"])

    # The crossover differs: shrinking past 128 still helps Pimba (its
    # PIM-side decode iterations are cheap enough to keep chunk+decode
    # fusion profitable) but hurts the GPU baseline.
    assert best_budget("Pimba") == min(budgets)
    assert best_budget("GPU") > min(budgets)
