"""Shared helpers for the per-figure/table benchmark harnesses.

Each ``benchmarks/test_*.py`` regenerates one table or figure of the
paper: it computes the same rows/series the paper reports, prints them
(run ``pytest benchmarks/ --benchmark-only -s`` to see the tables), and
asserts the paper's qualitative shape.  Heavy experiments run exactly
once via ``benchmark.pedantic``.
"""

from __future__ import annotations


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print one reproduction table in aligned columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(header)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
