"""Shared helpers for the per-figure/table benchmark harnesses.

Each ``benchmarks/test_*.py`` regenerates one table or figure of the
paper: it computes the same rows/series the paper reports, prints them
(run ``pytest benchmarks/ --benchmark-only -s`` to see the tables), and
asserts the paper's qualitative shape.  Heavy experiments run exactly
once via ``benchmark.pedantic``; sweeps that go through the
``repro.experiments`` engine are additionally served from its on-disk
result cache on repeated runs.
"""

from __future__ import annotations

import pathlib

from repro.experiments import Runner
from repro.experiments.tabulate import format_table

#: repo-local result cache so plain test runs never write to ``~/.cache``
ENGINE_CACHE_DIR = pathlib.Path(__file__).resolve().parent.parent / ".repro-cache"


def engine_runner() -> Runner:
    """The Runner the benchmark sweeps share (repo-local cache, default
    fan-out).  Warm reruns are served from ``.repro-cache/``; delete that
    directory to re-measure from scratch."""
    return Runner(cache_dir=ENGINE_CACHE_DIR)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print one reproduction table in aligned columns."""
    print(format_table(title, header, rows))


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
