"""Cross-replica prefix reuse: the router face-off over the shared tier.

The shipped multi-turn corpus is replayed on prefix-caching replicas
joined by one :class:`~repro.serving.memory.SharedPrefixTier`, under a
load where a single replica misses the tight TTFT SLO on half the
turns — so the knee of the scaling curve sits at two replicas, exactly
where routing policy decides whether session history is reused, moved,
or recomputed:

* **replicas = 1** is the control: every router is the identity there
  and the tier has nobody to talk to, so all three rows coincide;
* **round-robin** scatters each session's turns and leans on the tier —
  it records the most KV transfers and the lowest local hit rate;
* **affinity** keeps every hit local (zero transfers, the single-engine
  hit rate at every fleet size) but routes blind to load, so its
  goodput flattens while the balanced routers keep scaling;
* **cache-aware** folds the priced prefix credit into the backlog
  estimate: at and past the knee it matches or beats both — the
  acceptance criterion is cache-aware >= affinity on SLO goodput.
"""

from conftest import engine_runner, print_table, run_once

from repro.serving.experiments import (
    CROSS_REPLICA_GRID,
    CROSS_REPLICA_ROUTERS,
    cross_replica_prefix_assemble,
    cross_replica_prefix_render,
    cross_replica_prefix_spec,
)

KNEE = 2  # replicas where one node saturates but the fleet does not


def _tier_curves():
    return cross_replica_prefix_assemble(
        engine_runner().run(cross_replica_prefix_spec())
    )


def test_cache_aware_routing_wins_at_the_knee(benchmark):
    data = run_once(benchmark, _tier_curves)
    header, rows = cross_replica_prefix_render(data)
    print_table(
        "Cross-replica prefix reuse: routers over the shared KV tier "
        "on multi-turn chat",
        header,
        rows,
    )

    by = {r: dict(data[r]) for r in CROSS_REPLICA_ROUTERS}

    # One replica: routing is the identity, so every policy serves the
    # identical simulation and the tier never engages.
    base = by["round-robin"][1]
    for router in CROSS_REPLICA_ROUTERS:
        assert by[router][1]["goodput_rps"] == base["goodput_rps"]
        assert by[router][1].get("remote_hit_tokens", 0) == 0
    assert base["slo_attainment"] < 1.0  # a lone node is saturated

    # Affinity keeps every turn home: the single-engine hit rate at
    # every fleet size, and never a byte over the wire.
    pinned_rate = by["affinity"][1]["prefix_cache_hit_rate"]
    assert pinned_rate > 0.5
    for n in CROSS_REPLICA_GRID:
        assert by["affinity"][n]["prefix_cache_hit_rate"] == pinned_rate
        assert by["affinity"][n].get("kv_transfers", 0) == 0

    # Round-robin scatters sessions, so past one replica it must pull
    # history across the fleet — the priced transfers the tier exists
    # for — and its local hit rate drops below affinity's.
    for n in [n for n in CROSS_REPLICA_GRID if n >= KNEE]:
        scattered = by["round-robin"][n]
        assert scattered["remote_hit_tokens"] > 0
        assert scattered["kv_transfers"] > 0
        assert scattered["remote_prefix_hit_rate"] > 0.0
        assert scattered["prefix_cache_hit_rate"] < pinned_rate

    # The acceptance shape: cache-aware >= affinity on SLO goodput at
    # the saturation knee (strictly better there — affinity's blindness
    # to load is exactly what the warmth-priced backlog fixes), and it
    # never loses to either policy at any fleet size.
    assert (
        by["cache-aware"][KNEE]["goodput_rps"]
        > by["affinity"][KNEE]["goodput_rps"]
    )
    for n in CROSS_REPLICA_GRID:
        cache_aware = by["cache-aware"][n]
        assert cache_aware["goodput_rps"] >= by["affinity"][n]["goodput_rps"]
        assert (
            cache_aware["goodput_rps"]
            >= by["round-robin"][n]["goodput_rps"]
        )

    # And it spends the wire sparingly: a migrated session transfers
    # once and stays warm, so cache-aware moves fewer bytes than
    # round-robin while keeping the higher hit rate.
    for n in [n for n in CROSS_REPLICA_GRID if n >= KNEE]:
        assert (
            by["cache-aware"][n]["kv_transfers"]
            < by["round-robin"][n]["kv_transfers"]
        )
        assert (
            by["cache-aware"][n]["prefix_cache_hit_rate"]
            > by["round-robin"][n]["prefix_cache_hit_rate"]
        )
