"""Fig. 12 — normalized generation throughput across systems and scales.

Paper: GPU+Q ~1.4x, GPU+PIM ~1.4x, Pimba 1.9x average (up to 4.1x) over
the GPU baseline, at (2048, 2048) input/output lengths, batches 32-128,
small (2.7B/7B) and large (~70B) scales.
"""

import numpy as np
from conftest import engine_runner, print_table, run_once

from repro.experiments.catalog import FIG12_SYSTEMS, fig12_assemble, fig12_spec

SYSTEMS = FIG12_SYSTEMS


def _fig12():
    report = engine_runner().run(fig12_spec())
    return fig12_assemble(report)


def test_fig12_generation_throughput(benchmark):
    data = run_once(benchmark, _fig12)
    rows = [
        [scale, name, batch] + [data[(scale, name, batch)][k] for k in SYSTEMS]
        for (scale, name, batch) in data
    ]
    print_table("Fig. 12: normalized generation throughput",
                ["scale", "model", "batch"] + list(SYSTEMS), rows)

    pimba = np.array([d["Pimba"] for d in data.values()])
    gpu_q = np.array([d["GPU+Q"] for d in data.values()])
    gpu_pim = np.array([d["GPU+PIM"] for d in data.values()])

    # Pimba always wins, and beats GPU+PIM everywhere.
    assert np.all(pimba > 1.0)
    assert np.all(pimba >= gpu_pim * 0.999)
    # Average bands (paper: 1.4 / 1.4 / 1.9).
    assert 1.15 < float(np.exp(np.log(gpu_q).mean())) < 1.7
    assert 1.1 < float(np.exp(np.log(gpu_pim).mean())) < 1.9
    assert 1.6 < float(np.exp(np.log(pimba).mean())) < 3.0
    # Peak speedup in the "up to" range.
    assert pimba.max() > 3.0
