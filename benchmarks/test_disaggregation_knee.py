"""Prefill/decode disaggregation: where splitting the fleet wins.

Five four-node fleets serve the same prefill-heavy stream (2048-token
prompts, short answers, a tight TPOT SLO) as load rises through the
colocated fleets' saturation knee:

* three colocated controls — all-GPU, all-Pimba, and a mixed fleet —
  where every node interleaves prefill and decode, so each monolithic
  prompt stalls the resident decode batch and the TPOT tail grows with
  load;
* the paper-shaped split — GPU nodes prefilling (prefill is pure
  roofline compute, where the GPU is the match for the accelerator),
  Pimba nodes decoding (where the PIM design is fastest) — with KV
  handed off over a priced 400 Gbps link;
* the same split reversed, as the placement control.

Below the knee the interference is rare and colocation's doubled
capacity wins.  At and past the knee the split fleet keeps its decode
batches clean, and SLO goodput flips decisively: the acceptance
criterion is best-split > best-colocated goodput at both knee loads.
"""

from conftest import engine_runner, print_table, run_once

from repro.serving.experiments import (
    DISAGG_FLEETS,
    DISAGG_QPS_GRID,
    disaggregation_assemble,
    disaggregation_render,
    disaggregation_spec,
)

COLOCATED = tuple(f for f in DISAGG_FLEETS if ":" not in f)
SPLIT = tuple(f for f in DISAGG_FLEETS if ":" in f)
FORWARD = "GPU:prefill,GPU:prefill,Pimba:decode,Pimba:decode"
REVERSE = "Pimba:prefill,Pimba:prefill,GPU:decode,GPU:decode"

#: loads at and past the colocated fleets' saturation knee
KNEE_QPS = (12.0, 16.0)


def _fleet_curves():
    return disaggregation_assemble(engine_runner().run(disaggregation_spec()))


def test_split_fleet_wins_past_the_knee(benchmark):
    data = run_once(benchmark, _fleet_curves)
    header, rows = disaggregation_render(data)
    print_table(
        "Prefill/decode disaggregation: split vs colocated four-node "
        "fleets under prefill-heavy load",
        header,
        rows,
    )

    by = {fleet: dict(data[fleet]) for fleet in DISAGG_FLEETS}

    # Handoffs and per-phase utilization exist only where phases split:
    # colocated rows never move KV and never report sided utilization.
    for fleet in COLOCATED:
        for payload in by[fleet].values():
            assert "n_handoffs" not in payload
            assert "prefill_utilization" not in payload
    for fleet in SPLIT:
        for payload in by[fleet].values():
            assert payload["n_handoffs"] > 0
            assert payload["handoff_bytes"] > 0
            assert 0.0 < payload["prefill_utilization"] <= 1.0
            assert 0.0 < payload["decode_utilization"] <= 1.0

    # The acceptance shape: at and past the knee, the best split fleet
    # beats the best colocated fleet on SLO goodput — the decode batch
    # kept clean of monolithic prefills is worth more than the capacity
    # the split gives up.
    for qps in KNEE_QPS:
        best_split = max(by[f][qps]["goodput_rps"] for f in SPLIT)
        best_colocated = max(by[f][qps]["goodput_rps"] for f in COLOCATED)
        assert best_split > best_colocated

    # Placement matters: prefill belongs on the GPU side and decode on
    # the accelerator side, not the other way around.
    for qps in KNEE_QPS:
        assert (
            by[FORWARD][qps]["goodput_rps"]
            > by[REVERSE][qps]["goodput_rps"]
        )

    # And the win is interference relief, not raw capacity: below the
    # knee (light load, no queueing to speak of) colocation's doubled
    # prefill capacity keeps it at least competitive.
    light = DISAGG_QPS_GRID[0]
    best_colocated_light = max(
        by[f][light]["slo_attainment"] for f in COLOCATED
    )
    assert best_colocated_light > 0.9
