"""Request-level serving: Pimba's latency-throughput curve dominates GPU's.

The request-level extension of Fig. 12's claim: under a rising Poisson
load with continuous batching at matched batch capacity, Pimba delivers
at least the GPU baseline's goodput at every offered rate, strictly more
once the GPU saturates, and lower tail latency (p99 TTFT) throughout.
"""

from conftest import engine_runner, print_table, run_once

from repro.serving.experiments import (
    SERVING_QPS_GRID,
    serving_assemble,
    serving_render,
    serving_spec,
)


def _serving_curves():
    spec = serving_spec().with_axes(system=("GPU", "Pimba"))
    return serving_assemble(engine_runner().run(spec))


def test_pimba_dominates_gpu_latency_throughput(benchmark):
    data = run_once(benchmark, _serving_curves)
    header, rows = serving_render(data)
    print_table("Serving SLO study: GPU vs Pimba under rising load",
                header, rows)

    gpu = dict(data["GPU"])
    pimba = dict(data["Pimba"])
    assert set(gpu) == set(pimba) == set(SERVING_QPS_GRID)

    for qps in SERVING_QPS_GRID:
        # Goodput dominance at every offered rate...
        assert pimba[qps]["goodput_rps"] >= gpu[qps]["goodput_rps"]
        # ...and a uniformly better tail.
        assert pimba[qps]["ttft_p99_s"] <= gpu[qps]["ttft_p99_s"]
        assert pimba[qps]["tpot_p99_s"] <= gpu[qps]["tpot_p99_s"]

    # Past the GPU's saturation point the gap is strict and large.
    top = max(SERVING_QPS_GRID)
    assert pimba[top]["goodput_rps"] > gpu[top]["goodput_rps"] + 1.0
    assert pimba[top]["slo_attainment"] > gpu[top]["slo_attainment"]

    # Offered load is eventually turned away by both: attainment falls
    # below 100% somewhere on the grid for the GPU baseline (the SLO grid
    # actually stresses the cluster rather than idling it).
    assert min(m["slo_attainment"] for m in gpu.values()) < 0.5
