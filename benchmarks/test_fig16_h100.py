"""Fig. 16 — generality: the same study on an H100/HBM3/NVLink4 system.

Paper: with 40 HBM3 modules at 2.626 GHz (SPU at 657 MHz) and NVLink4,
Pimba keeps its advantage: 1.8x over GPU and 1.3x over GPU+PIM on
average — the design is not tied to the A100.
"""

import numpy as np
from conftest import print_table, run_once

from repro.models import MODEL_NAMES, spec_for
from repro.perf import ServingSystem, SystemKind, h100, nvlink4

SYSTEMS = (SystemKind.GPU, SystemKind.GPU_Q, SystemKind.GPU_PIM, SystemKind.PIMBA)


def _fig16():
    out = {}
    for name in MODEL_NAMES:
        spec = spec_for(name, "large")
        for batch in (32, 128):
            tput = {
                kind: ServingSystem(kind, gpu=h100(), n_devices=8, link=nvlink4())
                .generation_metrics(spec, batch).tokens_per_second
                for kind in SYSTEMS
            }
            base = tput[SystemKind.GPU]
            out[(name, batch)] = {k.value: v / base for k, v in tput.items()}
    return out


def test_fig16_h100_throughput(benchmark):
    data = run_once(benchmark, _fig16)
    rows = [
        [name, batch] + [data[(name, batch)][k.value] for k in SYSTEMS]
        for (name, batch) in data
    ]
    print_table("Fig. 16: normalized throughput on H100 + HBM3 + NVLink4",
                ["model", "batch"] + [k.value for k in SYSTEMS], rows)

    pimba = np.array([d["Pimba"] for d in data.values()])
    gpu_pim = np.array([d["GPU+PIM"] for d in data.values()])
    assert np.all(pimba > 1.0)
    assert 1.4 < float(np.exp(np.log(pimba).mean())) < 3.0        # paper: 1.8x
    assert 1.1 < float(np.exp(np.log(pimba / gpu_pim).mean())) < 2.2  # paper: 1.3x
