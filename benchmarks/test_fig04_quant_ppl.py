"""Fig. 4 — perplexity of SU-LLMs vs. transformers under 8-bit formats.

Paper shape: fp16 ~ int8 ~ mx8 for every model; e4m3/e5m2 blow up
severely on SU-LLMs (up to 8114 for GLA) but not on transformers;
stochastic rounding substantially rescues the fp8 formats on SU-LLMs
while being irrelevant for transformer KV caches.

Offline substitution: teacher-student synthetic LMs
(``repro.accuracy.synthetic_lm``).  The blow-up magnitudes are milder
than on real checkpoints (a 2-layer random teacher depends less on deep
context than a trained 2.7B model), but the ordering and the SR rescue
reproduce; see EXPERIMENTS.md.
"""

import pytest
from conftest import print_table, run_once

from repro.accuracy import fig4_study
from repro.models import Family
from repro.quant import FIG4_FORMATS

pytestmark = pytest.mark.slow

FAMILIES = (Family.RETNET, Family.GLA, Family.MAMBA2, Family.TRANSFORMER)


def _fig4():
    return fig4_study(families=FAMILIES, batch=2, seq_len=320)


def test_fig4_quantized_perplexity(benchmark):
    study = run_once(benchmark, _fig4)
    formats = ("fp64",) + FIG4_FORMATS
    rows = [
        [family] + [study[family][f] for f in formats]
        for family in study
    ]
    print_table("Fig. 4: perplexity under 8-bit state/KV formats",
                ["model"] + list(formats), rows)

    for family in (Family.RETNET, Family.GLA, Family.MAMBA2):
        r = study[family.value]
        base = r["fp64"]
        # Accurate trio stays near the reference...
        for fmt in ("fp16", "int8", "mx8", "mx8SR"):
            assert r[fmt] < base * 1.08, (family, fmt)
        # ...while plain fp8 degrades clearly.
        assert r["e5m2"] > base * 1.15, family
        assert r["e4m3"] > base * 1.05, family
    # Stochastic rounding rescues fp8 on the flagship SU-LLMs.
    for family in (Family.GLA, Family.MAMBA2):
        r = study[family.value]
        assert r["e5m2SR"] < r["e5m2"], family
        assert r["e4m3SR"] < r["e4m3"], family
    # Transformers are immune: one-shot KV quantization does not accumulate.
    t = study[Family.TRANSFORMER.value]
    for fmt in FIG4_FORMATS:
        assert t[fmt] < t["fp64"] * 1.02, fmt
