"""Fig. 13 — latency breakdown of large-scale models across systems.

Paper: Pimba cuts state-update latency 14.6x vs GPU and 6.9x vs GPU+PIM;
attention 6.3x and 2.1x; bigger end-to-end cuts at larger batches and for
state-update-dominated models (RetNet b128: 3.2x total).
"""

import pytest
from conftest import print_table, run_once

from repro.models import spec_for
from repro.perf import OpKind, SystemKind, build_system

SYSTEMS = (SystemKind.GPU, SystemKind.GPU_Q, SystemKind.GPU_PIM, SystemKind.PIMBA)
MODELS = ("RetNet", "GLA", "HGRN2", "Mamba-2", "Zamba2", "OPT")


def _fig13():
    out = {}
    for name in MODELS:
        spec = spec_for(name, "large")
        for batch in (32, 128):
            for kind in SYSTEMS:
                step = build_system(kind, "large").step_latency(spec, batch, 3072)
                out[(name, batch, kind.value)] = dict(
                    total=step.total,
                    **{k.value: v for k, v in step.seconds_by_kind.items()},
                )
    return out


def test_fig13_latency_breakdown(benchmark):
    data = run_once(benchmark, _fig13)
    kinds = [k.value for k in (OpKind.STATE_UPDATE, OpKind.ATTENTION, OpKind.GEMM,
                               OpKind.COMMUNICATION, OpKind.OTHER)]
    rows = []
    for (name, batch, system), d in data.items():
        base = data[(name, batch, "GPU")]["total"]
        rows.append([name, batch, system, d["total"] / base]
                    + [d.get(k, 0.0) / base for k in kinds])
    print_table("Fig. 13: normalized latency breakdown (large scale, seq 3072)",
                ["model", "batch", "system", "total"] + kinds, rows)

    su = {s: data[("RetNet", 128, s)]["State Update"]
          for s in ("GPU", "GPU+PIM", "Pimba")}
    assert su["GPU"] / su["Pimba"] == pytest.approx(14.6, rel=0.3)
    assert su["GPU+PIM"] / su["Pimba"] == pytest.approx(6.9, rel=0.3)

    at = {s: data[("OPT", 128, s)]["Attention"]
          for s in ("GPU", "GPU+PIM", "Pimba")}
    assert 4.0 < at["GPU"] / at["Pimba"] < 12.0        # paper: 6.3x
    assert 1.5 < at["GPU+PIM"] / at["Pimba"] < 3.5     # paper: 2.1x

    # End-to-end reduction grows with state-update dominance (RetNet b128
    # >> HGRN2 b32, as in the paper's 3.2x vs 1.2x contrast).
    retnet = data[("RetNet", 128, "Pimba")]["total"] / data[("RetNet", 128, "GPU")]["total"]
    hgrn2 = data[("HGRN2", 32, "Pimba")]["total"] / data[("HGRN2", 32, "GPU")]["total"]
    assert retnet < hgrn2
