"""Fig. 3 — GPU latency breakdown during generation across SU-LLMs.

Paper: state updates dominate and their share grows with batch size
(RetNet: 41.9% at batch 32 -> 73.8% at batch 128); in Zamba2 attention
remains a large fraction despite 6x fewer attention layers.
"""

import pytest
from conftest import print_table, run_once

from repro.models import spec_for
from repro.perf import OpKind, SystemKind, build_system

MODELS = ("RetNet", "GLA", "HGRN2", "Mamba-2", "Zamba2")
BATCHES = (32, 64, 128)


def _fig3():
    system = build_system(SystemKind.GPU, "small")
    out = {}
    for name in MODELS:
        spec = spec_for(name)
        for batch in BATCHES:
            step = system.step_latency(spec, batch, 2048)
            out[(name, batch)] = {
                kind.value: step.fraction(kind) * 100
                for kind in OpKind
                if step.seconds_by_kind.get(kind)
            }
    return out


def test_fig3_latency_breakdown(benchmark):
    data = run_once(benchmark, _fig3)
    kinds = [k.value for k in (
        OpKind.STATE_UPDATE, OpKind.ATTENTION, OpKind.DISCRETIZATION,
        OpKind.CAUSAL_CONV, OpKind.GEMM, OpKind.OTHER,
    )]
    rows = [
        [name, batch] + [data[(name, batch)].get(k, 0.0) for k in kinds]
        for name in MODELS for batch in BATCHES
    ]
    print_table("Fig. 3: generation-phase latency share (%) on GPU",
                ["model", "batch"] + kinds, rows)

    retnet32 = data[("RetNet", 32)]["State Update"]
    retnet128 = data[("RetNet", 128)]["State Update"]
    assert retnet32 == pytest.approx(41.9, abs=8)
    assert retnet128 == pytest.approx(73.8, abs=8)
    for name in MODELS:
        assert (
            data[(name, 128)]["State Update"] > data[(name, 32)]["State Update"]
        )
    zamba = data[("Zamba2", 128)]
    assert zamba["Attention"] > 30  # paper: 65.5% at batch 128
