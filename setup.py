"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that editable
installs work in offline environments whose setuptools predates the
built-in ``bdist_wheel`` command (legacy ``pip install -e .`` path).
"""

from setuptools import setup

setup()
