"""Cross-package integration tests: the full stack end to end."""

import numpy as np
import pytest

from repro.accuracy import SyntheticLm
from repro.core import PimbaAccelerator, pimba_config
from repro.models import Family, build_tiny, spec_for
from repro.perf import OpKind, SystemKind, build_system
from repro.quant import get_format
from repro.workloads import ServingSimulator, generate_tokens, uniform_batch


class TestFunctionalStack:
    def test_model_state_matches_device_state_update(self):
        """A model whose StateUpdateOp uses the device format produces
        states the device itself would store (same lattice)."""
        device = PimbaAccelerator(pimba_config(state_format="mx8"))
        model = build_tiny(Family.RETNET, seed=2, state_format=get_format("mx8"))
        cache = model.init_cache(1)
        tokens = np.random.default_rng(0).integers(0, 256, size=(1, 10))
        for t in range(10):
            model.step(tokens[:, t], cache)
        state = cache[0]["state"]
        np.testing.assert_array_equal(device.store_state(state), state)

    def test_generation_through_pimba_storage_stays_coherent(self):
        exact = build_tiny(Family.GLA, seed=4)
        quant = build_tiny(
            Family.GLA, seed=4,
            state_format=get_format("mx8SR"), kv_format=get_format("mx8SR"),
        )
        prompts = np.random.default_rng(1).integers(0, 256, size=(2, 6))
        out_e = generate_tokens(exact, prompts, 8)
        out_q = generate_tokens(quant, prompts, 8)
        # Greedy decoding should mostly agree under mx8SR storage.
        assert (out_e == out_q).mean() > 0.7

    def test_accuracy_lm_runs_all_families(self):
        for family in (Family.ZAMBA2, Family.HGRN2):
            lm = SyntheticLm(family)
            tokens = lm.sample_stream(1, 24, np.random.default_rng(0))
            assert tokens.shape == (1, 25)


class TestPerformanceStack:
    def test_simulator_consistent_with_step_latency(self):
        spec = spec_for("RetNet")
        system = build_system(SystemKind.PIMBA, "small")
        sim = ServingSimulator(system, spec)
        result = sim.run(uniform_batch(16, 256, 64))
        # SU-LLM: every step costs the same; total = steps x step latency.
        step = system.step_latency(spec, 16, 256).total
        assert result.decode_seconds == pytest.approx(64 * step, rel=0.01)

    def test_pim_timing_feeds_system_model(self):
        spec = spec_for("Mamba-2", "large")
        system = build_system(SystemKind.PIMBA, "large")
        su = system.step_latency(spec, 64, 1024).seconds_by_kind[OpKind.STATE_UPDATE]
        direct = system.pim.state_update_timing(
            max(1, round(64 * spec.n_heads / 8)), spec.dim_head, spec.dim_state
        ).seconds * spec.state_update_layers
        assert su == pytest.approx(direct + 3e-6 * spec.state_update_layers)

    def test_all_systems_price_all_models(self):
        for name in ("RetNet", "Zamba2", "OPT"):
            spec = spec_for(name)
            for kind in SystemKind:
                m = build_system(kind, "small").generation_metrics(spec, 8)
                assert m.tokens_per_second > 0
                assert m.memory_bytes_per_device > 0

    def test_su_llm_memory_flat_transformer_growing(self):
        sys = build_system(SystemKind.PIMBA, "small")
        retnet, opt = spec_for("RetNet"), spec_for("OPT")
        r1 = sys.memory_usage(retnet, 16, 1024)
        r2 = sys.memory_usage(retnet, 16, 8192)
        o1 = sys.memory_usage(opt, 16, 1024)
        o2 = sys.memory_usage(opt, 16, 8192)
        assert r1 == r2
        assert o2 > 2 * o1
