"""Tests for the accuracy harness: swamping, SR rescue, task proxies."""

import numpy as np
import pytest

from repro.accuracy.perplexity import evaluate_perplexity, quantization_sweep
from repro.accuracy.synthetic_lm import SyntheticLm, log_softmax
from repro.accuracy.tasks import (
    TABLE2_TASKS,
    TaskSpec,
    build_items,
    sequence_logprob,
    task_accuracy,
)
from repro.models import Family


@pytest.fixture(scope="module")
def gla_lm():
    return SyntheticLm(Family.GLA)


@pytest.fixture(scope="module")
def gla_tokens(gla_lm):
    return gla_lm.sample_stream(2, 256, np.random.default_rng(0))


class TestSyntheticLm:
    def test_teacher_and_student_share_weights(self, gla_lm):
        student = gla_lm.build_student("mx8")
        np.testing.assert_array_equal(
            gla_lm.teacher.params["embedding"], student.params["embedding"]
        )

    def test_stream_shape_and_vocab(self, gla_lm, gla_tokens):
        assert gla_tokens.shape == (2, 257)
        assert gla_tokens.max() < gla_lm.spec.vocab_size

    def test_stream_reproducible(self, gla_lm):
        a = gla_lm.sample_stream(1, 32, np.random.default_rng(5))
        b = gla_lm.sample_stream(1, 32, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_invalid_stream_args(self, gla_lm):
        with pytest.raises(ValueError):
            gla_lm.sample_stream(0, 10, np.random.default_rng(0))

    def test_log_softmax_normalized(self):
        lp = log_softmax(np.random.default_rng(0).normal(size=(3, 7)) * 10)
        np.testing.assert_allclose(np.exp(lp).sum(axis=-1), 1.0)


class TestPerplexity:
    def test_teacher_beats_uniform(self, gla_lm, gla_tokens):
        ppl = evaluate_perplexity(gla_lm.teacher, gla_tokens, skip=64)
        assert ppl < gla_lm.spec.vocab_size * 0.6

    def test_fig4_ordering_on_gla(self):
        """The Fig. 4 core: fp16 ~ int8 ~ mx8 << e5m2; SR rescues fp8."""
        results = quantization_sweep(
            Family.GLA,
            ("fp16", "int8", "e5m2", "e5m2SR", "mx8", "mx8SR"),
            batch=2, seq_len=320,
        )
        base = results["fp64"]
        assert results["fp16"] == pytest.approx(base, rel=0.02)
        assert results["int8"] < base * 1.05
        assert results["mx8"] < base * 1.05
        assert results["mx8SR"] < base * 1.05
        assert results["e5m2"] > base * 1.2  # swamping blow-up
        assert results["e5m2SR"] < results["e5m2"]  # stochastic rescue

    def test_transformer_immune_to_fp8_kv(self):
        """KV caches quantize once per token: no accumulation, no damage."""
        results = quantization_sweep(
            Family.TRANSFORMER, ("e5m2", "mx8"), batch=2, seq_len=192,
        )
        assert results["e5m2"] == pytest.approx(results["fp64"], rel=0.02)
        assert results["mx8"] == pytest.approx(results["fp64"], rel=0.02)

    def test_short_sequence_rejected(self, gla_lm):
        with pytest.raises(ValueError):
            evaluate_perplexity(gla_lm.teacher, np.zeros((1, 10), dtype=int))


class TestTasks:
    @pytest.fixture(scope="class")
    def items(self, gla_lm):
        task = TaskSpec("probe", n_choices=2, context_len=48, continuation_len=10)
        return build_items(gla_lm, task, 16, np.random.default_rng(3))

    def test_teacher_accuracy_above_chance(self, gla_lm, items):
        acc = task_accuracy(gla_lm.teacher, items, gla_lm.temperature)
        assert acc > 0.75

    def test_mx8sr_matches_teacher_within_noise(self, gla_lm, items):
        """Table 2: Pimba within a few points of the GPU baseline."""
        teacher = task_accuracy(gla_lm.teacher, items, gla_lm.temperature)
        pimba = task_accuracy(gla_lm.build_student("mx8SR"), items, gla_lm.temperature)
        assert abs(pimba - teacher) <= 0.13

    def test_answer_slots_uniformish(self, gla_lm):
        task = TaskSpec("probe4", n_choices=4, context_len=24, continuation_len=4)
        items = build_items(gla_lm, task, 40, np.random.default_rng(4))
        answers = [it.answer for it in items]
        assert set(answers) == {0, 1, 2, 3}

    def test_sequence_logprob_is_negative(self, gla_lm, items):
        lp = sequence_logprob(
            gla_lm.teacher, items[0].context, items[0].choices[0], gla_lm.temperature
        )
        assert lp < 0

    def test_table2_task_definitions(self):
        names = {t.name for t in TABLE2_TASKS}
        assert names == {"Piqa", "Lambada", "HellaSwag", "ARC-E", "ARC-C", "WinoGrande"}
        with pytest.raises(ValueError):
            TaskSpec("bad", n_choices=1, context_len=8, continuation_len=2)

    def test_zero_items_rejected(self, gla_lm):
        task = TaskSpec("probe", 2, 8, 2)
        with pytest.raises(ValueError):
            build_items(gla_lm, task, 0, np.random.default_rng(0))
