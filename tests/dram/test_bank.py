"""Unit tests for the bank state machine and tFAW tracker."""

import pytest

from repro.dram.bank import Bank, BankState, FawTracker, TimingError
from repro.dram.timing import TimingParams


@pytest.fixture
def timing():
    return TimingParams()


@pytest.fixture
def bank(timing):
    return Bank(timing, columns_per_row=32, index=0)


class TestBank:
    def test_initially_idle(self, bank):
        assert bank.state is BankState.IDLE
        assert bank.open_row is None

    def test_activate_opens_row(self, bank):
        bank.activate(0, row=7)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 7

    def test_column_before_trcd_rejected(self, bank, timing):
        bank.activate(0, row=0)
        with pytest.raises(TimingError):
            bank.read(timing.tRCD - 1, column=0)

    def test_column_at_trcd_accepted(self, bank, timing):
        bank.activate(0, row=0)
        bank.read(timing.tRCD, column=0)

    def test_back_to_back_reads_respect_tccd_l(self, bank, timing):
        bank.activate(0, row=0)
        t = timing.tRCD
        bank.read(t, column=0)
        with pytest.raises(TimingError):
            bank.read(t + timing.tCCD_L - 1, column=1)

    def test_precharge_before_tras_rejected(self, bank, timing):
        bank.activate(0, row=0)
        with pytest.raises(TimingError):
            bank.precharge(timing.tRAS - 1)

    def test_write_recovery_blocks_precharge(self, bank, timing):
        bank.activate(0, row=0)
        t = timing.tRCD
        bank.write(t, column=0)
        earliest = bank.earliest_precharge(t)
        assert earliest >= t + timing.tBL + timing.tWR

    def test_reactivate_after_precharge_waits_trp(self, bank, timing):
        bank.activate(0, row=0)
        t = timing.tRAS
        bank.precharge(t)
        assert bank.earliest_activate(t) == t + timing.tRP

    def test_column_out_of_range_rejected(self, bank, timing):
        bank.activate(0, row=0)
        with pytest.raises(ValueError):
            bank.read(timing.tRCD, column=32)

    def test_activate_while_active_rejected(self, bank):
        bank.activate(0, row=0)
        with pytest.raises(TimingError):
            bank.activate(100, row=1)

    def test_column_while_idle_rejected(self, bank):
        with pytest.raises(TimingError):
            bank.read(0, column=0)

    def test_stats_counted(self, bank, timing):
        bank.activate(0, row=0)
        bank.read(timing.tRCD, column=0)
        bank.write(timing.tRCD + timing.tCCD_L, column=1)
        assert bank.stats["activates"] == 1
        assert bank.stats["reads"] == 1
        assert bank.stats["writes"] == 1


class TestFawTracker:
    def test_first_four_activations_unconstrained(self, timing):
        faw = FawTracker(timing)
        for i in range(4):
            assert faw.earliest(i) == i
            faw.record(i)

    def test_fifth_activation_waits_out_window(self, timing):
        faw = FawTracker(timing)
        for i in range(4):
            faw.record(i)
        assert faw.earliest(4) == 0 + timing.tFAW

    def test_violation_raises(self, timing):
        faw = FawTracker(timing)
        for i in range(4):
            faw.record(i)
        with pytest.raises(TimingError):
            faw.record(5)

    def test_spread_activations_not_delayed(self, timing):
        faw = FawTracker(timing)
        times = [0, 40, 80, 120, 160]
        for t in times:
            assert faw.earliest(t) == t
            faw.record(t)
