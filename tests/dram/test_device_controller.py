"""Integration tests: pseudo-channel device + FCFS controller."""

import pytest

from repro.dram.commands import Command, CommandKind
from repro.dram.controller import FcfsController, Request, stream_cycles
from repro.dram.device import PseudoChannel
from repro.dram.timing import HbmConfig, a100_hbm


@pytest.fixture
def channel():
    return PseudoChannel(a100_hbm())


class TestPseudoChannel:
    def test_has_sixteen_banks(self, channel):
        assert len(channel.banks) == 16

    def test_bank_group_mapping(self, channel):
        assert channel.bank_group_of(0) == 0
        assert channel.bank_group_of(5) == 1
        assert channel.bank_group_of(15) == 3

    def test_tccd_s_between_bank_groups(self, channel):
        t = channel.timing
        channel.execute(Command(0, CommandKind.ACT, bank=0, row=0))
        channel.execute(Command(1, CommandKind.ACT, bank=4, row=0))
        first = t.tRCD + 1
        channel.execute(Command(first, CommandKind.RD, bank=0, column=0))
        # Different bank group: legal after tCCD_S.
        channel.execute(Command(first + t.tCCD_S, CommandKind.RD, bank=4, column=0))

    def test_tccd_l_within_bank_group_enforced(self, channel):
        t = channel.timing
        channel.execute(Command(0, CommandKind.ACT, bank=0, row=0))
        channel.execute(Command(1, CommandKind.ACT, bank=1, row=0))
        first = t.tRCD + 1
        channel.execute(Command(first, CommandKind.RD, bank=0, column=0))
        from repro.dram.bank import TimingError
        with pytest.raises(TimingError):
            channel.execute(
                Command(first + t.tCCD_S, CommandKind.RD, bank=1, column=0)
            )

    def test_pim_commands_rejected_here(self, channel):
        with pytest.raises(ValueError):
            channel.execute(Command(0, CommandKind.COMP))

    def test_all_bank_command_requires_bank_minus_one(self):
        with pytest.raises(ValueError):
            Command(0, CommandKind.ACT4, bank=3)


class TestFcfsController:
    def test_sequential_reads_single_bank(self):
        ctrl = FcfsController(a100_hbm(), refresh=False)
        reqs = [Request(bank=0, row=0, column=c) for c in range(8)]
        done = ctrl.run(reqs)
        t = ctrl.config.timing
        # One ACT + 8 reads separated by tCCD_L.
        assert done >= t.tRCD + 7 * t.tCCD_L
        assert ctrl.channel.banks[0].stats["reads"] == 8

    def test_row_conflict_inserts_precharge(self):
        ctrl = FcfsController(a100_hbm(), refresh=False)
        ctrl.run([Request(0, 0, 0), Request(0, 1, 0)])
        assert ctrl.channel.banks[0].stats["precharges"] == 1
        assert ctrl.channel.banks[0].stats["activates"] == 2

    def test_bank_interleaved_reads_hit_bus_rate(self):
        # Streaming across bank groups should approach one column per tBL.
        ctrl = FcfsController(a100_hbm(), refresh=False)
        reqs = [
            Request(bank=(i * 4 + i // 16) % 16, row=0, column=(i // 16) % 32)
            for i in range(64)
        ]
        done = ctrl.run(reqs)
        busy = 64 * ctrl.config.timing.tBL
        assert busy <= done <= 4 * busy

    def test_refresh_inserted_on_long_streams(self):
        cfg = a100_hbm()
        ctrl = FcfsController(cfg, refresh=True)
        reqs = [
            Request(bank=i % 16, row=(i // 512) % 4, column=(i // 16) % 32)
            for i in range(3000)
        ]
        done = ctrl.run(reqs)
        refs = [c for c in ctrl.issued if c.kind is CommandKind.REF]
        assert len(refs) >= 1
        assert done > cfg.timing.tREFI

    def test_writes_tracked(self):
        ctrl = FcfsController(a100_hbm(), refresh=False)
        ctrl.run([Request(0, 0, c, is_write=True) for c in range(4)])
        assert ctrl.channel.banks[0].stats["writes"] == 4


class TestStreamCycles:
    def test_matches_bus_rate(self):
        cfg = a100_hbm()
        n_bytes = 1 << 20
        cycles = stream_cycles(cfg, n_bytes)
        ideal = n_bytes / cfg.organization.column_bytes * cfg.timing.tBL
        assert ideal <= cycles <= ideal * 1.2

    def test_zero_bytes(self):
        assert stream_cycles(a100_hbm(), 0) == 0
