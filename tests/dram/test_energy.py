"""Unit tests for the DRAM energy model and ledger arithmetic."""

import pytest

from repro.dram.energy import DramEnergyModel, DramEnergyParams, EnergyLedger


class TestParams:
    def test_defaults_follow_oconnor(self):
        p = DramEnergyParams()
        assert p.activate_pj == pytest.approx(909.0)
        assert p.array_pj_per_bit == pytest.approx(1.51)
        assert p.io_pj_per_bit == pytest.approx(0.80)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DramEnergyParams(activate_pj=-1.0)


class TestLedger:
    def test_total_sums_components(self):
        ledger = EnergyLedger(activate_pj=1, array_pj=2, io_pj=3,
                              compute_pj=4, background_pj=5)
        assert ledger.total_pj == 15
        assert ledger.total_j == pytest.approx(15e-12)

    def test_add_is_componentwise(self):
        a = EnergyLedger(activate_pj=1, io_pj=2)
        b = EnergyLedger(activate_pj=3, compute_pj=4)
        c = a.add(b)
        assert (c.activate_pj, c.io_pj, c.compute_pj) == (4, 2, 4)
        # originals untouched
        assert a.activate_pj == 1

    def test_scaled(self):
        a = EnergyLedger(array_pj=10).scaled(2.5)
        assert a.array_pj == 25


class TestModel:
    def test_channel_transfer_includes_array(self):
        model = DramEnergyModel()
        model.channel_transfer(100)
        p = model.params
        assert model.ledger.array_pj == pytest.approx(p.array_pj_per_bit * 800)
        assert model.ledger.io_pj == pytest.approx(p.io_pj_per_bit * 800)

    def test_array_access_has_no_io(self):
        model = DramEnergyModel()
        model.array_access(100)
        assert model.ledger.io_pj == 0.0
        assert model.ledger.array_pj > 0.0

    def test_pim_saves_io_energy(self):
        """The Fig. 14 mechanism at the ledger level: same bytes, in-bank
        access skips the channel-crossing energy."""
        gpu, pim = DramEnergyModel(), DramEnergyModel()
        gpu.channel_transfer(1 << 20)
        pim.array_access(1 << 20)
        assert pim.ledger.total_pj < gpu.ledger.total_pj
        assert gpu.ledger.total_pj - pim.ledger.total_pj == pytest.approx(
            gpu.ledger.io_pj
        )

    def test_activation_and_background(self):
        model = DramEnergyModel()
        model.activation(count=3)
        model.background(seconds=1e-3, pseudo_channels=80)
        assert model.ledger.activate_pj == pytest.approx(3 * 909.0)
        assert model.ledger.background_pj > 0
