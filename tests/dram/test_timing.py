"""Unit tests for HBM timing parameters and derived bandwidths."""

import dataclasses

import pytest

from repro.dram.timing import (
    HbmConfig,
    HbmOrganization,
    TimingParams,
    a100_hbm,
    h100_hbm,
)


class TestTimingParams:
    def test_table1_defaults(self):
        t = TimingParams()
        assert (t.tRP, t.tRAS, t.tCCD_S, t.tCCD_L) == (14, 34, 2, 4)
        assert (t.tWR, t.tRTP_S, t.tRTP_L) == (16, 4, 6)
        assert (t.tREFI, t.tFAW) == (3900, 30)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TimingParams(tRP=0)

    def test_refresh_overhead_fraction(self):
        t = TimingParams()
        assert 0.05 < t.refresh_overhead < 0.15


class TestOrganization:
    def test_sixteen_banks_per_pseudo_channel(self):
        org = HbmOrganization()
        assert org.banks == 16

    def test_columns_per_row(self):
        org = HbmOrganization()
        assert org.columns_per_row == 32


class TestHbmConfig:
    def test_a100_pim_frequency_matches_table1(self):
        cfg = a100_hbm()
        assert cfg.pim_frequency_hz == pytest.approx(378e6, rel=0.01)

    def test_h100_pim_frequency_matches_paper(self):
        cfg = h100_hbm()
        assert cfg.pim_frequency_hz == pytest.approx(657e6, rel=0.01)

    def test_a100_device_bandwidth_near_2tb(self):
        cfg = a100_hbm()
        assert cfg.device_bandwidth_bytes == pytest.approx(1.94e12, rel=0.02)

    def test_h100_device_bandwidth_near_3_35tb(self):
        cfg = h100_hbm()
        assert cfg.device_bandwidth_bytes == pytest.approx(3.36e12, rel=0.02)

    def test_internal_bandwidth_is_8x_channel(self):
        cfg = a100_hbm()
        ratio = cfg.internal_bandwidth_bytes / cfg.device_bandwidth_bytes
        assert ratio == pytest.approx(8.0, rel=0.01)

    def test_configs_are_frozen(self):
        cfg = a100_hbm()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.bus_frequency_hz = 1.0
