"""Arrival processes, length distributions, and trace replay files."""

import numpy as np
import pytest

from repro.serving.arrivals import (
    empirical_lengths,
    fixed_lengths,
    gamma_trace,
    load_trace,
    lognormal_lengths,
    poisson_trace,
    save_trace,
    static_trace,
)
from repro.workloads.requests import Request, TimedRequest, Trace, uniform_batch


class TestLengthSamplers:
    def test_fixed(self):
        rng = np.random.default_rng(0)
        assert fixed_lengths(100, 7)(rng) == (100, 7)

    def test_lognormal_bounds_and_median(self):
        rng = np.random.default_rng(0)
        sample = lognormal_lengths(1024, 256, sigma=0.5)
        pairs = [sample(rng) for _ in range(500)]
        inputs = [i for i, _ in pairs]
        assert all(1 <= i <= 8192 for i in inputs)
        assert 700 < float(np.median(inputs)) < 1500
        # Long tail: spread well beyond the median.
        assert max(inputs) > 2 * min(inputs)

    def test_empirical_resamples_only_given_pairs(self):
        rng = np.random.default_rng(3)
        sample = empirical_lengths([(10, 1), (20, 2)])
        seen = {sample(rng) for _ in range(50)}
        assert seen == {(10, 1), (20, 2)}

    def test_validation(self):
        with pytest.raises(ValueError):
            fixed_lengths(0, 1)
        with pytest.raises(ValueError):
            empirical_lengths([])


class TestArrivalProcesses:
    def test_poisson_reproducible_and_rate(self):
        a = poisson_trace(10.0, 400, seed=7)
        b = poisson_trace(10.0, 400, seed=7)
        assert a == b
        assert a.n_requests == 400
        assert a.offered_qps == pytest.approx(10.0, rel=0.2)

    def test_seeds_differ(self):
        assert poisson_trace(5.0, 50, seed=0) != poisson_trace(5.0, 50, seed=1)

    def test_gamma_cv_one_matches_poisson_moments(self):
        g = gamma_trace(8.0, 500, cv=1.0, seed=2)
        assert g.offered_qps == pytest.approx(8.0, rel=0.2)

    def test_gamma_burstier_with_higher_cv(self):
        def gap_std(trace):
            arrivals = [r.arrival_s for r in trace.requests]
            return float(np.std(np.diff(arrivals)))

        calm = gamma_trace(8.0, 800, cv=0.5, seed=4)
        bursty = gamma_trace(8.0, 800, cv=3.0, seed=4)
        assert gap_std(bursty) > 2 * gap_std(calm)

    def test_static_trace_is_a_burst(self):
        trace = static_trace(uniform_batch(8, 64, 16))
        assert trace.n_requests == 8
        assert trace.duration_s == 0.0
        assert trace.offered_qps == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(0.0, 10)
        with pytest.raises(ValueError):
            gamma_trace(1.0, 10, cv=0.0)


class TestTraceReplay:
    def test_json_roundtrip(self, tmp_path):
        trace = poisson_trace(4.0, 25, lognormal_lengths(512, 128), seed=11)
        path = save_trace(trace, tmp_path / "trace.json")
        assert load_trace(path) == trace

    def test_hand_authored_payload(self):
        trace = Trace.from_payload([
            {"request_id": 0, "input_len": 5, "output_len": 2, "arrival_s": 0.0},
            {"request_id": 1, "input_len": 6, "output_len": 3, "arrival_s": 1.5},
        ])
        assert trace.requests[1] == TimedRequest(Request(1, 6, 3), 1.5)

    def test_unordered_arrivals_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Trace((
                TimedRequest(Request(0, 1, 1), 2.0),
                TimedRequest(Request(1, 1, 1), 1.0),
            ))
