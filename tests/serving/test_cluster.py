"""Cluster engine: 1-replica bit-exactness, merging, scaling, determinism."""

import dataclasses

import pytest

from repro.experiments import Runner
from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    ROUTER_NAMES,
    ClusterReport,
    ServingEngine,
    SloSpec,
    build_cluster,
    build_scheduler,
    gamma_trace,
    poisson_trace,
)
from repro.serving.experiments import cluster_slo, cluster_spec, scaling_spec

SLO = SloSpec(ttft_s=2.0, tpot_s=0.018)


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


@pytest.fixture(scope="module")
def pimba_system():
    return build_system(SystemKind.PIMBA, "small")


class TestSingleReplicaEquivalence:
    """A 1-replica cluster is bit-exact with the bare ServingEngine."""

    @pytest.mark.parametrize("router", ROUTER_NAMES)
    @pytest.mark.parametrize(
        "scheduler",
        ["static", "fcfs", "memory", "chunked", "overlap", "paged"],
    )
    def test_bit_exact_with_bare_engine(
        self, router, scheduler, pimba_system, zamba_spec
    ):
        trace = gamma_trace(10.0, 24, cv=3.0, seed=4)
        bare = ServingEngine(
            pimba_system,
            zamba_spec,
            build_scheduler(
                scheduler, pimba_system, zamba_spec,
                max_batch=8, chunk_budget=192,
            ),
        ).serve(trace)
        cluster = build_cluster(
            pimba_system, zamba_spec, 1,
            router=router, scheduler=scheduler,
            max_batch=8, chunk_budget=192,
        ).serve(trace)
        # The merge is the identity for one replica: every event list,
        # timestamp, and queue statistic is the bare engine's, bit for bit.
        assert cluster.merged() == bare
        assert cluster.report().to_payload(SLO) == {
            **bare.report().to_payload(SLO),
            "router": router,
            "n_replicas": 1,
            "load_imbalance": 1.0,
            "per_replica": cluster.report().to_payload(SLO)["per_replica"],
        }


class TestPagedCluster:
    def test_degenerate_paged_cluster_is_memory_aware_bit_exact(
        self, pimba_system, zamba_spec
    ):
        """The PagedScheduler==MemoryAwareScheduler degeneration (block
        size >= max context, preemption disabled) survives the cluster
        layer: 1-replica clusters of the two policies are identical
        under a binding capacity bound."""
        from repro.serving import MemoryModel

        memory = MemoryModel.for_system(pimba_system, zamba_spec)
        capacity = memory.weights_bytes + 3.3 * memory.request_bytes(
            1024, 256
        )
        trace = gamma_trace(10.0, 24, cv=3.0, seed=4)
        conservative = build_cluster(
            pimba_system, zamba_spec, 1,
            scheduler="memory", max_batch=8, capacity_bytes=capacity,
        ).serve(trace)
        paged = build_cluster(
            pimba_system, zamba_spec, 1,
            scheduler="paged", max_batch=8, capacity_bytes=capacity,
            block_size=10**6, preempt=False,
        ).serve(trace)
        assert paged.merged() == conservative.merged()

    def test_preemptions_merge_across_replicas(
        self, pimba_system, zamba_spec
    ):
        """Per-replica preemption counts sum into the cluster report."""
        from repro.serving import MemoryModel

        from repro.serving import fixed_lengths

        memory = MemoryModel.for_system(pimba_system, zamba_spec)
        capacity = memory.weights_bytes + 4 * memory.request_bytes(128, 512)
        trace = poisson_trace(40.0, 32, fixed_lengths(128, 512), seed=1)
        run = build_cluster(
            pimba_system, zamba_spec, 2,
            router="round-robin", scheduler="paged",
            max_batch=64, capacity_bytes=capacity, block_size=64,
        ).serve(trace)
        active = [t for t in run.replicas if t is not None]
        assert sum(t.preemptions for t in active) > 0
        assert run.merged().preemptions == sum(
            t.preemptions for t in active
        )
        assert run.report().n_preemptions == run.merged().preemptions


class TestClusterMerge:
    @pytest.mark.parametrize("router", ROUTER_NAMES)
    def test_every_request_served_exactly_once(
        self, router, pimba_system, zamba_spec
    ):
        trace = poisson_trace(20.0, 40, seed=0)
        cluster = build_cluster(
            pimba_system, zamba_spec, 3, router=router, max_batch=8
        )
        merged = cluster.serve(trace).merged()
        assert sorted(t.request_id for t in merged.timings) == list(range(40))
        report = cluster.run(trace)
        assert report.n_requests == 40
        assert sum(r.n_requests for r in report.per_replica) == 40

    def test_merged_statistics_aggregate_replicas(
        self, pimba_system, zamba_spec
    ):
        trace = poisson_trace(20.0, 30, seed=1)
        run = build_cluster(
            pimba_system, zamba_spec, 3, router="round-robin", max_batch=8
        ).serve(trace)
        active = [t for t in run.replicas if t is not None]
        merged = run.merged()
        assert len(merged.iteration_seconds) == sum(
            len(t.iteration_seconds) for t in active
        )
        assert merged.max_queue_depth == max(t.max_queue_depth for t in active)
        assert merged.start_s == min(t.start_s for t in active)
        assert merged.end_s == max(t.end_s for t in active)

    def test_idle_replicas_report_zeros(self, pimba_system, zamba_spec):
        """More replicas than requests: the surplus nodes stay idle but
        still appear in the breakdown (a fleet you pay for, unused)."""
        trace = poisson_trace(5.0, 2, seed=0)
        report = build_cluster(
            pimba_system, zamba_spec, 4, router="round-robin"
        ).run(trace)
        idle = [r for r in report.per_replica if r.n_requests == 0]
        assert len(idle) == 2
        assert all(r.assigned_tokens == 0 for r in idle)
        assert report.load_imbalance == pytest.approx(2.0)  # 2 of 4 loaded

    def test_report_is_a_serving_report(self, pimba_system, zamba_spec):
        """ClusterReport extends ServingReport: everything the single-node
        analysis code reads (percentiles, goodput) keeps working."""
        report = build_cluster(
            pimba_system, zamba_spec, 2, router="affinity"
        ).run(poisson_trace(10.0, 12, seed=2))
        assert isinstance(report, ClusterReport)
        assert report.ttft_percentile(50) <= report.ttft_percentile(99)
        assert report.goodput(SLO) <= report.completed_per_s
        payload = report.to_payload(SLO)
        assert payload["n_replicas"] == 2
        assert len(payload["per_replica"]) == 2

    def test_router_mismatch_rejected(self, pimba_system, zamba_spec):
        from repro.serving import ClusterEngine, RoundRobinRouter

        engine = ServingEngine(
            pimba_system,
            zamba_spec,
            build_scheduler("fcfs", pimba_system, zamba_spec),
        )
        with pytest.raises(ValueError, match="router expects"):
            ClusterEngine([engine, engine], RoundRobinRouter(3))


class TestScaling:
    def test_goodput_grows_with_replicas_under_least_loaded(
        self, pimba_system, zamba_spec
    ):
        """The acceptance shape of the scaling figure, in miniature: under
        saturating load, every added replica converts queueing delay into
        SLO-meeting completions."""
        trace = poisson_trace(64.0, 64, seed=0, lengths=None)
        goodputs = [
            build_cluster(
                pimba_system, zamba_spec, n,
                router="least-loaded", max_batch=8,
            )
            .run(trace)
            .goodput(SLO)
            for n in (1, 2, 4)
        ]
        assert goodputs[0] < goodputs[1] < goodputs[2]

    def test_tail_latency_shrinks_with_replicas(
        self, pimba_system, zamba_spec
    ):
        trace = poisson_trace(64.0, 64, seed=0)
        p99 = [
            build_cluster(
                pimba_system, zamba_spec, n,
                router="least-loaded", max_batch=8,
            )
            .run(trace)
            .ttft_percentile(99)
            for n in (1, 4)
        ]
        assert p99[1] < p99[0]


class TestDeterminism:
    """Identical seeds and traces -> identical reports, everywhere."""

    def test_repeated_runs_identical(self, pimba_system, zamba_spec):
        def run():
            return build_cluster(
                pimba_system, zamba_spec, 3,
                router="least-loaded", max_batch=8,
            ).run(poisson_trace(24.0, 32, seed=9))

        a, b = run(), run()
        assert a.to_payload(SLO) == b.to_payload(SLO)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    @pytest.mark.parametrize("router", ROUTER_NAMES)
    def test_reused_engine_routes_like_a_fresh_one(
        self, router, pimba_system, zamba_spec
    ):
        """serve() resets router state, so a warmed-up cluster assigns a
        trace identically to a brand-new one (stateful policies like
        round-robin would otherwise carry their cursor across runs)."""
        trace = poisson_trace(24.0, 24, seed=5)
        cluster = build_cluster(
            pimba_system, zamba_spec, 3, router=router, max_batch=8
        )
        first = cluster.serve(trace)
        second = cluster.serve(trace)
        assert first.assignments == second.assignments
        assert second.merged() == first.merged()

    @pytest.mark.parametrize("router", ROUTER_NAMES)
    def test_trial_function_is_pure(self, router):
        kwargs = dict(
            replicas=3, router=router, n_requests=24,
            input_len=256, output_len=32, max_batch=4,
        )
        assert cluster_slo("Pimba", 24.0, **kwargs) == cluster_slo(
            "Pimba", 24.0, **kwargs
        )

    def test_process_pool_fanout_matches_serial(self, tmp_path):
        """The cluster sweep is reproducible across ProcessPoolExecutor
        workers: a parallel uncached run returns byte-identical values to
        a serial uncached run (routers hash with SHA, never Python's
        seed-randomized ``hash``) — for the prefill-shaping schedulers
        too."""
        spec = cluster_spec().with_axes(
            replicas=(1, 2), router=("round-robin", "affinity"),
            scheduler=("fcfs", "chunked", "overlap"),
        )
        spec = dataclasses.replace(
            spec,
            fixed={**spec.fixed, "n_requests": 16, "qps": 16.0},
        )
        serial = Runner(use_cache=False, max_workers=1).run(spec)
        parallel = Runner(use_cache=False, max_workers=4).run(spec)
        assert len(serial) == len(parallel) == 12
        assert serial.values == parallel.values


class TestClusterSweepSpecs:
    def test_smoke_grids_are_tiny(self):
        assert len(cluster_spec(smoke=True)) == 2
        assert len(scaling_spec(smoke=True)) == 2

    def test_full_grids_cover_routers(self):
        full = cluster_spec()
        assert set(full.axes["router"]) == set(ROUTER_NAMES)
        assert 1 in full.axes["replicas"]  # the equivalence anchor
        assert {"chunked", "overlap"} <= set(full.axes["scheduler"])
        assert set(scaling_spec().axes["router"]) == set(ROUTER_NAMES)
