"""Cluster-level prefix reuse: session affinity, the shared KV tier,
the cache knob, and the empty-trace equivalence.

The single-pool cache corners live in ``test_prefix_cache.py``; this
file pins what the cluster layer adds on top — the affinity router
actually keeping a session's turns on one replica (the bug this suite
regresses), the cross-replica tier's transfer-vs-recompute boundary and
its visibility rules, bit-exactness of the vectorized engine against
the scalar reference on the transfer-priced paths, refcount
conservation when a prefix crosses replicas, and the degenerate inputs
(cache off, empty trace) folding onto their baselines.
"""

import math

import pytest

from repro.experiments import Runner
from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    AffinityRouter,
    IterationCostModel,
    MemoryModel,
    PrefixBlockPool,
    ReferenceEngine,
    ServingEngine,
    SharedPrefixTier,
    SloSpec,
    build_cluster,
    build_scheduler,
    load_trace,
    multiturn_chat_trace,
)
from repro.serving.experiments import cross_replica_prefix_spec
from repro.workloads.requests import Trace

BLOCK = 64
CORPUS = "traces/multiturn_chat.json"


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


@pytest.fixture(scope="module")
def pimba_system():
    return build_system(SystemKind.PIMBA, "small")


@pytest.fixture(scope="module")
def memory(pimba_system, zamba_spec):
    return MemoryModel.for_system(pimba_system, zamba_spec)


@pytest.fixture(scope="module")
def corpus():
    return load_trace(CORPUS)


def session_trace(seed=0):
    return multiturn_chat_trace(
        1.0, 8, turns=4, first_input=256, user_tokens=64,
        output_len=32, think_s=2.0, seed=seed,
    )


class TestAffinitySessionPinning:
    """The affinity router's default key is the session, not the request.

    Keying on the request id routed every turn of a conversation to a
    (likely) different replica, so the per-replica prefix caches never
    saw a session twice — cluster hit rates collapsed while the
    single-engine rate looked fine.
    """

    def test_every_turn_of_a_session_lands_on_one_replica(self, corpus):
        assignments = AffinityRouter(4).assign(corpus)
        homes: dict[int, set[int]] = {}
        for request, replica in zip(corpus.requests, assignments):
            homes.setdefault(request.session_id, set()).add(replica)
        assert all(len(replicas) == 1 for replicas in homes.values())
        # ... while distinct sessions still spread over the fleet.
        assert len({min(r) for r in homes.values()}) > 1

    def test_cluster_hit_rate_matches_single_engine(
        self, pimba_system, zamba_spec, corpus
    ):
        """Under affinity routing the per-replica caches together see
        exactly the session locality one engine would, so the cluster
        hit rate equals the single-engine rate at every fleet size
        (light load: no queueing to perturb admission clocks)."""
        single = ServingEngine(
            pimba_system, zamba_spec,
            build_scheduler("prefix", pimba_system, zamba_spec, max_batch=4),
        ).run(corpus).to_payload()
        assert single["prefix_cache_hit_rate"] > 0.5
        for n in (1, 2, 4):
            clustered = build_cluster(
                pimba_system, zamba_spec, n,
                router="affinity", scheduler="prefix", max_batch=4,
            ).run(corpus).to_payload()
            assert (
                clustered["prefix_cache_hit_rate"]
                == single["prefix_cache_hit_rate"]
            )

    def test_sessionless_requests_hash_like_before(self):
        """The fallback key encodes the request id identically to the
        old default, so sessionless traces route exactly as they always
        did (no perf-gate cell moves)."""
        from repro.serving import poisson_trace

        trace = poisson_trace(10.0, 32, seed=3)
        fixed = AffinityRouter(4).assign(trace)
        explicit = AffinityRouter(4, key=lambda r: r.request_id).assign(trace)
        assert fixed == explicit


class TestCacheKnob:
    """``cache=False`` reaches the prefix scheduler through the builder."""

    def test_builder_cache_off_is_paged_bit_exact(
        self, pimba_system, zamba_spec
    ):
        trace = session_trace()
        off = ServingEngine(
            pimba_system, zamba_spec,
            build_scheduler(
                "prefix", pimba_system, zamba_spec, max_batch=8, cache=False
            ),
        ).serve(trace)
        paged = ServingEngine(
            pimba_system, zamba_spec,
            build_scheduler("paged", pimba_system, zamba_spec, max_batch=8),
        ).serve(trace)
        assert off == paged

    def test_cluster_cache_off_is_paged_bit_exact(
        self, pimba_system, zamba_spec
    ):
        trace = session_trace()
        off = build_cluster(
            pimba_system, zamba_spec, 2,
            scheduler="prefix", cache=False, max_batch=8,
        ).serve(trace)
        paged = build_cluster(
            pimba_system, zamba_spec, 2,
            scheduler="paged", max_batch=8,
        ).serve(trace)
        assert off.merged() == paged.merged()

    def test_trial_cache_off_is_paged(self):
        """The knob survives the trial layer (``--set cache=false``)."""
        from repro.serving.experiments import cluster_slo

        common = dict(
            system="Pimba", qps=1.0, replicas=2, arrival="multiturn",
            n_requests=16, input_len=256, output_len=32, max_batch=8,
        )
        off = cluster_slo(scheduler="prefix", cache=False, **common)
        paged = cluster_slo(scheduler="paged", **common)
        assert off == paged

    def test_shared_tier_requires_prefix_cache(self, pimba_system, zamba_spec):
        with pytest.raises(ValueError, match="shared prefix tier"):
            build_cluster(
                pimba_system, zamba_spec, 2,
                scheduler="paged", shared_tier=True,
            )
        with pytest.raises(ValueError, match="shared prefix tier"):
            build_cluster(
                pimba_system, zamba_spec, 2,
                scheduler="prefix", cache=False, shared_tier=True,
            )


class TestEmptyTraceEquivalence:
    """The bare engine, the reference, and any cluster agree on nothing."""

    def test_engines_serve_empty_to_zero_span_record(
        self, pimba_system, zamba_spec
    ):
        empty = Trace(())
        sched = build_scheduler("fcfs", pimba_system, zamba_spec)
        run = ServingEngine(pimba_system, zamba_spec, sched).serve(empty)
        assert run.timings == ()
        assert (run.start_s, run.end_s) == (0.0, 0.0)
        ref = ReferenceEngine(
            pimba_system, zamba_spec,
            build_scheduler("fcfs", pimba_system, zamba_spec),
        ).serve(empty)
        assert ref == run
        report = run.report()
        assert report.n_requests == 0
        assert math.isnan(report.ttft_percentile(99))

    @pytest.mark.parametrize("replicas", [1, 2])
    def test_cluster_serves_empty_like_the_bare_engine(
        self, replicas, pimba_system, zamba_spec
    ):
        empty = Trace(())
        bare = ServingEngine(
            pimba_system, zamba_spec,
            build_scheduler("fcfs", pimba_system, zamba_spec),
        ).serve(empty)
        cluster = build_cluster(pimba_system, zamba_spec, replicas)
        assert cluster.serve(empty).merged() == bare
        report = cluster.run(empty)
        assert report.n_requests == 0
        assert report.n_replicas == replicas
        assert math.isnan(report.ttft_percentile(99))
        assert all(r.stats is None for r in report.per_replica)


def paired_pools(memory, cost, n=2):
    """n roomy pools joined by one tier priced through ``cost``."""
    tier = SharedPrefixTier(memory, BLOCK, cost)
    pools = []
    for i in range(n):
        pool = PrefixBlockPool(memory, memory.weights_bytes * 2, BLOCK)
        pool.attach_tier(tier, i)
        pools.append(pool)
    return tier, pools


class TestSharedTierDecisions:
    """Transfer happens iff the wire beats the re-prefill, causally."""

    def fast_cost(self, pimba_system, zamba_spec):
        # A link so fat the wire is effectively free: transfer always wins.
        return IterationCostModel(pimba_system, zamba_spec, link_gbps=1e9)

    def slow_cost(self, pimba_system, zamba_spec):
        # A link so thin recompute always wins.
        return IterationCostModel(pimba_system, zamba_spec, link_gbps=1e-6)

    def test_fast_link_pulls_and_charges_the_destination(
        self, memory, pimba_system, zamba_spec
    ):
        tier, (a, b) = paired_pools(
            memory, self.fast_cost(pimba_system, zamba_spec)
        )
        a.publish(session_id=1, history_tokens=8 * BLOCK, at=1.0)
        assert tier.n_sessions == 1
        hit, remote, transfer_s = b.allocate_reusing(
            request_id=0, session_id=1, context=8 * BLOCK + 1,
            final_context=9 * BLOCK, prefill_tokens=8 * BLOCK + 1, now=2.0,
        )
        assert hit == 8 * BLOCK
        assert remote == 8 * BLOCK
        assert transfer_s > 0.0
        assert tier.transfers == 1 and tier.recomputes == 0
        # The destination pool owns the pulled blocks like local ones:
        # pinned now, charged at the tier's own payload arithmetic.
        assert b.cache.pinned_blocks == 8
        assert b.transferred_bytes == memory.reserved_bytes(remote)
        assert b.kv_transfers == 1

    def test_slow_link_recomputes_instead(
        self, memory, pimba_system, zamba_spec
    ):
        tier, (a, b) = paired_pools(
            memory, self.slow_cost(pimba_system, zamba_spec)
        )
        a.publish(session_id=1, history_tokens=8 * BLOCK, at=1.0)
        hit, remote, transfer_s = b.allocate_reusing(
            request_id=0, session_id=1, context=8 * BLOCK + 1,
            final_context=9 * BLOCK, prefill_tokens=8 * BLOCK + 1, now=2.0,
        )
        assert (hit, remote, transfer_s) == (0, 0, 0.0)
        assert tier.transfers == 0 and tier.recomputes == 1
        assert b.remote_hit_tokens == 0 and b.kv_transfers == 0

    def test_only_the_uncovered_suffix_travels(
        self, memory, pimba_system, zamba_spec
    ):
        """A destination that already caches a shorter local prefix pays
        the wire only for the blocks it lacks."""
        tier, (a, b) = paired_pools(
            memory, self.fast_cost(pimba_system, zamba_spec)
        )
        b.publish(session_id=1, history_tokens=3 * BLOCK)  # local, no clock
        a.publish(session_id=1, history_tokens=8 * BLOCK, at=1.0)
        hit, remote, _ = b.allocate_reusing(
            request_id=0, session_id=1, context=8 * BLOCK + 1,
            final_context=9 * BLOCK, prefill_tokens=8 * BLOCK + 1, now=2.0,
        )
        assert hit == 8 * BLOCK
        assert remote == 5 * BLOCK
        assert b.transferred_bytes == memory.reserved_bytes(5 * BLOCK)

    def test_future_publishes_are_invisible(
        self, memory, pimba_system, zamba_spec
    ):
        tier, (a, b) = paired_pools(
            memory, self.fast_cost(pimba_system, zamba_spec)
        )
        a.publish(session_id=1, history_tokens=8 * BLOCK, at=5.0)
        hit, remote, _ = b.allocate_reusing(
            request_id=0, session_id=1, context=8 * BLOCK + 1,
            final_context=9 * BLOCK, prefill_tokens=8 * BLOCK + 1, now=2.0,
        )
        assert (hit, remote) == (0, 0)
        # ... and a publish by the looking replica itself never "pulls".
        b.publish(session_id=2, history_tokens=8 * BLOCK, at=0.0)
        hit, remote, _ = b.allocate_reusing(
            request_id=1, session_id=2, context=8 * BLOCK + 1,
            final_context=9 * BLOCK, prefill_tokens=8 * BLOCK + 1, now=2.0,
        )
        assert remote == 0
        assert hit == 8 * BLOCK  # the local cache still matches

    def test_longest_prefix_wins_the_directory(
        self, memory, pimba_system, zamba_spec
    ):
        tier, (a, b) = paired_pools(
            memory, self.fast_cost(pimba_system, zamba_spec)
        )
        tier.publish(0, 1, 8 * BLOCK, at=1.0)
        tier.publish(1, 1, 4 * BLOCK, at=2.0)  # shorter: ignored
        assert tier._published[1] == (0, 8 * BLOCK, 1.0)
        tier.publish(1, 1, 8 * BLOCK, at=3.0)  # tie: newest publisher wins
        assert tier._published[1] == (1, 8 * BLOCK, 3.0)
        # Sub-block histories never enter the directory at all.
        tier.publish(0, 2, BLOCK - 1, at=1.0)
        assert tier.n_sessions == 1


class TestSharedTierInEngines:
    def seeded_engine(self, engine_cls, pimba_system, zamba_spec):
        """One engine whose tier already advertises fat remote prefixes,
        so admissions exercise the transfer-priced paths."""
        sched = build_scheduler(
            "prefix", pimba_system, zamba_spec, max_batch=2
        )
        tier = SharedPrefixTier(
            MemoryModel.for_system(pimba_system, zamba_spec),
            BLOCK,
            IterationCostModel(pimba_system, zamba_spec),
        )
        sched.pool.attach_tier(tier, 0)
        for session in (1, 3):
            tier.publish(1, session, 4096, at=0.0)
        return engine_cls(pimba_system, zamba_spec, sched)

    def test_transfer_paths_are_reference_bit_exact(
        self, pimba_system, zamba_spec
    ):
        """The vectorized engine prices remote pulls (wire time ahead of
        the shortened prefill) exactly like the scalar specification."""
        trace = session_trace()
        vec = self.seeded_engine(
            ServingEngine, pimba_system, zamba_spec
        ).serve(trace)
        ref = self.seeded_engine(
            ReferenceEngine, pimba_system, zamba_spec
        ).serve(trace)
        assert vec == ref
        assert vec.remote_hit_tokens > 0
        assert vec.kv_transfers > 0
        assert any(t.remote_tokens for t in vec.timings)

    def test_rebalanced_sessions_pull_their_history(
        self, pimba_system, zamba_spec, corpus
    ):
        """Round-robin scatters every session across both replicas; with
        the tier on, a scattered session's *later* turns pull the prefix
        the other replica published — never the session's first turn,
        which has nothing published yet."""
        run = build_cluster(
            pimba_system, zamba_spec, 2,
            router="round-robin", scheduler="prefix",
            max_batch=1, shared_tier=True,
        ).serve(corpus)
        merged = run.merged()
        assert merged.remote_hit_tokens > 0
        assert merged.transferred_bytes > 0.0
        assert merged.kv_transfers > 0
        by_id = {r.request_id: r for r in corpus.requests}
        first_turn = {}
        for r in corpus.requests:
            first_turn.setdefault(r.session_id, r.request_id)
        pulled = [t for t in merged.timings if t.remote_tokens]
        assert pulled
        for timing in pulled:
            session = by_id[timing.request_id].session_id
            assert session is not None
            assert timing.request_id != first_turn[session]
        # The payload carries the tier's outcome for the perf gate.
        payload = run.report().to_payload(SloSpec(ttft_s=0.1, tpot_s=0.018))
        assert payload["remote_hit_tokens"] == merged.remote_hit_tokens
        assert payload["kv_transfers"] == merged.kv_transfers
        assert 0.0 < payload["remote_prefix_hit_rate"] < 1.0

    def test_tier_off_payload_keeps_historical_shape(
        self, pimba_system, zamba_spec, corpus
    ):
        """Without the tier no remote keys appear — downstream consumers
        (and the bench-diff matcher) see yesterday's payload exactly."""
        payload = build_cluster(
            pimba_system, zamba_spec, 2,
            router="round-robin", scheduler="prefix", max_batch=1,
        ).run(corpus).to_payload()
        assert "remote_hit_tokens" not in payload
        assert "kv_transfers" not in payload

    def test_refcounts_conserved_at_cluster_drain(
        self, pimba_system, zamba_spec, corpus
    ):
        """After the fleet drains, every replica's pool balances even
        though some of its cached blocks arrived over the wire: nothing
        resident, nothing pinned, every claimed block returned."""
        cluster = build_cluster(
            pimba_system, zamba_spec, 2,
            router="round-robin", scheduler="prefix",
            max_batch=1, shared_tier=True,
        )
        merged = cluster.serve(corpus).merged()
        assert merged.remote_hit_tokens > 0  # the wire was exercised
        for engine in cluster.replicas:
            pool = engine.scheduler.pool
            assert pool.n_resident == 0
            assert pool.blocks_in_use == 0
            assert pool.allocated_blocks == pool.freed_blocks
            assert pool.cache.pinned_blocks == 0
            assert pool.cache.cached_blocks == pool.cache.n_blocks

    def test_serial_and_process_pool_runs_agree(self):
        """The tier's one-directional visibility keeps the sweep's cells
        independent of executor shape."""
        spec = cross_replica_prefix_spec(smoke=True)
        serial = Runner(use_cache=False, max_workers=1).run(spec)
        fanned = Runner(use_cache=False, max_workers=2).run(spec)
        assert serial.values == fanned.values
        assert any(
            v.get("remote_hit_tokens", 0) > 0 for v in serial.values
        )
