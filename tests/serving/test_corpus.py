"""Shipped trace corpus: files, content-hash keying, replay sweep."""

import pytest

from repro.serving.arrivals import load_trace
from repro.serving.corpus import (
    SHIPPED_TRACES,
    pinned_trace,
    trace_path,
    trace_replay_slo,
    trace_replay_spec,
)
from repro.serving.experiments import trace_fingerprint


class TestShippedFiles:
    @pytest.mark.parametrize("name", sorted(SHIPPED_TRACES))
    def test_loads_as_valid_trace(self, name):
        trace = load_trace(trace_path(name))
        assert trace.n_requests >= 16
        arrivals = [r.arrival_s for r in trace.requests]
        assert arrivals == sorted(arrivals)

    def test_bursty_is_burstier_than_steady(self):
        """The two corpus shapes are actually distinct: the bursty trace
        packs the same request count into a far shorter span."""
        bursty = load_trace(trace_path("bursty"))
        steady = load_trace(trace_path("steady"))
        assert bursty.offered_qps > 2 * steady.offered_qps

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown corpus trace"):
            trace_path("azure")


class TestReplaySweep:
    def test_spec_pins_content_hashes_per_trace(self):
        spec = trace_replay_spec()
        assert set(spec.axes["trace"]) == {
            pinned_trace(n) for n in SHIPPED_TRACES
        }
        for value in spec.axes["trace"]:
            name, _, sha = value.partition("@")
            assert sha == trace_fingerprint(trace_path(name))

    def test_editing_a_trace_changes_only_its_own_identity(self):
        """The hash rides in the trace axis value, so an edited file
        re-keys its own trials and leaves the sibling trace's alone."""
        spec = trace_replay_spec()
        edited = spec.with_axes(
            trace=("bursty@" + "0" * 20,)
            + tuple(pinned_trace(n) for n in SHIPPED_TRACES if n != "bursty")
        )
        fresh = {t.key: t.params["trace"] for t in spec.trials()}
        stale = {t.key: t.params["trace"] for t in edited.trials()}
        changed = set(fresh) ^ set(stale)
        kept = set(fresh) & set(stale)
        assert all(fresh.get(k, stale.get(k)).startswith("bursty@")
                   for k in changed)
        assert all(not fresh[k].startswith("bursty@") for k in kept)
        assert kept  # sibling trials survive a bursty edit untouched

    def test_replay_trial_end_to_end(self):
        payload = trace_replay_slo("Pimba", "steady", max_batch=8)
        trace = load_trace(trace_path("steady"))
        assert payload["n_requests"] == trace.n_requests
        assert payload["n_replicas"] == 1

    def test_replay_on_a_cluster(self):
        payload = trace_replay_slo(
            "Pimba", "bursty", replicas=2, router="least-loaded", max_batch=8
        )
        assert payload["n_replicas"] == 2
        assert sum(
            r["n_requests"] for r in payload["per_replica"]
        ) == payload["n_requests"]

    def test_stale_sha_refuses_to_serve(self):
        with pytest.raises(ValueError, match="no longer matches"):
            trace_replay_slo("GPU", "steady@" + "f" * 20)

    def test_pinned_value_replays_end_to_end(self):
        payload = trace_replay_slo("GPU", pinned_trace("steady"), max_batch=8)
        assert payload["n_requests"] == load_trace(
            trace_path("steady")
        ).n_requests
