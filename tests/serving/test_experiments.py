"""Serving trials/sweeps: engine integration and replay-file caching."""

import pytest

from repro.experiments import Runner
from repro.serving.arrivals import poisson_trace, save_trace
from repro.serving.experiments import (
    CHUNK_BUDGET_GRID,
    chunking_spec,
    replay_spec,
    serving_assemble,
    serving_render,
    serving_slo,
    serving_spec,
    trace_fingerprint,
    ttft_tradeoff_assemble,
    ttft_tradeoff_render,
    ttft_tradeoff_spec,
)


class TestServingSloTrial:
    def test_payload_shape(self):
        payload = serving_slo(
            "Pimba", 8.0, n_requests=8, input_len=256, output_len=32,
            max_batch=4,
        )
        assert payload["n_requests"] == 8
        assert payload["goodput_rps"] <= payload["completed_per_s"]
        assert payload["ttft_p50_s"] <= payload["ttft_p99_s"]

    def test_unknown_knobs_rejected(self):
        with pytest.raises(KeyError, match="arrival"):
            serving_slo("GPU", 1.0, n_requests=2, arrival="uniform")
        with pytest.raises(KeyError, match="length_dist"):
            serving_slo("GPU", 1.0, n_requests=2, length_dist="zipf")

    def test_scheduler_axis(self):
        for scheduler in ("static", "fcfs", "memory", "chunked", "overlap"):
            payload = serving_slo(
                "GPU", 20.0, scheduler=scheduler, n_requests=6,
                input_len=128, output_len=16, max_batch=2, chunk_budget=48,
            )
            assert payload["n_requests"] == 6

    def test_chunk_budget_changes_the_outcome(self):
        """The knob reaches the engine: finer chunks -> more prefill
        events; a whole-prompt budget reproduces plain FCFS."""
        kwargs = dict(
            n_requests=8, input_len=256, output_len=32, max_batch=4,
        )
        fine = serving_slo(
            "Pimba", 20.0, scheduler="chunked", chunk_budget=64, **kwargs
        )
        whole = serving_slo(
            "Pimba", 20.0, scheduler="chunked", chunk_budget=256, **kwargs
        )
        fcfs = serving_slo("Pimba", 20.0, scheduler="fcfs", **kwargs)
        assert fine["n_prefills"] > whole["n_prefills"]
        assert whole == fcfs


class TestSweepSpecs:
    def test_smoke_is_tiny_and_full_covers_all_systems(self):
        assert len(serving_spec(smoke=True)) == 2
        full = serving_spec()
        assert len(full) == 20
        assert set(full.axes["system"]) == {
            "GPU", "GPU+Q", "GPU+PIM", "Pimba", "NeuPIMs",
        }

    def test_assemble_and_render(self):
        report = Runner(use_cache=False, max_workers=1).run(
            serving_spec(smoke=True)
        )
        data = serving_assemble(report)
        assert set(data) == {"GPU", "Pimba"}
        header, rows = serving_render(data)
        assert header[0] == "system" and len(rows) == 2


class TestPrefillShapingSpecs:
    def test_smoke_grids_are_tiny(self):
        assert len(chunking_spec(smoke=True)) == 2
        assert len(ttft_tradeoff_spec(smoke=True)) == 4

    def test_full_grids_cover_budgets_and_schedulers(self):
        chunking = chunking_spec()
        assert chunking.axes["chunk_budget"] == CHUNK_BUDGET_GRID
        assert set(chunking.axes["scheduler"]) == {"chunked", "overlap"}
        tradeoff = ttft_tradeoff_spec()
        assert tradeoff.axes["chunk_budget"] == CHUNK_BUDGET_GRID
        assert len(tradeoff.axes["system"]) == 5
        # The widest budget covers the whole fixed-length prompt, so the
        # chunked curve is anchored on the blocked FCFS baseline.
        assert max(CHUNK_BUDGET_GRID) == tradeoff.fixed["input_len"]

    def test_tradeoff_assemble_and_render(self):
        report = Runner(use_cache=False, max_workers=1).run(
            ttft_tradeoff_spec(smoke=True)
        )
        data = ttft_tradeoff_assemble(report)
        assert set(data) == {("GPU", "overlap"), ("Pimba", "overlap")}
        header, rows = ttft_tradeoff_render(data)
        assert header[:3] == ["system", "scheduler", "chunk budget"]
        assert len(rows) == 4


class TestTraceReplayCaching:
    def test_replay_spec_keys_cache_on_content(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(poisson_trace(20.0, 4, seed=0), path)
        fixed = dict(n_requests=4, input_len=64, output_len=8, max_batch=2)
        spec_a = replay_spec(path, systems=("GPU",), **fixed)
        assert spec_a.fixed["trace_sha"] == trace_fingerprint(path)

        save_trace(poisson_trace(20.0, 4, seed=1), path)
        spec_b = replay_spec(path, systems=("GPU",), **fixed)
        keys = [next(s.trials()).key for s in (spec_a, spec_b)]
        assert keys[0] != keys[1]  # edited file -> different cache identity

    def test_stale_sha_raises_instead_of_serving_old_numbers(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(poisson_trace(20.0, 4, seed=0), path)
        sha = trace_fingerprint(path)
        save_trace(poisson_trace(20.0, 4, seed=1), path)
        with pytest.raises(ValueError, match="no longer matches"):
            serving_slo("GPU", 0.0, trace_file=str(path), trace_sha=sha)

    def test_replay_runs_end_to_end(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(poisson_trace(20.0, 5, seed=0), path)
        spec = replay_spec(path, systems=("GPU", "Pimba"), max_batch=4)
        report = Runner(cache_dir=tmp_path / "cache", max_workers=1).run(spec)
        by_system = report.mapping("system")
        assert by_system["GPU"]["n_requests"] == 5
        assert by_system["Pimba"]["n_requests"] == 5
