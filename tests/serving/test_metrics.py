"""SLO metrics: timings, percentiles, goodput, report payloads."""

import pytest

from repro.serving.metrics import (
    RequestTiming,
    ServingReport,
    SloSpec,
    percentile,
)


def timing(rid=0, arrival=0.0, admitted=0.5, first=1.0, finished=3.0,
           output_len=5):
    return RequestTiming(
        request_id=rid,
        input_len=100,
        output_len=output_len,
        arrival_s=arrival,
        admitted_s=admitted,
        first_token_s=first,
        finished_s=finished,
    )


class TestRequestTiming:
    def test_derived_metrics(self):
        t = timing()
        assert t.queue_s == 0.5
        assert t.ttft_s == 1.0
        assert t.tpot_s == pytest.approx(2.0 / 4)
        assert t.e2e_s == 3.0

    def test_single_token_tpot_is_zero(self):
        assert timing(output_len=1).tpot_s == 0.0

    def test_disordered_timestamps_rejected(self):
        with pytest.raises(ValueError, match="ordered"):
            timing(admitted=-1.0)
        with pytest.raises(ValueError, match="ordered"):
            timing(first=5.0, finished=4.0)


class TestSlo:
    def test_met_by(self):
        slo = SloSpec(ttft_s=1.5, tpot_s=0.6)
        assert slo.met_by(timing())  # ttft 1.0, tpot 0.5
        assert not slo.met_by(timing(first=2.0))  # ttft 2.0
        assert not SloSpec(1.5, 0.4).met_by(timing())

    def test_validation(self):
        with pytest.raises(ValueError):
            SloSpec(0.0, 1.0)


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.5
        assert percentile(values, 100) == 4.0
        with pytest.raises(ValueError):
            percentile([], 50)


class TestServingReport:
    def make_timings(self):
        return (
            timing(rid=0, first=1.0, finished=3.0),  # meets
            timing(rid=1, arrival=1.0, admitted=1.2, first=4.0,
                   finished=6.0),  # ttft 3.0
        )

    def make_report(self):
        return ServingReport.from_timings(
            self.make_timings(),
            makespan_s=6.0,
            mean_queue_depth=0.5,
            max_queue_depth=2,
            n_iterations=10,
            n_prefills=2,
        )

    def test_aggregates(self):
        report = self.make_report()
        assert report.n_requests == 2
        assert report.generated_tokens == 10
        assert report.throughput_tokens_per_s == pytest.approx(10 / 6)
        assert report.completed_per_s == pytest.approx(2 / 6)
        assert report.ttft_percentile(50) == pytest.approx(2.0)

    def test_goodput_counts_only_slo_meeting_requests(self):
        report = self.make_report()
        slo = SloSpec(ttft_s=1.5, tpot_s=0.6)
        assert report.slo_attainment(slo) == 0.5
        assert report.goodput(slo) == pytest.approx(1 / 6)
        generous = SloSpec(ttft_s=10.0, tpot_s=10.0)
        assert report.goodput(generous) == report.completed_per_s

    def test_payload_roundtrips_to_json_scalars(self):
        import json

        payload = self.make_report().to_payload(SloSpec(1.5, 0.6))
        assert json.loads(json.dumps(payload)) == payload
        assert payload["goodput_rps"] == pytest.approx(1 / 6)
        assert payload["slo_attainment"] == 0.5
        bare = self.make_report().to_payload()
        assert "goodput_rps" not in bare

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ServingReport.from_timings(
                self.make_timings(), 0.0, 0.0, 0, 0, 0
            )
        with pytest.raises(ValueError, match="non-negative"):
            ServingReport.from_timings((), -1.0, 0.0, 0, 0, 0)


class TestEmptyReport:
    """Regression: a report over zero completed requests (everything
    still queued when the record was cut) must aggregate, not crash on
    empty percentile arrays."""

    def make_empty(self):
        return ServingReport.from_timings(
            (),
            makespan_s=0.0,
            mean_queue_depth=3.0,
            max_queue_depth=5,
            n_iterations=0,
            n_prefills=0,
        )

    def test_rates_are_zero(self):
        report = self.make_empty()
        assert report.n_requests == 0
        assert report.generated_tokens == 0
        assert report.throughput_tokens_per_s == 0.0
        assert report.completed_per_s == 0.0
        slo = SloSpec(1.0, 0.01)
        assert report.slo_attainment(slo) == 0.0
        assert report.goodput(slo) == 0.0

    def test_percentiles_are_nan_not_a_crash(self):
        import math

        report = self.make_empty()
        for metric in ("ttft", "tpot", "e2e"):
            assert math.isnan(getattr(report, f"{metric}_percentile")(99))

    def test_payload_still_serializes(self):
        payload = self.make_empty().to_payload(SloSpec(1.0, 0.01))
        assert payload["n_requests"] == 0
        assert payload["goodput_rps"] == 0.0
        assert payload["max_queue_depth"] == 5
