"""Cluster-level property harness: seeded fuzz over the config lattice.

Fifty seeded random configurations — scheduler x trace shape x router x
node mix x phase split — each serve a randomized arrival trace, and the
harness asserts the properties that make any of them *a cluster run*:

* request conservation — every trace request appears in the merged
  record exactly once, with its original lengths and arrival, whether it
  ran whole on one replica or as a prefill half stitched to a decode
  half;
* monotone clocks — per-request lifecycle timestamps are ordered and
  the merged span covers every event on every replica;
* token and handoff accounting — decode iterations generate exactly the
  trace's output tokens; the merged handoff count equals the number of
  split lifecycles; handed-off bytes only flow when phases split;
* refcount conservation at drain — every paged/prefix replica's block
  pool frees every block it ever claimed once the trace drains;
* determinism — serving the identical config twice is payload-identical,
  in-process and across a ``ProcessPoolExecutor`` boundary (the
  serialized-rebuild path a parallel sweep runner takes).

The generators (:func:`random_trace`, :func:`random_config`,
:func:`build_from_config`) are module-level exports on purpose: future
suites can draw from the same seeded lattice instead of growing their
own, slightly different one.
"""

import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    ROUTER_NAMES,
    SloSpec,
    build_cluster,
    fixed_lengths,
    gamma_trace,
    lognormal_lengths,
    multiturn_chat_trace,
    poisson_trace,
)

N_CONFIGS = 50

SLO = SloSpec(ttft_s=2.0, tpot_s=0.018)

#: schedulers the fuzzer draws from (roomy capacity; the tight,
#: preempting variants have their own dedicated invariant suites)
FUZZ_SCHEDULERS = (
    "static", "fcfs", "memory", "chunked", "overlap", "paged", "prefix",
)

#: every node design the fleet generator can mix
FUZZ_KINDS = tuple(SystemKind)


def random_trace(rng: random.Random):
    """One randomized arrival trace (shape, load, lengths, and seed)."""
    shape = rng.choice(("poisson", "gamma", "ragged", "chat"))
    seed = rng.randrange(1_000_000)
    if shape == "chat":
        return multiturn_chat_trace(
            rng.uniform(1.0, 4.0),
            rng.randrange(3, 7),
            turns=3,
            first_input=rng.choice((96, 128)),
            user_tokens=24,
            output_len=rng.choice((16, 24)),
            think_s=1.0,
            seed=seed,
        )
    qps = rng.uniform(4.0, 40.0)
    n_requests = rng.randrange(8, 49)
    if shape == "ragged":
        lengths = lognormal_lengths(rng.choice((96, 192)), 24, 0.6)
    else:
        lengths = fixed_lengths(
            rng.choice((128, 256)), rng.choice((16, 32))
        )
    if shape == "gamma":
        return gamma_trace(
            qps, n_requests, cv=rng.uniform(1.5, 3.5),
            lengths=lengths, seed=seed,
        )
    return poisson_trace(qps, n_requests, lengths, seed=seed)


def random_config(rng: random.Random) -> dict:
    """One randomized cluster configuration as ``build_cluster`` kwargs.

    Covers the whole lattice the cluster layer exposes: replica count,
    every classic router plus the disaggregated one, homogeneous and
    mixed node kinds, optional phase splits (always with at least one
    prefill-capable and one decode-capable node — the only lattice
    constraint), and the shared prefix tier where it is legal
    (homogeneous prefix fleets).
    """
    n_replicas = rng.randrange(1, 5)
    router = rng.choice((*ROUTER_NAMES, "disaggregated"))
    scheduler = rng.choice(FUZZ_SCHEDULERS)
    if rng.random() < 0.5:
        kinds = (rng.choice(FUZZ_KINDS),) * n_replicas
    else:
        kinds = tuple(
            rng.choice(FUZZ_KINDS) for _ in range(n_replicas)
        )
    phases = None
    if router == "disaggregated" and n_replicas >= 2 and rng.random() < 0.7:
        n_decode = rng.randrange(1, n_replicas)
        drawn = ["decode"] * n_decode + [
            rng.choice(("prefill", "both"))
            for _ in range(n_replicas - n_decode)
        ]
        rng.shuffle(drawn)
        phases = tuple(drawn)
    shared_tier = (
        scheduler == "prefix"
        and router in ROUTER_NAMES
        and len(set(kinds)) == 1
        and rng.random() < 0.5
    )
    return dict(
        n_replicas=n_replicas,
        router=router,
        scheduler=scheduler,
        node_kinds=tuple(kind.value for kind in kinds),
        phases=phases,
        shared_tier=shared_tier,
        max_batch=rng.choice((4, 8)),
        link_gbps=rng.choice((50.0, 100.0, 400.0)),
    )


def build_from_config(config: dict):
    """Instantiate the cluster a :func:`random_config` dict describes."""
    built = {
        kind: build_system(SystemKind(kind), "small")
        for kind in set(config["node_kinds"])
    }
    systems = tuple(built[kind] for kind in config["node_kinds"])
    return build_cluster(
        systems[0],
        spec_for("Zamba2"),
        config["n_replicas"],
        router=config["router"],
        scheduler=config["scheduler"],
        max_batch=config["max_batch"],
        shared_tier=config["shared_tier"],
        link_gbps=config["link_gbps"],
        node_kinds=systems,
        phases=config["phases"],
    )


def seeded_case(index: int):
    """Deterministically regenerate fuzz case ``index``: (trace, config)."""
    rng = random.Random(0xC1A0 + index)
    return random_trace(rng), random_config(rng)


def run_payload(index: int) -> dict:
    """Serve fuzz case ``index`` from scratch and return its payload.

    Module-level (picklable) on purpose: the determinism test calls it
    both in-process and through a ``ProcessPoolExecutor``.
    """
    trace, config = seeded_case(index)
    return build_from_config(config).run(trace).to_payload(SLO)


@pytest.mark.parametrize("index", range(N_CONFIGS))
class TestClusterProperties:
    def serve(self, index):
        trace, config = seeded_case(index)
        record = build_from_config(config).serve(trace)
        return trace, config, record

    def test_request_conservation(self, index):
        """Every request served exactly once with its original identity,
        split lifecycles included."""
        trace, _, record = self.serve(index)
        merged = record.merged()
        assert sorted(t.request_id for t in merged.timings) == [
            r.request_id for r in trace.requests
        ]
        originals = {r.request_id: r for r in trace.requests}
        for timing in merged.timings:
            original = originals[timing.request_id]
            assert timing.input_len == original.input_len
            assert timing.output_len == original.output_len
            assert timing.arrival_s == original.arrival_s

    def test_monotone_clocks(self, index):
        """Lifecycle timestamps ordered per request; the merged span
        covers every replica's events."""
        _, _, record = self.serve(index)
        merged = record.merged()
        for t in merged.timings:
            assert (
                t.arrival_s <= t.admitted_s
                <= t.first_token_s <= t.finished_s
            )
        assert merged.end_s == max(t.finished_s for t in merged.timings)
        for replica in record.replicas:
            if replica is None:
                continue
            assert replica.start_s <= replica.end_s
            assert 0.0 <= replica.busy_s <= (
                replica.end_s - replica.start_s
            ) + 1e-9
            assert all(s > 0 for s in replica.iteration_seconds)
            assert all(s > 0 for s in replica.prefill_seconds)
            assert all(n >= 1 for n in replica.prefill_tokens)

    def test_token_and_handoff_accounting(self, index):
        """Outputs decoded exactly once; handoffs equal split lifecycles;
        bytes move only when phases split."""
        trace, config, record = self.serve(index)
        merged = record.merged()
        assert sum(merged.decode_tokens) == trace.total_output_tokens
        assert merged.handoffs == len(record.split_ids)
        assert merged.handoffs == sum(
            r.handoffs for r in record.replicas if r is not None
        )
        split = config["phases"] is not None and any(
            phase != "both" for phase in config["phases"]
        )
        if not split:
            assert merged.handoffs == 0
            assert merged.handoff_bytes == 0.0
        if merged.handoffs:
            assert merged.handoff_bytes > 0.0

    def test_pool_refcounts_conserved_at_drain(self, index):
        """Paged/prefix replicas free every block they ever claimed."""
        trace, config, _ = self.serve(index)
        if config["scheduler"] not in ("paged", "prefix"):
            pytest.skip("only block-pool schedulers carry refcounts")
        cluster = build_from_config(config)
        cluster.serve(trace)
        for engine in cluster.replicas:
            pool = engine.scheduler.pool
            assert pool.n_resident == 0
            assert pool.blocks_in_use == 0
            assert pool.allocated_blocks == pool.freed_blocks

    def test_serve_and_run_agree(self, index):
        """The streaming path reports exactly what the event path does
        (split orchestration folds through serve, so this pins both)."""
        trace, config, record = self.serve(index)
        streamed = build_from_config(config).run(trace).to_payload(SLO)
        assert streamed == record.report().to_payload(SLO)

    def test_rerun_is_deterministic(self, index):
        """A rebuilt cluster serves the identical payload."""
        assert run_payload(index) == run_payload(index)


#: a spread of lattice corners re-run across a process boundary — the
#: pickled-config rebuild a parallel sweep runner performs
POOL_SUBSET = (0, 7, 13, 21, 34, 49)


def test_process_pool_matches_serial():
    """Serial and ProcessPool execution produce identical payloads."""
    serial = [run_payload(i) for i in POOL_SUBSET]
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled = list(pool.map(run_payload, POOL_SUBSET))
    assert pooled == serial
