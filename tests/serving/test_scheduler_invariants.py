"""Scheduler-invariant harness: properties every policy must satisfy.

Every scheduler — static, FCFS continuous, memory-aware, chunked
prefill, overlap, the capacity-bounded chunked variant, paged KV, and
the prefix-caching paged variant (each of the paged pair both with a
roomy pool and with a deliberately tight, preempting one) — serves the
same seeded traces, and the harness asserts the invariants
that make an engine run *a serving run* regardless of policy:

* conservation — every trace request is admitted exactly once and
  finishes exactly once;
* monotone clocks — arrival <= admission <= first token <= completion
  per request, and the engine span covers every event;
* token accounting — decode iterations generate exactly the requested
  output tokens, no more, no less;
* chunk budgets — no prefill event processes more prompt tokens than the
  scheduler's chunk budget (monolithic schedulers are bounded by the
  longest admitted prompt; preemptive ones additionally by the longest
  possible restore re-prefill, prompt + all-but-one output tokens);
* report sanity — percentiles are ordered and rates non-negative.

Preemption-specific invariants (blocks conserved at drain, preempted
requests complete exactly once, token accounting includes the re-prefill
work) live in :class:`TestPagedPreemptionInvariants`.
"""

import math

import pytest

from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    ChunkedPrefillScheduler,
    MemoryModel,
    OverlapScheduler,
    PagedScheduler,
    PrefixCachingScheduler,
    ServingEngine,
    build_scheduler,
    fixed_lengths,
    gamma_trace,
    lognormal_lengths,
    multiturn_chat_trace,
    poisson_trace,
)

#: chunk budget used by every chunking policy under test — deliberately
#: misaligned with the prompt lengths so partial tail chunks occur
BUDGET = 96

SCHEDULERS = (
    "static", "fcfs", "memory", "chunked", "overlap", "chunked+hbm",
    "paged", "paged+tight", "prefix", "prefix+tight",
)

TRACES = {
    "poisson": lambda: poisson_trace(
        12.0, 32, fixed_lengths(256, 32), seed=0
    ),
    "bursty": lambda: gamma_trace(
        8.0, 24, cv=3.0, lengths=fixed_lengths(256, 32), seed=1
    ),
    "ragged": lambda: poisson_trace(
        6.0, 24, lognormal_lengths(192, 24, 0.6), seed=2
    ),
    # Multi-turn sessions: the one trace where the prefix policies get
    # real cache hits, so their shortened prefills face the invariants.
    "chat": lambda: multiturn_chat_trace(
        3.0, 6, turns=3, first_input=128, user_tokens=24, output_len=24,
        think_s=1.0, seed=3,
    ),
}


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


@pytest.fixture(scope="module")
def pimba_system():
    return build_system(SystemKind.PIMBA, "small")


def make_scheduler(name, system, spec):
    if name == "chunked+hbm":
        # The chunked policy riding the memory-aware capacity logic.
        return ChunkedPrefillScheduler(
            BUDGET,
            max_batch=8,
            memory=MemoryModel.for_system(system, spec),
            capacity_bytes=system.capacity_bytes,
        )
    if name in ("paged+tight", "prefix+tight"):
        # A pool that holds three admission-time footprints but not
        # three full contexts (blocks finer than the decode length), so
        # growth claims fail mid-decode and the preempt/restore path is
        # exercised by the shared invariants (for prefix, with cached
        # blocks competing against live KV for the same bytes).
        cls = PagedScheduler if name == "paged+tight" else (
            PrefixCachingScheduler
        )
        memory = MemoryModel.for_system(system, spec)
        return cls(
            memory,
            memory.weights_bytes + 2.93 * memory.request_bytes(256, 32),
            block_size=16,
            max_batch=8,
        )
    return build_scheduler(
        name, system, spec, max_batch=8, chunk_budget=BUDGET
    )


@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("scheduler_name", SCHEDULERS)
class TestSchedulerInvariants:
    def serve(self, scheduler_name, trace_name, system, spec):
        trace = TRACES[trace_name]()
        engine = ServingEngine(
            system, spec, make_scheduler(scheduler_name, system, spec)
        )
        return trace, engine.serve(trace)

    def test_conservation(
        self, scheduler_name, trace_name, pimba_system, zamba_spec
    ):
        """Every request admitted exactly once, finished exactly once."""
        trace, run = self.serve(
            scheduler_name, trace_name, pimba_system, zamba_spec
        )
        served = sorted(t.request_id for t in run.timings)
        assert served == [r.request_id for r in trace.requests]
        lengths = {
            r.request_id: (r.input_len, r.output_len)
            for r in trace.requests
        }
        for t in run.timings:
            assert (t.input_len, t.output_len) == lengths[t.request_id]

    def test_monotone_clocks(
        self, scheduler_name, trace_name, pimba_system, zamba_spec
    ):
        trace, run = self.serve(
            scheduler_name, trace_name, pimba_system, zamba_spec
        )
        assert run.start_s == trace.requests[0].arrival_s
        for t in run.timings:
            assert (
                t.arrival_s <= t.admitted_s
                <= t.first_token_s <= t.finished_s
            )
            assert t.ttft_s <= t.e2e_s
            assert run.start_s <= t.arrival_s
            assert t.finished_s <= run.end_s
        assert run.end_s == max(t.finished_s for t in run.timings)

    def test_token_accounting(
        self, scheduler_name, trace_name, pimba_system, zamba_spec
    ):
        """Decode iterations generate exactly the requested tokens."""
        trace, run = self.serve(
            scheduler_name, trace_name, pimba_system, zamba_spec
        )
        assert sum(run.decode_tokens) == trace.total_output_tokens
        assert len(run.decode_tokens) == len(run.iteration_seconds)
        assert all(n >= 1 for n in run.decode_tokens)

    def test_chunk_budget_never_exceeded(
        self, scheduler_name, trace_name, pimba_system, zamba_spec
    ):
        trace, run = self.serve(
            scheduler_name, trace_name, pimba_system, zamba_spec
        )
        assert len(run.prefill_tokens) == len(run.prefill_seconds)
        assert all(n >= 1 for n in run.prefill_tokens)
        if scheduler_name in ("chunked", "overlap", "chunked+hbm"):
            bound = BUDGET
        elif scheduler_name.startswith(("paged", "prefix")):
            # A restore re-prefills prompt + already-generated tokens;
            # a request is never preempted after its final token.  A
            # prefix cache hit only ever *shrinks* an event below this.
            bound = max(
                r.input_len + r.output_len - 1 for r in trace.requests
            )
        else:
            bound = max(r.input_len for r in trace.requests)
        assert all(n <= bound for n in run.prefill_tokens)
        assert all(s > 0 for s in run.prefill_seconds)
        assert all(s > 0 for s in run.iteration_seconds)

    def test_report_sanity(
        self, scheduler_name, trace_name, pimba_system, zamba_spec
    ):
        _, run = self.serve(
            scheduler_name, trace_name, pimba_system, zamba_spec
        )
        report = run.report()
        assert report.makespan_s > 0
        assert report.mean_queue_depth >= 0
        for metric in ("ttft", "tpot", "e2e"):
            p50 = getattr(report, f"{metric}_percentile")(50)
            p99 = getattr(report, f"{metric}_percentile")(99)
            assert not math.isnan(p50) and p50 <= p99
        assert report.throughput_tokens_per_s > 0
        assert report.n_preemptions == run.preemptions
        if not scheduler_name.startswith(("paged", "prefix")):
            assert run.preemptions == 0


#: a generation-heavy workload against a pool that holds only a few
#: full contexts: paged admission over-commits on purpose, so decode
#: growth *must* preempt (asserted) and every preemption path is walked
def preempting_setup(system, spec):
    memory = MemoryModel.for_system(system, spec)
    scheduler = PagedScheduler(
        memory,
        memory.weights_bytes + 4 * memory.request_bytes(128, 512),
        block_size=64,
        max_batch=64,
    )
    trace = poisson_trace(40.0, 24, fixed_lengths(128, 512), seed=1)
    return scheduler, trace


class TestPagedPreemptionInvariants:
    """What must hold when the paged pool actually thrashes."""

    @pytest.fixture()
    def served(self, pimba_system, zamba_spec):
        scheduler, trace = preempting_setup(pimba_system, zamba_spec)
        run = ServingEngine(pimba_system, zamba_spec, scheduler).serve(trace)
        assert run.preemptions > 0  # the setup must actually thrash
        return scheduler, trace, run

    def test_blocks_conserved_at_drain(self, served):
        """Every block ever claimed is freed once the trace drains."""
        scheduler, _, _ = served
        pool = scheduler.pool
        assert pool.n_resident == 0
        assert pool.blocks_in_use == 0
        assert pool.allocated_blocks == pool.freed_blocks
        assert pool.allocated_blocks > 0

    def test_no_restore_starvation(self, served):
        """Eviction is by admission age, restores re-enter in age order
        with one token of growth headroom — so a restored request always
        decodes before it can be evicted again.  Regression: positional
        eviction + tail re-insertion once ping-ponged a single request
        through 46 zero-progress evict/restore cycles on this workload."""
        _, _, run = served
        assert max(t.preemptions for t in run.timings) <= 5

    def test_preempted_requests_complete_exactly_once(self, served):
        scheduler, trace, run = served
        served_ids = sorted(t.request_id for t in run.timings)
        assert served_ids == [r.request_id for r in trace.requests]
        assert sum(t.preemptions for t in run.timings) == run.preemptions
        preempted = [t for t in run.timings if t.preemptions > 0]
        assert preempted  # thrashing touched real requests...
        # ...and their timestamps still tell one coherent story each.
        for t in preempted:
            assert t.arrival_s <= t.admitted_s <= t.first_token_s <= t.finished_s

    def test_token_accounting_includes_reprefill_work(
        self, served, pimba_system, zamba_spec
    ):
        """Each output token is decoded exactly once, but prefill work
        *exceeds* the no-preemption baseline by the restore re-prefills
        (prompt + already-generated tokens per eviction)."""
        scheduler, trace, run = served
        assert sum(run.decode_tokens) == trace.total_output_tokens
        roomy = PagedScheduler(
            scheduler.memory,
            pimba_system.capacity_bytes,
            block_size=64,
            max_batch=64,
        )
        baseline = ServingEngine(pimba_system, zamba_spec, roomy).serve(trace)
        assert baseline.preemptions == 0
        assert len(run.prefill_seconds) > len(baseline.prefill_seconds)
        assert sum(run.prefill_tokens) > sum(baseline.prefill_tokens)
        # Restores re-prefill beyond the prompt: some prefill event is
        # bigger than any admission cohort's padded prompt could be.
        assert max(run.prefill_tokens) > max(
            r.input_len for r in trace.requests
        )
