"""MemoryModel footprints, capacity validation, and BlockPool accounting."""

import pytest

from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import BlockPool, MemoryModel, validate_capacity


@pytest.fixture(scope="module")
def memory():
    return MemoryModel.for_system(
        build_system(SystemKind.GPU, "small"), spec_for("Zamba2")
    )


class TestMemoryModel:
    def test_request_bytes_matches_reserved_at_final_context(self, memory):
        """The conservative footprint and the paged accounting share one
        arithmetic path — the degenerate bit-exactness rests on this."""
        assert memory.request_bytes(256, 64) == memory.reserved_bytes(320)

    def test_request_bytes_rejects_negative_lengths(self, memory):
        """Regression: a negative output_len used to silently shrink the
        reservation below the prompt's own KV and overcommit the pool."""
        with pytest.raises(ValueError, match="non-negative"):
            memory.request_bytes(-1, 64)
        with pytest.raises(ValueError, match="non-negative"):
            memory.request_bytes(256, -64)
        with pytest.raises(ValueError, match="non-negative"):
            memory.reserved_bytes(-5)

    def test_validate_capacity_reports_bytes_and_gib(self, memory):
        """Regression: the error must spell out the weights floor and the
        offending budget in bytes *and* GiB (capacity knobs are set in
        GiB, footprints are computed in bytes — the unit slip is the
        whole failure mode)."""
        bad = memory.weights_bytes / 2
        with pytest.raises(ValueError) as err:
            validate_capacity(memory, bad)
        message = str(err.value)
        assert f"{bad:.0f} bytes" in message
        assert f"{bad / 2**30:.3f} GiB" in message
        assert f"{memory.weights_bytes:.0f} bytes" in message
        assert f"{memory.weights_bytes / 2**30:.3f} GiB" in message

    def test_validate_capacity_accepts_roomy_budget(self, memory):
        validate_capacity(memory, memory.weights_bytes * 2)  # no raise


class TestBlockPool:
    def make_pool(self, memory, full_requests: float, block_size: int):
        return BlockPool(
            memory,
            memory.weights_bytes
            + full_requests * memory.request_bytes(128, 128),
            block_size,
        )

    def test_validation(self, memory):
        with pytest.raises(ValueError, match="block_size"):
            self.make_pool(memory, 4, 0)
        with pytest.raises(ValueError, match="weights"):
            BlockPool(memory, memory.weights_bytes / 2, 64)

    def test_covered_tokens_rounds_up_and_trims_the_tail(self, memory):
        pool = self.make_pool(memory, 4, 64)
        # Mid-decode: whole blocks, so up to block_size - 1 tokens of
        # rounding slack...
        assert pool.covered_tokens(129, 1000) == 192
        assert pool.blocks_for(129) == 3
        # ...but never beyond the request's known final context.
        assert pool.covered_tokens(250, 256) == 256
        assert pool.covered_tokens(256, 256) == 256

    def test_allocate_extend_release_conserve_blocks(self, memory):
        pool = self.make_pool(memory, 4, 64)
        pool.allocate(7, 128, 256)
        assert pool.holds(7) and pool.n_resident == 1
        assert pool.blocks_in_use == 2
        free_before = pool.free_bytes
        assert pool.extend(7, 129, 256)  # claims block 3
        assert pool.blocks_in_use == 3
        assert pool.free_bytes < free_before
        assert pool.extend(7, 130, 256)  # inside block 3: no new claim
        assert pool.blocks_in_use == 3
        pool.release(7)
        assert not pool.holds(7) and pool.blocks_in_use == 0
        assert pool.allocated_blocks == pool.freed_blocks == 3

    def test_extend_fails_on_exhaustion_without_side_effects(self, memory):
        pool = self.make_pool(memory, 1.5, 64)
        pool.allocate(0, 128, 256)
        pool.allocate(1, 128, 256)  # pool now nearly full
        blocks = pool.blocks_in_use
        grew = pool.extend(0, 129, 10**6)
        assert not grew  # a 64-token block no longer fits
        assert pool.blocks_in_use == blocks  # failed claim left no trace
        assert pool.allocated_blocks == blocks

    def test_double_allocate_rejected(self, memory):
        pool = self.make_pool(memory, 4, 64)
        pool.allocate(3, 128, 256)
        with pytest.raises(ValueError, match="already holds"):
            pool.allocate(3, 128, 256)

    def test_feasible_and_fits(self, memory):
        pool = self.make_pool(memory, 2, 64)
        assert pool.feasible(128, 128)
        assert not pool.feasible(4096, 4096)
        assert pool.fits(128, 256)
        pool.allocate(0, 256, 256)
        pool.allocate(1, 256, 256)
        assert not pool.fits(128, 256)
