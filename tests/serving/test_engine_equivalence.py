"""Differential harness: the vectorized engine vs the scalar reference.

The production :class:`~repro.serving.engine.ServingEngine` coalesces
decode stretches and prices them through vectorized scheduler math; the
:class:`~repro.serving._reference.ReferenceEngine` is the pre-vectorization
scalar loop kept in-tree as the executable specification.  These tests pin
the two together *bit for bit* — not approximately — across every
scheduler policy, so any drift in the hot path (a clock accumulated in a
different order, a pricing point rounded differently, a finisher stamped
one iteration late) turns the suite red instead of quietly skewing every
serving result downstream.

The same harness pins the streaming side: ``run()`` (reservoir-backed,
O(1) memory) must produce the *identical* payload as the full event
record's report while traces fit the sketch capacity, and a scheduler's
vectorized ``decode_run`` must equal its own scalar ``iteration_shape``
stepped one iteration at a time.
"""

import dataclasses

import pytest

from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    ChunkedPrefillScheduler,
    MemoryModel,
    PagedScheduler,
    PrefixCachingScheduler,
    ReferenceEngine,
    RunningRequest,
    ServingEngine,
    SloSpec,
    SlotView,
    build_cluster,
    build_scheduler,
    fixed_lengths,
    gamma_trace,
    lognormal_lengths,
    multiturn_chat_trace,
    poisson_trace,
)
from repro.workloads.requests import Request, TimedRequest, Trace

BUDGET = 96


def _handed_trace():
    """A mixed stream where every third request is a handed-off decode
    continuation (its prefill already ran on some prefill replica), so
    the differential matrix covers the admission path disaggregation
    adds: handoff delay folded into the clock, decode-only lifecycles
    interleaved with fresh prefills."""
    base = poisson_trace(12.0, 32, fixed_lengths(256, 32), seed=5)
    timed = tuple(
        TimedRequest(
            t.request,
            t.arrival_s,
            prefilled_tokens=t.request.input_len,
            handoff_s=0.004,
            handoff_bytes=2.0e8,
        )
        if i % 3 == 0
        else t
        for i, t in enumerate(base.requests)
    )
    return Trace(timed)

SCHEDULERS = (
    "static", "fcfs", "memory", "chunked", "overlap", "chunked+hbm",
    "paged", "paged+tight", "prefix", "prefix+tight",
)

TRACES = {
    "poisson": lambda: poisson_trace(
        12.0, 32, fixed_lengths(256, 32), seed=0
    ),
    "bursty": lambda: gamma_trace(
        8.0, 24, cv=3.0, lengths=fixed_lengths(256, 32), seed=1
    ),
    "ragged": lambda: poisson_trace(
        6.0, 24, lognormal_lengths(192, 24, 0.6), seed=2
    ),
    # Sessions re-send their growing history, so the prefix policies see
    # real cache hits (the sessionless traces leave their cache cold).
    "chat": lambda: multiturn_chat_trace(
        3.0, 6, turns=3, first_input=128, user_tokens=24, output_len=24,
        think_s=1.0, seed=3,
    ),
    # Handed-off decode continuations (prefilled elsewhere, KV arriving
    # over a priced wire) interleaved with fresh prefills — the arrivals
    # a decode-side replica of a disaggregated fleet sees.
    "handed": _handed_trace,
}

SLO = SloSpec(ttft_s=2.0, tpot_s=0.018)


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


@pytest.fixture(scope="module")
def pimba_system():
    return build_system(SystemKind.PIMBA, "small")


def make_scheduler(name, system, spec):
    if name == "chunked+hbm":
        return ChunkedPrefillScheduler(
            BUDGET,
            max_batch=8,
            memory=MemoryModel.for_system(system, spec),
            capacity_bytes=system.capacity_bytes,
        )
    if name in ("paged+tight", "prefix+tight"):
        cls = PagedScheduler if name == "paged+tight" else (
            PrefixCachingScheduler
        )
        memory = MemoryModel.for_system(system, spec)
        return cls(
            memory,
            memory.weights_bytes + 2.93 * memory.request_bytes(256, 32),
            block_size=16,
            max_batch=8,
        )
    return build_scheduler(
        name, system, spec, max_batch=8, chunk_budget=BUDGET
    )


@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("scheduler_name", SCHEDULERS)
class TestBitExactness:
    """The vectorized engine IS the reference engine, to the last bit."""

    def test_engine_trace_identical(
        self, scheduler_name, trace_name, pimba_system, zamba_spec
    ):
        trace = TRACES[trace_name]()
        reference = ReferenceEngine(
            pimba_system,
            zamba_spec,
            make_scheduler(scheduler_name, pimba_system, zamba_spec),
        ).serve(trace)
        vectorized = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler(scheduler_name, pimba_system, zamba_spec),
        ).serve(trace)
        # asdict compares every timestamp, every priced iteration, and
        # every counter; == on floats means bit-equal, not approx.
        assert dataclasses.asdict(vectorized) == dataclasses.asdict(
            reference
        )

    def test_streaming_run_matches_event_record(
        self, scheduler_name, trace_name, pimba_system, zamba_spec
    ):
        """Below the sketch capacity the reservoir holds the whole
        population, so the streaming path's payload must be *equal*, not
        close, to the full event record's."""
        trace = TRACES[trace_name]()
        recorded = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler(scheduler_name, pimba_system, zamba_spec),
        ).serve(trace).report().to_payload(SLO)
        streamed = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler(scheduler_name, pimba_system, zamba_spec),
        ).run(trace).to_payload(SLO)
        assert streamed == recorded


class TestPrefixDegeneracy:
    """Prefix caching off — or starved of sessions — IS the paged policy.

    Not approximately: every decision float, every priced iteration, and
    every counter of :class:`PrefixCachingScheduler` must be bit-equal to
    :class:`PagedScheduler`'s whenever the cache cannot apply, so turning
    the feature on can never perturb a cacheless workload.
    """

    def pair(self, system, spec, cache):
        memory = MemoryModel.for_system(system, spec)
        # Tight enough to preempt, so the evict/restore path is part of
        # the equivalence too, not just steady-state admission.
        capacity = memory.weights_bytes + 2.93 * memory.request_bytes(
            256, 32
        )
        paged = PagedScheduler(memory, capacity, block_size=16, max_batch=8)
        prefix = PrefixCachingScheduler(
            memory, capacity, block_size=16, max_batch=8, cache=cache
        )
        return paged, prefix

    def test_cache_disabled_is_paged_bit_for_bit(
        self, pimba_system, zamba_spec
    ):
        """Session ids present, cache off: identical EngineTrace."""
        trace = TRACES["chat"]()
        paged, prefix = self.pair(pimba_system, zamba_spec, cache=False)
        baseline = ServingEngine(pimba_system, zamba_spec, paged).serve(trace)
        run = ServingEngine(pimba_system, zamba_spec, prefix).serve(trace)
        assert dataclasses.asdict(run) == dataclasses.asdict(baseline)
        assert run.cache_hit_tokens == 0
        assert run.cache_miss_tokens == 0

    def test_sessionless_trace_is_paged_bit_for_bit(
        self, pimba_system, zamba_spec
    ):
        """Cache on, but no request carries a session id: identical."""
        trace = TRACES["poisson"]()
        paged, prefix = self.pair(pimba_system, zamba_spec, cache=True)
        baseline = ServingEngine(pimba_system, zamba_spec, paged).serve(trace)
        run = ServingEngine(pimba_system, zamba_spec, prefix).serve(trace)
        assert dataclasses.asdict(run) == dataclasses.asdict(baseline)
        assert run.cache_hit_tokens == 0
        assert run.cache_miss_tokens == 0

    def test_cache_on_actually_diverges_on_sessions(
        self, pimba_system, zamba_spec
    ):
        """The harness is not vacuous: with sessions and the cache on,
        the prefix policy really does skip recomputation."""
        trace = TRACES["chat"]()
        paged, prefix = self.pair(pimba_system, zamba_spec, cache=True)
        baseline = ServingEngine(pimba_system, zamba_spec, paged).serve(trace)
        run = ServingEngine(pimba_system, zamba_spec, prefix).serve(trace)
        assert run.cache_hit_tokens > 0
        assert sum(run.prefill_tokens) < sum(baseline.prefill_tokens)
        assert sum(run.decode_tokens) == sum(baseline.decode_tokens)


@pytest.mark.parametrize("scheduler_name", SCHEDULERS)
def test_decode_run_equals_stepwise_iteration_shape(
    scheduler_name, pimba_system, zamba_spec
):
    """A scheduler's vectorized run pricing must equal its own scalar
    pricing stepped one iteration at a time (the coalescing contract).

    Replays the engine's scalar decode loop — iteration_shape, advance
    every active request one token, drop finishers (keep them frozen for
    static batching) — and compares each step's (batch, seq) against the
    one decode_run priced up front.  Ragged progress and per-request
    strides make the anchored contexts move at different times.
    """
    scheduler = make_scheduler(scheduler_name, pimba_system, zamba_spec)

    def member(rid, input_len, output_len, generated):
        return RunningRequest(
            timed=TimedRequest(
                request=Request(
                    request_id=rid,
                    input_len=input_len,
                    output_len=output_len,
                ),
                arrival_s=0.0,
            ),
            admitted_s=0.0,
            stride=scheduler.request_stride(output_len),
            generated=generated,
        )

    running = [
        member(0, 256, 40, 7),
        member(1, 192, 33, 0),
        member(2, 256, 64, 31),
        member(3, 64, 17, 2),
    ]
    slots = SlotView.from_requests(running)
    steps = slots.max_coalesced_steps()
    assert steps == 15  # request 3 finishes first: 17 - 2 tokens left

    batch, seqs = scheduler.decode_run(slots, steps)
    assert len(seqs) == steps

    stepwise = []
    for _ in range(steps):
        b, s = scheduler.iteration_shape(running)
        stepwise.append((b, s))
        for r in running:
            if not r.done:
                r.generated += 1
        if not scheduler.keep_finished:
            running = [r for r in running if not r.done]
    assert [(batch, int(s)) for s in seqs] == stepwise


def test_static_decode_run_with_frozen_finished_slots(
    pimba_system, zamba_spec
):
    """Static batching keeps finished requests resident (and priced) until
    the whole cohort drains — the vectorized run must freeze their
    contribution exactly like the scalar loop does."""
    scheduler = build_scheduler("static", pimba_system, zamba_spec, max_batch=8)

    def member(rid, output_len, generated):
        return RunningRequest(
            timed=TimedRequest(
                request=Request(
                    request_id=rid, input_len=128, output_len=output_len
                ),
                arrival_s=0.0,
            ),
            admitted_s=0.0,
            stride=scheduler.request_stride(output_len),
            generated=generated,
        )

    # One member already finished (frozen), two still decoding in
    # lockstep — the static cohort's invariant state.
    running = [member(0, 5, 5), member(1, 40, 5), member(2, 40, 5)]
    slots = SlotView.from_requests(running)
    steps = slots.max_coalesced_steps()
    assert steps == 35

    batch, seqs = scheduler.decode_run(slots, steps)
    stepwise = []
    for _ in range(steps):
        b, s = scheduler.iteration_shape(running)
        stepwise.append((b, s))
        for r in running:
            if not r.done:
                r.generated += 1
        # keep_finished: the cohort stays intact until everyone is done
    assert [(batch, int(s)) for s in seqs] == stepwise


class TestClusterStreaming:
    def test_cluster_run_matches_event_path(self, pimba_system, zamba_spec):
        """The streaming cluster run must reproduce the event-merging
        path's payload exactly while every replica fits the sketch."""
        trace = poisson_trace(20.0, 40, seed=0)
        cluster = build_cluster(
            pimba_system, zamba_spec, 3, router="least-loaded", max_batch=8
        )
        recorded = cluster.serve(trace).report().to_payload(SLO)
        streamed = cluster.run(trace).to_payload(SLO)
        assert streamed == recorded
