"""Disaggregation degeneracies: the split machinery must cost nothing
when it is switched off, and the wire must only ever price the handoff.

Three collapses pin the feature to the PR-9 cluster it grew out of:

* a "heterogeneous" fleet whose node kinds are all identical and whose
  phases are all ``both`` is EngineTrace-bit-exact with the plain
  homogeneous cluster under every router — the node-kind and phase
  plumbing is pure bookkeeping until it is actually exercised;
* the disaggregated router degenerates to a working colocated router:
  on an all-``both`` fleet it never splits, and on one replica it is
  bit-exact with the bare engine;
* an infinite link prices the handoff at exactly zero seconds, and a
  finite link's cost lands entirely *after* the first token: per-request
  TTFT is bit-equal between inf-link and finite-link runs of the same
  split fleet, only completion times move.
"""

import dataclasses

import pytest

from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    ROUTER_NAMES,
    ServingEngine,
    build_cluster,
    build_scheduler,
    fixed_lengths,
    gamma_trace,
    poisson_trace,
)
from repro.serving.costs import IterationCostModel


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


@pytest.fixture(scope="module")
def pimba_system():
    return build_system(SystemKind.PIMBA, "small")


@pytest.fixture(scope="module")
def gpu_system():
    return build_system(SystemKind.GPU, "small")


def split_cluster(gpu, pimba, spec, link_gbps):
    """The canonical 4-node split fleet: GPU prefill, Pimba decode."""
    return build_cluster(
        gpu, spec, 4,
        router="disaggregated",
        scheduler="fcfs",
        max_batch=8,
        link_gbps=link_gbps,
        node_kinds=(gpu, gpu, pimba, pimba),
        phases=("prefill", "prefill", "decode", "decode"),
    )


class TestHomogeneousDegeneracy:
    """Identical kinds + all-``both`` phases == the plain cluster."""

    @pytest.mark.parametrize("router", ROUTER_NAMES)
    def test_bit_exact_under_every_router(
        self, router, pimba_system, zamba_spec
    ):
        trace = gamma_trace(10.0, 24, cv=3.0, seed=4)
        plain = build_cluster(
            pimba_system, zamba_spec, 3,
            router=router, scheduler="fcfs", max_batch=8,
        ).serve(trace)
        hetero = build_cluster(
            pimba_system, zamba_spec, 3,
            router=router, scheduler="fcfs", max_batch=8,
            node_kinds=(pimba_system,) * 3,
            phases=("both",) * 3,
        ).serve(trace)
        assert hetero.assignments == plain.assignments
        for ours, theirs in zip(hetero.replicas, plain.replicas):
            if ours is None or theirs is None:
                assert ours is None and theirs is None
                continue
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)
        assert not hetero.split_ids
        assert hetero.stitched == ()

    def test_disaggregated_router_never_splits_all_both(
        self, pimba_system, zamba_spec
    ):
        """With wire costs > 0 a colocated lifecycle always beats the
        same lifecycle plus a priced handoff, so an all-``both`` fleet
        under the disaggregated router stays whole."""
        trace = poisson_trace(12.0, 32, fixed_lengths(256, 32), seed=7)
        record = build_cluster(
            pimba_system, zamba_spec, 3,
            router="disaggregated", scheduler="fcfs", max_batch=8,
        ).serve(trace)
        assert not record.split_ids
        assert record.merged().handoffs == 0

    def test_one_replica_is_the_bare_engine(self, pimba_system, zamba_spec):
        trace = gamma_trace(10.0, 24, cv=3.0, seed=4)
        bare = ServingEngine(
            pimba_system, zamba_spec,
            build_scheduler("fcfs", pimba_system, zamba_spec, max_batch=8),
        ).serve(trace)
        cluster = build_cluster(
            pimba_system, zamba_spec, 1,
            router="disaggregated", scheduler="fcfs", max_batch=8,
        ).serve(trace)
        assert cluster.merged() == bare


class TestZeroCostLink:
    """``link_gbps=inf`` prices the handoff at exactly zero."""

    def test_transfer_seconds_is_exactly_zero(self, pimba_system, zamba_spec):
        cost = IterationCostModel(
            pimba_system, zamba_spec, link_gbps=float("inf")
        )
        assert cost.transfer_seconds(0.0) == 0.0
        assert cost.transfer_seconds(1.0e12) == 0.0

    def test_nonpositive_link_rejected(self, pimba_system, zamba_spec):
        with pytest.raises(ValueError):
            IterationCostModel(pimba_system, zamba_spec, link_gbps=0.0)
        with pytest.raises(ValueError):
            IterationCostModel(pimba_system, zamba_spec, link_gbps=-1.0)

    def test_wire_cost_never_touches_first_tokens(
        self, gpu_system, pimba_system, zamba_spec
    ):
        """The handoff is priced into the decode half only: the same
        split fleet over an infinite vs a slow finite link produces
        bit-equal per-request TTFTs, completion never improves under
        the finite wire, and the TTFT ordering is identical."""
        trace = poisson_trace(8.0, 32, fixed_lengths(1024, 64), seed=11)
        free = split_cluster(
            gpu_system, pimba_system, zamba_spec, float("inf")
        ).serve(trace)
        priced = split_cluster(
            gpu_system, pimba_system, zamba_spec, 25.0
        ).serve(trace)
        assert len(free.split_ids) == len(trace.requests)
        assert free.split_ids == priced.split_ids
        free_t = {t.request_id: t for t in free.merged().timings}
        priced_t = {t.request_id: t for t in priced.merged().timings}
        for rid, ours in free_t.items():
            theirs = priced_t[rid]
            assert ours.first_token_s == theirs.first_token_s
            assert ours.admitted_s == theirs.admitted_s
            assert ours.finished_s <= theirs.finished_s
        order = sorted(free_t, key=lambda r: (free_t[r].first_token_s, r))
        assert order == sorted(
            priced_t, key=lambda r: (priced_t[r].first_token_s, r)
        )
        assert free.merged().handoff_bytes == priced.merged().handoff_bytes
        assert free.merged().handoffs == priced.merged().handoffs
