"""The streaming percentile sketch: exactness, error bounds, O(1) memory.

:class:`~repro.serving.metrics.RequestStats` backs every serving report.
Its contract has two regimes — below capacity the reservoir *is* the
population and everything derived from it is exact; above capacity it is
a seeded uniform sample whose percentile estimates carry a documented
rank-space standard error of ``sqrt(p * (1 - p) / K)``.  These tests pin
both regimes against exact ``np.percentile`` over the full stream, and
pin the properties the engine's streaming path relies on: memory capped
at the capacity regardless of stream length, deterministic results for
identical streams, and stream-weighted merging across cluster replicas.
"""

import math
import random

import numpy as np
import pytest

from repro.serving.metrics import (
    DEFAULT_SKETCH_CAPACITY,
    DepthSketch,
    RequestStats,
    RequestTiming,
    SloSpec,
)


def timing(rid, ttft, tail, input_len=8):
    """A two-token request: ttft as given, tpot == tail, e2e == ttft+tail."""
    return RequestTiming(
        request_id=rid,
        input_len=input_len,
        output_len=2,
        arrival_s=0.0,
        admitted_s=0.0,
        first_token_s=ttft,
        finished_s=ttft + tail,
    )


def stream(n, seed=7):
    """A seeded long-tailed latency stream (lognormal ttft, uniform tail)."""
    rng = random.Random(seed)
    return [
        timing(i, rng.lognormvariate(0.0, 0.75), rng.uniform(0.01, 0.05))
        for i in range(n)
    ]


def observe_all(timings, capacity):
    stats = RequestStats(capacity)
    for t in timings:
        stats.observe(t)
    return stats


class TestExactRegime:
    def test_percentiles_equal_np_percentile_below_capacity(self):
        timings = stream(200)
        stats = observe_all(timings, capacity=256)
        assert stats.exact
        for p in (0, 25, 50, 95, 99, 100):
            assert stats.ttft_percentile(p) == float(
                np.percentile([t.ttft_s for t in timings], p)
            )
            assert stats.e2e_percentile(p) == float(
                np.percentile([t.e2e_s for t in timings], p)
            )

    def test_slo_count_is_exact_integer_below_capacity(self):
        timings = stream(200)
        stats = observe_all(timings, capacity=256)
        slo = SloSpec(ttft_s=1.0, tpot_s=0.04)
        met = stats.slo_met(slo)
        assert met == sum(1 for t in timings if slo.met_by(t))
        assert float(met).is_integer()

    def test_token_counters_always_exact(self):
        timings = stream(5000)
        stats = observe_all(timings, capacity=64)  # overflowed 78x
        assert stats.prompt_tokens == 8 * 5000
        assert stats.generated_tokens == 2 * 5000
        assert stats.n == 5000


class TestSampledRegime:
    def test_percentiles_agree_within_documented_rank_error(self):
        """Above capacity the estimate must sit within the documented
        rank-space error band (5 standard errors — the reservoir is
        seeded, so this never flakes) of the exact percentile."""
        n, capacity = 50_000, DEFAULT_SKETCH_CAPACITY
        timings = stream(n)
        stats = observe_all(timings, capacity)
        assert not stats.exact
        exact_ttfts = np.sort([t.ttft_s for t in timings])
        for p in (10, 50, 90, 99):
            estimate = stats.ttft_percentile(p)
            rank_se = math.sqrt(p / 100 * (1 - p / 100) / capacity)
            lo = float(np.percentile(exact_ttfts, max(0.0, p - 500 * rank_se)))
            hi = float(
                np.percentile(exact_ttfts, min(100.0, p + 500 * rank_se))
            )
            assert lo <= estimate <= hi

    def test_memory_is_capacity_bound_on_a_long_stream(self):
        capacity = 128
        stats = RequestStats(capacity)
        rng = random.Random(3)
        for i in range(100_000):
            stats.observe(timing(i, rng.random(), 0.02))
            assert len(stats.rows) <= capacity
        assert len(stats.rows) == capacity
        assert stats.n == 100_000

    def test_identical_streams_give_identical_sketches(self):
        a = observe_all(stream(10_000), capacity=256)
        b = observe_all(stream(10_000), capacity=256)
        assert a == b
        assert a.ttft_percentile(99) == b.ttft_percentile(99)


class TestMerge:
    def test_merge_is_exact_when_rows_fit(self):
        parts = [observe_all(stream(100, seed=s), 256) for s in (1, 2, 3)]
        merged = RequestStats.merge(parts, capacity=512)
        assert merged.n == 300
        assert merged.exact
        every = [t for s in (1, 2, 3) for t in stream(100, seed=s)]
        assert merged.ttft_percentile(95) == float(
            np.percentile([t.ttft_s for t in every], 95)
        )

    def test_overflowing_merge_weights_parts_by_stream_length(self):
        # Tag each part with a distinct constant ttft so the merged
        # sample's composition is observable.
        big = observe_all([timing(i, 1.0, 0.02) for i in range(3000)], 4096)
        small = observe_all(
            [timing(i, 2.0, 0.02) for i in range(1000)], 4096
        )
        merged = RequestStats.merge([big, small], capacity=1000)
        assert merged.n == 4000
        assert len(merged.rows) == 1000
        big_share = sum(1 for row in merged.rows if row[0] == 1.0)
        assert big_share == 750  # 1000 * 3000/4000, exact by construction
        # SLO estimates scale the sample back to the stream.
        slo = SloSpec(ttft_s=1.5, tpot_s=1.0)  # met only by the 1.0s part
        assert merged.slo_met(slo) == pytest.approx(3000)

    def test_single_part_merge_is_identity(self):
        part = observe_all(stream(50), 256)
        merged = RequestStats.merge([part])
        assert merged == part


def depth_stream(n, seed=11):
    """Seeded (depth, seconds) segments like an engine's queue produces."""
    rng = random.Random(seed)
    return [
        (rng.randint(0, 12), rng.uniform(0.001, 0.5)) for _ in range(n)
    ]


def observe_depths(segments, capacity):
    sketch = DepthSketch(capacity)
    for depth, weight in segments:
        sketch.observe(depth, weight)
    return sketch


def exact_weighted_percentile(segments, p):
    """Reference: smallest depth whose cumulative weight covers p%."""
    ordered = sorted(segments)
    target = sum(w for _, w in segments) * p / 100.0
    cumulative = 0.0
    for depth, weight in ordered:
        cumulative += weight
        if cumulative >= target:
            return float(depth)
    return float(ordered[-1][0])


class TestDepthSketch:
    """The time-at-depth companion reservoir (queue_depth_p50/p99)."""

    def test_exact_weighted_percentiles_below_capacity(self):
        segments = [(0, 5.0), (1, 1.0), (2, 1.0), (4, 3.0)]
        sketch = observe_depths(segments, capacity=16)
        assert sketch.exact
        assert sketch.percentile(50) == 0.0  # depth 0 held half the time
        assert sketch.percentile(60) == 1.0
        assert sketch.percentile(90) == 4.0
        assert sketch.percentile(100) == 4.0
        for p in (0, 10, 37, 50, 75, 99, 100):
            assert sketch.percentile(p) == exact_weighted_percentile(
                segments, p
            )

    def test_empty_sketch_is_nan(self):
        assert math.isnan(DepthSketch(8).percentile(50))

    def test_zero_and_negative_weights_are_ignored(self):
        sketch = DepthSketch(8)
        sketch.observe(3, 0.0)
        sketch.observe(7, -1.0)
        assert sketch.count == 0
        assert sketch.total_weight == 0.0
        sketch.observe(2, 1.0)
        assert sketch.percentile(99) == 2.0

    def test_memory_is_capacity_bound(self):
        sketch = observe_depths(depth_stream(50_000), capacity=128)
        assert not sketch.exact
        assert len(sketch._items) == 128
        assert sketch.count == 50_000

    def test_sampled_percentile_tracks_the_population(self):
        """Survival is weight-proportional, so a dominant-depth stream's
        median must be that depth even far above capacity."""
        rng = random.Random(5)
        segments = [(2, rng.uniform(0.5, 1.5)) for _ in range(5_000)]
        segments += [(9, rng.uniform(0.001, 0.01)) for _ in range(5_000)]
        rng.shuffle(segments)
        sketch = observe_depths(segments, capacity=256)
        assert sketch.percentile(50) == 2.0

    def test_identical_streams_give_equal_sketches(self):
        a = observe_depths(depth_stream(10_000), capacity=128)
        b = observe_depths(depth_stream(10_000), capacity=128)
        assert a == b
        assert a.percentile(99) == b.percentile(99)

    def test_merge_is_deterministic_and_order_insensitive(self):
        parts = [
            observe_depths(depth_stream(500, seed=s), 128) for s in (1, 2, 3)
        ]
        forward = DepthSketch.merge(parts)
        backward = DepthSketch.merge(list(reversed(parts)))
        assert forward == backward
        assert forward.count == 1500
        assert forward.total_weight == pytest.approx(
            sum(p.total_weight for p in parts)
        )

    def test_merge_is_exact_while_pooled_segments_fit(self):
        streams = [depth_stream(40, seed=s) for s in (4, 5)]
        parts = [observe_depths(s, 128) for s in streams]
        merged = DepthSketch.merge(parts, capacity=128)
        every = [seg for s in streams for seg in s]
        for p in (25, 50, 99):
            assert merged.percentile(p) == exact_weighted_percentile(every, p)

    def test_merge_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            DepthSketch.merge([])
        with pytest.raises(ValueError):
            DepthSketch.merge([None])

    def test_single_part_merge_is_identity(self):
        part = observe_depths(depth_stream(100), 128)
        assert DepthSketch.merge([part, None]) is part
