"""Discrete-event engine: static-batching parity, continuous batching,
memory-aware admission, prefill shaping, and lifecycle invariants."""

import pytest

from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    ChunkedPrefillScheduler,
    EngineTrace,
    FcfsContinuousScheduler,
    MemoryAwareScheduler,
    MemoryModel,
    OverlapScheduler,
    PagedScheduler,
    ServingEngine,
    StaticBatchScheduler,
    build_scheduler,
    fixed_lengths,
    lognormal_lengths,
    poisson_trace,
    static_trace,
)
from repro.workloads import ServingSimulator, sampled_batch, uniform_batch
import numpy as np


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


def engine_for(kind, spec, scheduler):
    return ServingEngine(build_system(kind, "small"), spec, scheduler)


class TestStaticEquivalence:
    """The static scheduler reproduces ServingSimulator numbers exactly."""

    @pytest.mark.parametrize("kind", [SystemKind.GPU, SystemKind.PIMBA])
    @pytest.mark.parametrize("stride", [1, 32, 10**6])
    def test_uniform_batch_exact(self, kind, stride, zamba_spec):
        batch = uniform_batch(16, 512, 128)
        system = build_system(kind, "small")
        sim = ServingSimulator(system, zamba_spec).run(batch, step_stride=stride)
        run = ServingEngine(
            system, zamba_spec, StaticBatchScheduler(16, step_stride=stride)
        ).serve(static_trace(batch))
        assert run.iteration_seconds == sim.step_seconds
        assert run.prefill_seconds == (sim.prefill_seconds,)
        assert run.makespan_s == pytest.approx(sim.total_seconds, abs=0, rel=1e-12)

    def test_ragged_batch_exact(self, zamba_spec):
        """Padded-cohort semantics survive per-request length variation."""
        batch = sampled_batch(12, np.random.default_rng(5))
        system = build_system(SystemKind.PIMBA, "small")
        sim = ServingSimulator(system, zamba_spec).run(batch)
        run = ServingEngine(
            system, zamba_spec, StaticBatchScheduler(12)
        ).serve(static_trace(batch))
        assert run.iteration_seconds == sim.step_seconds
        # Every request completes at its own length, not the padded one.
        by_id = {t.request_id: t for t in run.timings}
        for request in batch.requests:
            assert by_id[request.request_id].output_len == request.output_len

    def test_multiple_cohorts_from_queue(self, zamba_spec):
        """17 requests at batch 8 -> three cohorts (8 + 8 + 1 flush)."""
        trace = poisson_trace(100.0, 17, seed=3)
        run = engine_for(
            SystemKind.GPU, zamba_spec, StaticBatchScheduler(8)
        ).serve(trace)
        assert len(run.prefill_seconds) == 3
        assert len(run.timings) == 17


class TestContinuousBatching:
    def test_all_requests_complete_with_ordered_timestamps(self, zamba_spec):
        trace = poisson_trace(8.0, 40, seed=0)
        run = engine_for(
            SystemKind.PIMBA, zamba_spec, FcfsContinuousScheduler(8)
        ).serve(trace)
        assert run.report().n_requests == 40
        for t in run.timings:
            assert t.arrival_s <= t.admitted_s <= t.first_token_s <= t.finished_s
            assert t.tpot_s > 0

    def test_iteration_level_admission_beats_static_ttft(self, zamba_spec):
        """Continuous batching admits at iteration boundaries; static waits
        for a full batch — its median TTFT must be strictly worse under a
        trickle of arrivals."""
        trace = poisson_trace(4.0, 24, seed=1)
        continuous = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(8)
        ).run(trace)
        static = engine_for(
            SystemKind.GPU, zamba_spec, StaticBatchScheduler(8)
        ).run(trace)
        assert continuous.ttft_percentile(50) < static.ttft_percentile(50)

    def test_slot_bound_respected(self, zamba_spec):
        """With one slot, requests are served strictly one at a time."""
        trace = poisson_trace(50.0, 6, seed=2)
        run = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(1)
        ).serve(trace)
        # One prefill per request, and FCFS completion order.
        assert len(run.prefill_seconds) == 6
        finishes = [t.finished_s for t in run.timings]
        assert finishes == sorted(finishes)

    def test_saturation_raises_tail_latency(self, zamba_spec):
        """Offering far more load than the slot count can drain must grow
        both the queue and the TTFT tail."""
        light = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(8)
        ).run(poisson_trace(1.0, 48, seed=0))
        heavy = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(8)
        ).run(poisson_trace(20.0, 48, seed=0))
        assert heavy.ttft_percentile(99) > light.ttft_percentile(99)
        assert heavy.mean_queue_depth > light.mean_queue_depth


class TestMemoryAwareScheduling:
    def test_capacity_limits_concurrency(self, zamba_spec):
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        per_request = memory.request_bytes(1024, 256)
        trace = poisson_trace(100.0, 12, seed=0)

        def max_resident(capacity_requests):
            scheduler = MemoryAwareScheduler(
                memory,
                memory.weights_bytes + per_request * capacity_requests,
            )
            run = ServingEngine(system, zamba_spec, scheduler).serve(trace)
            return max(
                sum(
                    1 for t in run.timings
                    if t.admitted_s <= moment < t.finished_s
                )
                for moment in (t.first_token_s for t in run.timings)
            )

        assert max_resident(2) <= 2
        assert max_resident(8) > 2

    def test_quantized_state_admits_more(self, zamba_spec):
        """Pimba's MX8 state/KV halves the footprint -> more residency in
        the same HBM (the request-level Fig. 15 capacity argument)."""
        gpu = MemoryModel.for_system(
            build_system(SystemKind.GPU, "small"), zamba_spec
        )
        pimba = MemoryModel.for_system(
            build_system(SystemKind.PIMBA, "small"), zamba_spec
        )
        assert pimba.request_bytes(1024, 256) == pytest.approx(
            gpu.request_bytes(1024, 256) / 2
        )

    def test_oversized_request_raises(self, zamba_spec):
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        scheduler = MemoryAwareScheduler(
            memory, memory.weights_bytes + 1.0  # room for nothing
        )
        with pytest.raises(RuntimeError, match="cannot place"):
            ServingEngine(system, zamba_spec, scheduler).serve(
                poisson_trace(1.0, 2, seed=0)
            )

    def test_capacity_must_hold_weights(self, zamba_spec):
        memory = MemoryModel.for_system(
            build_system(SystemKind.GPU, "small"), zamba_spec
        )
        with pytest.raises(ValueError, match="weights"):
            MemoryAwareScheduler(memory, memory.weights_bytes / 2)


class TestChunkedPrefill:
    """Sarathi-style chunk streaming and its blocked-FCFS degeneration."""

    @pytest.mark.parametrize("kind", [SystemKind.GPU, SystemKind.PIMBA])
    @pytest.mark.parametrize("budget", [1024, 10**6])
    def test_whole_prompt_budget_is_fcfs_bit_exact(
        self, kind, budget, zamba_spec
    ):
        """Budget >= the longest prompt (1024 here): every admission is a
        single full-prompt chunk that runs alone and is priced exactly
        like the monolithic prefill — the EngineTrace is *identical* to
        FCFS continuous batching, event for event (the chunked analogue
        of the static==ServingSimulator parity)."""
        system = build_system(kind, "small")
        trace = poisson_trace(10.0, 24, seed=3)
        fcfs = ServingEngine(
            system, zamba_spec, FcfsContinuousScheduler(8)
        ).serve(trace)
        chunked = ServingEngine(
            system, zamba_spec, ChunkedPrefillScheduler(budget, max_batch=8)
        ).serve(trace)
        assert chunked == fcfs

    def test_chunk_costs_telescope_to_the_monolithic_prefill(
        self, zamba_spec
    ):
        """One burst cohort, split ever finer: the chunk count scales as
        1/budget and the chunk costs sum to the monolithic prefill."""
        trace = static_trace(uniform_batch(8, 1024, 64))

        def run(budget):
            return engine_for(
                SystemKind.PIMBA,
                zamba_spec,
                ChunkedPrefillScheduler(budget, max_batch=8),
            ).serve(trace)

        full, halved, quartered = run(1024), run(512), run(256)
        assert len(full.prefill_seconds) == 1
        assert len(halved.prefill_seconds) == 2
        assert len(quartered.prefill_seconds) == 4
        assert sum(halved.prefill_seconds) == pytest.approx(
            sum(full.prefill_seconds)
        )
        assert sum(quartered.prefill_seconds) == pytest.approx(
            sum(full.prefill_seconds)
        )
        assert quartered.prefill_tokens == (256, 256, 256, 256)
        # Later chunks cost more: their attention spans the built context.
        assert list(quartered.prefill_seconds) == sorted(
            quartered.prefill_seconds
        )

    def test_smaller_budget_streams_more_prefill_events(self, zamba_spec):
        trace = poisson_trace(10.0, 16, seed=0)  # 1024-token prompts

        def run(budget):
            return engine_for(
                SystemKind.PIMBA,
                zamba_spec,
                ChunkedPrefillScheduler(budget, max_batch=8),
            ).serve(trace)

        full, halved, quartered = run(1024), run(512), run(256)
        assert (
            len(full.prefill_seconds)
            < len(halved.prefill_seconds)
            < len(quartered.prefill_seconds)
        )
        assert max(halved.prefill_tokens) <= 512
        assert max(quartered.prefill_tokens) <= 256

    def test_piggybacked_decode_raises_tpot(self, zamba_spec):
        """Chunk iterations carry the decode batch at summed cost, so the
        decode tail pays for prefill shaping (the Sarathi tradeoff)."""
        trace = poisson_trace(16.0, 24, seed=1)
        fcfs = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(8)
        ).run(trace)
        chunked = engine_for(
            SystemKind.GPU,
            zamba_spec,
            ChunkedPrefillScheduler(128, max_batch=8),
        ).run(trace)
        assert chunked.tpot_percentile(99) > fcfs.tpot_percentile(99)

    def test_overlap_is_never_slower_than_chunked(self, zamba_spec):
        """max(chunk, decode) pricing vs chunk + decode pricing: the
        overlap engine finishes the same workload no later."""
        trace = poisson_trace(16.0, 24, seed=2)
        chunked = engine_for(
            SystemKind.PIMBA,
            zamba_spec,
            ChunkedPrefillScheduler(128, max_batch=8),
        ).serve(trace)
        overlap = engine_for(
            SystemKind.PIMBA,
            zamba_spec,
            OverlapScheduler(128, max_batch=8),
        ).serve(trace)
        assert overlap.end_s <= chunked.end_s
        assert overlap.report().ttft_percentile(99) <= (
            chunked.report().ttft_percentile(99)
        )

    def test_capacity_bound_composes_with_chunking(self, zamba_spec):
        """A chunked scheduler with an attached MemoryModel admits no more
        concurrent residents than the capacity allows — prefilling
        requests hold their reservation too."""
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        per_request = memory.request_bytes(1024, 256)
        scheduler = ChunkedPrefillScheduler(
            256,
            max_batch=64,
            memory=memory,
            capacity_bytes=memory.weights_bytes + 2.5 * per_request,
        )
        run = ServingEngine(system, zamba_spec, scheduler).serve(
            poisson_trace(100.0, 10, seed=0)
        )
        resident = max(
            sum(
                1 for t in run.timings
                if t.admitted_s <= moment < t.finished_s
            )
            for moment in (t.first_token_s for t in run.timings)
        )
        assert resident <= 2

    def test_validation(self, zamba_spec):
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        with pytest.raises(ValueError, match="chunk_budget"):
            ChunkedPrefillScheduler(0)
        with pytest.raises(ValueError, match="together"):
            ChunkedPrefillScheduler(256, memory=memory)
        with pytest.raises(ValueError, match="weights"):
            ChunkedPrefillScheduler(
                256, memory=memory, capacity_bytes=memory.weights_bytes / 2
            )


class TestPagedScheduling:
    """Block-granular KV reservation: degeneration, packing, preemption."""

    @pytest.mark.parametrize("block_size", [1024 + 256, 10**6])
    @pytest.mark.parametrize(
        "lengths",
        [fixed_lengths(1024, 256), lognormal_lengths(512, 128, 0.6)],
        ids=["fixed", "ragged"],
    )
    def test_degenerate_is_memory_aware_bit_exact(
        self, block_size, lengths, zamba_spec
    ):
        """Preemption disabled + block size >= any context: the paged
        scheduler reserves every request's full final footprint through
        the same arithmetic as MemoryAwareScheduler, so the EngineTraces
        are *identical* under a deliberately binding capacity bound."""
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        capacity = memory.weights_bytes + 3.3 * memory.request_bytes(
            1024, 256
        )
        trace = poisson_trace(20.0, 24, lengths, seed=0)
        conservative = ServingEngine(
            system,
            zamba_spec,
            MemoryAwareScheduler(memory, capacity, max_batch=8),
        ).serve(trace)
        paged = ServingEngine(
            system,
            zamba_spec,
            PagedScheduler(
                memory,
                capacity,
                block_size=block_size,
                preempt=False,
                max_batch=8,
            ),
        ).serve(trace)
        assert paged == conservative
        assert paged.preemptions == 0

    def test_paged_admission_packs_more_residents(self, zamba_spec):
        """Admitting against current block usage (prompt only) fits more
        concurrent requests than full-context reservation in the same
        pool — the whole point of paging."""
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        capacity = memory.weights_bytes + 4 * memory.request_bytes(128, 512)
        trace = poisson_trace(100.0, 16, fixed_lengths(128, 512), seed=0)

        def max_resident(scheduler):
            run = ServingEngine(system, zamba_spec, scheduler).serve(trace)
            return max(
                sum(
                    1 for t in run.timings
                    if t.admitted_s <= moment < t.finished_s
                )
                for moment in (t.first_token_s for t in run.timings)
            )

        conservative = max_resident(
            MemoryAwareScheduler(memory, capacity, max_batch=64)
        )
        paged = max_resident(
            PagedScheduler(memory, capacity, block_size=64, max_batch=64)
        )
        assert conservative <= 4
        assert paged > conservative

    def test_preemption_pays_a_visible_reprefill_cost(self, zamba_spec):
        """Thrashing is not free: the preempting run re-prefills evicted
        requests (extra prefill events/tokens) and its clock shows it,
        while still generating every output token exactly once."""
        system = build_system(SystemKind.PIMBA, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        trace = poisson_trace(40.0, 24, fixed_lengths(128, 512), seed=1)
        tight = PagedScheduler(
            memory,
            memory.weights_bytes + 4 * memory.request_bytes(128, 512),
            block_size=64,
            max_batch=64,
        )
        thrashing = ServingEngine(system, zamba_spec, tight).serve(trace)
        roomy = ServingEngine(
            system,
            zamba_spec,
            PagedScheduler(
                memory, system.capacity_bytes, block_size=64, max_batch=64
            ),
        ).serve(trace)
        assert thrashing.preemptions > 0
        assert roomy.preemptions == 0
        assert sum(thrashing.decode_tokens) == sum(roomy.decode_tokens)
        assert sum(thrashing.prefill_tokens) > sum(roomy.prefill_tokens)
        assert thrashing.end_s > roomy.end_s
        # The report surfaces the same counters the raw trace carries.
        report = thrashing.report()
        assert report.n_preemptions == thrashing.preemptions
        assert sum(t.preemptions for t in thrashing.timings) == (
            thrashing.preemptions
        )

    def test_infeasible_head_request_raises(self, zamba_spec):
        """A request whose full footprint exceeds the whole pool is never
        admitted (it could only thrash forever)."""
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        scheduler = PagedScheduler(
            memory,
            memory.weights_bytes + 0.5 * memory.request_bytes(1024, 256),
            block_size=64,
        )
        with pytest.raises(RuntimeError, match="cannot place"):
            ServingEngine(system, zamba_spec, scheduler).serve(
                poisson_trace(1.0, 2, seed=0)
            )

    def test_build_scheduler_knobs(self, zamba_spec):
        system = build_system(SystemKind.PIMBA, "small")
        scheduler = build_scheduler(
            "paged", system, zamba_spec, block_size=32, preempt=False
        )
        assert isinstance(scheduler, PagedScheduler)
        assert scheduler.block_size == 32
        assert scheduler.pool.block_size == 32
        assert not scheduler.preempt
        assert scheduler.capacity_bytes == system.capacity_bytes


class TestEmptyEngineTrace:
    def test_all_queued_trace_reports_without_crashing(self):
        """Regression: a record cut while every request was still queued
        (no completions, no prefills) must aggregate, not crash on empty
        percentile arrays."""
        run = EngineTrace(
            timings=(),
            iteration_seconds=(),
            decode_tokens=(),
            prefill_seconds=(),
            prefill_tokens=(),
            start_s=5.0,
            end_s=5.0,
            mean_queue_depth=4.0,
            max_queue_depth=8,
        )
        report = run.report()
        assert report.n_requests == 0
        assert report.throughput_tokens_per_s == 0.0
        import math

        assert math.isnan(report.ttft_percentile(99))


class TestBuildScheduler:
    def test_names(self, zamba_spec):
        system = build_system(SystemKind.PIMBA, "small")
        for name, cls in [
            ("static", StaticBatchScheduler),
            ("fcfs", FcfsContinuousScheduler),
            ("memory", MemoryAwareScheduler),
            ("chunked", ChunkedPrefillScheduler),
            ("overlap", OverlapScheduler),
            ("paged", PagedScheduler),
        ]:
            assert isinstance(
                build_scheduler(name, system, zamba_spec), cls
            )
        with pytest.raises(KeyError, match="unknown scheduler"):
            build_scheduler("lifo", system, zamba_spec)

    def test_chunked_capacity_opt_in(self, zamba_spec):
        system = build_system(SystemKind.PIMBA, "small")
        slot_only = build_scheduler(
            "chunked", system, zamba_spec, chunk_budget=128
        )
        assert slot_only.chunk_budget == 128 and slot_only.memory is None
        bounded = build_scheduler(
            "overlap", system, zamba_spec,
            capacity_bytes=system.capacity_bytes,
        )
        assert bounded.memory is not None
        assert bounded.capacity_bytes == system.capacity_bytes

    def test_memory_default_capacity_is_cluster_hbm(self, zamba_spec):
        system = build_system(SystemKind.PIMBA, "small")
        scheduler = build_scheduler("memory", system, zamba_spec)
        assert scheduler.capacity_bytes == system.capacity_bytes
