"""Discrete-event engine: static-batching parity, continuous batching,
memory-aware admission, and lifecycle invariants."""

import pytest

from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    FcfsContinuousScheduler,
    MemoryAwareScheduler,
    MemoryModel,
    ServingEngine,
    StaticBatchScheduler,
    build_scheduler,
    poisson_trace,
    static_trace,
)
from repro.workloads import ServingSimulator, sampled_batch, uniform_batch
import numpy as np


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


def engine_for(kind, spec, scheduler):
    return ServingEngine(build_system(kind, "small"), spec, scheduler)


class TestStaticEquivalence:
    """The static scheduler reproduces ServingSimulator numbers exactly."""

    @pytest.mark.parametrize("kind", [SystemKind.GPU, SystemKind.PIMBA])
    @pytest.mark.parametrize("stride", [1, 32, 10**6])
    def test_uniform_batch_exact(self, kind, stride, zamba_spec):
        batch = uniform_batch(16, 512, 128)
        system = build_system(kind, "small")
        sim = ServingSimulator(system, zamba_spec).run(batch, step_stride=stride)
        run = ServingEngine(
            system, zamba_spec, StaticBatchScheduler(16, step_stride=stride)
        ).serve(static_trace(batch))
        assert run.iteration_seconds == sim.step_seconds
        assert run.prefill_seconds == (sim.prefill_seconds,)
        assert run.makespan_s == pytest.approx(sim.total_seconds, abs=0, rel=1e-12)

    def test_ragged_batch_exact(self, zamba_spec):
        """Padded-cohort semantics survive per-request length variation."""
        batch = sampled_batch(12, np.random.default_rng(5))
        system = build_system(SystemKind.PIMBA, "small")
        sim = ServingSimulator(system, zamba_spec).run(batch)
        run = ServingEngine(
            system, zamba_spec, StaticBatchScheduler(12)
        ).serve(static_trace(batch))
        assert run.iteration_seconds == sim.step_seconds
        # Every request completes at its own length, not the padded one.
        by_id = {t.request_id: t for t in run.timings}
        for request in batch.requests:
            assert by_id[request.request_id].output_len == request.output_len

    def test_multiple_cohorts_from_queue(self, zamba_spec):
        """17 requests at batch 8 -> three cohorts (8 + 8 + 1 flush)."""
        trace = poisson_trace(100.0, 17, seed=3)
        run = engine_for(
            SystemKind.GPU, zamba_spec, StaticBatchScheduler(8)
        ).serve(trace)
        assert len(run.prefill_seconds) == 3
        assert len(run.timings) == 17


class TestContinuousBatching:
    def test_all_requests_complete_with_ordered_timestamps(self, zamba_spec):
        trace = poisson_trace(8.0, 40, seed=0)
        report = engine_for(
            SystemKind.PIMBA, zamba_spec, FcfsContinuousScheduler(8)
        ).run(trace)
        assert report.n_requests == 40
        for t in report.timings:
            assert t.arrival_s <= t.admitted_s <= t.first_token_s <= t.finished_s
            assert t.tpot_s > 0

    def test_iteration_level_admission_beats_static_ttft(self, zamba_spec):
        """Continuous batching admits at iteration boundaries; static waits
        for a full batch — its median TTFT must be strictly worse under a
        trickle of arrivals."""
        trace = poisson_trace(4.0, 24, seed=1)
        continuous = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(8)
        ).run(trace)
        static = engine_for(
            SystemKind.GPU, zamba_spec, StaticBatchScheduler(8)
        ).run(trace)
        assert continuous.ttft_percentile(50) < static.ttft_percentile(50)

    def test_slot_bound_respected(self, zamba_spec):
        """With one slot, requests are served strictly one at a time."""
        trace = poisson_trace(50.0, 6, seed=2)
        run = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(1)
        ).serve(trace)
        # One prefill per request, and FCFS completion order.
        assert len(run.prefill_seconds) == 6
        finishes = [t.finished_s for t in run.timings]
        assert finishes == sorted(finishes)

    def test_saturation_raises_tail_latency(self, zamba_spec):
        """Offering far more load than the slot count can drain must grow
        both the queue and the TTFT tail."""
        light = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(8)
        ).run(poisson_trace(1.0, 48, seed=0))
        heavy = engine_for(
            SystemKind.GPU, zamba_spec, FcfsContinuousScheduler(8)
        ).run(poisson_trace(20.0, 48, seed=0))
        assert heavy.ttft_percentile(99) > light.ttft_percentile(99)
        assert heavy.mean_queue_depth > light.mean_queue_depth


class TestMemoryAwareScheduling:
    def test_capacity_limits_concurrency(self, zamba_spec):
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        per_request = memory.request_bytes(1024, 256)
        trace = poisson_trace(100.0, 12, seed=0)

        def max_resident(capacity_requests):
            scheduler = MemoryAwareScheduler(
                memory,
                memory.weights_bytes + per_request * capacity_requests,
            )
            run = ServingEngine(system, zamba_spec, scheduler).serve(trace)
            return max(
                sum(
                    1 for t in run.timings
                    if t.admitted_s <= moment < t.finished_s
                )
                for moment in (t.first_token_s for t in run.timings)
            )

        assert max_resident(2) <= 2
        assert max_resident(8) > 2

    def test_quantized_state_admits_more(self, zamba_spec):
        """Pimba's MX8 state/KV halves the footprint -> more residency in
        the same HBM (the request-level Fig. 15 capacity argument)."""
        gpu = MemoryModel.for_system(
            build_system(SystemKind.GPU, "small"), zamba_spec
        )
        pimba = MemoryModel.for_system(
            build_system(SystemKind.PIMBA, "small"), zamba_spec
        )
        assert pimba.request_bytes(1024, 256) == pytest.approx(
            gpu.request_bytes(1024, 256) / 2
        )

    def test_oversized_request_raises(self, zamba_spec):
        system = build_system(SystemKind.GPU, "small")
        memory = MemoryModel.for_system(system, zamba_spec)
        scheduler = MemoryAwareScheduler(
            memory, memory.weights_bytes + 1.0  # room for nothing
        )
        with pytest.raises(RuntimeError, match="cannot place"):
            ServingEngine(system, zamba_spec, scheduler).serve(
                poisson_trace(1.0, 2, seed=0)
            )

    def test_capacity_must_hold_weights(self, zamba_spec):
        memory = MemoryModel.for_system(
            build_system(SystemKind.GPU, "small"), zamba_spec
        )
        with pytest.raises(ValueError, match="weights"):
            MemoryAwareScheduler(memory, memory.weights_bytes / 2)


class TestBuildScheduler:
    def test_names(self, zamba_spec):
        system = build_system(SystemKind.PIMBA, "small")
        for name, cls in [
            ("static", StaticBatchScheduler),
            ("fcfs", FcfsContinuousScheduler),
            ("memory", MemoryAwareScheduler),
        ]:
            assert isinstance(
                build_scheduler(name, system, zamba_spec), cls
            )
        with pytest.raises(KeyError, match="unknown scheduler"):
            build_scheduler("lifo", system, zamba_spec)

    def test_memory_default_capacity_is_cluster_hbm(self, zamba_spec):
        system = build_system(SystemKind.PIMBA, "small")
        scheduler = build_scheduler("memory", system, zamba_spec)
        assert scheduler.capacity_bytes == system.capacity_bytes
