"""The flight recorder: zero-cost seam, conservation laws, exporters.

Three contracts keep the telemetry honest.  First, *observation must not
perturb*: serving with ``None``, a :class:`NullCollector`, or a full
:class:`TimelineCollector` attached must produce the bit-identical
:class:`~repro.serving.engine.EngineTrace` across every scheduler
configuration — the collector reads the simulation, it never steers it.
Second, *conservation*: the spans a collector records must re-add to the
engine's own priced totals (prefill/decode token sums, preemption
counts, completed requests) — a span stream that disagrees with the
report it annotates is worse than none.  Third, the *exporters* are
load-bearing: the Perfetto JSON must stay schema-valid (pinned by a
golden file regenerated from a deterministic run) and the windowed
time-series must partition the run without losing requests.
"""

import copy
import dataclasses
import json
import math
import pathlib

import pytest

from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    ChunkedPrefillScheduler,
    MemoryModel,
    NullCollector,
    PagedScheduler,
    PrefixCachingScheduler,
    ServingEngine,
    SloSpec,
    TimelineCollector,
    build_cluster,
    build_scheduler,
    fixed_lengths,
    gamma_trace,
    multiturn_chat_trace,
    poisson_trace,
    validate_trace_events,
    write_trace_file,
)
from repro.workloads.requests import Request, TimedRequest, Trace

BUDGET = 96

SCHEDULERS = (
    "static", "fcfs", "memory", "chunked", "overlap", "chunked+hbm",
    "paged", "paged+tight", "prefix", "prefix+tight",
)

SLO = SloSpec(ttft_s=2.0, tpot_s=0.018)

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "perfetto_golden.json"


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


@pytest.fixture(scope="module")
def pimba_system():
    return build_system(SystemKind.PIMBA, "small")


def make_scheduler(name, system, spec):
    """The equivalence harness's scheduler grid (same configs, same knobs)."""
    if name == "chunked+hbm":
        return ChunkedPrefillScheduler(
            BUDGET,
            max_batch=8,
            memory=MemoryModel.for_system(system, spec),
            capacity_bytes=system.capacity_bytes,
        )
    if name in ("paged+tight", "prefix+tight"):
        cls = PagedScheduler if name == "paged+tight" else (
            PrefixCachingScheduler
        )
        memory = MemoryModel.for_system(system, spec)
        return cls(
            memory,
            memory.weights_bytes + 2.93 * memory.request_bytes(256, 32),
            block_size=16,
            max_batch=8,
        )
    return build_scheduler(
        name, system, spec, max_batch=8, chunk_budget=BUDGET
    )


def bursty_trace():
    """Bursty enough to queue, sized to preempt under ``paged+tight``."""
    return gamma_trace(8.0, 24, cv=3.0, lengths=fixed_lengths(256, 32), seed=1)


def recorded_run(system, spec, scheduler_name="paged+tight", trace=None):
    trace = bursty_trace() if trace is None else trace
    engine = ServingEngine(
        system, spec, make_scheduler(scheduler_name, system, spec)
    )
    collector = TimelineCollector()
    record = engine.serve(trace, collector=collector)
    return record, collector.timeline


@pytest.mark.parametrize("scheduler_name", SCHEDULERS)
class TestObservationDoesNotPerturb:
    """Any collector — null or recording — leaves the simulation bit-exact."""

    def test_null_collector_is_absent_collector(
        self, scheduler_name, pimba_system, zamba_spec
    ):
        trace = bursty_trace()
        bare = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler(scheduler_name, pimba_system, zamba_spec),
        ).serve(trace)
        nulled = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler(scheduler_name, pimba_system, zamba_spec),
        ).serve(trace, collector=NullCollector())
        assert dataclasses.asdict(nulled) == dataclasses.asdict(bare)

    def test_recording_collector_is_absent_collector(
        self, scheduler_name, pimba_system, zamba_spec
    ):
        trace = bursty_trace()
        bare = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler(scheduler_name, pimba_system, zamba_spec),
        ).serve(trace)
        recorded, timeline = recorded_run(
            pimba_system, zamba_spec, scheduler_name, trace
        )
        assert dataclasses.asdict(recorded) == dataclasses.asdict(bare)
        assert timeline.tracks  # and it actually recorded something


class TestConservation:
    """Spans and gauges must re-add to the engine's own priced totals."""

    def test_span_token_sums_match_engine_totals(
        self, pimba_system, zamba_spec
    ):
        record, timeline = recorded_run(pimba_system, zamba_spec)
        (track,) = timeline.tracks
        prefill = sum(s[3] for s in track.spans if s[0] != "decode")
        decode = sum(s[3] for s in track.spans if s[0] == "decode")
        assert prefill == sum(record.prefill_tokens)
        assert decode == sum(record.decode_tokens)
        assert track.prefill_tokens == prefill
        assert track.decode_tokens == decode

    def test_preempt_spans_match_preemption_count(
        self, pimba_system, zamba_spec
    ):
        record, timeline = recorded_run(pimba_system, zamba_spec)
        (track,) = timeline.tracks
        # Every evicted request restores before it can finish, and the
        # run drains completely — so every eviction closes an interval.
        assert record.preemptions > 0  # the config must actually thrash
        assert len(track.preempt_spans) == record.preemptions
        for _rid, t_preempt, t_restore in track.preempt_spans:
            assert t_preempt < t_restore

    def test_finished_requests_match_engine_timings(
        self, pimba_system, zamba_spec
    ):
        record, timeline = recorded_run(pimba_system, zamba_spec)
        (track,) = timeline.tracks
        assert track.timings() == sorted(
            record.timings, key=lambda t: t.request_id
        )

    def test_gauge_counters_are_cumulative(self, pimba_system, zamba_spec):
        record, timeline = recorded_run(pimba_system, zamba_spec)
        (track,) = timeline.tracks
        for prev, cur in zip(track.gauges, track.gauges[1:]):
            assert cur[0] >= prev[0]  # time
            assert cur[4] >= prev[4]  # preemptions
            assert cur[5] >= prev[5]  # prefill tokens
            assert cur[6] >= prev[6]  # decode tokens
        assert track.gauges[-1][4] == record.preemptions
        assert max(g[1] for g in track.gauges) <= record.max_queue_depth

    def test_paged_gauges_see_blocks_in_use(self, pimba_system, zamba_spec):
        _, timeline = recorded_run(pimba_system, zamba_spec)
        (track,) = timeline.tracks
        assert max(g[3] for g in track.gauges) > 0

    def test_non_paged_gauges_report_zero_blocks(
        self, pimba_system, zamba_spec
    ):
        _, timeline = recorded_run(pimba_system, zamba_spec, "fcfs")
        (track,) = timeline.tracks
        assert all(g[3] == 0 for g in track.gauges)


class TestQueueDepthPercentiles:
    """Satellite: depth p50/p99 ride every report, sketch-backed."""

    def test_report_payload_carries_depth_percentiles(
        self, pimba_system, zamba_spec
    ):
        engine = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler("fcfs", pimba_system, zamba_spec),
        )
        report = engine.run(bursty_trace())
        payload = report.to_payload(SLO)
        p50 = payload["queue_depth_p50"]
        p99 = payload["queue_depth_p99"]
        assert 0.0 <= p50 <= p99 <= report.max_queue_depth
        assert report.queue_depth_percentile(50) == p50

    def test_depthless_report_omits_the_keys(self):
        from repro.serving.metrics import RequestStats, ServingReport

        report = ServingReport(
            stats=RequestStats(),
            makespan_s=1.0,
            mean_queue_depth=0.0,
            max_queue_depth=0,
            n_iterations=0,
            n_prefills=0,
        )
        payload = report.to_payload()
        assert "queue_depth_p50" not in payload
        assert "queue_depth_p99" not in payload
        assert math.isnan(report.queue_depth_percentile(50))


class TestIdleTailSpan:
    """Satellite: event-record and streaming reports agree on the depth
    integral's ``[start, end]`` span even when the run has a long idle
    stretch (queue empty, clock jumping) before a straggler arrives."""

    def idle_tail_trace(self):
        burst = [
            TimedRequest(Request(i, 128, 16), arrival_s=0.01 * i)
            for i in range(6)
        ]
        straggler = TimedRequest(Request(6, 128, 16), arrival_s=60.0)
        return Trace(requests=(*burst, straggler))

    def test_streaming_report_matches_event_record(
        self, pimba_system, zamba_spec
    ):
        trace = self.idle_tail_trace()
        recorded = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler("fcfs", pimba_system, zamba_spec),
        ).serve(trace).report()
        streamed = ServingEngine(
            pimba_system,
            zamba_spec,
            make_scheduler("fcfs", pimba_system, zamba_spec),
        ).run(trace)
        assert streamed.to_payload(SLO) == recorded.to_payload(SLO)
        assert streamed.mean_queue_depth == recorded.mean_queue_depth
        # The idle stretch dominates the span, so the time-weighted
        # depth percentile must see it as depth zero.
        assert streamed.makespan_s > 60.0
        assert streamed.queue_depth_percentile(50) == 0.0


class TestPerfettoExport:
    def test_golden_trace_is_reproduced(self, pimba_system, zamba_spec):
        """The exporter's byte-level schema is pinned by a committed
        golden file; regenerate with
        ``python tools/make_perfetto_golden.py`` when the format
        changes *on purpose*."""
        _, timeline = recorded_run(
            pimba_system,
            zamba_spec,
            "paged+tight",
            poisson_trace(10.0, 8, fixed_lengths(256, 32), seed=3),
        )
        payload = json.loads(json.dumps(timeline.to_trace_events()))
        golden = json.loads(GOLDEN_PATH.read_text())
        assert payload == golden

    def test_golden_trace_is_schema_valid(self):
        assert validate_trace_events(json.loads(GOLDEN_PATH.read_text())) == []

    def test_prefix_cache_counter_track_only_when_cache_engaged(
        self, pimba_system, zamba_spec
    ):
        """A prefix-caching run with hits grows a ``prefix_cache``
        counter track; cacheless runs keep the historical export shape
        byte for byte (which is why the golden file did not change)."""
        chat = multiturn_chat_trace(
            0.5, 4, turns=3, first_input=256, user_tokens=32,
            output_len=32, think_s=2.0, seed=0,
        )
        record, timeline = recorded_run(
            pimba_system, zamba_spec, "prefix", chat
        )
        assert record.cache_hit_tokens > 0
        payload = timeline.to_trace_events()
        assert validate_trace_events(payload) == []
        cached = [
            e for e in payload["traceEvents"]
            if e.get("ph") == "C" and e.get("name") == "prefix_cache"
        ]
        assert cached
        assert max(e["args"]["hit_tokens"] for e in cached) == (
            record.cache_hit_tokens
        )
        _, cold = recorded_run(pimba_system, zamba_spec, "paged+tight", chat)
        assert not any(
            e.get("name") == "prefix_cache"
            for e in cold.to_trace_events()["traceEvents"]
        )

    def test_validator_rejects_corruption(self):
        golden = json.loads(GOLDEN_PATH.read_text())

        broken = copy.deepcopy(golden)
        broken["traceEvents"][0]["ph"] = "Z"
        assert validate_trace_events(broken)

        broken = copy.deepcopy(golden)
        first_x = next(
            e for e in broken["traceEvents"] if e["ph"] == "X"
        )
        first_x["dur"] = float("nan")
        assert validate_trace_events(broken)

        broken = copy.deepcopy(golden)
        first_c = next(
            e for e in broken["traceEvents"] if e["ph"] == "C"
        )
        first_c["args"] = {"requests": "many"}
        assert validate_trace_events(broken)

        broken = copy.deepcopy(golden)
        del broken["traceEvents"][0]["pid"]
        assert validate_trace_events(broken)

        assert validate_trace_events([]) == ["payload is not a JSON object"]
        assert validate_trace_events({}) == ["payload has no traceEvents list"]

    def test_every_span_reaches_engine_and_member_rows(
        self, pimba_system, zamba_spec
    ):
        _, timeline = recorded_run(pimba_system, zamba_spec)
        (track,) = timeline.tracks
        events = timeline.to_trace_events()["traceEvents"]
        engine_spans = [
            e for e in events if e["ph"] == "X" and e["tid"] == 0
        ]
        member_spans = [
            e
            for e in events
            if e["ph"] == "X" and e["tid"] != 0 and e["name"] != "preempted"
        ]
        assert len(engine_spans) == len(track.spans)
        assert len(member_spans) == sum(len(s[5]) for s in track.spans)

    def test_write_trace_file_round_trips(
        self, pimba_system, zamba_spec, tmp_path
    ):
        _, timeline = recorded_run(pimba_system, zamba_spec)
        out = tmp_path / "trace.json"
        payload = write_trace_file(timeline, str(out))
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(payload)
        )


class TestWindowedTimeline:
    def test_windows_partition_the_run(self, pimba_system, zamba_spec):
        record, timeline = recorded_run(pimba_system, zamba_spec)
        rows = timeline.windowed(6, SLO)
        assert len(rows) == 6
        assert sum(r["n_finished"] for r in rows) == len(record.timings)
        assert sum(r["preemptions"] for r in rows) == record.preemptions
        t0, t1 = timeline.bounds()
        assert rows[0]["t0_s"] == t0
        assert rows[-1]["t1_s"] == t1
        for prev, cur in zip(rows, rows[1:]):
            assert cur["t0_s"] == prev["t1_s"]
        for row in rows:
            assert 0.0 <= row["occupancy"] <= 1.0
            if row["n_finished"] == 0:
                assert row["ttft_p99_s"] is None
            else:
                assert row["ttft_p99_s"] >= 0.0

    def test_rows_survive_a_strict_json_round_trip(
        self, pimba_system, zamba_spec
    ):
        """No NaN/inf may ever reach a windowed row (the figure payloads
        and ``--json`` artifacts are plain JSON)."""
        _, timeline = recorded_run(pimba_system, zamba_spec)
        rows = timeline.windowed(5, SLO)
        assert json.loads(json.dumps(rows, allow_nan=False)) == rows

    def test_single_window_is_the_whole_run(self, pimba_system, zamba_spec):
        record, timeline = recorded_run(pimba_system, zamba_spec)
        (row,) = timeline.windowed(1, SLO)
        assert row["n_finished"] == len(record.timings)
        assert row["preemptions"] == record.preemptions

    def test_zero_windows_rejected(self, pimba_system, zamba_spec):
        _, timeline = recorded_run(pimba_system, zamba_spec)
        with pytest.raises(ValueError):
            timeline.windowed(0)


class TestClusterTimeline:
    def test_fork_keeps_one_track_per_replica(self, pimba_system, zamba_spec):
        trace = poisson_trace(20.0, 40, seed=0)
        cluster = build_cluster(
            pimba_system, zamba_spec, 2, router="round-robin", max_batch=8
        )
        collector = TimelineCollector()
        record = cluster.serve(trace, collector=collector)
        tracks = collector.timeline.tracks
        assert [t.replica for t in tracks] == [0, 1]
        total_finished = sum(len(t.finished) for t in tracks)
        assert total_finished == len(record.merged().timings)
        assert validate_trace_events(
            collector.timeline.to_trace_events()
        ) == []

    def test_cluster_observation_does_not_perturb(
        self, pimba_system, zamba_spec
    ):
        trace = poisson_trace(20.0, 40, seed=0)

        def fleet():
            return build_cluster(
                pimba_system,
                zamba_spec,
                2,
                router="least-loaded",
                max_batch=8,
            )

        bare = fleet().run(trace).to_payload(SLO)
        watched = fleet().run(
            trace, collector=TimelineCollector()
        ).to_payload(SLO)
        assert watched == bare


class TestSplitClusterTimeline:
    """A disaggregated fleet's timeline carries the handoff story."""

    def split_fleet(self, pimba_system, zamba_spec):
        return build_cluster(
            pimba_system, zamba_spec, 2,
            router="disaggregated",
            scheduler="fcfs",
            max_batch=8,
            phases=("prefill", "decode"),
        )

    def split_trace(self):
        return poisson_trace(10.0, 24, fixed_lengths(256, 32), seed=6)

    def test_handoff_spans_land_on_decode_tracks(
        self, pimba_system, zamba_spec
    ):
        collector = TimelineCollector()
        record = self.split_fleet(pimba_system, zamba_spec).serve(
            self.split_trace(), collector=collector
        )
        by_replica = {t.replica: t for t in collector.timeline.tracks}
        handoffs = {
            replica: [s for s in track.spans if s[0] == "handoff"]
            for replica, track in by_replica.items()
        }
        # the prefill side never receives KV; one handoff span covers
        # every continuation admitted together, so the span *members*
        # across the decode track re-add to the merged handoff count
        assert handoffs[0] == []
        members = sum(len(s[5]) for s in handoffs[1])
        assert members == record.merged().handoffs
        assert members == len(record.split_ids) > 0
        # a handoff moves state, not tokens — priced time, zero work
        assert all(s[3] == 0 for s in handoffs[1])

    def test_split_span_tokens_still_conserve(
        self, pimba_system, zamba_spec
    ):
        collector = TimelineCollector()
        record = self.split_fleet(pimba_system, zamba_spec).serve(
            self.split_trace(), collector=collector
        )
        merged = record.merged()
        spans = [
            s for t in collector.timeline.tracks for s in t.spans
        ]
        prefill = sum(
            s[3] for s in spans if s[0] not in ("decode", "handoff")
        )
        decode = sum(s[3] for s in spans if s[0] == "decode")
        assert prefill == sum(merged.prefill_tokens)
        assert decode == sum(merged.decode_tokens)
        assert validate_trace_events(
            collector.timeline.to_trace_events()
        ) == []

    def test_split_observation_does_not_perturb(
        self, pimba_system, zamba_spec
    ):
        trace = self.split_trace()
        bare = self.split_fleet(pimba_system, zamba_spec).run(
            trace
        ).to_payload(SLO)
        watched = self.split_fleet(pimba_system, zamba_spec).run(
            trace, collector=TimelineCollector()
        ).to_payload(SLO)
        assert watched == bare
