"""Prefix-cache corners: COW matching, refcounts, eviction order, determinism.

The bit-exactness of the cache-disabled scheduler lives in
``test_engine_equivalence.py``; this file pins the behaviors the cache
adds on top — the copy-on-write match boundary, reference counting
through a full engine drain, cached blocks losing to live KV *before*
any preemption, and hit counters that survive process-pool fan-out.
"""

import pytest

from repro.experiments import Runner
from repro.models import spec_for
from repro.perf.system import SystemKind, build_system
from repro.serving import (
    MemoryModel,
    PrefixBlockPool,
    PrefixCachingScheduler,
    ServingEngine,
    multiturn_chat_trace,
)
from repro.serving.experiments import prefix_cache_spec

BLOCK = 64


@pytest.fixture(scope="module")
def zamba_spec():
    return spec_for("Zamba2")


@pytest.fixture(scope="module")
def pimba_system():
    return build_system(SystemKind.PIMBA, "small")


@pytest.fixture(scope="module")
def memory(pimba_system, zamba_spec):
    return MemoryModel.for_system(pimba_system, zamba_spec)


def roomy_pool(memory):
    return PrefixBlockPool(memory, memory.weights_bytes * 2, BLOCK)


class TestCopyOnWriteMatching:
    """A block a request will write into is copied, never shared."""

    def test_partial_tail_block_never_published(self, memory):
        pool = roomy_pool(memory)
        pool.publish(session_id=1, history_tokens=100)
        assert pool.cache.n_blocks == 100 // BLOCK == 1

    def test_match_stops_before_the_write_block(self, memory):
        """A 128-token prompt over 64-token blocks reuses only block 0:
        its decode tokens land in block 1, which would diverge from the
        session history mid-block if it were shared."""
        pool = roomy_pool(memory)
        pool.publish(session_id=1, history_tokens=128)
        assert pool.cache.n_blocks == 2
        assert pool.cache.match(1, prefill_tokens=128) == 1
        assert pool.cache.match(1, prefill_tokens=129) == 2

    def test_at_least_one_token_is_always_computed(self, memory):
        """The engine must price a first-token prefill, so a fully
        cached prompt still computes its final token."""
        pool = roomy_pool(memory)
        pool.publish(session_id=1, history_tokens=BLOCK * 8)
        for prefill in (1, BLOCK - 1, BLOCK, BLOCK + 1, BLOCK * 3, 100):
            hit = pool.cache.match(1, prefill) * BLOCK
            assert hit < prefill

    def test_unknown_session_matches_nothing(self, memory):
        pool = roomy_pool(memory)
        pool.publish(session_id=1, history_tokens=256)
        assert pool.cache.match(2, prefill_tokens=256) == 0


class TestRefcounts:
    def test_pinned_blocks_are_never_evicted(self, memory):
        pool = roomy_pool(memory)
        pool.publish(session_id=1, history_tokens=128)
        pool.cache.acquire(request_id=7, session_id=1, n_blocks=2)
        assert pool.cache.pinned_blocks == 2
        assert pool.cache.cached_blocks == 0
        assert not pool.cache.evict_lru()  # nothing unreferenced to take
        pool.cache.release(7)
        assert pool.cache.pinned_blocks == 0
        assert pool.cache.cached_blocks == 2
        assert pool.cache.evict_lru()

    def test_refcounts_conserved_at_engine_drain(
        self, pimba_system, zamba_spec, memory
    ):
        """After a full multi-turn trace drains: no resident requests, no
        pinned blocks, every claimed block returned — only unreferenced
        session history remains, retained for a next turn that never
        comes."""
        trace = multiturn_chat_trace(
            0.5, 4, turns=3, first_input=256, user_tokens=32,
            output_len=32, think_s=2.0, seed=0,
        )
        scheduler = PrefixCachingScheduler(
            memory, pimba_system.capacity_bytes, block_size=BLOCK,
            max_batch=8,
        )
        run = ServingEngine(pimba_system, zamba_spec, scheduler).serve(trace)
        assert run.cache_hit_tokens > 0  # the trace exercised the cache
        pool = scheduler.pool
        assert pool.n_resident == 0
        assert pool.blocks_in_use == 0
        assert pool.allocated_blocks == pool.freed_blocks
        assert pool.cache.pinned_blocks == 0
        assert pool.cache.cached_blocks > 0
        assert pool.cache.cached_blocks == pool.cache.n_blocks


class TestEvictionOrder:
    def test_lru_blocks_yield_when_live_kv_claims_bytes(self, memory):
        """Retained cache never gates an allocation: the pool trims the
        oldest session's blocks to make the claim fit."""
        capacity = (
            memory.weights_bytes
            + memory.reserved_bytes(256)
            + memory.kv_bytes(128)
        )
        pool = PrefixBlockPool(memory, capacity, BLOCK)
        pool.publish(session_id=1, history_tokens=128)
        pool.publish(session_id=2, history_tokens=128)
        assert pool.cache.cached_blocks == 4
        # A private claim for the full free headroom: both of session
        # 1's blocks (the LRU head) must go; session 2's survive.
        pool.allocate(request_id=9, context=256, final_context=256)
        assert pool.holds(9)
        assert pool.cache.evictions == 2
        assert pool.cache.match(1, prefill_tokens=1024) == 0
        assert pool.cache.match(2, prefill_tokens=1024) == 2

    def test_eviction_precedes_preemption_under_a_tight_pool(
        self, pimba_system, zamba_spec, memory
    ):
        """A pool sized to hold the live working set but not the retained
        history evicts cached blocks — and never preempts a running
        request to make room for them."""
        trace = multiturn_chat_trace(
            0.2, 4, turns=3, first_input=256, user_tokens=32,
            output_len=32, think_s=2.0, seed=0,
        )
        scheduler = PrefixCachingScheduler(
            memory,
            memory.weights_bytes + 2.5 * memory.request_bytes(512, 64),
            block_size=BLOCK,
            max_batch=8,
        )
        run = ServingEngine(pimba_system, zamba_spec, scheduler).serve(trace)
        assert run.cache_evictions > 0
        assert run.preemptions == 0
        assert run.cache_hit_tokens > 0
        # Eviction costs reuse, nothing else: the roomy pool serves the
        # same trace with at least as many hits and zero evictions.
        roomy = PrefixCachingScheduler(
            memory, pimba_system.capacity_bytes, block_size=BLOCK,
            max_batch=8,
        )
        baseline = ServingEngine(
            pimba_system, zamba_spec, roomy
        ).serve(trace)
        assert baseline.cache_evictions == 0
        assert baseline.cache_hit_tokens >= run.cache_hit_tokens


class TestDeterministicCounters:
    def test_hit_counters_identical_serial_and_process_pool(self):
        """The prefix_cache sweep returns byte-identical payloads — hit
        counters included — whether trials run in-process or fan out
        over ProcessPoolExecutor workers (the perf gate diffs these
        numbers across CI runs, so any nondeterminism turns it red)."""
        spec = prefix_cache_spec(smoke=True)
        serial = Runner(use_cache=False, max_workers=1).run(spec)
        parallel = Runner(use_cache=False, max_workers=2).run(spec)
        assert serial.values == parallel.values
        by_policy = serial.mapping("scheduler", "qps")
        prefix = by_policy[("prefix", 1.0)]
        paged = by_policy[("paged", 1.0)]
        assert prefix["cache_hit_tokens"] > 0
        assert prefix["prefix_cache_hit_rate"] > 0.5
        # The paged baseline never touches a cache, so its payload keeps
        # the historical shape: no cache keys at all.
        assert "cache_hit_tokens" not in paged
        assert "prefix_cache_hit_rate" not in paged
