"""Routers: policy behavior, determinism, and the imbalance metric."""

import pytest

from repro.serving import (
    ROUTER_NAMES,
    AffinityRouter,
    CacheAwareRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    build_router,
    load_imbalance,
    poisson_trace,
)
from repro.workloads.requests import Request, TimedRequest, Trace


def timed(request_id: int, arrival_s: float, input_len=64, output_len=8):
    return TimedRequest(Request(request_id, input_len, output_len), arrival_s)


def turn(request_id: int, session_id: int, arrival_s: float, input_len=64):
    return TimedRequest(
        Request(request_id, input_len, 8, session_id=session_id), arrival_s
    )


class TestRoundRobin:
    def test_rotates_evenly(self):
        router = RoundRobinRouter(3)
        trace = poisson_trace(10.0, 9, seed=0)
        assignments = router.assign(trace)
        assert assignments == (0, 1, 2, 0, 1, 2, 0, 1, 2)

    def test_single_replica_is_identity(self):
        router = RoundRobinRouter(1)
        assert router.assign(poisson_trace(5.0, 7, seed=1)) == (0,) * 7


class TestLeastOutstanding:
    def test_spreads_simultaneous_burst(self):
        """A burst at t=0 must fan out: each arrival sees the previous
        ones still outstanding and picks the emptiest replica."""
        router = LeastOutstandingRouter(4, service_time=lambda r: 100.0)
        burst = Trace(tuple(timed(i, 0.0) for i in range(8)))
        assert router.assign(burst) == (0, 1, 2, 3, 0, 1, 2, 3)

    def test_drained_backlog_expires(self):
        """Once predictions complete, the first replica is preferred again
        (lowest-index tie-break) instead of blindly rotating."""
        router = LeastOutstandingRouter(2, service_time=lambda r: 1.0)
        assert router.choose(timed(0, 0.0)) == 0
        assert router.choose(timed(1, 0.5)) == 1  # replica 0 still busy
        assert router.choose(timed(2, 10.0)) == 0  # everything drained

    def test_sized_requests_balance_work_not_count(self):
        """With per-request service estimates, a giant request keeps its
        replica 'outstanding' while short ones drain elsewhere."""
        router = LeastOutstandingRouter(
            2, service_time=lambda r: r.output_len * 1.0
        )
        assert router.choose(timed(0, 0.0, output_len=100)) == 0
        # Short requests arriving while the giant one is resident all
        # land on replica 1 once its own short work has drained.
        assert router.choose(timed(1, 1.0, output_len=2)) == 1
        assert router.choose(timed(2, 5.0, output_len=2)) == 1
        assert router.choose(timed(3, 9.0, output_len=2)) == 1

    def test_requires_service_time(self):
        with pytest.raises(ValueError, match="service_time"):
            build_router("least-loaded", 2)


class TestAffinity:
    def test_same_key_same_replica(self):
        router = AffinityRouter(5)
        a = router.choose(timed(7, 0.0))
        b = router.choose(timed(7, 99.0, input_len=512))
        # Sessionless requests fall back to the request id as the key,
        # never the shape or time.
        assert a == b

    def test_default_key_is_the_session(self):
        """Turns of one conversation co-locate even though every turn is
        a distinct request — the whole point of affinity routing (keying
        on request_id instead was the bug this regresses)."""
        router = AffinityRouter(5)
        turns = [router.choose(turn(i, session_id=3, arrival_s=float(i)))
                 for i in range(6)]
        assert len(set(turns)) == 1
        # A session id equal to some request id hashes identically, so
        # the fallback cannot collide sessions apart across processes.
        assert router.choose(turn(99, session_id=7, arrival_s=0.0)) == \
            router.choose(timed(7, 0.0))

    def test_stable_across_instances(self):
        """SHA-based hashing: a fresh router (fresh process) agrees."""
        trace = poisson_trace(10.0, 32, seed=3)
        assert AffinityRouter(4).assign(trace) == AffinityRouter(4).assign(trace)

    def test_custom_key_groups_prefixes(self):
        router = AffinityRouter(8, key=lambda r: r.input_len)
        same = [router.choose(timed(i, 0.0, input_len=777)) for i in range(6)]
        assert len(set(same)) == 1

    def test_spreads_distinct_keys(self):
        router = AffinityRouter(4)
        trace = poisson_trace(10.0, 64, seed=0)
        assert len(set(router.assign(trace))) > 1

    def test_tuple_keys_allowed(self):
        router = AffinityRouter(4, key=lambda r: (r.input_len, r.output_len))
        assert router.choose(timed(0, 0.0)) == router.choose(timed(1, 3.0))

    def test_unstable_key_objects_rejected(self):
        """Hashing an arbitrary object would fold its memory address into
        the digest and break cross-process determinism — refuse it."""
        router = AffinityRouter(4, key=lambda r: object())
        with pytest.raises(TypeError, match="deterministic across processes"):
            router.choose(timed(0, 0.0))


class TestCacheAware:
    def test_without_savings_is_seconds_backlog_fanout(self):
        """No ``prefix_savings`` estimate means no warmth anywhere: the
        router degrades to least-outstanding over predicted seconds."""
        router = CacheAwareRouter(4, service_time=lambda r: 100.0)
        burst = Trace(tuple(timed(i, 0.0) for i in range(8)))
        assert router.assign(burst) == (0, 1, 2, 3, 0, 1, 2, 3)

    def test_warmth_pins_a_session_to_its_replica(self):
        """A large prefix credit keeps every turn home while sessionless
        traffic still spills to the emptier replica."""
        router = CacheAwareRouter(
            2, service_time=lambda r: 1.0,
            prefix_savings=lambda hit_tokens: 1000.0,
        )
        assert router.choose(turn(0, session_id=1, arrival_s=0.0)) == 0
        assert router.choose(turn(1, session_id=1, arrival_s=0.0)) == 0
        # The home replica now predicts 2 s of backlog; a sessionless
        # request has no warmth there and takes the idle one.
        assert router.choose(timed(2, 0.0)) == 1

    def test_session_migrates_when_backlog_outweighs_the_prefix(self):
        """The credit is priced, not absolute: once the home replica's
        backlog exceeds what the cached prefix is worth, the session
        moves — with the shared tier downstream, it moves *warm*."""
        router = CacheAwareRouter(
            2, service_time=lambda r: 1.0,
            prefix_savings=lambda hit_tokens: 1.5,
        )
        assert router.choose(turn(0, session_id=1, arrival_s=0.0)) == 0
        # Backlog 1.0 s vs 1.5 s of prefix: staying is cheaper.
        assert router.choose(turn(1, session_id=1, arrival_s=0.0)) == 0
        # Backlog 2.0 s vs 1.5 s of prefix: migrating is cheaper.
        assert router.choose(turn(2, session_id=1, arrival_s=0.0)) == 1

    def test_reset_forgets_session_history(self):
        router = CacheAwareRouter(
            2, service_time=lambda r: 1.0,
            prefix_savings=lambda hit_tokens: 1000.0,
        )
        router.choose(turn(0, session_id=1, arrival_s=0.0))
        router.reset()
        assert not router._sessions
        assert router.choose(turn(1, session_id=1, arrival_s=0.0)) == 0

    def test_requires_service_time(self):
        with pytest.raises(ValueError, match="service_time"):
            build_router("cache-aware", 2)


class TestBuildRouter:
    def test_names_cover_registry(self):
        for name in ROUTER_NAMES:
            router = build_router(name, 2, service_time=lambda r: 1.0)
            assert router.name == name
            assert router.n_replicas == 2

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown router"):
            build_router("random", 2)

    def test_replica_count_validated(self):
        with pytest.raises(ValueError, match="at least one replica"):
            build_router("round-robin", 0)


class TestLoadImbalance:
    def test_even_is_one(self):
        assert load_imbalance([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_hot_replica_measured(self):
        assert load_imbalance([9.0, 3.0, 0.0]) == pytest.approx(9.0 / 4.0)

    def test_idle_fleet_reports_one(self):
        assert load_imbalance([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance([])
