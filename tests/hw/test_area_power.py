"""Tests for the gate-level area/power model against Table 3 and Fig. 5/6."""

import pytest

from repro.core.config import (
    hbm_pim_config,
    per_bank_pipelined_config,
    pimba_config,
)
from repro.hw.area import (
    area_overhead_percent,
    format_overhead_percent,
    pipelined_unit_gates,
    time_multiplexed_unit_gates,
    unit_area,
)
from repro.hw.gates import (
    GateLibrary,
    adder_gates,
    adder_tree_gates,
    multiplier_gates,
    shifter_gates,
)
from repro.hw.power import unit_power
from repro.hw.units import base_format, lane_costs


class TestPrimitives:
    def test_adder_scales_linearly(self):
        assert adder_gates(16) == 2 * adder_gates(8)

    def test_multiplier_scales_with_product(self):
        assert multiplier_gates(8, 8) == 2 * multiplier_gates(4, 8)

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            adder_gates(0)
        with pytest.raises(ValueError):
            multiplier_gates(0, 4)

    def test_zero_shift_is_free(self):
        assert shifter_gates(8, 0) == 0.0

    def test_adder_tree_counts(self):
        # 4 lanes: 2 + 1 adders with growing width.
        assert adder_tree_gates(4, 8) == 2 * adder_gates(8) + adder_gates(9)

    def test_base_format_strips_sr(self):
        assert base_format("mx8SR") == "mx8"
        assert base_format("fp16") == "fp16"


class TestTable3:
    """Absolute area/power of the Pimba SPU vs. the HBM-PIM unit."""

    def test_pimba_unit_area_matches_table3(self):
        ua = unit_area(pimba_config())
        assert ua.compute_mm2 == pytest.approx(0.053, rel=0.10)
        assert ua.total_mm2 == pytest.approx(0.092, rel=0.10)

    def test_hbm_pim_unit_area_matches_table3(self):
        ua = unit_area(hbm_pim_config())
        assert ua.compute_mm2 == pytest.approx(0.042, rel=0.10)
        assert ua.total_mm2 == pytest.approx(0.081, rel=0.10)

    def test_overheads_below_25_percent_budget(self):
        assert area_overhead_percent(pimba_config()) == pytest.approx(13.4, abs=1.5)
        assert area_overhead_percent(hbm_pim_config()) == pytest.approx(11.8, abs=1.5)

    def test_pimba_slightly_larger_than_hbm_pim(self):
        delta = (
            area_overhead_percent(pimba_config())
            - area_overhead_percent(hbm_pim_config())
        )
        assert 0.5 < delta < 3.0  # paper: ~1.5%

    def test_power_matches_table3(self):
        assert unit_power(pimba_config()).milliwatts == pytest.approx(8.29, rel=0.15)
        assert unit_power(hbm_pim_config()).milliwatts == pytest.approx(6.03, rel=0.15)


class TestFig5Designs:
    def test_per_bank_pipelined_exceeds_budget(self):
        overhead = area_overhead_percent(per_bank_pipelined_config())
        assert overhead > 25.0  # paper: 32.4%, above the practical limit

    def test_time_multiplexed_per_bank_modest(self):
        overhead = area_overhead_percent(hbm_pim_config(time_mux_sharing=1))
        assert 15.0 < overhead < 25.0  # paper: 17.8%

    def test_pimba_cheaper_than_per_bank_pipelined(self):
        assert area_overhead_percent(pimba_config()) < 0.5 * area_overhead_percent(
            per_bank_pipelined_config()
        )


class TestFig6Formats:
    def test_fp16_most_expensive(self):
        fp16 = format_overhead_percent("fp16")
        for fmt in ("int8", "e4m3", "e5m2", "mx8"):
            assert fp16 > format_overhead_percent(fmt)

    def test_int8_costs_more_than_mx8(self):
        # Section 4.2: dequant/requant logic makes scaled-int8 addition
        # expensive; MX adds with plain shifts.
        assert format_overhead_percent("int8") > 1.3 * format_overhead_percent("mx8")

    def test_stochastic_rounding_is_cheap(self):
        for fmt in ("mx8", "int8", "e5m2"):
            delta = format_overhead_percent(fmt + "SR") - format_overhead_percent(fmt)
            assert 0.0 < delta < 1.0  # paper: LFSR + adder is marginal

    def test_mx8_close_to_fp8(self):
        ratio = format_overhead_percent("mx8") / format_overhead_percent("e5m2")
        assert 0.8 < ratio < 1.25

    def test_unknown_format_raises(self):
        with pytest.raises(KeyError):
            lane_costs("fp4")


class TestConsistency:
    def test_time_mux_unit_smaller_than_pipelined(self):
        assert time_multiplexed_unit_gates("fp16") < pipelined_unit_gates("fp16")

    def test_library_area_monotone_in_gates(self):
        lib = GateLibrary()
        assert lib.area_mm2(2000) == pytest.approx(2 * lib.area_mm2(1000))

    def test_memory_process_penalty_applied(self):
        dense = GateLibrary(memory_process_penalty=1.0)
        dram = GateLibrary(memory_process_penalty=10.0)
        assert dram.um2_per_gate == pytest.approx(10 * dense.um2_per_gate)
