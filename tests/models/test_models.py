"""Tests for the six functional models."""

import numpy as np
import pytest

from repro.models import Family, build_tiny, spec_for, tiny_spec
from repro.models.registry import MODEL_NAMES, build_model
from repro.quant.registry import get_format

ALL_FAMILIES = list(Family)


@pytest.fixture(scope="module")
def tokens():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(2, 12))


class TestAllFamilies:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_step_produces_finite_logits(self, family, tokens):
        model = build_tiny(family)
        cache = model.init_cache(batch=2)
        logits = model.step(tokens[:, 0], cache)
        assert logits.shape == (2, model.spec.vocab_size)
        assert np.all(np.isfinite(logits))

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_forward_shape(self, family, tokens):
        model = build_tiny(family)
        logits = model.forward(tokens)
        assert logits.shape == (2, 12, model.spec.vocab_size)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_deterministic_given_seed(self, family, tokens):
        a = build_tiny(family, seed=5).forward(tokens)
        b = build_tiny(family, seed=5).forward(tokens)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_different_seeds_differ(self, family, tokens):
        a = build_tiny(family, seed=1).forward(tokens)
        b = build_tiny(family, seed=2).forward(tokens)
        assert not np.allclose(a, b)

    @pytest.mark.parametrize(
        "family", [f for f in ALL_FAMILIES if f is not Family.TRANSFORMER]
    )
    def test_state_depends_on_history(self, family):
        # Same final token, different prefix -> different logits (the state
        # carries context).
        model = build_tiny(family)
        rng = np.random.default_rng(1)
        prefix_a = rng.integers(0, 256, size=(1, 8))
        prefix_b = rng.integers(0, 256, size=(1, 8))
        last = np.array([[7]])
        la = model.forward(np.concatenate([prefix_a, last], axis=1))[:, -1]
        lb = model.forward(np.concatenate([prefix_b, last], axis=1))[:, -1]
        assert not np.allclose(la, lb)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_quantized_state_changes_logits_slightly(self, family, tokens):
        exact = build_tiny(family, seed=3)
        quant = build_tiny(
            family, seed=3,
            state_format=get_format("mx8"), kv_format=get_format("mx8"),
        )
        le = exact.forward(tokens)
        lq = quant.forward(tokens)
        assert not np.array_equal(le, lq)
        # mx8 keeps the forward pass close.
        denom = np.maximum(np.abs(le).max(), 1.0)
        assert np.abs(le - lq).max() / denom < 0.3

    def test_wrong_family_rejected(self):
        from repro.models.retnet import RetNet
        with pytest.raises(ValueError):
            RetNet(tiny_spec(Family.GLA))

    def test_step_requires_1d_tokens(self):
        model = build_tiny(Family.RETNET)
        with pytest.raises(ValueError):
            model.step(np.zeros((2, 2), dtype=int), model.init_cache(2))


class TestZamba2Hybrid:
    def test_attention_layer_cadence(self):
        spec = spec_for("Zamba2")
        assert spec.attention_layers == spec.n_layers // 7
        assert spec.state_update_layers == spec.n_layers - spec.attention_layers

    def test_tiny_zamba_has_kv_and_state_caches(self):
        model = build_tiny(Family.ZAMBA2)
        # Force at least one attention layer in the tiny config.
        assert model.spec.attn_every == 6
        cache = model.init_cache(1)
        kinds = {("k" in c) for c in cache}
        assert kinds <= {True, False}


class TestSpecs:
    def test_small_scale_parameter_counts(self):
        # Within a loose band of the nominal sizes.
        for name, nominal in [("RetNet", 2.7e9), ("GLA", 2.7e9),
                              ("HGRN2", 2.7e9), ("Mamba-2", 2.7e9),
                              ("Zamba2", 7e9), ("OPT", 7e9)]:
            params = spec_for(name).param_count
            assert 0.4 * nominal < params < 2.5 * nominal, name

    def test_large_scale_near_70b(self):
        for name in MODEL_NAMES:
            params = spec_for(name, scale="large").param_count
            assert 45e9 < params < 110e9, name

    def test_scaling_preserves_head_count(self):
        small = spec_for("Mamba-2")
        large = spec_for("Mamba-2", scale="large")
        assert large.n_heads == small.n_heads
        assert large.dim_head > small.dim_head

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            spec_for("GPT-5")

    def test_state_values_per_layer(self):
        spec = spec_for("Mamba-2")
        assert spec.state_values_per_layer == 80 * 128 * 64
