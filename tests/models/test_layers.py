"""Unit tests for the shared neural layers."""

import numpy as np
import pytest

from repro.models.layers import (
    CausalConvState,
    attention_step,
    rms_norm,
    sigmoid,
    silu,
    softmax,
    softplus,
    swiglu_ffn,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestActivations:
    def test_sigmoid_stable_at_extremes(self):
        out = sigmoid(np.array([-1e4, 0.0, 1e4]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_softplus_matches_naive_in_safe_range(self, rng):
        x = rng.normal(size=100)
        np.testing.assert_allclose(softplus(x), np.log1p(np.exp(x)))

    def test_softplus_linear_for_large_x(self):
        assert softplus(np.array([500.0]))[0] == pytest.approx(500.0)

    def test_silu_zero_at_zero(self):
        assert silu(np.zeros(3)).tolist() == [0.0, 0.0, 0.0]

    def test_softmax_normalizes_any_axis(self, rng):
        x = rng.normal(size=(4, 5)) * 50
        np.testing.assert_allclose(softmax(x, axis=0).sum(axis=0), 1.0)
        np.testing.assert_allclose(softmax(x, axis=1).sum(axis=1), 1.0)


class TestRmsNorm:
    def test_unit_rms_output(self, rng):
        x = rng.normal(size=(8, 64)) * 7
        out = rms_norm(x, np.ones(64))
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_weight_scales(self, rng):
        x = rng.normal(size=16)
        np.testing.assert_allclose(
            rms_norm(x, 2 * np.ones(16)), 2 * rms_norm(x, np.ones(16))
        )


class TestCausalConv:
    def test_single_tap_is_identity_scale(self):
        state = CausalConvState(batch=2, channels=3, width=1)
        kernel = np.full((1, 3), 2.0)
        out = state.step(np.ones((2, 3)), kernel)
        np.testing.assert_allclose(out, 2.0)

    def test_window_slides(self):
        state = CausalConvState(batch=1, channels=1, width=3)
        kernel = np.array([[1.0], [1.0], [1.0]])  # running sum of last 3
        seq = [1.0, 2.0, 3.0, 4.0]
        outs = [state.step(np.array([[v]]), kernel)[0, 0] for v in seq]
        assert outs == [1.0, 3.0, 6.0, 9.0]

    def test_matches_full_convolution(self, rng):
        width, channels, steps = 4, 5, 10
        state = CausalConvState(1, channels, width)
        kernel = rng.normal(size=(width, channels))
        xs = rng.normal(size=(steps, channels))
        outs = np.stack([state.step(x[None], kernel)[0] for x in xs])
        padded = np.concatenate([np.zeros((width - 1, channels)), xs])
        for t in range(steps):
            expected = np.einsum("wc,wc->c", padded[t:t + width], kernel)
            np.testing.assert_allclose(outs[t], expected)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            CausalConvState(1, 1, 0)

    def test_shape_mismatch(self):
        state = CausalConvState(2, 3, 2)
        with pytest.raises(ValueError):
            state.step(np.ones((2, 4)), np.ones((2, 4)))


class TestAttentionAndFfn:
    def test_attention_weights_sum_to_one(self, rng):
        q = rng.normal(size=(2, 3, 8))
        k = rng.normal(size=(2, 3, 5, 8))
        v = np.ones((2, 3, 5, 8))
        out = attention_step(q, k, v)
        np.testing.assert_allclose(out, 1.0)

    def test_attention_single_position_returns_value(self, rng):
        q = rng.normal(size=(1, 1, 4))
        k = rng.normal(size=(1, 1, 1, 4))
        v = rng.normal(size=(1, 1, 1, 4))
        np.testing.assert_allclose(attention_step(q, k, v)[0, 0], v[0, 0, 0])

    def test_swiglu_zero_gate_is_zero(self, rng):
        x = rng.normal(size=(2, 8))
        w_zero = np.zeros((8, 16))
        w_up = rng.normal(size=(8, 16))
        w_down = rng.normal(size=(16, 8))
        np.testing.assert_allclose(swiglu_ffn(x, w_zero, w_up, w_down), 0.0)
