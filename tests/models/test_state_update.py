"""Tests for the generalized state-update op (Eq. 2)."""

import numpy as np
import pytest

from repro.models.state_update import StateUpdateOp, state_update_step
from repro.quant.registry import get_format


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestStateUpdateStep:
    def test_scalar_decay_broadcasts(self, rng):
        state = rng.normal(size=(2, 4, 8, 6))  # (batch, H, dh, ds)
        d = rng.uniform(0.5, 1.0, size=(2, 4))
        k = rng.normal(size=(2, 4, 8))
        v = rng.normal(size=(2, 4, 6))
        q = rng.normal(size=(2, 4, 8))
        new_state, y = state_update_step(state, d, k, v, q)
        expected = d[..., None, None] * state + k[..., :, None] * v[..., None, :]
        np.testing.assert_allclose(new_state, expected)
        assert y.shape == (2, 4, 6)

    def test_vector_gate_broadcasts_along_state_dim(self, rng):
        state = rng.normal(size=(3, 2, 4, 5))
        d = rng.uniform(size=(3, 2, 4))
        k = rng.normal(size=(3, 2, 4))
        v = rng.normal(size=(3, 2, 5))
        q = rng.normal(size=(3, 2, 4))
        new_state, _ = state_update_step(state, d, k, v, q)
        expected = d[..., :, None] * state + k[..., :, None] * v[..., None, :]
        np.testing.assert_allclose(new_state, expected)

    def test_output_is_transposed_state_gemv(self, rng):
        state = rng.normal(size=(4, 6))
        k = rng.normal(size=4)
        v = rng.normal(size=6)
        q = rng.normal(size=4)
        new_state, y = state_update_step(state, 0.9, k, v, q)
        np.testing.assert_allclose(y, new_state.T @ q)

    def test_bad_decay_rank_rejected(self, rng):
        state = rng.normal(size=(2, 4, 8, 6))
        with pytest.raises(ValueError):
            state_update_step(state, rng.normal(size=(2,)), state[..., 0],
                              state[..., 0, :], state[..., 0])

    def test_zero_decay_erases_history(self, rng):
        state = rng.normal(size=(4, 6))
        k = rng.normal(size=4)
        v = rng.normal(size=6)
        new_state, _ = state_update_step(state, 0.0, k, v, k)
        np.testing.assert_allclose(new_state, np.outer(k, v))


class TestStateUpdateOp:
    def test_exact_without_format(self, rng):
        op = StateUpdateOp()
        state = rng.normal(size=(2, 2, 8, 8))
        args = (rng.uniform(size=(2, 2)), rng.normal(size=(2, 2, 8)),
                rng.normal(size=(2, 2, 8)), rng.normal(size=(2, 2, 8)))
        got, _ = op(state, *args)
        want, _ = state_update_step(state, *args)
        np.testing.assert_array_equal(got, want)

    def test_quantized_state_is_on_lattice(self, rng):
        fmt = get_format("mx8")
        op = StateUpdateOp(fmt)
        state = rng.normal(size=(2, 2, 16, 16))
        args = (rng.uniform(size=(2, 2)), rng.normal(size=(2, 2, 16)),
                rng.normal(size=(2, 2, 16)), rng.normal(size=(2, 2, 16)))
        got, _ = op(state, *args)
        np.testing.assert_array_equal(fmt.quantize(got), got)

    def test_stochastic_format_requires_rng(self):
        with pytest.raises(ValueError):
            StateUpdateOp(get_format("mx8SR"))

    def test_output_computed_from_stored_state(self, rng):
        fmt = get_format("e5m2")
        op = StateUpdateOp(fmt)
        state = np.zeros((1, 1, 16, 16))
        d = np.ones((1, 1))
        k = rng.normal(size=(1, 1, 16))
        v = rng.normal(size=(1, 1, 16))
        q = rng.normal(size=(1, 1, 16))
        new_state, y = op(state, d, k, v, q)
        np.testing.assert_allclose(
            y, np.einsum("bhds,bhd->bhs", new_state, q)
        )
