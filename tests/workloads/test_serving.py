"""Tests for request traces and the serving loop (perf + functional)."""

import numpy as np
import pytest

from repro.models import Family, build_tiny, spec_for
from repro.perf.system import SystemKind, build_system
from repro.workloads.requests import (
    Batch,
    Request,
    TimedRequest,
    Trace,
    sampled_batch,
    uniform_batch,
)
from repro.workloads.serving import ServingSimulator, clamped_stride, generate_tokens


class TestRequests:
    def test_uniform_batch_shape(self):
        batch = uniform_batch(8, 1024, 512)
        assert batch.size == 8
        assert batch.max_input_len == 1024
        assert batch.generated_tokens == 8 * 512

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(0, 0, 10)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch(())

    def test_sampled_batch_reproducible(self):
        a = sampled_batch(16, np.random.default_rng(1))
        b = sampled_batch(16, np.random.default_rng(1))
        assert a == b


class TestTimedRequests:
    def test_trace_from_batch_and_properties(self):
        trace = Trace.from_batch(uniform_batch(4, 128, 32))
        assert trace.n_requests == 4
        assert trace.duration_s == 0.0
        assert trace.total_output_tokens == 4 * 32
        assert trace.requests[0].input_len == 128

    def test_offered_qps(self):
        trace = Trace(tuple(
            TimedRequest(Request(i, 8, 8), float(i)) for i in range(5)
        ))
        assert trace.duration_s == 4.0
        assert trace.offered_qps == 1.0

    def test_payload_roundtrip(self):
        trace = Trace(tuple(
            TimedRequest(Request(i, 8 + i, 4), 0.25 * i) for i in range(3)
        ))
        assert Trace.from_payload(trace.to_payload()) == trace

    def test_validation(self):
        with pytest.raises(ValueError):
            TimedRequest(Request(0, 1, 1), -0.1)
        with pytest.raises(ValueError):
            Trace((
                TimedRequest(Request(0, 1, 1), 1.0),
                TimedRequest(Request(1, 1, 1), 0.5),
            ))

    def test_empty_trace_allowed(self):
        # A replica the router never dispatches to serves the empty
        # trace, so Trace must accept it (the engine returns a zero-span
        # record for it — see the engine equivalence tests).
        empty = Trace(())
        assert empty.n_requests == 0
        assert empty.duration_s == 0.0
        assert empty.offered_qps == 0.0
        assert empty.total_output_tokens == 0
        assert Trace.from_payload(empty.to_payload()) == empty
        with pytest.raises(ValueError):
            Trace.merge([])


class TestTracePartitionMerge:
    def trace(self, n=6):
        return Trace(tuple(
            TimedRequest(Request(i, 16, 4), 0.5 * i) for i in range(n)
        ))

    def test_partition_preserves_order_within_parts(self):
        parts = self.trace().partition([0, 1, 0, 1, 0, 1])
        assert [r.request_id for r in parts[0].requests] == [0, 2, 4]
        assert [r.request_id for r in parts[1].requests] == [1, 3, 5]

    def test_partition_skips_unused_labels(self):
        parts = self.trace(3).partition([2, 2, 2])
        assert set(parts) == {2}
        assert parts[2].n_requests == 3

    def test_partition_label_count_checked(self):
        with pytest.raises(ValueError, match="labels"):
            self.trace(3).partition([0, 1])

    def test_merge_restores_partition(self):
        trace = self.trace()
        parts = trace.partition([0, 1, 1, 0, 2, 0])
        assert Trace.merge(list(parts.values())) == trace

    def test_merge_orders_by_arrival(self):
        early = Trace((TimedRequest(Request(0, 8, 2), 0.0),))
        late = Trace((TimedRequest(Request(1, 8, 2), 5.0),))
        merged = Trace.merge([late, early])
        assert [r.request_id for r in merged.requests] == [0, 1]

    def test_merge_of_nothing_rejected(self):
        with pytest.raises(ValueError, match="zero traces"):
            Trace.merge([])


class TestServingSimulator:
    @pytest.fixture
    def sim(self):
        return ServingSimulator(
            build_system(SystemKind.PIMBA, "small"), spec_for("Zamba2")
        )

    def test_throughput_positive(self, sim):
        result = sim.run(uniform_batch(32, 512, 128))
        assert result.generation_throughput > 0
        assert result.total_seconds > result.decode_seconds

    def test_steps_grow_with_context_for_hybrids(self, sim):
        result = sim.run(uniform_batch(32, 512, 256))
        assert result.step_seconds[-1] > result.step_seconds[0]

    def test_latency_curve_monotone(self, sim):
        curve = sim.latency_curve(uniform_batch(16, 256, 512), (125, 256, 512))
        values = list(curve.values())
        assert values == sorted(values)
        assert set(curve) == {125, 256, 512}

    def test_bad_checkpoint_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.latency_curve(uniform_batch(4, 64, 32), (64,))

    def test_oversized_stride_clamps_to_decode_range(self, sim):
        """Regression: a stride wider than the decode used to price every
        step at the first step's context; it now clamps so the anchor
        grid keeps a start and a midpoint."""
        batch = uniform_batch(8, 512, 64)
        wide = sim.run(batch, step_stride=10**6)
        clamped = sim.run(batch, step_stride=32)  # = clamped_stride value
        assert clamped_stride(10**6, 64) == 32
        assert len(wide.step_seconds) == 64
        assert wide.step_seconds == clamped.step_seconds
        # The midpoint anchor prices the later half at a longer context
        # for attention-bearing models (Zamba2 fixture).
        assert wide.step_seconds[-1] > wide.step_seconds[0]

    def test_stride_still_validated(self, sim):
        with pytest.raises(ValueError):
            sim.run(uniform_batch(2, 16, 8), step_stride=0)
        with pytest.raises(ValueError):
            clamped_stride(0, 8)

    def test_su_llm_steps_constant(self):
        sim = ServingSimulator(
            build_system(SystemKind.GPU, "small"), spec_for("RetNet")
        )
        result = sim.run(uniform_batch(16, 256, 256))
        assert result.step_seconds[0] == pytest.approx(result.step_seconds[-1])


class TestFunctionalGeneration:
    def test_greedy_generation_deterministic(self):
        model = build_tiny(Family.MAMBA2)
        prompts = np.random.default_rng(0).integers(0, 256, size=(2, 4))
        a = generate_tokens(model, prompts, 6)
        b = generate_tokens(model, prompts, 6)
        assert a.shape == (2, 6)
        np.testing.assert_array_equal(a, b)

    def test_sampled_generation_runs(self):
        model = build_tiny(Family.RETNET)
        prompts = np.zeros((1, 3), dtype=int)
        out = generate_tokens(
            model, prompts, 5, greedy=False, rng=np.random.default_rng(2)
        )
        assert out.shape == (1, 5)
        assert np.all((0 <= out) & (out < model.spec.vocab_size))

    def test_prompt_rank_checked(self):
        model = build_tiny(Family.GLA)
        with pytest.raises(ValueError):
            generate_tokens(model, np.zeros(3, dtype=int), 2)
