"""Bench-report diffing: the perf gate's matching, directions, and CLI."""

import json

import pytest

from repro.experiments.benchdiff import (
    METRIC_DIRECTIONS,
    diff_report_files,
    diff_reports,
    load_report,
)
from repro.experiments.cli import main


def report(values_by_system: dict, name: str = "serving") -> dict:
    """A minimal --json report with one varying axis (system)."""
    return {
        "name": name,
        "trial_fn": "serving_slo",
        "axes": {"system": list(values_by_system)},
        "fixed": {"qps": 8.0},
        "wall_seconds": 0.1,
        "n_cached": 0,
        "n_executed": len(values_by_system),
        "results": [
            {
                "params": {"system": system, "qps": 8.0},
                "value": value,
                "cached": False,
                "elapsed": 0.01,
            }
            for system, value in values_by_system.items()
        ],
    }


BASE = {"goodput_rps": 10.0, "ttft_p99_s": 0.5}


class TestDiffReports:
    def test_identical_reports_pass(self):
        diff = diff_reports(report({"GPU": BASE}), report({"GPU": BASE}))
        assert diff.ok
        assert len(diff.deltas) == 2

    def test_goodput_drop_is_a_regression(self):
        new = report({"GPU": {**BASE, "goodput_rps": 9.0}})  # -10%
        diff = diff_reports(report({"GPU": BASE}), new, tolerance_pct=5.0)
        assert not diff.ok
        (bad,) = diff.regressions
        assert bad.metric == "goodput_rps"
        assert bad.change_pct == pytest.approx(-10.0)

    def test_latency_direction_is_inverted(self):
        """TTFT growing is a regression; TTFT shrinking is an improvement."""
        slower = report({"GPU": {**BASE, "ttft_p99_s": 0.6}})  # +20% worse
        faster = report({"GPU": {**BASE, "ttft_p99_s": 0.4}})  # -20% better
        assert not diff_reports(report({"GPU": BASE}), slower).ok
        assert diff_reports(report({"GPU": BASE}), faster).ok

    def test_tolerance_is_respected(self):
        new = report({"GPU": {**BASE, "goodput_rps": 9.7}})  # -3%
        assert diff_reports(report({"GPU": BASE}), new, tolerance_pct=5.0).ok
        assert not diff_reports(
            report({"GPU": BASE}), new, tolerance_pct=1.0
        ).ok

    def test_unmatched_trials_reported_not_failed(self):
        old = report({"GPU": BASE, "Pimba": BASE})
        new = report({"GPU": BASE, "NeuPIMs": BASE})
        diff = diff_reports(old, new)
        assert diff.ok
        assert diff.unmatched_old == ("(system=Pimba)",)
        assert diff.unmatched_new == ("(system=NeuPIMs)",)

    def test_non_dict_values_skipped(self):
        old = report({"GPU": 3.5})
        new = report({"GPU": 9000.0})
        assert diff_reports(old, new).ok  # direction unknown -> not gated

    def test_zero_baseline_regression(self):
        old = report({"GPU": {**BASE, "ttft_p99_s": 0.0}})
        new = report({"GPU": {**BASE, "ttft_p99_s": 0.5}})
        assert not diff_reports(old, new).ok

    def test_metric_table_is_directional(self):
        assert METRIC_DIRECTIONS["goodput_rps"] is True
        assert METRIC_DIRECTIONS["ttft_p99_s"] is False

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            diff_reports(report({"GPU": BASE}), report({"GPU": BASE}), -1.0)
        with pytest.raises(ValueError, match="tolerance"):
            diff_reports(
                report({"GPU": BASE}),
                report({"GPU": BASE}),
                wall_tolerance_pct=-1.0,
            )

    def test_metric_in_one_report_surfaced_not_failed(self):
        old = report({"GPU": {**BASE, "e2e_p99_s": 2.0}})
        new = report({"GPU": {**BASE, "completed_per_s": 4.0}})
        diff = diff_reports(old, new)
        assert diff.ok  # schema drift is surfaced, never a regression
        assert diff.removed_metrics == ("(only trial) e2e_p99_s",)
        assert diff.added_metrics == ("(only trial) completed_per_s",)
        summary = diff.summary()
        assert "metric(s) removed (1): (only trial) e2e_p99_s" in summary
        assert "metric(s) added (1): (only trial) completed_per_s" in summary

    def test_wall_metrics_get_their_own_tolerance(self):
        old = report({"GPU": {**BASE, "wall_s": 1.0}})
        # wall 20% slower, simulated metrics unchanged: within the 30%
        # wall band even though it would blow the 5% simulation band.
        new = report({"GPU": {**BASE, "wall_s": 1.2}})
        assert diff_reports(old, new).ok
        assert not diff_reports(old, new, wall_tolerance_pct=10.0).ok
        # The tight simulation tolerance still applies to everything else.
        slower = report(
            {"GPU": {**BASE, "wall_s": 1.0, "ttft_p99_s": 0.6}}
        )
        assert not diff_reports(old, slower).ok

    def test_wall_direction_is_smaller_is_better(self):
        old = report({"GPU": {**BASE, "wall_s": 2.0}})
        new = report({"GPU": {**BASE, "wall_s": 1.0}})  # 2x faster
        diff = diff_reports(old, new)
        (delta,) = [d for d in diff.deltas if d.metric == "wall_s"]
        assert delta.change_pct > 0  # oriented: positive = better


class TestCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_on_clean_diff(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", report({"GPU": BASE}))
        new = self.write(tmp_path, "new.json", report({"GPU": BASE}))
        assert main(["bench", "diff", old, new]) == 0
        assert "OK: no regression" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", report({"GPU": BASE}))
        new = self.write(
            tmp_path, "new.json",
            report({"GPU": {**BASE, "goodput_rps": 5.0}}),
        )
        assert main(["bench", "diff", old, new, "--tolerance", "10"]) == 1
        assert "WORSE" in capsys.readouterr().out

    def test_exit_two_on_unreadable_report(self, tmp_path, capsys):
        bogus = self.write(tmp_path, "bogus.json", {"not": "a report"})
        ok = self.write(tmp_path, "ok.json", report({"GPU": BASE}))
        assert main(["bench", "diff", bogus, ok]) == 2
        assert "not a repro --json report" in capsys.readouterr().err

    def test_load_report_validates(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"results": []}))
        assert load_report(path) == {"results": []}
        path.write_text(json.dumps({}))
        with pytest.raises(ValueError):
            load_report(path)

    def test_tolerance_wide_enough_passes(self, tmp_path):
        old = self.write(tmp_path, "old.json", report({"GPU": BASE}))
        new = self.write(
            tmp_path, "new.json",
            report({"GPU": {**BASE, "goodput_rps": 9.6}}),
        )
        assert diff_report_files(old, new, tolerance_pct=5.0).ok
