"""Engine tests: grid expansion, cache hit/miss, parallel/serial equality,
figure-path equivalence, and CLI argument parsing."""

import json

import pytest

from repro.experiments import (
    ExperimentSpec,
    ResultCache,
    Runner,
    Trial,
    stable_hash,
    trial,
)
from repro.experiments.catalog import fig12_assemble, fig12_spec, table3_spec
from repro.experiments.cli import build_parser, main, parse_axis_override
from repro.models import spec_for
from repro.perf import SystemKind, build_system


# ---------------------------------------------------------------------------
# spec / grid
# ---------------------------------------------------------------------------


def test_grid_expansion_is_deterministic_row_major():
    spec = ExperimentSpec(
        name="g", trial_fn="f",
        axes={"a": (1, 2), "b": ("x", "y")}, fixed={"c": 3},
    )
    assert len(spec) == 4
    points = [t.params for t in spec.trials()]
    assert points == [
        {"c": 3, "a": 1, "b": "x"},
        {"c": 3, "a": 1, "b": "y"},
        {"c": 3, "a": 2, "b": "x"},
        {"c": 3, "a": 2, "b": "y"},
    ]
    # Two expansions agree, point by point, including cache keys.
    assert [t.key for t in spec.trials()] == [t.key for t in spec.trials()]


def test_trial_key_is_order_insensitive_and_value_sensitive():
    a = Trial("f", {"x": 1, "y": 2})
    b = Trial("f", {"y": 2, "x": 1})
    c = Trial("f", {"x": 1, "y": 3})
    assert a.key == b.key
    assert a.key != c.key
    assert stable_hash({"k": 1}) == stable_hash({"k": 1})


def test_spec_validation():
    with pytest.raises(ValueError, match="empty"):
        ExperimentSpec(name="g", trial_fn="f", axes={"a": ()})
    with pytest.raises(ValueError, match="overlap"):
        ExperimentSpec(name="g", trial_fn="f", axes={"a": (1,)}, fixed={"a": 2})
    with pytest.raises(TypeError):
        ExperimentSpec(name="g", trial_fn="f", axes={"a": (object(),)})
    spec = ExperimentSpec(name="g", trial_fn="f", axes={"a": (1, 2, 3)})
    assert [t.params["a"] for t in spec.with_axes(a=(2,)).trials()] == [2]
    with pytest.raises(KeyError, match="unknown axes"):
        spec.with_axes(nope=(1,))


def test_with_axes_threads_trial_parameters_through():
    """``--set`` also reaches non-axis trial parameters: one value pins
    the parameter in ``fixed``, several open a new axis — while a name
    the trial function does not take still raises."""
    spec = ExperimentSpec(
        name="g",
        trial_fn="serving_slo",
        axes={"system": ("GPU",)},
        fixed={"qps": 4.0},
    )
    pinned = spec.with_axes(scheduler=("paged",), block_size=(32,))
    assert pinned.fixed["scheduler"] == "paged"
    assert pinned.fixed["block_size"] == 32
    assert pinned.axes == spec.axes
    widened = spec.with_axes(block_size=(16, 64))
    assert widened.axes["block_size"] == (16, 64)
    assert "block_size" not in widened.fixed
    refixed = spec.with_axes(qps=(8.0,))  # override an existing fixed value
    assert refixed.fixed["qps"] == 8.0
    with pytest.raises(KeyError, match="takes no such parameter"):
        spec.with_axes(schedular=("paged",))


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


def test_result_cache_roundtrip_and_invalidation(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="fp-a")
    t = Trial("f", {"x": 1})
    assert cache.load(t) is None
    path = cache.store(t, {"v": 1.5}, elapsed=0.25)
    assert path.is_file() and path.parent.name == "f"
    hit = cache.load(t)
    assert hit.value == {"v": 1.5}
    assert hit.elapsed == 0.25
    # A different code fingerprint invalidates the entry...
    assert ResultCache(tmp_path, fingerprint="fp-b").load(t) is None
    # ...and a corrupt file counts as a miss, not an error.
    path.write_text("{not json")
    assert cache.load(t) is None


@trial("test_counting_trial")
def _counting_trial(counter_file: str, x: int) -> int:
    with open(counter_file, "a") as fh:
        fh.write("tick\n")
    return x * 10


def _count(counter_file) -> int:
    try:
        return len(counter_file.read_text().splitlines())
    except FileNotFoundError:
        return 0


def test_runner_cache_miss_then_hit(tmp_path):
    counter = tmp_path / "count"
    spec = ExperimentSpec(
        name="counted", trial_fn="test_counting_trial",
        axes={"x": (1, 2, 3)}, fixed={"counter_file": str(counter)},
    )
    runner = Runner(cache_dir=tmp_path / "cache", max_workers=1)
    first = runner.run(spec)
    assert first.values == [10, 20, 30]
    assert (first.n_cached, first.n_executed) == (0, 3)
    assert _count(counter) == 3

    second = Runner(cache_dir=tmp_path / "cache", max_workers=1).run(spec)
    assert (second.n_cached, second.n_executed) == (3, 0)
    assert second.values == first.values
    assert _count(counter) == 3  # nothing re-ran

    # Widening the grid only runs the new points.
    third = Runner(cache_dir=tmp_path / "cache", max_workers=1).run(
        spec.with_axes(x=(1, 2, 3, 4))
    )
    assert (third.n_cached, third.n_executed) == (3, 1)
    assert third.values == [10, 20, 30, 40]
    assert _count(counter) == 4


def test_runner_no_cache_always_recomputes(tmp_path):
    counter = tmp_path / "count"
    spec = ExperimentSpec(
        name="counted", trial_fn="test_counting_trial",
        axes={"x": (5,)}, fixed={"counter_file": str(counter)},
    )
    runner = Runner(use_cache=False, max_workers=1)
    runner.run(spec)
    runner.run(spec)
    assert _count(counter) == 2


# ---------------------------------------------------------------------------
# parallel execution
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_parallel_and_serial_runs_agree(tmp_path):
    spec = fig12_spec(smoke=True)
    serial = Runner(use_cache=False, max_workers=1).run(spec)
    parallel = Runner(use_cache=False, max_workers=2).run(spec)
    assert [r.trial for r in serial.results] == [r.trial for r in parallel.results]
    assert serial.values == parallel.values


# ---------------------------------------------------------------------------
# figure-path equivalence (acceptance criterion)
# ---------------------------------------------------------------------------


def test_engine_fig12_matches_direct_computation(tmp_path):
    spec = fig12_spec(smoke=True)
    report = Runner(cache_dir=tmp_path, max_workers=1).run(spec)
    data = fig12_assemble(report)

    for (scale, model, batch), by_system in data.items():
        direct = {
            kind.value: build_system(kind, scale)
            .generation_metrics(spec_for(model, scale), batch).tokens_per_second
            for kind in (SystemKind.GPU, SystemKind.GPU_Q,
                         SystemKind.GPU_PIM, SystemKind.PIMBA)
        }
        base = direct["GPU"]
        for system, normalized in by_system.items():
            assert normalized == direct[system] / base

    # The identical numbers come back from cache on a second invocation.
    again = Runner(cache_dir=tmp_path, max_workers=1).run(spec)
    assert again.n_executed == 0
    assert fig12_assemble(again) == data


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_parses_figure_options():
    args = build_parser().parse_args(
        ["figure", "fig12", "--smoke", "--jobs", "3", "--no-cache"]
    )
    assert args.command == "figure"
    assert args.figure_name == "fig12"
    assert args.smoke and args.no_cache
    assert args.jobs == 3 and not args.serial


def test_cli_parses_sweep_overrides():
    args = build_parser().parse_args(
        ["sweep", "fig12", "--serial", "--set", "batch=32,64", "--set", "scale=small"]
    )
    assert args.command == "sweep"
    assert args.sweep_name == "fig12"
    assert args.overrides == ["batch=32,64", "scale=small"]
    assert parse_axis_override("batch=32,64") == ("batch", (32, 64))
    assert parse_axis_override("model=Mamba-2") == ("model", ("Mamba-2",))
    with pytest.raises(ValueError):
        parse_axis_override("no-equals-sign")


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_figure_end_to_end_uses_cache(tmp_path, capsys):
    argv = ["figure", "fig12", "--smoke", "--serial", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "Fig. 12" in first
    assert "(0 cached, 8 executed)" in first

    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "(8 cached, 0 executed)" in second
    # Identical table either way: cache changes cost, never numbers.
    def table(text):
        return text.split("===")[2].split("\n\nfig12:")[0]

    assert table(first) == table(second)
    assert "Pimba" in table(first)

    entries = list(tmp_path.rglob("*.json"))
    assert len(entries) == 8
    payload = json.loads(entries[0].read_text())
    assert payload["trial_fn"] == "serving_throughput"
    assert "tokens_per_second" in payload["value"]


def test_cli_sweep_end_to_end(tmp_path, capsys):
    argv = [
        "sweep", "table3", "--serial", "--cache-dir", str(tmp_path), "--verbose",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "unit_area_power" in out
    assert "Pimba" in out and "HBM-PIM" in out
    assert "(0 cached, 2 executed)" in out


def test_cli_sweep_rejects_unknown_axis(tmp_path, capsys):
    argv = [
        "sweep", "table3", "--serial", "--cache-dir", str(tmp_path),
        "--set", "nope=1",
    ]
    assert main(argv) == 2
    assert "unknown axes" in capsys.readouterr().err


def test_table3_spec_is_tiny():
    assert len(table3_spec()) == 2
