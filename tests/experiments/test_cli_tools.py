"""CLI tooling satellites: ``repro cache`` and ``--json`` reports."""

import json

import pytest

from repro.experiments import ResultCache, Trial
from repro.experiments.cli import build_parser, main


@pytest.fixture
def warm_cache(tmp_path):
    """A cache with entries for two trial functions."""
    cache = ResultCache(tmp_path, fingerprint="fp")
    cache.store(Trial("fn_a", {"x": 1}), 1.0, elapsed=0.1)
    cache.store(Trial("fn_a", {"x": 2}), 2.0, elapsed=0.1)
    cache.store(Trial("fn_b", {"y": 1}), 3.0, elapsed=0.1)
    return cache


class TestCacheMethods:
    def test_stats(self, warm_cache, tmp_path):
        stats = warm_cache.stats()
        assert stats.root == tmp_path
        assert stats.n_entries == 3
        assert stats.by_trial_fn == {"fn_a": 2, "fn_b": 1}
        assert stats.total_bytes > 0

    def test_clear_removes_entries_and_empty_dirs(self, warm_cache, tmp_path):
        foreign = tmp_path / "fn_a" / "README.txt"
        foreign.write_text("not a cache entry")
        bystander = tmp_path / "logs"  # pre-existing empty dir, not ours
        bystander.mkdir()
        assert warm_cache.clear() == 3
        assert warm_cache.stats().n_entries == 0
        # Unrecognized files survive, as do their directory and empty
        # directories clear() did not itself drain.
        assert foreign.exists()
        assert bystander.is_dir()
        assert not (tmp_path / "fn_b").exists()

    def test_foreign_json_is_neither_counted_nor_deleted(self, tmp_path):
        """A mistyped --cache-dir must never delete user data: files that
        lack the cache's own layout markers are not entries."""
        cache = ResultCache(tmp_path, fingerprint="fp")
        cache.store(Trial("fn_a", {"x": 1}), 1.0, elapsed=0.1)
        config = tmp_path / "settings" / "user.json"
        config.parent.mkdir()
        config.write_text('{"theme": "dark"}')
        assert cache.stats().n_entries == 1
        assert cache.clear() == 1
        assert config.read_text() == '{"theme": "dark"}'

    def test_stats_on_missing_root(self, tmp_path):
        cache = ResultCache(tmp_path / "nope", fingerprint="fp")
        assert cache.stats().n_entries == 0
        assert cache.clear() == 0


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "unused"))
        argv = ["figure", "table3", "--serial", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "unit_area_power" in out and "entries:    2" in out

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_cache_dir_env_fallback(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "info"]) == 0
        assert str(tmp_path) in capsys.readouterr().out

    def test_parser(self):
        args = build_parser().parse_args(["cache", "info"])
        assert args.command == "cache" and args.action == "info"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "nuke"])


class TestJsonReport:
    def test_sweep_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "out" / "table3.json"
        out_path.parent.mkdir()
        argv = [
            "sweep", "table3", "--serial", "--cache-dir", str(tmp_path),
            "--json", str(out_path),
        ]
        assert main(argv) == 0
        assert "wrote 2 trial results" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["name"] == "table3"
        assert payload["trial_fn"] == "unit_area_power"
        assert payload["n_cached"] + payload["n_executed"] == 2
        designs = {r["params"]["design"] for r in payload["results"]}
        assert designs == {"Pimba", "HBM-PIM"}
        for r in payload["results"]:
            assert "total_mm2" in r["value"]

    def test_figure_json_matches_rerun_from_cache(self, tmp_path):
        argv = [
            "figure", "fig12", "--smoke", "--serial",
            "--cache-dir", str(tmp_path),
        ]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(argv + ["--json", str(first)]) == 0
        assert main(argv + ["--json", str(second)]) == 0
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        # Cache changes provenance, never values.
        assert a["n_executed"] == 8
        assert b["n_cached"] == 8
        assert [r["value"] for r in a["results"]] == [
            r["value"] for r in b["results"]
        ]

    def test_json_flag_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "fig12", "--json", "x.json"]
        )
        assert args.json_path == "x.json"
        args = build_parser().parse_args(["figure", "fig12"])
        assert args.json_path is None
