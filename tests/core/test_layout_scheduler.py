"""Tests for data layout and the custom command scheduler (Sections 5.1/5.5)."""

import pytest

from repro.core.config import hbm_pim_config, per_bank_pipelined_config, pimba_config
from repro.core.layout import (
    BankAssignment,
    kv_layout_for,
    state_layout_for,
)
from repro.core.scheduler import (
    comps_per_subchunk,
    schedule_attention_sweep,
    schedule_state_update_sweep,
)


class TestStateLayout:
    def test_mamba2_head_mx8(self):
        # dim_head=64, dim_state=64, MX8: 32 values/column, 32 columns/row.
        layout = state_layout_for(pimba_config(), 64, 64)
        assert layout.subchunks_per_state_column == 2
        assert layout.state_columns_per_chunk == 16
        assert layout.chunks_per_head == 4  # 4096 B state / 1024 B rows

    def test_fp16_doubles_rows(self):
        mx8 = state_layout_for(pimba_config(), 64, 64)
        fp16 = state_layout_for(hbm_pim_config(), 64, 64)
        assert fp16.chunks_per_head == 2 * mx8.chunks_per_head

    def test_operand_counts(self):
        layout = state_layout_for(pimba_config(), 64, 64)
        assert layout.shared_operand_values == 3 * 64
        assert layout.per_chunk_operand_values == 16
        assert layout.result_values == 64

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            state_layout_for(pimba_config(), 0, 64)


class TestKvLayout:
    def test_rows_scale_with_seq_len(self):
        short = kv_layout_for(pimba_config(), 64, 256)
        long = kv_layout_for(pimba_config(), 64, 2048)
        assert long.rows_per_cache == 8 * short.rows_per_cache

    def test_empty_cache(self):
        layout = kv_layout_for(pimba_config(), 64, 0)
        assert layout.subchunks_per_pass == 0


class TestBankAssignment:
    def test_even_distribution(self):
        a = BankAssignment(total_heads=1280, pseudo_channels=80, banks_per_channel=16)
        assert a.heads_per_bank == 1

    def test_ceiling_behaviour(self):
        a = BankAssignment(total_heads=1281, pseudo_channels=80, banks_per_channel=16)
        assert a.heads_per_bank == 2


class TestCompsPerSubchunk:
    def test_pimba_reads_and_writes_like_per_bank(self):
        # Access interleaving halves the units, not the per-bank column
        # slots: each bank still reads and writes every sub-chunk.
        assert comps_per_subchunk(pimba_config(), needs_write=True) == 2

    def test_per_bank_serializes(self):
        assert comps_per_subchunk(per_bank_pipelined_config(), needs_write=True) == 2

    def test_time_multiplexed_passes_and_sharing(self):
        assert comps_per_subchunk(hbm_pim_config(), needs_write=True) == 12

    def test_read_only_spu_limited_for_pimba(self):
        # A shared SPU consumes one column per cycle for two banks, so
        # read-only sweeps still cost 2 slots; a per-bank unit runs at 1.
        assert comps_per_subchunk(pimba_config(), needs_write=False) == 2
        assert comps_per_subchunk(per_bank_pipelined_config(), needs_write=False) == 1


class TestStateUpdateSweep:
    def test_scales_linearly_with_heads(self):
        cfg = pimba_config()
        layout = state_layout_for(cfg, 64, 64)
        one = schedule_state_update_sweep(cfg, layout, 1)
        four = schedule_state_update_sweep(cfg, layout, 4)
        assert four.bus_cycles == 4 * one.bus_cycles

    def test_pimba_faster_than_hbm_pim(self):
        """The state-update core of Fig. 12/13: MX8 + interleaving wins."""
        dims = (64, 64)
        pimba_cfg = pimba_config()
        base_cfg = hbm_pim_config()
        t_pimba = schedule_state_update_sweep(
            pimba_cfg, state_layout_for(pimba_cfg, *dims), 8
        )
        t_base = schedule_state_update_sweep(
            base_cfg, state_layout_for(base_cfg, *dims), 8
        )
        ratio = t_base.bus_cycles / t_pimba.bus_cycles
        # passes x sharing x format, plus exposed-I/O overheads.
        assert 8.0 < ratio < 18.0

    def test_pimba_matches_per_bank_pipelined_time(self):
        """Same schedule length with half the units (Section 5.2)."""
        pimba_cfg = pimba_config(state_format="fp16")
        pb_cfg = per_bank_pipelined_config()
        layout_a = state_layout_for(pimba_cfg, 64, 64)
        layout_b = state_layout_for(pb_cfg, 64, 64)
        a = schedule_state_update_sweep(pimba_cfg, layout_a, 4)
        b = schedule_state_update_sweep(pb_cfg, layout_b, 4)
        # Per-bank pipelined issues 2 COMPs/sub-chunk; Pimba pairs them.
        # Pimba's COMP count covers two banks per unit, so the channel
        # totals match.
        assert a.comp_cycles == b.comp_cycles / 2 or a.comp_cycles == b.comp_cycles

    def test_efficiency_between_zero_and_one(self):
        cfg = pimba_config()
        sweep = schedule_state_update_sweep(cfg, state_layout_for(cfg, 64, 64), 2)
        assert 0.0 < sweep.efficiency <= 1.0

    def test_negative_heads_rejected(self):
        cfg = pimba_config()
        with pytest.raises(ValueError):
            schedule_state_update_sweep(cfg, state_layout_for(cfg, 64, 64), -1)


class TestAttentionSweep:
    def test_score_and_attend_phases(self):
        cfg = pimba_config()
        layout = kv_layout_for(cfg, 64, 1024)
        score = schedule_attention_sweep(cfg, layout, 2, "score")
        attend = schedule_attention_sweep(cfg, layout, 2, "attend")
        assert score.bus_cycles > 0 and attend.bus_cycles > 0

    def test_attention_gain_over_hbm_pim_is_smaller_than_state_update(self):
        """Fig. 13: attention benefits only from MX8, not interleaving."""
        dims_kv = (64, 2048)
        pimba_cfg, base_cfg = pimba_config(), hbm_pim_config()
        t_p = schedule_attention_sweep(
            pimba_cfg, kv_layout_for(pimba_cfg, *dims_kv), 4, "score"
        )
        t_b = schedule_attention_sweep(
            base_cfg, kv_layout_for(base_cfg, *dims_kv), 4, "score"
        )
        att_ratio = t_b.bus_cycles / t_p.bus_cycles
        layout_p = pimba_config()
        su_p = schedule_state_update_sweep(
            layout_p, state_layout_for(layout_p, 64, 64), 4
        )
        su_b = schedule_state_update_sweep(
            base_cfg, state_layout_for(base_cfg, 64, 64), 4
        )
        su_ratio = su_b.bus_cycles / su_p.bus_cycles
        assert 1.2 < att_ratio < su_ratio

    def test_invalid_phase_rejected(self):
        cfg = pimba_config()
        with pytest.raises(ValueError):
            schedule_attention_sweep(cfg, kv_layout_for(cfg, 64, 128), 1, "softmax")
