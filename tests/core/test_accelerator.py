"""Tests for the top-level PimbaAccelerator device object."""

import numpy as np
import pytest

from repro.core.accelerator import PimbaAccelerator
from repro.core.config import hbm_pim_config, pimba_config
from repro.core.spe import StateUpdateEngine, reference_state_update
from repro.quant.mx import MANTISSA_BITS


@pytest.fixture
def device():
    return PimbaAccelerator(pimba_config(state_format="mx8"))


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestFunctional:
    def test_state_update_matches_reference_shape(self, device, rng):
        batch, heads, dh, ds = 2, 3, 32, 16
        state = rng.normal(size=(batch, heads, dh, ds))
        d = rng.uniform(0.9, 1.0, size=(batch, heads, dh))
        k = rng.normal(size=(batch, heads, dh))
        v = rng.normal(size=(batch, heads, ds))
        q = rng.normal(size=(batch, heads, dh))
        new_state, y = device.state_update(state, d, k, v, q)
        assert new_state.shape == state.shape
        assert y.shape == (batch, heads, ds)

    def test_state_update_close_to_float_reference(self, device, rng):
        dh, ds = 64, 32
        state = rng.normal(size=(dh, ds))
        d = rng.uniform(0.9, 1.0, size=dh)
        k = rng.normal(size=dh)
        v = rng.normal(size=ds)
        q = rng.normal(size=dh)
        new_state, y = device.state_update(state, d, k, v, q)
        ref_state, ref_y = reference_state_update(state, d, k, v, q)
        rel = np.max(np.abs(new_state - ref_state)) / np.max(np.abs(ref_state))
        assert rel < 2.0 ** (-MANTISSA_BITS + 2)

    def test_storage_emulation_consistent_with_bit_exact_spe(self, rng):
        """The vectorized storage-quantization path tracks the block-exact
        SPE within the datapath's truncation error budget."""
        device = PimbaAccelerator(pimba_config(state_format="mx8"))
        engine = StateUpdateEngine()
        dh, ds = 32, 8
        state = device.store_state(rng.normal(size=(dh, ds)))
        d = rng.uniform(0.9, 1.0, size=dh)
        k = rng.normal(size=dh)
        v = rng.normal(size=ds)
        q = rng.normal(size=dh)
        vec_state, _ = device.state_update(state, d, k, v, q)
        spe_state, _ = engine.update_head(state, d, k, v, q)
        scale = np.max(np.abs(vec_state))
        assert np.max(np.abs(vec_state - spe_state)) <= 8 * scale * 2.0**-MANTISSA_BITS

    def test_attention_is_normalized(self, device, rng):
        q = rng.normal(size=64)
        k_cache = rng.normal(size=(128, 64))
        v_cache = np.ones((128, 64))
        out = device.attention(q, k_cache, v_cache)
        # With constant values, the weighted average is exactly one
        # (up to value-cache quantization).
        np.testing.assert_allclose(out, np.ones(64), atol=0.05)


class TestTiming:
    def test_more_heads_take_longer(self, device):
        t1 = device.state_update_timing(1280, 64, 64)
        t2 = device.state_update_timing(4 * 1280, 64, 64)
        assert t2.seconds == pytest.approx(4 * t1.seconds, rel=0.01)

    def test_sub_bank_count_rounds_up(self, device):
        # 1 head still occupies one bank's sweep; all-bank lockstep.
        t = device.state_update_timing(1, 64, 64)
        assert t.heads_per_bank == 1
        assert t.seconds > 0

    def test_pimba_beats_hbm_pim_state_update(self):
        pimba = PimbaAccelerator(pimba_config())
        base = PimbaAccelerator(hbm_pim_config())
        heads = 128 * 80  # batch 128, 80 heads
        t_p = pimba.state_update_timing(heads, 64, 64).seconds
        t_b = base.state_update_timing(heads, 64, 64).seconds
        assert 8.0 < t_b / t_p < 18.0

    def test_attention_timing_scales_with_seq(self, device):
        short = device.attention_timing(1280, 64, 512).seconds
        long = device.attention_timing(1280, 64, 4096).seconds
        assert 6.0 < long / short < 10.0


class TestCapacity:
    def test_state_bytes_mx8_half_of_fp16(self):
        mx8 = PimbaAccelerator(pimba_config(state_format="mx8"))
        fp16 = PimbaAccelerator(hbm_pim_config())
        assert mx8.state_bytes(100, 64, 64) * 2 == fp16.state_bytes(100, 64, 64)

    def test_kv_bytes_counts_both_caches(self, device):
        assert device.kv_bytes(1, 64, 100) == 2 * 64 * 100  # 1 byte/value
