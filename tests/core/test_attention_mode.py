"""Tests for Pimba's attention mode: functional score/attend + timing."""

import numpy as np
import pytest

from repro.core.accelerator import PimbaAccelerator
from repro.core.config import per_bank_pipelined_config, pimba_config
from repro.core.spe import StateUpdateEngine


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestFunctionalAttention:
    def test_score_then_softmax_then_attend_matches_direct(self, rng):
        """Composing the two PIM phases with a host softmax equals the
        device's one-shot attention."""
        device = PimbaAccelerator(pimba_config(state_format="mx8"))
        dh, seq = 64, 32
        q = rng.normal(size=dh)
        k_cache = device.format.quantize(rng.normal(size=(seq, dh)))
        v_cache = device.format.quantize(rng.normal(size=(seq, dh)))

        # Phase 1 (PIM): scores; host: softmax; phase 2 (PIM): attend.
        engine = StateUpdateEngine()
        scores = np.array([
            engine.score_subchunk(q, k_cache[t]) for t in range(seq)
        ]) / np.sqrt(dh)
        weights = np.exp(scores - scores.max())
        weights /= weights.sum()
        out = np.zeros(dh)
        for t in range(seq):
            out = engine.attend_subchunk(out, weights[t], v_cache[t])

        direct = device.attention(q, k_cache, v_cache)
        # The SPE path re-quantizes per accumulation step; allow its
        # truncation budget.
        assert np.max(np.abs(out - direct)) < 0.15 * np.max(np.abs(direct)) + 0.05

    def test_attention_batched_shapes(self, rng):
        device = PimbaAccelerator(pimba_config())
        q = rng.normal(size=(2, 4, 16))
        k = rng.normal(size=(2, 4, 10, 16))
        v = rng.normal(size=(2, 4, 10, 16))
        out = device.attention(q, k, v)
        assert out.shape == (2, 4, 16)


class TestAttentionTiming:
    def test_asymmetric_k_v_widths(self):
        """GLA-style caches: keys narrower than values."""
        device = PimbaAccelerator(pimba_config())
        symmetric = device.attention_timing(512, 64, 1024, dim_value=64)
        wide_v = device.attention_timing(512, 64, 1024, dim_value=256)
        assert wide_v.seconds > symmetric.seconds

    def test_zero_heads_is_free(self):
        device = PimbaAccelerator(pimba_config())
        assert device.attention_timing(0, 64, 1024).seconds == 0.0

    def test_neupims_attention_matches_pimba_per_value(self):
        """Fig. 15's surprise: per-bank fp16 GEMV (NeuPIMs) and shared-SPU
        MX8 (Pimba) reach similar attention throughput — half the units,
        half the bytes."""
        pimba = PimbaAccelerator(pimba_config())
        neupims = PimbaAccelerator(per_bank_pipelined_config())
        t_p = pimba.attention_timing(2048, 64, 2048).seconds
        t_n = neupims.attention_timing(2048, 64, 2048).seconds
        assert 0.5 < t_p / t_n < 1.5
