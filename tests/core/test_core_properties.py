"""Property-based tests for the accelerator core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    PimbaConfig,
    PimDesign,
    hbm_pim_config,
    per_bank_pipelined_config,
    pimba_config,
)
from repro.core.layout import StateLayout, state_layout_for
from repro.core.scheduler import schedule_state_update_rows
from repro.core.spe import StateUpdateEngine, reference_state_update
from repro.core.spu import simulate_design, simulate_shared_spu
from repro.quant.mx import MANTISSA_BITS

dims = st.sampled_from([16, 32, 48, 64, 96, 128, 256])
configs = st.sampled_from([
    pimba_config(), hbm_pim_config(), per_bank_pipelined_config(),
    pimba_config(state_format="fp16"),
])


@given(dims, dims, configs)
@settings(max_examples=60, deadline=None)
def test_layout_covers_whole_state(dim_head, dim_state, config):
    """Chunks x columns always provide room for every state element."""
    layout = state_layout_for(config, dim_head, dim_state)
    capacity = (
        layout.chunks_per_head
        * layout.state_columns_per_chunk
        * layout.subchunks_per_state_column
        * layout.values_per_column
    )
    assert capacity >= dim_head * dim_state
    assert layout.used_subchunks_per_chunk <= layout.columns_per_row


@given(dims, dims, configs, st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_sweep_time_monotone_in_rows(dim_head, dim_state, config, rows):
    """More rows never take less time, and zero rows cost zero."""
    layout = state_layout_for(config, dim_head, dim_state)
    a = schedule_state_update_rows(config, layout, rows)
    b = schedule_state_update_rows(config, layout, rows + 1)
    z = schedule_state_update_rows(config, layout, 0)
    assert b.bus_cycles >= a.bus_cycles > 0
    assert z.bus_cycles == 0
    assert 0.0 < a.efficiency <= 1.0


@given(st.integers(1, 300))
@settings(max_examples=50, deadline=None)
def test_access_interleaving_hazard_free_for_any_length(n):
    """The Fig. 8 schedule never reads and writes one row buffer in the
    same cycle, for any workload size (BankPort raises otherwise)."""
    run = simulate_shared_spu(n)
    assert run.subchunks == 2 * n
    assert run.reads == run.writes == 2 * n


@given(st.integers(1, 200), st.sampled_from(list(PimDesign)))
@settings(max_examples=50, deadline=None)
def test_every_design_processes_all_subchunks(n, design):
    config = PimbaConfig(
        design=design,
        state_format="fp16" if design is not PimDesign.SHARED_PIPELINED else "mx8SR",
    )
    run = simulate_design(config, n)
    assert run.subchunks == n * (2 if config.banks_per_unit == 2 else 1)
    assert run.cycles >= run.subchunks / (
        2 if design is PimDesign.SHARED_PIPELINED else 1
    )


@given(
    st.integers(0, 2**32 - 1),
    st.floats(0.5, 1.0),
    st.floats(-2.0, 2.0),
)
@settings(max_examples=25, deadline=None)
def test_spe_tracks_reference_for_random_operands(seed, decay, v_scalar):
    """The bit-exact SPE stays within its truncation budget of Eq. 2."""
    rng = np.random.default_rng(seed)
    n = 32
    state = rng.normal(size=n)
    d = np.full(n, decay)
    k = rng.normal(size=n)
    q = rng.normal(size=n)
    engine = StateUpdateEngine()
    new_state, _ = engine.process_subchunk(state, d, k, v_scalar, q)
    ref = d * state + k * v_scalar
    scale = np.max(np.abs(ref)) + 1e-12
    # Budget: operand encode (3 ulp) + two multiplies + one add with
    # truncating alignment shifts, propagated through the decay product.
    assert np.max(np.abs(new_state - ref)) <= 12 * scale * 2.0**-MANTISSA_BITS


@given(dims, dims)
@settings(max_examples=30, deadline=None)
def test_state_layout_validation(dim_head, dim_state):
    layout = StateLayout(dim_head, dim_state, values_per_column=32, columns_per_row=32)
    assert layout.subchunks_per_head == layout.subchunks_per_state_column * dim_state
    assert layout.result_values == dim_state
