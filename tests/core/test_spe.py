"""Tests for the functional SPE datapath (Fig. 8) against Eq. 2."""

import numpy as np
import pytest

from repro.core.spe import StateUpdateEngine, reference_state_update
from repro.quant.mx import MANTISSA_BITS
from repro.quant.rounding import RoundingMode


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestProcessSubchunk:
    def test_matches_reference_within_format_precision(self, rng):
        n = 32
        state = rng.normal(size=n)
        d = rng.uniform(0.8, 1.0, size=n)
        k = rng.normal(size=n)
        q = rng.normal(size=n)
        v = 0.3
        engine = StateUpdateEngine()
        new_state, y = engine.process_subchunk(state, d, k, v, q)
        ref_state = d * state + k * v
        scale = np.max(np.abs(ref_state))
        # Two multiplies + one add, each within a couple of 6-bit ulps.
        assert np.all(np.abs(new_state - ref_state) <= 8 * scale * 2.0**-MANTISSA_BITS)
        assert y == pytest.approx(float(new_state @ q), rel=0.05, abs=1e-6)

    def test_mismatched_operands_rejected(self, rng):
        engine = StateUpdateEngine()
        with pytest.raises(ValueError):
            engine.process_subchunk(
                np.zeros(32), np.zeros(16), np.zeros(32), 0.1, np.zeros(32)
            )

    def test_iteration_counter(self, rng):
        engine = StateUpdateEngine()
        engine.process_subchunk(np.ones(16), np.ones(16), np.ones(16), 0.0, np.ones(16))
        engine.process_subchunk(np.ones(16), np.ones(16), np.ones(16), 0.0, np.ones(16))
        assert engine.iterations == 2


class TestUpdateHead:
    def test_full_head_matches_reference(self, rng):
        dim_head, dim_state = 16, 8
        state = rng.normal(size=(dim_head, dim_state))
        d = rng.uniform(0.9, 1.0, size=dim_head)
        k = rng.normal(size=dim_head)
        v = rng.normal(size=dim_state)
        q = rng.normal(size=dim_head)
        engine = StateUpdateEngine()
        new_state, y = engine.update_head(state, d, k, v, q)
        ref_state, ref_y = reference_state_update(state, d, k, v, q)
        scale = np.max(np.abs(ref_state))
        assert np.max(np.abs(new_state - ref_state)) <= 8 * scale * 2.0**-MANTISSA_BITS
        np.testing.assert_allclose(y, ref_y, atol=0.3 * np.max(np.abs(ref_y)) + 1e-9)

    def test_shape_validation(self, rng):
        engine = StateUpdateEngine()
        with pytest.raises(ValueError):
            engine.update_head(np.zeros((8, 4)), np.zeros(7), np.zeros(8),
                               np.zeros(4), np.zeros(8))
        with pytest.raises(ValueError):
            engine.update_head(np.zeros((8, 4)), np.zeros(8), np.zeros(8),
                               np.zeros(5), np.zeros(8))

    def test_stochastic_mode_runs(self, rng):
        engine = StateUpdateEngine(rounding=RoundingMode.STOCHASTIC, lfsr_seed=3)
        state = rng.normal(size=(16, 4))
        new_state, y = engine.update_head(
            state, np.full(16, 0.95), rng.normal(size=16),
            rng.normal(size=4), rng.normal(size=16),
        )
        assert new_state.shape == state.shape
        assert np.all(np.isfinite(y))


class TestAttentionMode:
    def test_score_matches_dot(self, rng):
        q = rng.normal(size=32)
        k = rng.normal(size=32)
        engine = StateUpdateEngine()
        score = engine.score_subchunk(q, k)
        assert score == pytest.approx(
            float(q @ k), abs=0.2 * np.linalg.norm(q) * np.linalg.norm(k) / 32 + 0.15
        )

    def test_attend_accumulates(self, rng):
        acc = np.zeros(16)
        v = rng.normal(size=16)
        engine = StateUpdateEngine()
        out = engine.attend_subchunk(acc, 0.5, v)
        np.testing.assert_allclose(out, 0.5 * v, atol=0.05 * np.max(np.abs(v)))

    def test_attend_shape_mismatch(self):
        engine = StateUpdateEngine()
        with pytest.raises(ValueError):
            engine.attend_subchunk(np.zeros(8), 1.0, np.zeros(16))
