"""Tests for the SPU pipeline / access-interleaving simulator (Section 5.2)."""

import pytest

from repro.core.config import (
    hbm_pim_config,
    per_bank_pipelined_config,
    pimba_config,
)
from repro.core.spu import (
    channel_subchunk_rate,
    simulate_per_bank_pipelined,
    simulate_shared_spu,
    simulate_time_multiplexed,
)


class TestSharedSpu:
    def test_hazard_free_by_construction(self):
        # BankPort.access raises on any same-cycle read+write; a clean run
        # proves the Fig. 8 interleaving has no structural hazard.
        run = simulate_shared_spu(n_per_bank=64)
        assert run.subchunks == 128

    def test_sustains_one_subchunk_per_cycle(self):
        run = simulate_shared_spu(n_per_bank=512)
        assert run.throughput_per_unit == pytest.approx(1.0, rel=0.02)

    def test_even_writeback_offset_rejected(self):
        with pytest.raises(ValueError):
            simulate_shared_spu(8, pipeline_stages=5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            simulate_shared_spu(-1)


class TestPerBankPipelined:
    def test_half_utilization(self):
        # The single row buffer alternates read/write: one sub-chunk per
        # two cycles per unit.
        run = simulate_per_bank_pipelined(n_per_bank=512)
        assert run.throughput_per_unit == pytest.approx(0.5, rel=0.02)


class TestTimeMultiplexed:
    def test_throughput_is_one_over_passes(self):
        run = simulate_time_multiplexed(n_per_bank=256, banks_per_unit=1, passes=3)
        assert run.throughput_per_unit == pytest.approx(1 / 3, rel=0.02)

    def test_sharing_two_banks_halves_per_bank_rate(self):
        one = simulate_time_multiplexed(256, banks_per_unit=1, passes=3)
        two = simulate_time_multiplexed(256, banks_per_unit=2, passes=3)
        # Same per-unit rate, but the unit now serves twice the data.
        assert two.cycles == pytest.approx(2 * one.cycles, rel=0.01)


class TestHeadlineClaim:
    def test_pimba_matches_per_bank_pipelined_throughput_with_half_units(self):
        """Fig. 5 / Section 5.2: half the units, same channel throughput."""
        pimba = pimba_config()
        per_bank = per_bank_pipelined_config()
        rate_pimba = channel_subchunk_rate(pimba)
        rate_per_bank = channel_subchunk_rate(per_bank)
        assert rate_pimba == pytest.approx(rate_per_bank, rel=0.02)
        assert pimba.units_per_channel == per_bank.units_per_channel // 2

    def test_time_multiplexed_is_slower(self):
        rate_tm = channel_subchunk_rate(hbm_pim_config())
        rate_pimba = channel_subchunk_rate(pimba_config())
        # In raw column accesses Pimba is `passes` times faster; the MX8
        # format then doubles the *values* per column at the layout level,
        # giving the ~8x raw state-update advantage of Fig. 13.
        assert rate_pimba / rate_tm == pytest.approx(6.0, rel=0.05)
